// Capacity tuning walkthrough (Chapter 6): when a tenant-group's RT-TTP
// sits just below the SLA guarantee, a system administrator can raise U —
// the tuning MPPDB's node count — instead of paying hours of elastic
// scaling. This example shows the decision procedure and demonstrates the
// effect of a larger MPPDB_0 on overflow queries.

#include <iostream>

#include "core/thrifty.h"

namespace {

using namespace thrifty;

// Latency of one overflow scenario: `active` tenants each run one TPC-H Q1
// concurrently on a group whose MPPDBs have `u` nodes for MPPDB_0 and n_1
// nodes otherwise. Returns the worst normalized performance (vs the 4-node
// dedicated SLA).
double WorstNormalizedPerformance(int u, int active) {
  SimEngine engine;
  QueryCatalog catalog = QueryCatalog::Default();
  const QueryTemplate& q1 = catalog.Get(*catalog.FindByName("TPCH-Q1"));
  const int n1 = 4;
  std::vector<std::unique_ptr<MppdbInstance>> instances;
  std::vector<MppdbInstance*> raw;
  const int mppdb_nodes[] = {u, n1, n1};
  for (InstanceId id = 0; id < 3; ++id) {
    instances.push_back(
        std::make_unique<MppdbInstance>(id, mppdb_nodes[id], &engine));
    for (TenantId t = 0; t < 8; ++t) {
      instances.back()->AddTenant(t, 100.0 * n1);
    }
    raw.push_back(instances.back().get());
  }
  GroupRouter router(0, raw);
  double worst = 0;
  SimDuration sla = q1.DedicatedLatency(100.0 * n1, n1);
  for (auto& instance : instances) {
    instance->set_completion_callback([&](const QueryCompletion& c) {
      worst = std::max(worst, static_cast<double>(c.MeasuredLatency()) /
                                  static_cast<double>(sla));
    });
  }
  for (TenantId t = 0; t < active; ++t) {
    auto decision = router.Route(t);
    if (!decision.ok()) std::exit(1);
    QuerySubmission s;
    s.query_id = t;
    s.tenant_id = t;
    if (!decision->instance->Submit(s, q1).ok()) std::exit(1);
  }
  engine.Run();
  return worst;
}

}  // namespace

int main() {
  std::cout << "Chapter 6 scenario: a group of 4-node tenants, A = R = 3\n"
               "MPPDBs, P = 99.9%. The RT-TTP dipped to 99.8% but is flat.\n\n";

  // Step 1: ask the advisor what to do.
  auto advice = AdviseTuning(/*rt_ttp=*/0.998, /*trending_down=*/false,
                             /*sla=*/0.999, /*n1=*/4,
                             /*current_u=*/4, /*u_max=*/16,
                             /*overflow_concurrency=*/1);
  if (!advice.ok()) {
    std::cerr << advice.status() << "\n";
    return 1;
  }
  std::cout << "Tuning advisor says: " << TuningActionToString(advice->action)
            << " (U " << 4 << " -> " << advice->recommended_tuning_nodes
            << ")\n\n";

  // Step 2: show why. With U = n_1, a fourth active tenant overflowing to
  // MPPDB_0 makes two queries share 4 nodes (2x slowdown). With the
  // recommended U, the shared MPPDB_0 still gives each query >= n_1 nodes
  // of service rate.
  TablePrinter table({"U (MPPDB_0 nodes)", "4th tenant overflow:",
                      "worst normalized perf", "SLA met?"});
  for (int u : {4, 6, 8, 10, 12}) {
    double worst = WorstNormalizedPerformance(u, 4);
    table.AddRow({std::to_string(u), "2 queries share MPPDB_0",
                  FormatDouble(worst, 2), worst <= 1.001 ? "yes" : "no"});
  }
  table.Print(std::cout);

  std::cout
      << "\nThe advisor's U = " << advice->recommended_tuning_nodes
      << " is the linear-scale-out estimate (U/k >= n_1, the paper's Point\n"
         "C in Fig 1.1b); it brings the overflow query within ~4% of its\n"
         "SLA. TPC-H Q1's small serial fraction does not speed up with\n"
         "extra nodes, so meeting the SLA *exactly* needs a little more —\n"
         "the table shows U = 10 suffices. This is precisely why the paper\n"
         "calls the empirical headroom of MPPDB_0 a manual, administrator-\n"
         "driven knob rather than a guarantee.\n";
  return 0;
}
