// End-to-end MPPDBaaS simulation: plan, deploy, replay history, and watch
// lightweight elastic scaling react to an over-active tenant.
//
// This is the workflow of Chapter 3's architecture: Tenant Activity Monitor
// feeds the Deployment Advisor, the Deployment Master starts the MPPDBs,
// the Query Router applies Algorithm 1, and when run-time behaviour
// deviates from history the elastic scaler moves the over-active tenant to
// a freshly loaded MPPDB (§5.1).
//
// Usage: service_simulation [tenants] [replay_days]

#include <cstdlib>
#include <iostream>

#include "core/thrifty.h"

int main(int argc, char** argv) {
  using namespace thrifty;

  int num_tenants = argc > 1 ? std::atoi(argv[1]) : 24;
  int replay_days = argc > 2 ? std::atoi(argv[2]) : 4;
  if (num_tenants < 4 || replay_days < 2) {
    std::cerr << "usage: " << argv[0] << " [tenants>=4] [replay_days>=2]\n";
    return 2;
  }

  QueryCatalog catalog = QueryCatalog::Default();
  Rng rng(99);
  SessionLibrary library(&catalog, {2, 4}, /*sessions_per_class=*/10,
                         rng.Fork(1));
  PopulationOptions population;
  population.node_sizes = {2, 4};
  Rng pop_rng = rng.Fork(2);
  std::vector<TenantSpec> tenants =
      *GenerateTenantPopulation(num_tenants, population, &pop_rng);
  LogComposerOptions composer_options;
  composer_options.horizon_days = replay_days;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  std::vector<TenantLog> history = *composer.Compose(&tenants, &compose_rng);

  AdvisorOptions advisor_options;
  advisor_options.replication_factor = 2;
  advisor_options.sla_fraction = 0.99;
  DeploymentAdvisor advisor(advisor_options);
  AdvisorOutput advice =
      *advisor.Advise(tenants, history, 0, composer.horizon_end());
  advice.plan.PrintSummary(std::cout);

  SimEngine engine;
  // Head-room of 8 nodes for elastic scaling.
  Cluster cluster(static_cast<int>(advice.plan.TotalNodesUsed()) + 8,
                  &engine);
  ServiceOptions service_options;
  service_options.replication_factor = advisor_options.replication_factor;
  service_options.sla_fraction = advisor_options.sla_fraction;
  service_options.elastic_scaling = true;
  service_options.scaling.warmup = 20 * kHour;
  service_options.scaling.check_interval = 10 * kMinute;
  ThriftyService service(&engine, &cluster, &catalog, service_options);
  if (Status st = service.Deploy(advice.plan); !st.ok()) {
    std::cerr << "deploy failed: " << st << "\n";
    return 1;
  }
  if (Status st = service.ScheduleLogReplay(history); !st.ok()) {
    std::cerr << "replay failed: " << st << "\n";
    return 1;
  }

  // One tenant goes rogue on day 1 and hammers the service with
  // near-continuous Q1s (~9 s each on its 2-node class, one every 12 s).
  TenantId rogue = advice.plan.groups[0].tenants[0].id;
  TemplateId q1 = *catalog.FindByName("TPCH-Q1");
  SimTime horizon = static_cast<SimTime>(replay_days) * kDay;
  for (SimTime t = 26 * kHour; t < horizon; t += 12 * kSecond) {
    engine.ScheduleAt(t, [&service, rogue, q1](SimTime) {
      (void)service.SubmitQuery(rogue, q1);
    });
  }
  std::cout << "\nReplaying " << replay_days << " days of history; tenant "
            << rogue << " is taken over at t=26h...\n";

  engine.RunUntil(horizon);

  const ServiceMetrics& metrics = service.metrics();
  std::cout << "\nQueries completed:  " << metrics.completed << "\n"
            << "SLA attainment:     "
            << FormatPercent(metrics.SlaAttainment(), 2) << "\n"
            << "p50 / p99 normalized performance: "
            << FormatDouble(metrics.normalized_performance.Percentile(0.5), 2)
            << " / "
            << FormatDouble(metrics.normalized_performance.Percentile(0.99), 2)
            << "\n"
            << "Nodes in use:       " << cluster.nodes_in_use() << " of "
            << cluster.total_nodes() << "\n";

  std::cout << "\n";
  auto report = BuildStatusReport(&service);
  if (report.ok()) PrintStatusReport(*report, std::cout);

  if (service.scaler() != nullptr) {
    for (const auto& event : service.scaler()->events()) {
      std::cout << "\nElastic scaling event in group " << event.group_id
                << ": detected at t="
                << FormatDouble(DurationToSeconds(event.detected_time) / 3600,
                                1)
                << "h, over-active tenant(s):";
      for (TenantId t : event.tenants) std::cout << " " << t;
      if (event.ready_time > 0) {
        std::cout << ", dedicated " << event.new_mppdb_nodes
                  << "-node MPPDB online at t="
                  << FormatDouble(DurationToSeconds(event.ready_time) / 3600,
                                  1)
                  << "h";
      } else {
        std::cout << ", new MPPDB still loading at the end of the run";
      }
      std::cout << "\n";
    }
    if (service.scaler()->events().empty()) {
      std::cout << "\nNo elastic scaling was needed.\n";
    }
  }
  return 0;
}
