// Consolidation planner: a CLI a service operator would run offline.
//
// Generates (or accepts) a multi-tenant MPPDBaaS workload, runs both the
// FFD baseline and Thrifty's two-step tenant-grouping heuristic, and prints
// the deployment plans side by side: nodes saved, group sizes, per-group
// TTP, and the full cluster design of the better plan.
//
// Usage: consolidation_planner [tenants] [theta] [R] [P%] [epoch_s] [days]
//                              [plan_out]
//   e.g. consolidation_planner 800 0.8 3 99.9 10 7 plan.thrifty
//
// When plan_out is given, the winning deployment plan is serialized there
// (ReadDeploymentPlan + DeploymentMaster::Deploy applies it later).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/thrifty.h"

int main(int argc, char** argv) {
  using namespace thrifty;

  int num_tenants = argc > 1 ? std::atoi(argv[1]) : 400;
  double theta = argc > 2 ? std::atof(argv[2]) : 0.8;
  int replication = argc > 3 ? std::atoi(argv[3]) : 3;
  double sla = argc > 4 ? std::atof(argv[4]) / 100.0 : 0.999;
  double epoch_seconds = argc > 5 ? std::atof(argv[5]) : 10;
  int days = argc > 6 ? std::atoi(argv[6]) : 7;
  if (num_tenants < 1 || replication < 1 || sla <= 0 || sla > 1 ||
      epoch_seconds <= 0 || days < 1) {
    std::cerr << "usage: " << argv[0]
              << " [tenants] [theta] [R] [P%] [epoch_s] [days]\n";
    return 2;
  }

  std::cout << "Planning consolidation for " << num_tenants
            << " tenants (theta=" << theta << ", R=" << replication
            << ", P=" << FormatPercent(sla, 2) << ", E=" << epoch_seconds
            << "s, " << days << "-day history)\n\n";

  QueryCatalog catalog = QueryCatalog::Default();
  Rng rng(20260705);
  SessionLibrary library(&catalog, {2, 4, 8, 16, 32},
                         /*sessions_per_class=*/15, rng.Fork(1));
  PopulationOptions population;
  population.zipf_theta = theta;
  Rng pop_rng = rng.Fork(2);
  auto tenants = GenerateTenantPopulation(num_tenants, population, &pop_rng);
  if (!tenants.ok()) {
    std::cerr << tenants.status() << "\n";
    return 1;
  }

  std::cout << "Tenant size distribution (cf. the paper's Figure 5.2):\n";
  TablePrinter sizes({"parallelism", "tenants", "nodes requested"});
  for (auto [nodes, count] : TenantSizeHistogram(*tenants)) {
    sizes.AddRow({std::to_string(nodes) + "-node", std::to_string(count),
                  std::to_string(static_cast<int64_t>(nodes) * count)});
  }
  sizes.Print(std::cout);

  LogComposerOptions composer_options;
  composer_options.horizon_days = days;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  auto logs = composer.Compose(&*tenants, &compose_rng);
  if (!logs.ok()) {
    std::cerr << logs.status() << "\n";
    return 1;
  }
  std::cout << "\nAverage active tenant ratio: "
            << FormatPercent(
                   AverageActiveTenantRatio(*logs, 0, composer.horizon_end()),
                   1)
            << "\n";
  auto workload_summary =
      SummarizeWorkload(*logs, 0, composer.horizon_end(), &*tenants);
  if (workload_summary.ok()) {
    PrintWorkloadSummary(*workload_summary, std::cout);
  }
  std::cout << "\n";

  AdvisorOptions options;
  options.replication_factor = replication;
  options.sla_fraction = sla;
  options.epoch_size = SecondsToDuration(epoch_seconds);

  TablePrinter comparison({"solver", "groups", "avg group size",
                           "nodes used", "nodes requested", "effectiveness",
                           "solve time"});
  AdvisorOutput best;
  for (GroupingSolver solver : {GroupingSolver::kFfd,
                                GroupingSolver::kTwoStep}) {
    options.solver = solver;
    DeploymentAdvisor advisor(options);
    auto advice = advisor.Advise(*tenants, *logs, 0, composer.horizon_end());
    if (!advice.ok()) {
      std::cerr << advice.status() << "\n";
      return 1;
    }
    comparison.AddRow(
        {solver == GroupingSolver::kFfd ? "FFD" : "2-step (Thrifty)",
         std::to_string(advice->plan.groups.size()),
         FormatDouble(advice->grouping.AverageGroupSize(), 1),
         std::to_string(advice->plan.TotalNodesUsed()),
         std::to_string(advice->plan.TotalNodesRequested()),
         FormatPercent(advice->plan.ConsolidationEffectiveness(), 1),
         FormatDouble(advice->grouping.solve_seconds, 2) + "s"});
    if (solver == GroupingSolver::kTwoStep) best = std::move(*advice);
  }
  comparison.Print(std::cout);

  std::cout << "\nTwo-step deployment plan (first 10 tenant-groups):\n";
  TablePrinter plan_table({"group", "tenants", "MPPDBs", "nodes/MPPDB",
                           "TTP@R", "max active"});
  for (const auto& group : best.plan.groups) {
    if (group.group_id >= 10) break;
    plan_table.AddRow({std::to_string(group.group_id),
                       std::to_string(group.tenants.size()),
                       std::to_string(group.cluster.NumMppdbs()),
                       std::to_string(group.LargestTenantNodes()),
                       FormatPercent(group.ttp, 2),
                       std::to_string(group.max_active)});
  }
  plan_table.Print(std::cout);
  if (best.plan.groups.size() > 10) {
    std::cout << "... and " << best.plan.groups.size() - 10
              << " more groups.\n";
  }
  if (!best.excluded_tenants.empty()) {
    std::cout << best.excluded_tenants.size()
              << " always-active tenants excluded from consolidation "
                 "(dedicated service plan).\n";
  }
  if (argc > 7) {
    std::ofstream out(argv[7]);
    if (Status st = WriteDeploymentPlan(best.plan, out); !st.ok()) {
      std::cerr << "failed to write plan: " << st << "\n";
      return 1;
    }
    std::cout << "\nDeployment plan written to " << argv[7] << "\n";
  }
  return 0;
}
