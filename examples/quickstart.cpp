// Quickstart: the minimal Thrifty flow.
//
//   1. Generate a small tenant population and their query-activity history
//      (the §7.1 methodology).
//   2. Ask the Deployment Advisor for a consolidation plan (tenant-driven
//      design: tenant-groups, cluster design, placement).
//   3. Deploy the plan on a simulated cluster and submit a few queries —
//      each active tenant gets a dedicated MPPDB, so every query meets its
//      SLA.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <iostream>

#include "core/thrifty.h"

int main() {
  using namespace thrifty;

  // --- 1. Tenants and their history ------------------------------------
  QueryCatalog catalog = QueryCatalog::Default();
  Rng rng(7);
  SessionLibrary library(&catalog, /*node_sizes=*/{2, 4},
                         /*sessions_per_class=*/8, rng.Fork(1));
  PopulationOptions population;
  population.node_sizes = {2, 4};
  Rng pop_rng = rng.Fork(2);
  std::vector<TenantSpec> tenants =
      *GenerateTenantPopulation(16, population, &pop_rng);

  LogComposerOptions composer_options;
  composer_options.horizon_days = 7;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  std::vector<TenantLog> history = *composer.Compose(&tenants, &compose_rng);
  std::cout << "Generated " << history.size() << " tenant logs; average "
            << "active tenant ratio "
            << FormatPercent(
                   AverageActiveTenantRatio(history, 0, composer.horizon_end()),
                   1)
            << "\n\n";

  // --- 2. Deployment plan ----------------------------------------------
  AdvisorOptions advisor_options;
  advisor_options.replication_factor = 2;   // R: high availability copies
  advisor_options.sla_fraction = 0.99;      // P: SLA guarantee
  advisor_options.epoch_size = 30 * kSecond;
  DeploymentAdvisor advisor(advisor_options);
  AdvisorOutput advice =
      *advisor.Advise(tenants, history, 0, composer.horizon_end());
  advice.plan.PrintSummary(std::cout);

  // --- 3. Deploy and serve ----------------------------------------------
  SimEngine engine;
  Cluster cluster(static_cast<int>(advice.plan.TotalNodesUsed()), &engine);
  ServiceOptions service_options;
  service_options.replication_factor = advisor_options.replication_factor;
  service_options.sla_fraction = advisor_options.sla_fraction;
  service_options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, service_options);
  if (Status st = service.Deploy(advice.plan); !st.ok()) {
    std::cerr << "deploy failed: " << st << "\n";
    return 1;
  }

  service.set_completion_hook([](const QueryOutcome& outcome) {
    std::cout << "  query " << outcome.real.query_id << " of tenant "
              << outcome.real.tenant_id << " finished on MPPDB "
              << outcome.real.instance_id << " in "
              << FormatDouble(DurationToSeconds(outcome.real.MeasuredLatency()),
                              1)
              << " s (normalized performance "
              << FormatDouble(outcome.NormalizedPerformance(), 2) << ")\n";
  });

  std::cout << "\nSubmitting TPC-H Q1 and Q19 from two tenants...\n";
  (void)service.SubmitQuery(tenants[0].id, *catalog.FindByName("TPCH-Q1"));
  (void)service.SubmitQuery(tenants[1].id, *catalog.FindByName("TPCH-Q19"));
  engine.Run();

  std::cout << "\nSLA attainment: "
            << FormatPercent(service.metrics().SlaAttainment(), 1) << " ("
            << service.metrics().completed << " queries)\n";
  return 0;
}
