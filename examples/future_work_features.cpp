// Chapter 8 walk-through: the paper's future-work directions, implemented.
//
//  1. Heterogeneous clusters — assemble a tenant-group's MPPDBs from a
//     mixed pool of fast/standard/slow machines.
//  2. Divergent design for report-generation tenants — replicas with
//     different partition layouts plus an upfront U > n_1 tuning MPPDB
//     sized for the expected report MPL.
//  3. Proactive elastic scaling — the §5.1 trend-predictor alternative.
//  4. Plan persistence — save/load deployment plans (plans are static for
//     days, so they outlive the advisor process).

#include <iostream>
#include <sstream>

#include "core/thrifty.h"

int main() {
  using namespace thrifty;
  QueryCatalog catalog = QueryCatalog::Default();

  // --- 1. Heterogeneous cluster design ----------------------------------
  std::cout << "1) Heterogeneous cluster design\n";
  NodeInventory inventory;
  inventory.classes = {{"c5.4xlarge", 6, 2.0},
                       {"m5.2xlarge", 12, 1.0},
                       {"m4.xlarge", 10, 0.5}};
  auto hetero = DesignHeterogeneousGroupCluster(&inventory,
                                                /*largest_tenant_nodes=*/6,
                                                /*num_mppdbs=*/3);
  if (!hetero.ok()) {
    std::cerr << hetero.status() << "\n";
    return 1;
  }
  TablePrinter hetero_table({"MPPDB", "allocation", "effective capability"});
  for (size_t m = 0; m < hetero->size(); ++m) {
    std::string alloc;
    for (auto [cls, count] : (*hetero)[m].allocation) {
      alloc += std::to_string(count) + "x" + inventory.classes[cls].name + " ";
    }
    hetero_table.AddRow({std::to_string(m), alloc,
                         FormatDouble((*hetero)[m].effective_capability, 1)});
  }
  hetero_table.Print(std::cout);

  // --- 2. Divergent design for a report-only tenant class ---------------
  std::cout << "\n2) Divergent design (report-generation tenants)\n";
  TemplateId q1 = *catalog.FindByName("TPCH-Q1");
  TemplateId q9 = *catalog.FindByName("TPCH-Q9");
  TemplateId q19 = *catalog.FindByName("TPCH-Q19");
  std::vector<PartitionLayout> layouts = {
      {"scan-friendly", {{q1, 2.0}, {q9, 1.2}}},
      {"join-friendly", {{q9, 2.2}, {q19, 1.8}}},
      {"co-partitioned", {{q19, 2.5}}},
  };
  DivergentDesignOptions divergent_options;
  divergent_options.expected_mpl = 2;
  auto divergent = PlanDivergentGroup(/*largest_tenant_nodes=*/4,
                                      /*total_requested_nodes=*/56,
                                      /*num_mppdbs=*/3, {q1, q9, q19},
                                      layouts, divergent_options);
  if (!divergent.ok()) {
    std::cerr << divergent.status() << "\n";
    return 1;
  }
  std::cout << "  MPPDB_0 gets U = " << divergent->cluster.tuning_nodes()
            << " nodes (vs n_1 = 4) to absorb MPL "
            << divergent_options.expected_mpl << " report batches;\n"
            << "  replica layouts:";
  for (size_t layout : divergent->replica_layouts) {
    std::cout << " " << layouts[layout].name;
  }
  std::cout << "\n  worst template's best speedup across replicas: "
            << FormatDouble(divergent->worst_template_best_speedup, 2)
            << "x\n";

  // --- 3. Proactive scaling: the trend predictor ------------------------
  std::cout << "\n3) Proactive RT-TTP trend prediction\n";
  RtTtpTrendPredictor predictor;
  for (int h = 0; h < 10; ++h) {
    predictor.AddSample(h * kHour, 1.0 - 0.0004 * h);
  }
  auto breach = predictor.PredictsBreach(0.999, /*lead=*/6 * kHour,
                                         /*now=*/9 * kHour);
  std::cout << "  slope "
            << FormatDouble(*predictor.SlopePerHour() * 1000, 2)
            << "e-3 RT-TTP/hour; breach of P=99.9% within 6h predicted: "
            << (breach.ok() && *breach ? "yes" : "no") << "\n";

  // --- 4. Plan persistence ----------------------------------------------
  std::cout << "\n4) Plan save/load round trip\n";
  DeploymentPlan plan;
  plan.replication_factor = 3;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  TenantSpec tenant{0, 4, 400, QuerySuite::kTpch, 3, 2};
  group.tenants.push_back(tenant);
  group.cluster = *DesignGroupCluster(4, 4, 3);
  plan.groups.push_back(group);
  std::stringstream buffer;
  if (!WriteDeploymentPlan(plan, buffer).ok()) return 1;
  auto loaded = ReadDeploymentPlan(buffer);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  std::cout << "  plan of " << loaded->groups.size()
            << " group(s) survives a round trip ("
            << loaded->TotalNodesUsed() << " nodes).\n";
  return 0;
}
