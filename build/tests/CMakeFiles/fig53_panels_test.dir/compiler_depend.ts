# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig53_panels_test.
