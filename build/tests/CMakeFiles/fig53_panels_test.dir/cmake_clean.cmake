file(REMOVE_RECURSE
  "CMakeFiles/fig53_panels_test.dir/fig53_panels_test.cc.o"
  "CMakeFiles/fig53_panels_test.dir/fig53_panels_test.cc.o.d"
  "fig53_panels_test"
  "fig53_panels_test.pdb"
  "fig53_panels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig53_panels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
