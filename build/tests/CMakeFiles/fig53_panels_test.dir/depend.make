# Empty dependencies file for fig53_panels_test.
# This may be replaced when dependencies are built.
