# Empty dependencies file for level_set_test.
# This may be replaced when dependencies are built.
