file(REMOVE_RECURSE
  "CMakeFiles/level_set_test.dir/level_set_test.cc.o"
  "CMakeFiles/level_set_test.dir/level_set_test.cc.o.d"
  "level_set_test"
  "level_set_test.pdb"
  "level_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
