# Empty compiler generated dependencies file for rt_ttp_test.
# This may be replaced when dependencies are built.
