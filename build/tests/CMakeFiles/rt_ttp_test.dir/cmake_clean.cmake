file(REMOVE_RECURSE
  "CMakeFiles/rt_ttp_test.dir/rt_ttp_test.cc.o"
  "CMakeFiles/rt_ttp_test.dir/rt_ttp_test.cc.o.d"
  "rt_ttp_test"
  "rt_ttp_test.pdb"
  "rt_ttp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_ttp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
