# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ps_property_test.
