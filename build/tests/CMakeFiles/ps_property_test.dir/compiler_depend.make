# Empty compiler generated dependencies file for ps_property_test.
# This may be replaced when dependencies are built.
