file(REMOVE_RECURSE
  "CMakeFiles/ps_property_test.dir/ps_property_test.cc.o"
  "CMakeFiles/ps_property_test.dir/ps_property_test.cc.o.d"
  "ps_property_test"
  "ps_property_test.pdb"
  "ps_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
