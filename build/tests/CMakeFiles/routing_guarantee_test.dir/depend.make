# Empty dependencies file for routing_guarantee_test.
# This may be replaced when dependencies are built.
