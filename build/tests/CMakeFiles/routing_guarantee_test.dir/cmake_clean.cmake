file(REMOVE_RECURSE
  "CMakeFiles/routing_guarantee_test.dir/routing_guarantee_test.cc.o"
  "CMakeFiles/routing_guarantee_test.dir/routing_guarantee_test.cc.o.d"
  "routing_guarantee_test"
  "routing_guarantee_test.pdb"
  "routing_guarantee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_guarantee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
