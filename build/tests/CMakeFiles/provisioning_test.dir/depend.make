# Empty dependencies file for provisioning_test.
# This may be replaced when dependencies are built.
