file(REMOVE_RECURSE
  "CMakeFiles/provisioning_test.dir/provisioning_test.cc.o"
  "CMakeFiles/provisioning_test.dir/provisioning_test.cc.o.d"
  "provisioning_test"
  "provisioning_test.pdb"
  "provisioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
