file(REMOVE_RECURSE
  "CMakeFiles/cluster_design_test.dir/cluster_design_test.cc.o"
  "CMakeFiles/cluster_design_test.dir/cluster_design_test.cc.o.d"
  "cluster_design_test"
  "cluster_design_test.pdb"
  "cluster_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
