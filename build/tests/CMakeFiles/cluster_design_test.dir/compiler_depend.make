# Empty compiler generated dependencies file for cluster_design_test.
# This may be replaced when dependencies are built.
