# Empty compiler generated dependencies file for divergent_test.
# This may be replaced when dependencies are built.
