file(REMOVE_RECURSE
  "CMakeFiles/divergent_test.dir/divergent_test.cc.o"
  "CMakeFiles/divergent_test.dir/divergent_test.cc.o.d"
  "divergent_test"
  "divergent_test.pdb"
  "divergent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
