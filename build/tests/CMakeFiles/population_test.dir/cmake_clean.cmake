file(REMOVE_RECURSE
  "CMakeFiles/population_test.dir/population_test.cc.o"
  "CMakeFiles/population_test.dir/population_test.cc.o.d"
  "population_test"
  "population_test.pdb"
  "population_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
