file(REMOVE_RECURSE
  "CMakeFiles/epoch_test.dir/epoch_test.cc.o"
  "CMakeFiles/epoch_test.dir/epoch_test.cc.o.d"
  "epoch_test"
  "epoch_test.pdb"
  "epoch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
