# Empty compiler generated dependencies file for heterogeneous_test.
# This may be replaced when dependencies are built.
