file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_test.dir/heterogeneous_test.cc.o"
  "CMakeFiles/heterogeneous_test.dir/heterogeneous_test.cc.o.d"
  "heterogeneous_test"
  "heterogeneous_test.pdb"
  "heterogeneous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
