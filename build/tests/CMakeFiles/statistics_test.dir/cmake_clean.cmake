file(REMOVE_RECURSE
  "CMakeFiles/statistics_test.dir/statistics_test.cc.o"
  "CMakeFiles/statistics_test.dir/statistics_test.cc.o.d"
  "statistics_test"
  "statistics_test.pdb"
  "statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
