file(REMOVE_RECURSE
  "CMakeFiles/log_generator_test.dir/log_generator_test.cc.o"
  "CMakeFiles/log_generator_test.dir/log_generator_test.cc.o.d"
  "log_generator_test"
  "log_generator_test.pdb"
  "log_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
