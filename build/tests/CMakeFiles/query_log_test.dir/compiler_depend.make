# Empty compiler generated dependencies file for query_log_test.
# This may be replaced when dependencies are built.
