file(REMOVE_RECURSE
  "CMakeFiles/query_log_test.dir/query_log_test.cc.o"
  "CMakeFiles/query_log_test.dir/query_log_test.cc.o.d"
  "query_log_test"
  "query_log_test.pdb"
  "query_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
