# Empty dependencies file for minlp_test.
# This may be replaced when dependencies are built.
