file(REMOVE_RECURSE
  "CMakeFiles/minlp_test.dir/minlp_test.cc.o"
  "CMakeFiles/minlp_test.dir/minlp_test.cc.o.d"
  "minlp_test"
  "minlp_test.pdb"
  "minlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
