file(REMOVE_RECURSE
  "CMakeFiles/proactive_test.dir/proactive_test.cc.o"
  "CMakeFiles/proactive_test.dir/proactive_test.cc.o.d"
  "proactive_test"
  "proactive_test.pdb"
  "proactive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
