# Empty compiler generated dependencies file for proactive_test.
# This may be replaced when dependencies are built.
