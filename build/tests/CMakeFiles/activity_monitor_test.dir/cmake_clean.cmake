file(REMOVE_RECURSE
  "CMakeFiles/activity_monitor_test.dir/activity_monitor_test.cc.o"
  "CMakeFiles/activity_monitor_test.dir/activity_monitor_test.cc.o.d"
  "activity_monitor_test"
  "activity_monitor_test.pdb"
  "activity_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
