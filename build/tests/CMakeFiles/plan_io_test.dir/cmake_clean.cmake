file(REMOVE_RECURSE
  "CMakeFiles/plan_io_test.dir/plan_io_test.cc.o"
  "CMakeFiles/plan_io_test.dir/plan_io_test.cc.o.d"
  "plan_io_test"
  "plan_io_test.pdb"
  "plan_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
