# Empty dependencies file for plan_io_test.
# This may be replaced when dependencies are built.
