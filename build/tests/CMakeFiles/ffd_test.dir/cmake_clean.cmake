file(REMOVE_RECURSE
  "CMakeFiles/ffd_test.dir/ffd_test.cc.o"
  "CMakeFiles/ffd_test.dir/ffd_test.cc.o.d"
  "ffd_test"
  "ffd_test.pdb"
  "ffd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
