# Empty compiler generated dependencies file for ffd_test.
# This may be replaced when dependencies are built.
