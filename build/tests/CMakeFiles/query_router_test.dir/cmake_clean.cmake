file(REMOVE_RECURSE
  "CMakeFiles/query_router_test.dir/query_router_test.cc.o"
  "CMakeFiles/query_router_test.dir/query_router_test.cc.o.d"
  "query_router_test"
  "query_router_test.pdb"
  "query_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
