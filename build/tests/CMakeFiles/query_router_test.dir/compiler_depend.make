# Empty compiler generated dependencies file for query_router_test.
# This may be replaced when dependencies are built.
