file(REMOVE_RECURSE
  "CMakeFiles/manual_tuning_test.dir/manual_tuning_test.cc.o"
  "CMakeFiles/manual_tuning_test.dir/manual_tuning_test.cc.o.d"
  "manual_tuning_test"
  "manual_tuning_test.pdb"
  "manual_tuning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manual_tuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
