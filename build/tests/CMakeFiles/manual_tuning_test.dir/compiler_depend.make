# Empty compiler generated dependencies file for manual_tuning_test.
# This may be replaced when dependencies are built.
