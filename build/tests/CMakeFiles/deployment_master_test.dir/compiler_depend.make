# Empty compiler generated dependencies file for deployment_master_test.
# This may be replaced when dependencies are built.
