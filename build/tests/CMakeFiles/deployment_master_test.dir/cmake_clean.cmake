file(REMOVE_RECURSE
  "CMakeFiles/deployment_master_test.dir/deployment_master_test.cc.o"
  "CMakeFiles/deployment_master_test.dir/deployment_master_test.cc.o.d"
  "deployment_master_test"
  "deployment_master_test.pdb"
  "deployment_master_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
