# Empty compiler generated dependencies file for reconsolidation_test.
# This may be replaced when dependencies are built.
