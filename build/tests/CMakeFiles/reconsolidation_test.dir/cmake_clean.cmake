file(REMOVE_RECURSE
  "CMakeFiles/reconsolidation_test.dir/reconsolidation_test.cc.o"
  "CMakeFiles/reconsolidation_test.dir/reconsolidation_test.cc.o.d"
  "reconsolidation_test"
  "reconsolidation_test.pdb"
  "reconsolidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconsolidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
