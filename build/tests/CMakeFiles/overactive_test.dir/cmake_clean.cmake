file(REMOVE_RECURSE
  "CMakeFiles/overactive_test.dir/overactive_test.cc.o"
  "CMakeFiles/overactive_test.dir/overactive_test.cc.o.d"
  "overactive_test"
  "overactive_test.pdb"
  "overactive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overactive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
