# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for overactive_test.
