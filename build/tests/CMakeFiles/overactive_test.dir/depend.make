# Empty dependencies file for overactive_test.
# This may be replaced when dependencies are built.
