file(REMOVE_RECURSE
  "CMakeFiles/two_step_test.dir/two_step_test.cc.o"
  "CMakeFiles/two_step_test.dir/two_step_test.cc.o.d"
  "two_step_test"
  "two_step_test.pdb"
  "two_step_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_step_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
