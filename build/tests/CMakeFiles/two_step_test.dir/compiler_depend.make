# Empty compiler generated dependencies file for two_step_test.
# This may be replaced when dependencies are built.
