file(REMOVE_RECURSE
  "CMakeFiles/core_monitor_test.dir/core_monitor_test.cc.o"
  "CMakeFiles/core_monitor_test.dir/core_monitor_test.cc.o.d"
  "core_monitor_test"
  "core_monitor_test.pdb"
  "core_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
