# Empty dependencies file for core_monitor_test.
# This may be replaced when dependencies are built.
