file(REMOVE_RECURSE
  "CMakeFiles/deployment_plan_test.dir/deployment_plan_test.cc.o"
  "CMakeFiles/deployment_plan_test.dir/deployment_plan_test.cc.o.d"
  "deployment_plan_test"
  "deployment_plan_test.pdb"
  "deployment_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
