file(REMOVE_RECURSE
  "CMakeFiles/problem_test.dir/problem_test.cc.o"
  "CMakeFiles/problem_test.dir/problem_test.cc.o.d"
  "problem_test"
  "problem_test.pdb"
  "problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
