# Empty compiler generated dependencies file for burst_detection_test.
# This may be replaced when dependencies are built.
