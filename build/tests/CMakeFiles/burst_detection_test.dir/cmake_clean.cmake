file(REMOVE_RECURSE
  "CMakeFiles/burst_detection_test.dir/burst_detection_test.cc.o"
  "CMakeFiles/burst_detection_test.dir/burst_detection_test.cc.o.d"
  "burst_detection_test"
  "burst_detection_test.pdb"
  "burst_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
