file(REMOVE_RECURSE
  "CMakeFiles/admin_report_test.dir/admin_report_test.cc.o"
  "CMakeFiles/admin_report_test.dir/admin_report_test.cc.o.d"
  "admin_report_test"
  "admin_report_test.pdb"
  "admin_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
