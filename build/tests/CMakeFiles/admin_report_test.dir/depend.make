# Empty dependencies file for admin_report_test.
# This may be replaced when dependencies are built.
