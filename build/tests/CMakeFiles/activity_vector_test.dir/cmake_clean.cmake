file(REMOVE_RECURSE
  "CMakeFiles/activity_vector_test.dir/activity_vector_test.cc.o"
  "CMakeFiles/activity_vector_test.dir/activity_vector_test.cc.o.d"
  "activity_vector_test"
  "activity_vector_test.pdb"
  "activity_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
