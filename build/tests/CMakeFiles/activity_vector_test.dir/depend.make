# Empty dependencies file for activity_vector_test.
# This may be replaced when dependencies are built.
