file(REMOVE_RECURSE
  "CMakeFiles/bitmap_test.dir/bitmap_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap_test.cc.o.d"
  "bitmap_test"
  "bitmap_test.pdb"
  "bitmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
