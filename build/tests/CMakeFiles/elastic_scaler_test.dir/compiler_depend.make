# Empty compiler generated dependencies file for elastic_scaler_test.
# This may be replaced when dependencies are built.
