file(REMOVE_RECURSE
  "CMakeFiles/elastic_scaler_test.dir/elastic_scaler_test.cc.o"
  "CMakeFiles/elastic_scaler_test.dir/elastic_scaler_test.cc.o.d"
  "elastic_scaler_test"
  "elastic_scaler_test.pdb"
  "elastic_scaler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_scaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
