
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/activity/activity_monitor.cc" "src/CMakeFiles/thrifty.dir/activity/activity_monitor.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/activity/activity_monitor.cc.o.d"
  "/root/repo/src/activity/activity_vector.cc" "src/CMakeFiles/thrifty.dir/activity/activity_vector.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/activity/activity_vector.cc.o.d"
  "/root/repo/src/activity/burst_detection.cc" "src/CMakeFiles/thrifty.dir/activity/burst_detection.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/activity/burst_detection.cc.o.d"
  "/root/repo/src/activity/epoch.cc" "src/CMakeFiles/thrifty.dir/activity/epoch.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/activity/epoch.cc.o.d"
  "/root/repo/src/activity/level_set.cc" "src/CMakeFiles/thrifty.dir/activity/level_set.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/activity/level_set.cc.o.d"
  "/root/repo/src/common/bitmap.cc" "src/CMakeFiles/thrifty.dir/common/bitmap.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/bitmap.cc.o.d"
  "/root/repo/src/common/distributions.cc" "src/CMakeFiles/thrifty.dir/common/distributions.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/distributions.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/thrifty.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/interval.cc" "src/CMakeFiles/thrifty.dir/common/interval.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/interval.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/thrifty.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/thrifty.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/thrifty.dir/common/status.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/thrifty.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/admin_report.cc" "src/CMakeFiles/thrifty.dir/core/admin_report.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/core/admin_report.cc.o.d"
  "/root/repo/src/core/deployment_advisor.cc" "src/CMakeFiles/thrifty.dir/core/deployment_advisor.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/core/deployment_advisor.cc.o.d"
  "/root/repo/src/core/deployment_master.cc" "src/CMakeFiles/thrifty.dir/core/deployment_master.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/core/deployment_master.cc.o.d"
  "/root/repo/src/core/reconsolidation.cc" "src/CMakeFiles/thrifty.dir/core/reconsolidation.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/core/reconsolidation.cc.o.d"
  "/root/repo/src/core/service.cc" "src/CMakeFiles/thrifty.dir/core/service.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/core/service.cc.o.d"
  "/root/repo/src/core/tenant_activity_monitor.cc" "src/CMakeFiles/thrifty.dir/core/tenant_activity_monitor.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/core/tenant_activity_monitor.cc.o.d"
  "/root/repo/src/mppdb/catalog.cc" "src/CMakeFiles/thrifty.dir/mppdb/catalog.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/mppdb/catalog.cc.o.d"
  "/root/repo/src/mppdb/cluster.cc" "src/CMakeFiles/thrifty.dir/mppdb/cluster.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/mppdb/cluster.cc.o.d"
  "/root/repo/src/mppdb/instance.cc" "src/CMakeFiles/thrifty.dir/mppdb/instance.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/mppdb/instance.cc.o.d"
  "/root/repo/src/mppdb/provisioning.cc" "src/CMakeFiles/thrifty.dir/mppdb/provisioning.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/mppdb/provisioning.cc.o.d"
  "/root/repo/src/mppdb/query_model.cc" "src/CMakeFiles/thrifty.dir/mppdb/query_model.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/mppdb/query_model.cc.o.d"
  "/root/repo/src/placement/cluster_design.cc" "src/CMakeFiles/thrifty.dir/placement/cluster_design.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/cluster_design.cc.o.d"
  "/root/repo/src/placement/deployment_plan.cc" "src/CMakeFiles/thrifty.dir/placement/deployment_plan.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/deployment_plan.cc.o.d"
  "/root/repo/src/placement/divergent.cc" "src/CMakeFiles/thrifty.dir/placement/divergent.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/divergent.cc.o.d"
  "/root/repo/src/placement/exact.cc" "src/CMakeFiles/thrifty.dir/placement/exact.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/exact.cc.o.d"
  "/root/repo/src/placement/ffd.cc" "src/CMakeFiles/thrifty.dir/placement/ffd.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/ffd.cc.o.d"
  "/root/repo/src/placement/heterogeneous.cc" "src/CMakeFiles/thrifty.dir/placement/heterogeneous.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/heterogeneous.cc.o.d"
  "/root/repo/src/placement/minlp.cc" "src/CMakeFiles/thrifty.dir/placement/minlp.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/minlp.cc.o.d"
  "/root/repo/src/placement/plan_io.cc" "src/CMakeFiles/thrifty.dir/placement/plan_io.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/plan_io.cc.o.d"
  "/root/repo/src/placement/problem.cc" "src/CMakeFiles/thrifty.dir/placement/problem.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/problem.cc.o.d"
  "/root/repo/src/placement/two_step.cc" "src/CMakeFiles/thrifty.dir/placement/two_step.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/placement/two_step.cc.o.d"
  "/root/repo/src/routing/query_router.cc" "src/CMakeFiles/thrifty.dir/routing/query_router.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/routing/query_router.cc.o.d"
  "/root/repo/src/scaling/elastic_scaler.cc" "src/CMakeFiles/thrifty.dir/scaling/elastic_scaler.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/scaling/elastic_scaler.cc.o.d"
  "/root/repo/src/scaling/manual_tuning.cc" "src/CMakeFiles/thrifty.dir/scaling/manual_tuning.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/scaling/manual_tuning.cc.o.d"
  "/root/repo/src/scaling/overactive.cc" "src/CMakeFiles/thrifty.dir/scaling/overactive.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/scaling/overactive.cc.o.d"
  "/root/repo/src/scaling/proactive.cc" "src/CMakeFiles/thrifty.dir/scaling/proactive.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/scaling/proactive.cc.o.d"
  "/root/repo/src/scaling/rt_ttp_monitor.cc" "src/CMakeFiles/thrifty.dir/scaling/rt_ttp_monitor.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/scaling/rt_ttp_monitor.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/thrifty.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/thrifty.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/workload/log_generator.cc" "src/CMakeFiles/thrifty.dir/workload/log_generator.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/workload/log_generator.cc.o.d"
  "/root/repo/src/workload/query_log.cc" "src/CMakeFiles/thrifty.dir/workload/query_log.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/workload/query_log.cc.o.d"
  "/root/repo/src/workload/session.cc" "src/CMakeFiles/thrifty.dir/workload/session.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/workload/session.cc.o.d"
  "/root/repo/src/workload/statistics.cc" "src/CMakeFiles/thrifty.dir/workload/statistics.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/workload/statistics.cc.o.d"
  "/root/repo/src/workload/tenant.cc" "src/CMakeFiles/thrifty.dir/workload/tenant.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/workload/tenant.cc.o.d"
  "/root/repo/src/workload/tenant_population.cc" "src/CMakeFiles/thrifty.dir/workload/tenant_population.cc.o" "gcc" "src/CMakeFiles/thrifty.dir/workload/tenant_population.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
