# Empty dependencies file for thrifty.
# This may be replaced when dependencies are built.
