file(REMOVE_RECURSE
  "libthrifty.a"
)
