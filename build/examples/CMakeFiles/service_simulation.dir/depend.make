# Empty dependencies file for service_simulation.
# This may be replaced when dependencies are built.
