file(REMOVE_RECURSE
  "CMakeFiles/service_simulation.dir/service_simulation.cpp.o"
  "CMakeFiles/service_simulation.dir/service_simulation.cpp.o.d"
  "service_simulation"
  "service_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
