file(REMOVE_RECURSE
  "CMakeFiles/future_work_features.dir/future_work_features.cpp.o"
  "CMakeFiles/future_work_features.dir/future_work_features.cpp.o.d"
  "future_work_features"
  "future_work_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_work_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
