# Empty compiler generated dependencies file for future_work_features.
# This may be replaced when dependencies are built.
