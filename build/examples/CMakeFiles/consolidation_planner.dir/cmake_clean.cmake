file(REMOVE_RECURSE
  "CMakeFiles/consolidation_planner.dir/consolidation_planner.cpp.o"
  "CMakeFiles/consolidation_planner.dir/consolidation_planner.cpp.o.d"
  "consolidation_planner"
  "consolidation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
