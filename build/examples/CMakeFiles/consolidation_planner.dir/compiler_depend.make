# Empty compiler generated dependencies file for consolidation_planner.
# This may be replaced when dependencies are built.
