file(REMOVE_RECURSE
  "CMakeFiles/capacity_tuning.dir/capacity_tuning.cpp.o"
  "CMakeFiles/capacity_tuning.dir/capacity_tuning.cpp.o.d"
  "capacity_tuning"
  "capacity_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
