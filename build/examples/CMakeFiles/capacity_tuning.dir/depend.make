# Empty dependencies file for capacity_tuning.
# This may be replaced when dependencies are built.
