file(REMOVE_RECURSE
  "CMakeFiles/ext_proactive_scaling.dir/ext_proactive_scaling.cc.o"
  "CMakeFiles/ext_proactive_scaling.dir/ext_proactive_scaling.cc.o.d"
  "ext_proactive_scaling"
  "ext_proactive_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_proactive_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
