# Empty dependencies file for ext_proactive_scaling.
# This may be replaced when dependencies are built.
