# Empty compiler generated dependencies file for table5_1_provisioning.
# This may be replaced when dependencies are built.
