file(REMOVE_RECURSE
  "CMakeFiles/table5_1_provisioning.dir/table5_1_provisioning.cc.o"
  "CMakeFiles/table5_1_provisioning.dir/table5_1_provisioning.cc.o.d"
  "table5_1_provisioning"
  "table5_1_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_1_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
