file(REMOVE_RECURSE
  "CMakeFiles/fig7_5_sla.dir/fig7_5_sla.cc.o"
  "CMakeFiles/fig7_5_sla.dir/fig7_5_sla.cc.o.d"
  "fig7_5_sla"
  "fig7_5_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_5_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
