# Empty compiler generated dependencies file for fig7_5_sla.
# This may be replaced when dependencies are built.
