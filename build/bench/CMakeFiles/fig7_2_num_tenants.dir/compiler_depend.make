# Empty compiler generated dependencies file for fig7_2_num_tenants.
# This may be replaced when dependencies are built.
