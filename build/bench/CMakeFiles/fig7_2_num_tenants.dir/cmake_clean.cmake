file(REMOVE_RECURSE
  "CMakeFiles/fig7_2_num_tenants.dir/fig7_2_num_tenants.cc.o"
  "CMakeFiles/fig7_2_num_tenants.dir/fig7_2_num_tenants.cc.o.d"
  "fig7_2_num_tenants"
  "fig7_2_num_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_2_num_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
