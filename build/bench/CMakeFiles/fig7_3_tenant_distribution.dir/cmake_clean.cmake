file(REMOVE_RECURSE
  "CMakeFiles/fig7_3_tenant_distribution.dir/fig7_3_tenant_distribution.cc.o"
  "CMakeFiles/fig7_3_tenant_distribution.dir/fig7_3_tenant_distribution.cc.o.d"
  "fig7_3_tenant_distribution"
  "fig7_3_tenant_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_3_tenant_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
