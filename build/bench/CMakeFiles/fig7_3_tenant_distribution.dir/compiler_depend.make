# Empty compiler generated dependencies file for fig7_3_tenant_distribution.
# This may be replaced when dependencies are built.
