# Empty compiler generated dependencies file for fig7_4_replication.
# This may be replaced when dependencies are built.
