file(REMOVE_RECURSE
  "CMakeFiles/fig7_4_replication.dir/fig7_4_replication.cc.o"
  "CMakeFiles/fig7_4_replication.dir/fig7_4_replication.cc.o.d"
  "fig7_4_replication"
  "fig7_4_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_4_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
