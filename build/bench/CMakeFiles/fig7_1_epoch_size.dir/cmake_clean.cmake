file(REMOVE_RECURSE
  "CMakeFiles/fig7_1_epoch_size.dir/fig7_1_epoch_size.cc.o"
  "CMakeFiles/fig7_1_epoch_size.dir/fig7_1_epoch_size.cc.o.d"
  "fig7_1_epoch_size"
  "fig7_1_epoch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_1_epoch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
