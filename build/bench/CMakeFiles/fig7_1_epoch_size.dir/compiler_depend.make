# Empty compiler generated dependencies file for fig7_1_epoch_size.
# This may be replaced when dependencies are built.
