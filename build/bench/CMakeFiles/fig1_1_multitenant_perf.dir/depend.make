# Empty dependencies file for fig1_1_multitenant_perf.
# This may be replaced when dependencies are built.
