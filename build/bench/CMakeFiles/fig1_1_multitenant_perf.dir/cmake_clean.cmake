file(REMOVE_RECURSE
  "CMakeFiles/fig1_1_multitenant_perf.dir/fig1_1_multitenant_perf.cc.o"
  "CMakeFiles/fig1_1_multitenant_perf.dir/fig1_1_multitenant_perf.cc.o.d"
  "fig1_1_multitenant_perf"
  "fig1_1_multitenant_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_1_multitenant_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
