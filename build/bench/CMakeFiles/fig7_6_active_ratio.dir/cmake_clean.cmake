file(REMOVE_RECURSE
  "CMakeFiles/fig7_6_active_ratio.dir/fig7_6_active_ratio.cc.o"
  "CMakeFiles/fig7_6_active_ratio.dir/fig7_6_active_ratio.cc.o.d"
  "fig7_6_active_ratio"
  "fig7_6_active_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_6_active_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
