# Empty dependencies file for fig7_6_active_ratio.
# This may be replaced when dependencies are built.
