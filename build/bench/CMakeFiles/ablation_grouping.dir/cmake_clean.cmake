file(REMOVE_RECURSE
  "CMakeFiles/ablation_grouping.dir/ablation_grouping.cc.o"
  "CMakeFiles/ablation_grouping.dir/ablation_grouping.cc.o.d"
  "ablation_grouping"
  "ablation_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
