# Empty compiler generated dependencies file for ablation_grouping.
# This may be replaced when dependencies are built.
