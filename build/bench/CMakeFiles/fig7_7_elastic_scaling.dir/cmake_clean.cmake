file(REMOVE_RECURSE
  "CMakeFiles/fig7_7_elastic_scaling.dir/fig7_7_elastic_scaling.cc.o"
  "CMakeFiles/fig7_7_elastic_scaling.dir/fig7_7_elastic_scaling.cc.o.d"
  "fig7_7_elastic_scaling"
  "fig7_7_elastic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_7_elastic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
