file(REMOVE_RECURSE
  "CMakeFiles/ext_availability.dir/ext_availability.cc.o"
  "CMakeFiles/ext_availability.dir/ext_availability.cc.o.d"
  "ext_availability"
  "ext_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
