# Empty dependencies file for ext_availability.
# This may be replaced when dependencies are built.
