// Reproduces Figure 7.7: lightweight elastic scaling in a tenant-group.
//
// Setup mirrors §7.5: one tenant-group of 4-node tenants (the paper's group
// had 14 members; R = 3, P = 99.9%) serves its normal replayed history. At
// time Y we "manually take over a tenant and continuously submit queries on
// behalf of that tenant". The experiment runs twice — elastic scaling
// disabled (panels a/b) and enabled (panels c/d) — and prints, per 2-hour
// bucket, the group's RT-TTP and the worst normalized query performance
// (1.0 = as fast as in an isolated environment).
//
// Expected shape (paper): without scaling, RT-TTP degrades and stays low
// while over-active periods produce queries 1.2x-1.8x slower; with scaling,
// Thrifty detects the breach (identification takes ~milliseconds here;
// ~2 s in the paper), spends hours of simulated time bulk loading only the
// over-active tenant's data (Table 5.1 economics), and after the new MPPDB
// is ready the RT-TTP returns above P and SLA violations stop.
//
// The two runs (scaling off / scaling on) are independent trials, each with
// its own SimEngine/Cluster/ThriftyService, fanned across --jobs workers.
// The canonical figure uses seed 4242; --seed overrides it.

#include <algorithm>
#include <iostream>
#include <map>
#include <stdexcept>
#include <vector>

#include "bench_util.h"

namespace thrifty {
namespace {

struct TraceBucket {
  double rt_ttp = 1.0;
  double worst_normalized = 0.0;
  int violations = 0;
};

struct RunResult {
  std::map<int, TraceBucket> buckets;  // bucket index (2 h) -> stats
  std::vector<ScalingEvent> events;
  size_t completed = 0;
  size_t violations = 0;
};

constexpr SimDuration kBucket = 2 * kHour;

RunResult RunOnce(bool scaling_enabled, const DeploymentPlan& plan,
                  const std::vector<TenantLog>& logs, TenantId hog,
                  const QueryCatalog& catalog, SimTime takeover,
                  SimTime horizon) {
  SimEngine engine;
  Cluster cluster(static_cast<int>(plan.TotalNodesUsed()) + 8, &engine);
  ServiceOptions options;
  options.replication_factor = plan.replication_factor;
  options.sla_fraction = plan.sla_fraction;
  options.elastic_scaling = scaling_enabled;
  options.scaling.warmup = 24 * kHour;
  options.scaling.check_interval = 10 * kMinute;
  ThriftyService service(&engine, &cluster, &catalog, options);
  if (!service.Deploy(plan).ok()) throw std::runtime_error("Deploy failed");
  if (!service.ScheduleLogReplay(logs).ok()) {
    throw std::runtime_error("ScheduleLogReplay failed");
  }

  RunResult result;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    int bucket = static_cast<int>(outcome.real.finish_time / kBucket);
    TraceBucket& b = result.buckets[bucket];
    double normalized = outcome.NormalizedPerformance();
    b.worst_normalized = std::max(b.worst_normalized, normalized);
    if (normalized > 1.01) {
      ++b.violations;
      ++result.violations;
    }
    ++result.completed;
  });

  // The takeover: near-continuous submission — a new Q1 every 12 seconds
  // (Q1 runs ~9 s on the tenant's 4-node class, so the tenant is ~75%
  // utilized alone and continuously active whenever anything shares its
  // MPPDB), the paper's "continuously submitted queries ... on behalf of
  // that tenant" without driving the instance past saturation.
  TemplateId takeover_query = *catalog.FindByName("TPCH-Q1");
  for (SimTime t = takeover; t < horizon; t += 12 * kSecond) {
    engine.ScheduleAt(t, [&service, hog, takeover_query](SimTime) {
      (void)service.SubmitQuery(hog, takeover_query);
    });
  }

  // RT-TTP probes every 30 minutes (recorded into 2 h buckets as the
  // bucket-end value).
  for (SimTime t = 30 * kMinute; t <= horizon; t += 30 * kMinute) {
    engine.ScheduleAt(t, [&service, &result](SimTime now) {
      auto monitor = service.activity_monitor()->GroupMonitor(0);
      if (monitor.ok()) {
        result.buckets[static_cast<int>(now / kBucket)].rt_ttp =
            (*monitor)->RtTtp(now);
      }
    });
  }

  engine.RunUntil(horizon);
  if (service.scaler() != nullptr) {
    result.events = service.scaler()->events();
  }
  return result;
}

}  // namespace
}  // namespace thrifty

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_7_elastic_scaling";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  options.seed = options.SeedOr(4242);  // canonical figure seed
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();

  // Build a realistic tenant-group: a 4-node-only population grouped under
  // Table 7.1 defaults; take the first group (the paper's example group
  // had 14 tenants requesting 4-node MPPDBs). The canonical figure was
  // produced with seed 4242, so keep that unless --seed is given.
  Rng rng(options.seed);
  SessionLibrary library(&catalog, {4}, /*sessions_per_class=*/25,
                         rng.Fork(1));
  PopulationOptions pop;
  pop.node_sizes = {4};
  Rng pop_rng = rng.Fork(2);
  auto tenants_result = GenerateTenantPopulation(40, pop, &pop_rng);
  if (!tenants_result.ok()) return 1;
  std::vector<TenantSpec> tenants = *tenants_result;
  LogComposerOptions composer_options;
  composer_options.horizon_days = 5;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  auto logs_result = composer.Compose(&tenants, &compose_rng);
  if (!logs_result.ok()) return 1;

  AdvisorOptions advisor_options;  // R=3, P=99.9%, E=10s
  DeploymentAdvisor advisor(advisor_options);
  auto advised = advisor.Advise(tenants, *logs_result, 0,
                                composer.horizon_end());
  if (!advised.ok() || advised->plan.groups.empty()) return 1;

  // Restrict everything to the first tenant-group.
  DeploymentPlan plan;
  plan.replication_factor = advised->plan.replication_factor;
  plan.sla_fraction = advised->plan.sla_fraction;
  plan.groups.push_back(advised->plan.groups[0]);
  plan.groups[0].group_id = 0;
  std::vector<TenantLog> group_logs;
  for (const auto& member : plan.groups[0].tenants) {
    for (const auto& log : *logs_result) {
      if (log.tenant_id == member.id) group_logs.push_back(log);
    }
  }
  TenantId hog = plan.groups[0].tenants[0].id;

  const SimTime takeover = 30 * kHour;  // the paper's time Y
  const SimTime horizon = 5 * kDay;

  PrintBanner(
      "Figure 7.7: Lightweight Elastic Scaling in a Tenant Group",
      "Group of " + std::to_string(plan.groups[0].tenants.size()) +
          " tenants requesting 4-node MPPDBs, R=3, P=99.9%. Tenant " +
          std::to_string(hog) + " is taken over at t=30h (continuous "
          "queries).");

  SweepRunner runner({options.jobs, options.seed});
  auto runs = runner.Map<RunResult>(2, [&](TrialContext& context) {
    return RunOnce(/*scaling_enabled=*/context.trial_index == 1, plan,
                   group_logs, hog, catalog, takeover, horizon);
  });
  const RunResult& off = runs[0];
  const RunResult& on = runs[1];

  TablePrinter table({"t (h)", "RT-TTP off", "worst perf off", "viol off",
                      "RT-TTP on", "worst perf on", "viol on"});
  int last_bucket = static_cast<int>(horizon / kBucket);
  for (int bucket = 12; bucket < last_bucket; ++bucket) {
    const TraceBucket o = off.buckets.count(bucket) ? off.buckets.at(bucket)
                                                    : TraceBucket{};
    const TraceBucket n = on.buckets.count(bucket) ? on.buckets.at(bucket)
                                                   : TraceBucket{};
    table.AddRow({std::to_string(bucket * 2),
                  FormatPercent(o.rt_ttp, 2),
                  FormatDouble(o.worst_normalized, 2),
                  std::to_string(o.violations),
                  FormatPercent(n.rt_ttp, 2),
                  FormatDouble(n.worst_normalized, 2),
                  std::to_string(n.violations)});
  }
  table.Print(std::cout);

  std::cout << "\nScaling disabled: " << off.completed
            << " queries completed, " << off.violations
            << " SLA violations.\n";
  std::cout << "Scaling enabled:  " << on.completed
            << " queries completed, " << on.violations
            << " SLA violations.\n";
  if (!on.events.empty()) {
    const ScalingEvent& e = on.events[0];
    std::cout << "\nScaling event: breach detected at t="
              << FormatDouble(DurationToSeconds(e.detected_time) / 3600, 1)
              << "h (paper's time Z); over-active tenant(s):";
    for (TenantId t : e.tenants) std::cout << " " << t;
    std::cout << "; identification took "
              << FormatDouble(e.identification_seconds * 1000, 1)
              << " ms (paper: ~2 s); new " << e.new_mppdb_nodes
              << "-node MPPDB ready at t="
              << FormatDouble(DurationToSeconds(e.ready_time) / 3600, 1)
              << "h (paper's time U; loading dominates per Table 5.1).\n";
  } else {
    std::cout << "\nWARNING: no scaling event fired.\n";
  }

  report.SetResultsTable(table);
  report.AddMetric("completed_off", static_cast<double>(off.completed));
  report.AddMetric("violations_off", static_cast<double>(off.violations));
  report.AddMetric("completed_on", static_cast<double>(on.completed));
  report.AddMetric("violations_on", static_cast<double>(on.violations));
  report.AddMetric("scaling_events", static_cast<double>(on.events.size()));
  report.Write();
  return 0;
}
