// Reproduces Figure 7.3: consolidation effectiveness, tenant-group size,
// and execution time as the tenant size distribution skew theta varies
// (0.1 ... 0.99; smaller = closer to uniform sizes, larger = more small
// tenants).
//
// Expected shape (paper): the 2-step heuristic is much less sensitive to
// theta than FFD, because step 1 (size-homogeneous initial groups) shields
// it from size-mix effects.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  PrintBanner("Figure 7.3: Varying Tenant Distribution theta",
              "T=5000, R=3, P=99.9%, E=10s, 14-day horizon.");

  TablePrinter table({"theta", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp", "FFD time (s)", "2-step time (s)"});
  for (double theta : {0.1, 0.2, 0.5, 0.8, 0.99}) {
    ExperimentConfig config;
    config.zipf_theta = theta;
    Workload workload = GenerateWorkload(catalog, config);
    auto vectors = EpochizeWorkload(workload, config.epoch_size);
    auto rows = RunBothSolvers(workload, vectors, config.replication_factor,
                               config.sla_fraction);
    table.AddRow({FormatDouble(theta, 2),
                  FormatPercent(rows[0].effectiveness, 1),
                  FormatPercent(rows[1].effectiveness, 1),
                  FormatDouble(rows[0].average_group_size, 1),
                  FormatDouble(rows[1].average_group_size, 1),
                  FormatDouble(rows[0].solve_seconds, 2),
                  FormatDouble(rows[1].solve_seconds, 2)});
    std::cout << "  [theta=" << theta << " done]" << std::endl;
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
