// Reproduces Figure 7.3: consolidation effectiveness, tenant-group size,
// and execution time as the tenant size distribution skew theta varies
// (0.1 ... 0.99; smaller = closer to uniform sizes, larger = more small
// tenants).
//
// Expected shape (paper): the 2-step heuristic is much less sensitive to
// theta than FFD, because step 1 (size-homogeneous initial groups) shields
// it from size-mix effects.
//
// Each theta point (workload generation + both solvers) is an independent
// trial fanned across --jobs workers.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_3_tenant_distribution";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  PrintBanner("Figure 7.3: Varying Tenant Distribution theta",
              "T=5000, R=3, P=99.9%, E=10s, 14-day horizon.");

  const double thetas[] = {0.1, 0.2, 0.5, 0.8, 0.99};
  SweepRunner runner({options.jobs, options.seed});
  auto points = runner.Map<std::vector<SolverRow>>(
      std::size(thetas), [&](TrialContext& context) {
        ExperimentConfig config;
        config.zipf_theta = thetas[context.trial_index];
        config.seed = options.seed;
        config.solver_jobs = options.solver_jobs;
        Workload workload = GenerateWorkload(catalog, config);
        auto vectors = EpochizeWorkload(workload, config.epoch_size);
        return RunBothSolvers(workload, vectors, config.replication_factor,
                              config.sla_fraction, options.solver_jobs);
      });

  TablePrinter table({"theta", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp"});
  TablePrinter timings({"theta", "FFD time (s)", "2-step time (s)"});
  for (size_t p = 0; p < std::size(thetas); ++p) {
    const SolverRow& ffd = points[p][0];
    const SolverRow& two_step = points[p][1];
    std::string theta = FormatDouble(thetas[p], 2);
    table.AddRow({theta, FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1)});
    timings.AddRow({theta, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    report.AddMetric("ffd_solve_seconds_theta" + theta, ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_theta" + theta,
                     two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_theta" + theta,
                     two_step.effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(std::size(thetas)));
  report.Write();
  return 0;
}
