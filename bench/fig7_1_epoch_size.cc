// Reproduces Figure 7.1: consolidation effectiveness, tenant-group size,
// and algorithm execution time as the epoch size E varies
// (0.05 s ... 1800 s; Table 7.1 defaults otherwise; the paper's sweep
// stops at 0.1 s — the 0.05 s point is ours, feasible only because
// epochization streams intervals straight into sparse words).
//
// Expected shape (paper): effectiveness rises as E shrinks and saturates
// around E = 10 s (~81.5% for the 2-step heuristic vs ~73% at E = 1800 s);
// the 2-step heuristic beats FFD at every E; finer epochs cost more
// solver time.
//
// Scale note: the paper's logs span 30 days; this harness uses a 14-day
// horizon (and 3 days for the E <= 0.1 s points, whose epoch count would
// otherwise be 26M+) to bound runtime/memory — effectiveness is
// insensitive to horizon beyond about a week because the weekly pattern
// repeats.
//
// The two workloads are generated once; each E point epochizes and solves
// as an independent trial fanned across --jobs workers. Note each in-flight
// trial holds its own epochized activity vectors, so peak memory grows with
// --jobs (the E = 0.1 s point dominates).
//
// The sparse level-set engine is audited here: the bench records the
// two-step solution's group-level-set footprint and its dense-bitmap
// equivalent per E point, and fails (exit 1) unless the finest point
// compresses at least 4x.
//
// The streamed epochization engine is audited here too: at E = 0.1 s the
// bench epochizes the workload through both pipelines (streamed and the
// legacy dense-intermediate reference), byte-compares the resulting
// vectors, solves the two-step instance from each, and records (i) both
// solution fingerprints (must match) and (ii) an RSS gauge — the peak
// bytes of per-tenant epochization working state, i.e. the dense path's
// full-horizon bitmaps vs the streamed walker's O(1) state — and fails
// unless the streamed gauge is at least 2x below the dense one.
//
// With --warm-start an extra *sequential* two-step
// pass runs after the cold sweep, seeding each point with the previous
// point's plan; per-point solver-time savings and effectiveness deltas are
// recorded as metrics (unlike fig7_5, deltas are not gated here: changing
// E reshapes the problem itself, so carried-over seeds are legitimately
// non-neutral). The cold fingerprinted results table is byte-identical
// with or without either flag.
//
// Extra flags (before the shared ones): --smoke shrinks the scenario to
// T=200 tenants, short horizons, and 3 E points for CI.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_1_epoch_size";
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  if (smoke) {
    config.num_tenants = 200;
    config.horizon_days = 3;
  }
  const Workload workload = GenerateWorkload(catalog, config);
  // The separate 3-day workload only exists to bound the full-scale
  // E = 0.1 s epoch count; the smoke scenario is already 3 days.
  ExperimentConfig short_config = config;
  short_config.horizon_days = 3;
  const Workload short_workload =
      smoke ? Workload{} : GenerateWorkload(catalog, short_config);

  PrintBanner("Figure 7.1: Varying Epoch Size E",
              "T=" + std::to_string(config.num_tenants) +
              ", theta=0.8, R=3, P=99.9%. Average active tenant "
              "ratio: " + FormatPercent(workload.average_active_ratio, 1) +
              " (paper band: 8.9%-12%)." +
              (smoke ? " [--smoke scenario]" : ""));

  struct Point {
    double epoch_seconds;
    const Workload* workload;
    int horizon_days;
  };
  const std::vector<Point> points =
      smoke ? std::vector<Point>{{0.05, &workload, 3},
                                 {0.1, &workload, 3},
                                 {10, &workload, 3},
                                 {600, &workload, 3}}
            : std::vector<Point>{{0.05, &short_workload, 3},
                                 {0.1, &short_workload, 3}, {1, &workload, 14},
                                 {10, &workload, 14},       {30, &workload, 14},
                                 {90, &workload, 14},       {600, &workload, 14},
                                 {1800, &workload, 14}};

  // --- Streamed-epochization audit at E = 0.1 s -----------------------
  // Epochize through both pipelines with an RSS gauge attached, demand
  // byte-identical vectors, and solve the two-step instance from each so
  // the solver-fingerprint identity is recorded, not just implied.
  const Workload& audit_workload = smoke ? workload : short_workload;
  const SimDuration audit_epoch = SecondsToDuration(0.1);
  EpochizeGauge streamed_gauge;
  EpochizeGauge dense_gauge;
  auto audit_streamed =
      EpochizeWorkload(audit_workload, audit_epoch, options.solver_jobs,
                       EpochizePath::kStreamed, &streamed_gauge);
  auto audit_dense =
      EpochizeWorkload(audit_workload, audit_epoch, options.solver_jobs,
                       EpochizePath::kDense, &dense_gauge);
  bool vectors_identical = audit_streamed.size() == audit_dense.size();
  for (size_t i = 0; vectors_identical && i < audit_streamed.size(); ++i) {
    vectors_identical = audit_streamed[i].tenant_id() ==
                            audit_dense[i].tenant_id() &&
                        audit_streamed[i].num_epochs() ==
                            audit_dense[i].num_epochs() &&
                        audit_streamed[i].word_indices() ==
                            audit_dense[i].word_indices() &&
                        audit_streamed[i].word_bits() ==
                            audit_dense[i].word_bits();
  }
  auto solution_fingerprint = [](const GroupingSolution& solution) {
    uint64_t fp = 0xcbf29ce484222325ULL;
    auto fold = [&fp](const std::string& text) {
      for (char c : text) {
        fp ^= static_cast<unsigned char>(c);
        fp *= 0x100000001b3ULL;
      }
    };
    for (const auto& group : solution.groups) {
      std::string piece = std::to_string(group.max_nodes) + "[";
      for (TenantId id : group.tenant_ids) {
        piece += std::to_string(id) + ",";
      }
      piece += "];";
      fold(piece);
    }
    return fp;
  };
  GroupingSolution audit_solution_streamed;
  GroupingSolution audit_solution_dense;
  RunSolver(GroupingSolver::kTwoStep, audit_workload, audit_streamed,
            config.replication_factor, config.sla_fraction,
            options.solver_jobs, nullptr, &audit_solution_streamed);
  RunSolver(GroupingSolver::kTwoStep, audit_workload, audit_dense,
            config.replication_factor, config.sla_fraction,
            options.solver_jobs, nullptr, &audit_solution_dense);
  const uint64_t fp_streamed = solution_fingerprint(audit_solution_streamed);
  const uint64_t fp_dense = solution_fingerprint(audit_solution_dense);
  const bool fingerprints_identical = fp_streamed == fp_dense;
  const double rss_gauge_ratio =
      streamed_gauge.peak_bytes() == 0
          ? 0
          : static_cast<double>(dense_gauge.peak_bytes()) /
                static_cast<double>(streamed_gauge.peak_bytes());
  const bool rss_gauge_ok = vectors_identical && fingerprints_identical &&
                            rss_gauge_ratio >= 2.0;
  audit_streamed.clear();
  audit_dense.clear();
  audit_solution_streamed = GroupingSolution();
  audit_solution_dense = GroupingSolution();

  SweepRunner runner({options.jobs, options.seed});
  auto results = runner.Map<std::vector<SolverRow>>(
      points.size(), [&](TrialContext& context) {
        const Point& point = points[context.trial_index];
        auto vectors =
            EpochizeWorkload(*point.workload,
                             SecondsToDuration(point.epoch_seconds),
                             options.solver_jobs);
        return RunBothSolvers(*point.workload, vectors,
                              config.replication_factor, config.sla_fraction,
                              options.solver_jobs);
      });

  // E labels: one decimal like the paper's axis, except sub-0.1s points
  // keep a second digit so E=0.05 doesn't collide with E=0.1 in tables
  // and metric names.
  auto format_e = [](double e) {
    std::string s = FormatDouble(e, 2);
    if (s.size() > 1 && s.back() == '0') s.pop_back();
    return s;
  };

  TablePrinter table({"E (s)", "horizon (d)", "FFD eff.", "2-step eff.",
                      "FFD grp", "2-step grp"});
  TablePrinter timings({"E (s)", "FFD time (s)", "2-step time (s)"});
  TablePrinter memory({"E (s)", "2-step level-set B", "dense-equiv B",
                       "compression"});
  bool compression_ok = true;
  for (size_t p = 0; p < points.size(); ++p) {
    const SolverRow& ffd = results[p][0];
    const SolverRow& two_step = results[p][1];
    std::string e = format_e(points[p].epoch_seconds);
    table.AddRow({e, std::to_string(points[p].horizon_days),
                  FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1)});
    timings.AddRow({e, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    double ratio =
        two_step.level_set_bytes == 0
            ? 0
            : static_cast<double>(two_step.level_set_dense_bytes) /
                  static_cast<double>(two_step.level_set_bytes);
    memory.AddRow({e, std::to_string(two_step.level_set_bytes),
                   std::to_string(two_step.level_set_dense_bytes),
                   FormatDouble(ratio, 1) + "x"});
    report.AddMetric("ffd_solve_seconds_e" + e, ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_e" + e, two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_e" + e, two_step.effectiveness);
    report.AddMetric("two_step_level_set_bytes_e" + e,
                     static_cast<double>(two_step.level_set_bytes));
    report.AddMetric("two_step_level_set_dense_bytes_e" + e,
                     static_cast<double>(two_step.level_set_dense_bytes));
    report.AddMetric("two_step_level_set_compression_e" + e, ratio);
    // The finest epoch points are where the dense representation hurts
    // most; the sparse engine must undercut it by at least 4x there (both
    // at the new E = 0.05 s point and at the PR 3 E = 0.1 s gate).
    if (p <= 1 && ratio < 4.0) compression_ok = false;
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);
  std::cout << "\nTwo-step group-level-set memory (sparse vs dense "
               "equivalent):\n";
  memory.Print(std::cout);
  if (!compression_ok) {
    std::cout << "\nFAIL: level-set compression at the finest E points is "
                 "below the required 4x\n";
  }

  auto hex64 = [](uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buf);
  };
  std::cout << "\nStreamed-epochization audit at E = 0.1 s (dense reference "
               "vs streamed pipeline):\n"
            << "  vectors byte-identical: "
            << (vectors_identical ? "yes" : "NO") << "\n"
            << "  two-step fingerprint streamed " << hex64(fp_streamed)
            << " vs dense " << hex64(fp_dense)
            << (fingerprints_identical ? " (identical)" : " (MISMATCH)")
            << "\n"
            << "  epochize RSS gauge: dense "
            << std::to_string(dense_gauge.peak_bytes()) << " B vs streamed "
            << std::to_string(streamed_gauge.peak_bytes()) << " B ("
            << FormatDouble(rss_gauge_ratio, 1) << "x lower)\n";
  if (!rss_gauge_ok) {
    std::cout << "\nFAIL: streamed epochization audit (identity or < 2x "
                 "RSS-gauge reduction)\n";
  }
  report.AddMetric("epochize_vectors_identical_e0.1",
                   vectors_identical ? 1 : 0);
  report.AddMetric("epochize_fingerprints_identical_e0.1",
                   fingerprints_identical ? 1 : 0);
  report.AddMetric("epochize_rss_gauge_streamed_bytes_e0.1",
                   static_cast<double>(streamed_gauge.peak_bytes()));
  report.AddMetric("epochize_rss_gauge_dense_bytes_e0.1",
                   static_cast<double>(dense_gauge.peak_bytes()));
  report.AddMetric("epochize_rss_gauge_reduction_e0.1", rss_gauge_ratio);
  report.AddText("two_step_fingerprint_streamed_e0.1", hex64(fp_streamed));
  report.AddText("two_step_fingerprint_dense_e0.1", hex64(fp_dense));

  // --warm-start: a second, deliberately sequential two-step pass. Each
  // point is seeded with the previous point's (warm) plan — the tenant
  // population is identical across points, so group compositions carry
  // over even though epoch counts and horizons differ. Deltas vs the cold
  // rows above are recorded but not gated (see the header comment).
  if (options.warm_start) {
    TablePrinter warm({"E (s)", "cold (s)", "warm (s)", "saved (s)",
                       "eff delta (pp)", "kept", "repaired", "evicted"});
    GroupingSolution previous;
    for (size_t p = 0; p < points.size(); ++p) {
      const Point& point = points[p];
      auto vectors = EpochizeWorkload(*point.workload,
                                      SecondsToDuration(point.epoch_seconds),
                                      options.solver_jobs);
      GroupingSolution current;
      SolverRow row = RunSolver(
          GroupingSolver::kTwoStep, *point.workload, vectors,
          config.replication_factor, config.sla_fraction, options.solver_jobs,
          p == 0 ? nullptr : &previous, &current);
      const SolverRow& cold = results[p][1];
      double saved = cold.solve_seconds - row.solve_seconds;
      double delta_pp = (row.effectiveness - cold.effectiveness) * 100;
      std::string e = format_e(point.epoch_seconds);
      warm.AddRow({e, FormatDouble(cold.solve_seconds, 2),
                   FormatDouble(row.solve_seconds, 2),
                   FormatDouble(saved, 2), FormatDouble(delta_pp, 3),
                   std::to_string(row.warm_groups_kept),
                   std::to_string(row.warm_groups_repaired),
                   std::to_string(row.warm_members_evicted)});
      report.AddMetric("warm_two_step_solve_seconds_e" + e, row.solve_seconds);
      report.AddMetric("warm_time_saving_e" + e, saved);
      report.AddMetric("warm_eff_delta_pp_e" + e, delta_pp);
      report.AddMetric("warm_groups_kept_e" + e,
                       static_cast<double>(row.warm_groups_kept));
      report.AddMetric("warm_groups_dissolved_e" + e,
                       static_cast<double>(row.warm_groups_dissolved));
      report.AddMetric("warm_groups_repaired_e" + e,
                       static_cast<double>(row.warm_groups_repaired));
      report.AddMetric("warm_members_evicted_e" + e,
                       static_cast<double>(row.warm_members_evicted));
      previous = std::move(current);
    }
    std::cout << "\nWarm-started two-step pass (sequential; each point "
                 "seeded by the previous point's plan):\n";
    warm.Print(std::cout);
  }

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(points.size()));
  report.AddMetric("compression_check_passed", compression_ok ? 1 : 0);
  report.AddMetric("epochize_audit_passed", rss_gauge_ok ? 1 : 0);
  report.Write();
  return compression_ok && rss_gauge_ok ? 0 : 1;
}
