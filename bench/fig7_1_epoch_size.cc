// Reproduces Figure 7.1: consolidation effectiveness, tenant-group size,
// and algorithm execution time as the epoch size E varies
// (0.1 s ... 1800 s; Table 7.1 defaults otherwise).
//
// Expected shape (paper): effectiveness rises as E shrinks and saturates
// around E = 10 s (~81.5% for the 2-step heuristic vs ~73% at E = 1800 s);
// the 2-step heuristic beats FFD at every E; finer epochs cost more
// solver time.
//
// Scale note: the paper's logs span 30 days; this harness uses a 14-day
// horizon (and 3 days for the E = 0.1 s point, whose epoch count would
// otherwise be 26M) to bound runtime/memory — effectiveness is insensitive
// to horizon beyond about a week because the weekly pattern repeats.
//
// The two workloads are generated once; each E point epochizes and solves
// as an independent trial fanned across --jobs workers. Note each in-flight
// trial holds its own epochized activity vectors, so peak memory grows with
// --jobs (the E = 0.1 s point dominates).

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_1_epoch_size";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  const Workload workload = GenerateWorkload(catalog, config);
  ExperimentConfig short_config = config;
  short_config.horizon_days = 3;
  const Workload short_workload = GenerateWorkload(catalog, short_config);

  PrintBanner("Figure 7.1: Varying Epoch Size E",
              "T=5000, theta=0.8, R=3, P=99.9%. Average active tenant "
              "ratio: " + FormatPercent(workload.average_active_ratio, 1) +
              " (paper band: 8.9%-12%).");

  struct Point {
    double epoch_seconds;
    const Workload* workload;
    int horizon_days;
  };
  const Point points[] = {
      {0.1, &short_workload, 3}, {1, &workload, 14},   {10, &workload, 14},
      {30, &workload, 14},       {90, &workload, 14},  {600, &workload, 14},
      {1800, &workload, 14},
  };

  SweepRunner runner({options.jobs, options.seed});
  auto results = runner.Map<std::vector<SolverRow>>(
      std::size(points), [&](TrialContext& context) {
        const Point& point = points[context.trial_index];
        auto vectors = EpochizeWorkload(
            *point.workload, SecondsToDuration(point.epoch_seconds));
        return RunBothSolvers(*point.workload, vectors,
                              config.replication_factor, config.sla_fraction,
                              options.solver_jobs);
      });

  TablePrinter table({"E (s)", "horizon (d)", "FFD eff.", "2-step eff.",
                      "FFD grp", "2-step grp"});
  TablePrinter timings({"E (s)", "FFD time (s)", "2-step time (s)"});
  for (size_t p = 0; p < std::size(points); ++p) {
    const SolverRow& ffd = results[p][0];
    const SolverRow& two_step = results[p][1];
    std::string e = FormatDouble(points[p].epoch_seconds, 1);
    table.AddRow({e, std::to_string(points[p].horizon_days),
                  FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1)});
    timings.AddRow({e, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    report.AddMetric("ffd_solve_seconds_e" + e, ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_e" + e, two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_e" + e, two_step.effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(std::size(points)));
  report.Write();
  return 0;
}
