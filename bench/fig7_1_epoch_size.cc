// Reproduces Figure 7.1: consolidation effectiveness, tenant-group size,
// and algorithm execution time as the epoch size E varies
// (0.1 s ... 1800 s; Table 7.1 defaults otherwise).
//
// Expected shape (paper): effectiveness rises as E shrinks and saturates
// around E = 10 s (~81.5% for the 2-step heuristic vs ~73% at E = 1800 s);
// the 2-step heuristic beats FFD at every E; finer epochs cost more
// solver time.
//
// Scale note: the paper's logs span 30 days; this harness uses a 14-day
// horizon (and 3 days for the E = 0.1 s point, whose epoch count would
// otherwise be 26M) to bound runtime/memory — effectiveness is insensitive
// to horizon beyond about a week because the weekly pattern repeats.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  Workload workload = GenerateWorkload(catalog, config);
  ExperimentConfig short_config = config;
  short_config.horizon_days = 3;
  Workload short_workload = GenerateWorkload(catalog, short_config);

  PrintBanner("Figure 7.1: Varying Epoch Size E",
              "T=5000, theta=0.8, R=3, P=99.9%. Average active tenant "
              "ratio: " + FormatPercent(workload.average_active_ratio, 1) +
              " (paper band: 8.9%-12%).");

  struct Point {
    double epoch_seconds;
    const Workload* workload;
    int horizon_days;
  };
  const Point points[] = {
      {0.1, &short_workload, 3}, {1, &workload, 14},   {10, &workload, 14},
      {30, &workload, 14},       {90, &workload, 14},  {600, &workload, 14},
      {1800, &workload, 14},
  };

  TablePrinter table({"E (s)", "horizon (d)", "FFD eff.", "2-step eff.",
                      "FFD grp", "2-step grp", "FFD time (s)",
                      "2-step time (s)"});
  for (const auto& point : points) {
    auto vectors = EpochizeWorkload(*point.workload,
                                    SecondsToDuration(point.epoch_seconds));
    auto rows = RunBothSolvers(*point.workload, vectors,
                               config.replication_factor,
                               config.sla_fraction);
    table.AddRow({FormatDouble(point.epoch_seconds, 1),
                  std::to_string(point.horizon_days),
                  FormatPercent(rows[0].effectiveness, 1),
                  FormatPercent(rows[1].effectiveness, 1),
                  FormatDouble(rows[0].average_group_size, 1),
                  FormatDouble(rows[1].average_group_size, 1),
                  FormatDouble(rows[0].solve_seconds, 2),
                  FormatDouble(rows[1].solve_seconds, 2)});
    std::cout << "  [E=" << point.epoch_seconds << "s done]" << std::endl;
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
