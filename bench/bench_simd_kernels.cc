// SIMD kernel bench: per-word timings of every simd:: primitive at span
// lengths 8 / 64 / 1024 words, dispatched target vs in-process forced
// scalar, plus an end-to-end argmin candidate evaluation
// (GroupLevelSet::EvaluateAddCompare) under both targets.
//
// Two claims are checked, with different strictness:
//  * Parity (always enforced): the dispatched kernels produce bit-identical
//    checksums to the scalar reference, and the argmin returns identical
//    level popcounts. A mismatch fails the bench on any hardware.
//  * Speedup (enforced only when dispatch resolved to avx2/neon): the
//    popcount-family kernels at 1024 words must average >= 2x over forced
//    scalar. On scalar-only hardware (or under THRIFTY_FORCE_SCALAR) the
//    gate is skipped and recorded as such — parity is the portable claim.
//
// The results table holds only deterministic cells (kernel checksums), so
// its fingerprint is machine-independent; timings and the resolved dispatch
// target are reported as metrics/info. The `cpu_avx2` info line records
// whether the runner can execute AVX2 at all — CI reads it to know whether
// the speedup gate was live.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "activity/level_set.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/simd.h"

namespace {

using thrifty::Rng;
using thrifty::simd::Target;

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// One timed primitive: runs `body` (which must fold its result into the
/// returned accumulator so the loop cannot be dead-code-eliminated) enough
/// times to amortize clock overhead, returning ns per processed word.
template <typename Body>
double TimeKernel(size_t words, Body&& body, uint64_t* checksum) {
  // ~16M words of traffic per measurement keeps even the 8-word case well
  // above timer resolution while finishing in milliseconds.
  const int iters = static_cast<int>(16u * 1024 * 1024 / words) + 1;
  uint64_t acc = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) acc += body();
  double secs = Seconds(t0);
  *checksum ^= acc / static_cast<uint64_t>(iters);  // per-call value
  return secs * 1e9 / (static_cast<double>(iters) * words);
}

struct KernelInputs {
  std::vector<uint64_t> a, b, c;
  std::vector<uint64_t> dst;
  std::vector<size_t> delta;
  explicit KernelInputs(size_t n) : a(n), b(n), c(n), dst(n), delta(n, 0) {
    Rng rng(0x5EEDBA5E ^ n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Next();
      b[i] = rng.Next() | rng.Next();  // denser, like low level bitmaps
      c[i] = rng.Next() & rng.Next();  // sparser, like a candidate
    }
  }
};

struct KernelRun {
  std::string name;
  double ns_per_word = 0;
  uint64_t checksum = 0;
};

/// Times every primitive at span length `n` under the currently installed
/// dispatch target.
std::vector<KernelRun> RunAll(size_t n) {
  KernelInputs in(n);
  const auto& k = thrifty::simd::ActiveKernels();
  std::vector<KernelRun> runs;
  KernelRun r;

  r.name = "span_popcount";
  r.ns_per_word = TimeKernel(
      n, [&] { return k.span_popcount(in.a.data(), n); }, &r.checksum);
  runs.push_back(r);

  r = {};
  r.name = "and_popcount";
  r.ns_per_word = TimeKernel(
      n, [&] { return k.and_popcount(in.a.data(), in.b.data(), n); },
      &r.checksum);
  runs.push_back(r);

  r = {};
  r.name = "or_reduce";
  r.ns_per_word = TimeKernel(
      n,
      [&] {
        // Re-seed dst each call so the OR has work to do; the copy is part
        // of both targets' measurement equally.
        std::copy(in.a.begin(), in.a.end(), in.dst.begin());
        return k.or_reduce(in.dst.data(), in.b.data(), n);
      },
      &r.checksum);
  runs.push_back(r);

  r = {};
  r.name = "or_popcount_delta";
  r.ns_per_word = TimeKernel(
      n, [&] { return k.or_popcount_delta(in.a.data(), in.c.data(), n); },
      &r.checksum);
  runs.push_back(r);

  r = {};
  r.name = "or_and_popcount_delta";
  r.ns_per_word = TimeKernel(
      n,
      [&] {
        return k.or_and_popcount_delta(in.a.data(), in.b.data(), in.c.data(),
                                       n);
      },
      &r.checksum);
  runs.push_back(r);

  r = {};
  r.name = "or_and_bcast_store_delta";
  r.ns_per_word = TimeKernel(
      n,
      [&] {
        k.or_and_bcast_store_delta(in.a.data(), in.b.data(),
                                   0xF00DF00DF00DF00DULL, in.dst.data(),
                                   in.delta.data(), n);
        return in.dst[n - 1] + in.delta[0];
      },
      &r.checksum);
  std::fill(in.delta.begin(), in.delta.end(), 0);
  runs.push_back(r);

  r = {};
  r.name = "and_not_bcast_store_delta";
  r.ns_per_word = TimeKernel(
      n,
      [&] {
        k.and_not_bcast_store_delta(in.a.data(), in.b.data(),
                                    0xF00DF00DF00DF00DULL, in.dst.data(),
                                    in.delta.data(), n);
        return in.dst[n - 1] + in.delta[0];
      },
      &r.checksum);
  runs.push_back(r);

  return runs;
}

/// A synthetic group + candidate for the end-to-end argmin measurement:
/// office-hour-style activity blocks over ~120k epochs.
struct ArgminFixture {
  std::vector<thrifty::ActivityVector> members;
  thrifty::ActivityVector candidate;
  thrifty::GroupLevelSet group{0};

  ArgminFixture() {
    const size_t epochs = 120000;
    Rng rng(0xA6A11);
    auto make = [&](int id) {
      thrifty::DynamicBitmap bits(epochs);
      // ~8 active blocks of ~2k epochs each.
      for (int blk = 0; blk < 8; ++blk) {
        size_t begin = rng.NextBounded(epochs);
        bits.SetRange(begin, begin + 500 + rng.NextBounded(3000));
      }
      return thrifty::ActivityVector::FromBitmap(
          static_cast<thrifty::TenantId>(id), bits);
    };
    group = thrifty::GroupLevelSet(epochs);
    for (int id = 1; id <= 48; ++id) {
      members.push_back(make(id));
      group.Add(members.back());
    }
    candidate = make(1000);
  }

  /// Evaluates the candidate against the group; returns pops checksum.
  uint64_t EvalOnce(thrifty::GroupLevelSet::EvalScratch* scratch,
                    std::vector<size_t>* incumbent) const {
    group.EvaluateAddCompare(candidate, *incumbent, scratch);
    uint64_t acc = 0;
    for (size_t p : scratch->pops) acc = acc * 1315423911u + p;
    return acc;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "simd_kernels";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  const Target dispatched = simd::ActiveTarget();
  const bool cpu_avx2 = simd::TargetSupported(Target::kAvx2);
  const bool cpu_neon = simd::TargetSupported(Target::kNeon);

  PrintBanner(
      "SIMD kernel dispatch: " + std::string(simd::TargetName()),
      std::string("per-word kernel timings at 8/64/1024-word spans, "
                  "dispatched vs forced scalar; parity always enforced, "
                  ">=2x speedup gated on a vector target. cpu_avx2=") +
          (cpu_avx2 ? "yes" : "no") + " cpu_neon=" +
          (cpu_neon ? "yes" : "no"));

  const size_t sizes[] = {8, 64, 1024};
  TablePrinter table({"kernel", "words", "checksum_simd", "checksum_scalar",
                      "parity"});

  bool parity_ok = true;
  // Geometric mean of the popcount-family speedups at 1024 words — the
  // spans the argmin actually streams (gathered level rows).
  double speedup_accum = 0;
  int speedup_terms = 0;

  for (size_t n : sizes) {
    simd::SetSimdTargetForTest(dispatched);
    std::vector<KernelRun> vec_runs = RunAll(n);
    simd::SetSimdTargetForTest(Target::kScalar);
    std::vector<KernelRun> sca_runs = RunAll(n);
    simd::SetSimdTargetForTest(dispatched);

    for (size_t i = 0; i < vec_runs.size(); ++i) {
      const KernelRun& v = vec_runs[i];
      const KernelRun& s = sca_runs[i];
      bool match = v.checksum == s.checksum;
      parity_ok = parity_ok && match;
      char vbuf[32], sbuf[32];
      std::snprintf(vbuf, sizeof(vbuf), "%016llx",
                    static_cast<unsigned long long>(v.checksum));
      std::snprintf(sbuf, sizeof(sbuf), "%016llx",
                    static_cast<unsigned long long>(s.checksum));
      table.AddRow({v.name, std::to_string(n), vbuf, sbuf,
                    match ? "ok" : "MISMATCH"});
      std::string key = v.name + "_" + std::to_string(n);
      report.AddMetric(key + "_dispatch_ns_per_word", v.ns_per_word);
      report.AddMetric(key + "_scalar_ns_per_word", s.ns_per_word);
      double speedup = s.ns_per_word / v.ns_per_word;
      report.AddMetric(key + "_speedup", speedup);
      if (n == 1024 && v.name.find("popcount") != std::string::npos) {
        speedup_accum += std::log(speedup);
        ++speedup_terms;
      }
    }
  }

  // --- End-to-end argmin candidate under both targets -------------------
  ArgminFixture fixture;
  std::vector<size_t> incumbent = fixture.group.EvaluateAdd(
      fixture.candidate);  // self-incumbent: full, unpruned evaluation
  GroupLevelSet::EvalScratch scratch;
  uint64_t argmin_checks[2];
  double argmin_us[2];
  const Target argmin_targets[] = {dispatched, Target::kScalar};
  for (int t = 0; t < 2; ++t) {
    simd::SetSimdTargetForTest(argmin_targets[t]);
    uint64_t acc = 0;
    const int iters = 200;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      // Multiplicative fold: an XOR of an even iteration count would
      // self-cancel to zero and make the parity check vacuous.
      acc = acc * 0x9E3779B97F4A7C15ULL + fixture.EvalOnce(&scratch, &incumbent);
    }
    argmin_us[t] = Seconds(t0) * 1e6 / iters;
    argmin_checks[t] = acc;
  }
  simd::SetSimdTargetForTest(dispatched);
  bool argmin_match = argmin_checks[0] == argmin_checks[1];
  parity_ok = parity_ok && argmin_match;
  {
    char vbuf[32], sbuf[32];
    std::snprintf(vbuf, sizeof(vbuf), "%016llx",
                  static_cast<unsigned long long>(argmin_checks[0]));
    std::snprintf(sbuf, sizeof(sbuf), "%016llx",
                  static_cast<unsigned long long>(argmin_checks[1]));
    table.AddRow({"argmin_candidate", "120000-epochs", vbuf, sbuf,
                  argmin_match ? "ok" : "MISMATCH"});
  }
  report.AddMetric("argmin_candidate_dispatch_us", argmin_us[0]);
  report.AddMetric("argmin_candidate_scalar_us", argmin_us[1]);
  report.AddMetric("argmin_candidate_speedup", argmin_us[1] / argmin_us[0]);

  table.Print(std::cout);

  const bool vector_dispatch = dispatched != Target::kScalar;
  double geomean =
      speedup_terms > 0 ? std::exp(speedup_accum / speedup_terms) : 1.0;
  bool speedup_ok = !vector_dispatch || geomean >= 2.0;

  std::cout << "\ndispatch target: " << simd::TargetName() << "\n";
  std::cout << "kernel parity vs scalar reference: "
            << (parity_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "popcount-kernel geomean speedup at 1024 words: " << geomean
            << (vector_dispatch
                    ? (speedup_ok ? "x (>=2x: PASS)" : "x (>=2x: FAIL)")
                    : "x (scalar dispatch: gate skipped)")
            << "\n";

  report.SetResultsTable(table);
  report.AddText("dispatch_target", simd::TargetName());
  report.AddText("cpu_avx2", cpu_avx2 ? "yes" : "no");
  report.AddText("cpu_neon", cpu_neon ? "yes" : "no");
  report.AddMetric("parity_ok", parity_ok ? 1 : 0);
  report.AddMetric("popcount_geomean_speedup_1024", geomean);
  report.AddMetric("speedup_gate_live", vector_dispatch ? 1 : 0);
  report.AddText("speedup_gate",
                 vector_dispatch
                     ? (speedup_ok ? "geomean >= 2x over forced scalar"
                                   : "FAILED: geomean < 2x")
                     : "skipped: dispatch resolved to scalar "
                       "(no vector unit or THRIFTY_FORCE_SCALAR)");
  report.Write();
  return parity_ok && speedup_ok ? 0 : 1;
}
