// Streaming-service soak: the online service mode driven end to end by the
// cppsuite-style harness (tests/soak), gated on byte-deterministic replay.
//
// One live soak runs the full loop — workload generation, tenant event
// stream, violation-budget controller, delta re-consolidation, simulated
// cluster deployment — and records its event log. The log is then replayed
// through fresh services at --solver-jobs 1, 2, and 4 (no cluster, no
// clock) and every fingerprint surface must match the live run byte for
// byte.
//
// The soak gates (exit 1 on failure):
//   - replay identity: event-log, decision, and controller-trajectory
//     fingerprints plus every per-cycle plan fingerprint are identical
//     between the live run and each replay (solver_jobs 1/2/4);
//   - controller band: the P trajectory stays inside the configured clamp
//     band over every cycle, and once feedback flows (cycle 1 on) the
//     observed violation rate stays within 5x of the steering target;
//   - coverage: the cycle count, plan count, and trajectory length agree.
//
// Reported (not gated): cycles/sec of the live soak, per-cycle solver wall
// time, the controller's P trajectory, and the stream fingerprints. The
// full scenario runs 400 tenants over 10 cycles; --smoke (CI) shrinks it
// to the ctest smoke scale.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "soak/soak_harness.h"

namespace {

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buffer);
}

/// True when `replay` reproduces every fingerprint surface of `live`.
bool OutcomesMatch(const thrifty::soak::SoakOutcome& live,
                   const thrifty::soak::SoakOutcome& replay) {
  if (replay.encoded_log != live.encoded_log) return false;
  if (replay.event_log_fingerprint != live.event_log_fingerprint)
    return false;
  if (replay.decision_fingerprint != live.decision_fingerprint) return false;
  if (replay.controller_fingerprint != live.controller_fingerprint)
    return false;
  if (replay.min_sla_fraction != live.min_sla_fraction) return false;
  if (replay.decisions.size() != live.decisions.size()) return false;
  for (size_t i = 0; i < live.decisions.size(); ++i) {
    if (replay.decisions[i].plan_fingerprint !=
        live.decisions[i].plan_fingerprint) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "streaming_soak";
  bool smoke = false;
  PsExecutorMode executor_mode = PsExecutorMode::kVirtualTime;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--executor-mode=", 16) == 0) {
      const char* value = argv[i] + 16;
      if (std::strcmp(value, "virtual") == 0) {
        executor_mode = PsExecutorMode::kVirtualTime;
      } else if (std::strcmp(value, "dense") == 0) {
        executor_mode = PsExecutorMode::kDenseReference;
      } else if (std::strcmp(value, "shared") == 0) {
        executor_mode = PsExecutorMode::kSharedScan;
      } else {
        std::cerr << "bad value for --executor-mode (virtual|dense|shared): "
                  << value << "\n";
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  soak::SoakConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  config.executor_mode = executor_mode;
  if (!smoke) {
    config.initial_tenants = 400;
    config.cycles = 10;
    config.churn_per_cycle = 8;
    config.drift_per_cycle = 5;
    config.horizon_days = 7;
    config.sessions_per_class = 25;
  }

  PrintBanner(
      "Streaming-service soak (online mode, byte-deterministic replay)",
      std::string("T=") + std::to_string(config.initial_tenants) + ", " +
          std::to_string(config.cycles) + " cycles, " +
          std::to_string(config.horizon_days) + "-day history, R=" +
          std::to_string(config.replication_factor) + ", executor=" +
          PsExecutorModeToString(config.executor_mode) +
          (smoke ? " [--smoke scenario]" : ""));

  const double live_start = report.ElapsedSeconds();
  auto live = soak::RunSoak(config);
  if (!live.ok()) {
    std::cout << "live soak failed: " << live.status() << "\n";
    return 1;
  }
  const double live_seconds = report.ElapsedSeconds() - live_start;

  // Replay the recorded log at each solver parallelism; any fingerprint
  // drift is a determinism bug.
  bool replay_identical = true;
  std::vector<double> replay_seconds;
  const std::vector<int> jobs_values = {1, 2, 4};
  for (int jobs : jobs_values) {
    soak::SoakConfig replay_config = config;
    replay_config.solver_jobs = jobs;
    const double start = report.ElapsedSeconds();
    auto replay = soak::ReplaySoak(replay_config, live->encoded_log);
    replay_seconds.push_back(report.ElapsedSeconds() - start);
    if (!replay.ok()) {
      std::cout << "replay (solver-jobs=" << jobs
                << ") failed: " << replay.status() << "\n";
      replay_identical = false;
      continue;
    }
    if (!OutcomesMatch(*live, *replay)) {
      std::cout << "replay (solver-jobs=" << jobs
                << ") diverged from the live run\n";
      replay_identical = false;
    }
  }

  // Cross-executor-mode identity: the planning loop never reads executor
  // state, so a live soak on the shared-scan cluster must produce the same
  // event log, decisions, and controller trajectory as the virtual-time
  // one. Run the live soak again in the "other" mode and compare.
  soak::SoakConfig cross_config = config;
  cross_config.executor_mode =
      config.executor_mode == PsExecutorMode::kSharedScan
          ? PsExecutorMode::kVirtualTime
          : PsExecutorMode::kSharedScan;
  bool cross_mode_identical = false;
  auto cross = soak::RunSoak(cross_config);
  if (!cross.ok()) {
    std::cout << "cross-mode soak ("
              << PsExecutorModeToString(cross_config.executor_mode)
              << ") failed: " << cross.status() << "\n";
  } else {
    cross_mode_identical = OutcomesMatch(*live, *cross);
    if (!cross_mode_identical) {
      std::cout << "cross-mode soak ("
                << PsExecutorModeToString(cross_config.executor_mode)
                << ") diverged from the live run's fingerprints\n";
    }
  }

  // Controller band: P inside the clamp band every cycle; observed
  // violation rate within the steering band once feedback flows.
  bool controller_ok =
      live->controller_trajectory.size() ==
          static_cast<size_t>(config.cycles) &&
      live->observed_violation_rates.size() ==
          static_cast<size_t>(config.cycles);
  if (controller_ok) {
    for (double p : live->controller_trajectory) {
      if (p < config.controller.min_sla_fraction ||
          p > config.controller.max_sla_fraction) {
        controller_ok = false;
      }
    }
    for (size_t c = 1; c < live->observed_violation_rates.size(); ++c) {
      double rate = live->observed_violation_rates[c];
      if (rate <= 0.0 ||
          rate > 5.0 * config.controller.target_violation_rate) {
        controller_ok = false;
      }
    }
  }

  bool coverage_ok =
      live->decisions.size() == static_cast<size_t>(config.cycles) &&
      live->plans.size() == static_cast<size_t>(config.cycles);

  // Per-cycle table: everything here is deterministic (solver wall times
  // go to stdout + metrics only, never into the fingerprinted table).
  TablePrinter table({"cycle", "events", "P", "viol. rate", "groups",
                      "resolved", "untouched", "plan fnv1a"});
  TablePrinter timings({"cycle", "solve ms"});
  for (size_t c = 0; c < live->decisions.size(); ++c) {
    const CycleDecision& decision = live->decisions[c];
    table.AddRow({std::to_string(decision.cycle + 1),
                  std::to_string(decision.events_consumed),
                  FormatDouble(decision.sla_fraction, 6),
                  FormatPercent(live->observed_violation_rates[c], 2),
                  std::to_string(live->plans[c].groups.size()),
                  std::to_string(decision.resolved_groups.size()),
                  std::to_string(decision.untouched_groups.size()),
                  HexFingerprint(decision.plan_fingerprint)});
    timings.AddRow({std::to_string(decision.cycle + 1),
                    FormatDouble(decision.solve_wall_ms, 2)});
    report.AddMetric("sla_fraction_c" + std::to_string(c + 1),
                     decision.sla_fraction);
    report.AddMetric("violation_rate_c" + std::to_string(c + 1),
                     live->observed_violation_rates[c]);
    report.AddMetric("solve_wall_ms_c" + std::to_string(c + 1),
                     decision.solve_wall_ms);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall per cycle (not fingerprinted):\n";
  timings.Print(std::cout);

  const double cycles_per_sec =
      static_cast<double>(config.cycles) / std::max(live_seconds, 1e-9);
  std::cout << "\nLive soak: " << FormatDouble(live_seconds, 3) << " s for "
            << config.cycles << " cycles -> "
            << FormatDouble(cycles_per_sec, 2) << " cycles/s (solver wall "
            << FormatDouble(live->total_solve_wall_ms, 2) << " ms total)\n";
  std::cout << "Event log:  " << live->encoded_log.size() << " bytes, fnv1a "
            << HexFingerprint(live->event_log_fingerprint) << "\n";
  std::cout << "Decisions:  fnv1a " << HexFingerprint(
                   live->decision_fingerprint)
            << (replay_identical ? " (identical at solver-jobs 1/2/4)"
                                 : " (MISMATCH across replays!)")
            << "\n";
  std::cout << "Controller: fnv1a "
            << HexFingerprint(live->controller_fingerprint) << ", min P "
            << FormatDouble(live->min_sla_fraction, 6)
            << (controller_ok ? " (in band)" : " (OUT OF BAND)") << "\n";

  std::cout << "Cross-mode:  "
            << PsExecutorModeToString(config.executor_mode) << " vs "
            << PsExecutorModeToString(cross_config.executor_mode) << " -> "
            << (cross_mode_identical ? "identical fingerprints"
                                     : "MISMATCH")
            << "\n";

  bool ok = replay_identical && controller_ok && coverage_ok &&
            cross_mode_identical;
  if (!ok) {
    std::cout << "\nFAIL:";
    if (!replay_identical) std::cout << " replay-fingerprint-mismatch";
    if (!controller_ok) std::cout << " controller-out-of-band";
    if (!coverage_ok) std::cout << " cycle-coverage";
    if (!cross_mode_identical) std::cout << " cross-executor-mode-mismatch";
    std::cout << "\n";
  }

  report.SetResultsTable(table);
  report.AddText("event_log_fnv1a",
                 HexFingerprint(live->event_log_fingerprint));
  report.AddText("decision_fnv1a",
                 HexFingerprint(live->decision_fingerprint));
  report.AddText("controller_fnv1a",
                 HexFingerprint(live->controller_fingerprint));
  report.AddMetric("cycles", static_cast<double>(config.cycles));
  report.AddMetric("cycles_per_sec", cycles_per_sec);
  report.AddMetric("live_soak_seconds", live_seconds);
  report.AddMetric("solve_wall_ms_total", live->total_solve_wall_ms);
  report.AddMetric("event_log_bytes",
                   static_cast<double>(live->encoded_log.size()));
  report.AddMetric("min_sla_fraction", live->min_sla_fraction);
  for (size_t i = 0; i < jobs_values.size(); ++i) {
    report.AddMetric("replay_seconds_jobs" + std::to_string(jobs_values[i]),
                     replay_seconds[i]);
  }
  report.AddMetric("replay_identity_check_passed", replay_identical ? 1 : 0);
  report.AddMetric("controller_band_check_passed", controller_ok ? 1 : 0);
  report.AddMetric("coverage_check_passed", coverage_ok ? 1 : 0);
  report.AddText("executor_mode", PsExecutorModeToString(config.executor_mode));
  if (cross.ok()) {
    report.AddText("cross_mode_decision_fnv1a",
                   HexFingerprint(cross->decision_fingerprint));
    report.AddText("cross_mode_controller_fnv1a",
                   HexFingerprint(cross->controller_fingerprint));
  }
  report.AddMetric("cross_mode_identity_check_passed",
                   cross_mode_identical ? 1 : 0);
  report.Write();
  return ok ? 0 : 1;
}
