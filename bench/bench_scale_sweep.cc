// Scale sweep: the hierarchical shard -> solve -> merge placement
// (placement/hierarchical.h) at tenant counts the flat two-step solver
// cannot touch — 10k up to 1M tenants on the §7.1 synthetic workload.
//
// Per point the bench composes the workload straight into sparse activity
// vectors (LogComposer::ComposeActivityVectors — the streamed epochizer
// path, so no interval set for the whole population is ever resident),
// solves it hierarchically, verifies the plan, and records the FNV plan
// fingerprint. At the first point it additionally
//   * runs the flat SolveTwoStep and gates the hierarchical effectiveness
//     within 2 percentage points of it, and
//   * re-solves across num_shards x {shard_jobs = solver_jobs} combinations
//     and gates byte-identical plan fingerprints (parallelism and batching
//     must never reach the output).
// The flat solver runs only at points <= --flat-max-tenants (its ~quadratic
// cost is extrapolated and reported for the skipped points), so the results
// table stays a pure function of the flags.
//
// Wall-clock and RSS are metrics, never fingerprinted; on a single-core
// container the shard fan-out speedup is not demonstrable and fingerprint
// identity plus the asymptotic wall-time curve are the claims.
//
// Extra flags (before the shared ones): --smoke (points 10k + 50k, the CI
// tier-1 configuration), --tenants=N[,N...] (explicit point list),
// --flat-max-tenants=N (default 10000; 0 disables the flat baseline),
// --expect-plan=<16 hex> (pins the first point's plan fingerprint; CI uses
// one constant across the AVX2 and forced-scalar legs to prove the plan is
// identical on both dispatch targets).

#include <cctype>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "placement/hierarchical.h"
#include "placement/two_step.h"
#include "workload/log_generator.h"
#include "workload/tenant_population.h"

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

uint64_t FoldBytes(uint64_t hash, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string Hex(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// Strict integer parse (whole string, base 10); the shared CLI contract
/// is that a malformed flag value exits 2 up front, never a silent 0.
bool ParseInt(const char* text, int* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < INT_MIN || value > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool IsHex16(const std::string& text) {
  if (text.size() != 16) return false;
  for (char c : text) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;
  const std::string bench_name = "scale_sweep";

  std::vector<int> points = {10000, 50000, 100000, 1000000};
  int flat_max_tenants = 10000;
  std::string expect_plan;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      points = {10000, 50000};
    } else if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      points.clear();
      std::istringstream ss(argv[i] + 10);
      std::string n;
      bool valid = true;
      while (std::getline(ss, n, ',')) {
        int value = 0;
        valid = valid && ParseInt(n.c_str(), &value) && value > 0;
        points.push_back(value);
      }
      if (points.empty() || !valid) {
        std::cerr << "--tenants needs a comma-separated list of positive "
                     "tenant counts\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--flat-max-tenants=", 19) == 0) {
      if (!ParseInt(argv[i] + 19, &flat_max_tenants) ||
          flat_max_tenants < 0) {
        std::cerr << "--flat-max-tenants needs a nonnegative integer "
                     "(0 disables the flat baseline)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--expect-plan=", 14) == 0) {
      expect_plan = argv[i] + 14;
      if (!IsHex16(expect_plan)) {
        std::cerr << "--expect-plan needs a 16-hex-digit fingerprint\n";
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  std::string points_text;
  for (int n : points) points_text += std::to_string(n) + " ";
  PrintBanner("Scale sweep: hierarchical placement 10^4 -> 10^6 tenants",
              "points: " + points_text +
                  "| flat baseline at <= " + std::to_string(flat_max_tenants) +
                  " tenants; parallelism-identity cross at the first point. "
                  "Plan fingerprints must be identical at every num_shards "
                  "x shard_jobs x solver_jobs.");

  QueryCatalog catalog = QueryCatalog::Default();
  TablePrinter table({"tenants", "solver", "config", "groups", "nodes",
                      "requested", "effectiveness", "fingerprint"});

  bool all_ok = true;
  double last_flat_seconds = 0;
  int last_flat_tenants = 0;
  std::string first_plan_fp;

  for (size_t point = 0; point < points.size(); ++point) {
    const int num_tenants = points[point];
    const std::string suffix = "_" + std::to_string(num_tenants);

    // --- Workload: population + streamed compose->epochize ------------
    ExperimentConfig config;
    config.num_tenants = num_tenants;
    config.seed = options.SeedOr(42);
    auto t0 = std::chrono::steady_clock::now();
    Rng rng(config.seed);
    SessionLibrary library(&catalog, {2, 4, 8, 16, 32},
                           config.sessions_per_class, rng.Fork(1));
    PopulationOptions pop;
    pop.zipf_theta = config.zipf_theta;
    Rng pop_rng = rng.Fork(2);
    auto tenants =
        GenerateTenantPopulation(config.num_tenants, pop, &pop_rng);
    if (!tenants.ok()) {
      std::cerr << "population generation failed: " << tenants.status()
                << "\n";
      return 1;
    }
    LogComposerOptions composer_options = config.composer;
    composer_options.horizon_days = config.horizon_days;
    composer_options.jobs = options.solver_jobs;
    LogComposer composer(&library, composer_options);
    EpochConfig epochs;
    epochs.epoch_size = config.epoch_size;
    epochs.begin = 0;
    epochs.end = composer.horizon_end();
    Rng compose_rng = rng.Fork(3);
    EpochizeGauge gauge;
    auto vectors = composer.ComposeActivityVectors(&*tenants, &compose_rng,
                                                   epochs, &gauge);
    if (!vectors.ok()) {
      std::cerr << "composition failed: " << vectors.status() << "\n";
      return 1;
    }
    report.AddMetric("workload_seconds" + suffix, Seconds(t0));
    report.AddMetric("epochize_peak_bytes" + suffix,
                     static_cast<double>(gauge.peak_bytes()));

    uint64_t workload_fp = kFnvBasis;
    for (size_t i = 0; i < vectors->size(); ++i) {
      const auto& v = (*vectors)[i];
      int32_t header[2] = {(*tenants)[i].id,
                           (*tenants)[i].time_zone_offset_hours};
      workload_fp = FoldBytes(workload_fp, header, sizeof(header));
      workload_fp = FoldBytes(workload_fp, v.word_indices().data(),
                              v.word_indices().size() * sizeof(uint32_t));
      workload_fp = FoldBytes(workload_fp, v.word_bits().data(),
                              v.word_bits().size() * sizeof(uint64_t));
    }

    auto problem = MakePackingProblem(*tenants, *vectors,
                                      config.replication_factor,
                                      config.sla_fraction);
    if (!problem.ok()) {
      std::cerr << "problem construction failed: " << problem.status()
                << "\n";
      return 1;
    }
    int64_t requested = 0;
    for (const auto& item : problem->items) requested += item.nodes;
    table.AddRow({std::to_string(num_tenants), "workload", "-", "-", "-",
                  std::to_string(requested), "-", Hex(workload_fp)});

    auto PlanFp = [](const GroupingSolution& solution) {
      uint64_t fp = kFnvBasis;
      for (const auto& group : solution.groups) {
        std::ostringstream os;
        os << group.max_nodes << "[";
        for (TenantId id : group.tenant_ids) os << id << ",";
        os << "];";
        const std::string text = os.str();
        fp = FoldBytes(fp, text.data(), text.size());
      }
      return fp;
    };

    // --- Hierarchical solve (default partition, CLI-driven workers) ---
    HierarchicalOptions hier_options;
    hier_options.shard_jobs = options.jobs;
    hier_options.solver_jobs = options.solver_jobs;
    HierarchicalStats stats;
    t0 = std::chrono::steady_clock::now();
    auto hier = SolveHierarchical(*problem, hier_options, &stats);
    const double hier_seconds = Seconds(t0);
    if (!hier.ok()) {
      std::cerr << "hierarchical solve failed: " << hier.status() << "\n";
      return 1;
    }
    auto verified = VerifySolution(*problem, *hier);
    if (!verified.ok()) {
      std::cerr << "hierarchical plan failed verification: " << verified
                << "\n";
      all_ok = false;
    }
    const double hier_eff =
        hier->ConsolidationEffectiveness(config.replication_factor,
                                         requested);
    const uint64_t hier_fp = PlanFp(*hier);
    if (point == 0) first_plan_fp = Hex(hier_fp);
    table.AddRow({std::to_string(num_tenants), "hierarchical", "default",
                  std::to_string(hier->groups.size()),
                  std::to_string(
                      hier->NodesUsed(config.replication_factor)),
                  std::to_string(requested), FormatDouble(hier_eff, 4),
                  Hex(hier_fp)});
    report.AddMetric("hier_seconds" + suffix, hier_seconds);
    report.AddMetric("hier_signature_seconds" + suffix,
                     stats.signature_seconds);
    report.AddMetric("hier_shard_solve_seconds" + suffix,
                     stats.shard_solve_seconds);
    report.AddMetric("hier_merge_seconds" + suffix, stats.merge_seconds);
    report.AddMetric("hier_shards" + suffix,
                     static_cast<double>(stats.num_logical_shards));
    report.AddMetric("hier_groups_reopened" + suffix,
                     static_cast<double>(stats.groups_reopened));
    report.AddMetric("hier_merge_pool_tenants" + suffix,
                     static_cast<double>(stats.merge_pool_tenants));
    report.AddMetric("peak_rss_after_bytes" + suffix,
                     static_cast<double>(PeakRssBytes()));
    std::cout << "n=" << num_tenants << " hierarchical: "
              << hier->groups.size() << " groups, "
              << hier->NodesUsed(config.replication_factor) << "/"
              << requested << " nodes, eff "
              << FormatDouble(hier_eff, 4) << ", "
              << FormatDouble(hier_seconds, 1) << "s ("
              << stats.num_logical_shards << " shards), plan "
              << Hex(hier_fp) << "\n";

    // --- Flat baseline (bounded by --flat-max-tenants) -----------------
    if (num_tenants <= flat_max_tenants) {
      t0 = std::chrono::steady_clock::now();
      auto flat = SolveTwoStep(*problem);
      const double flat_seconds = Seconds(t0);
      if (!flat.ok()) {
        std::cerr << "flat solve failed: " << flat.status() << "\n";
        return 1;
      }
      if (!VerifySolution(*problem, *flat).ok()) all_ok = false;
      const double flat_eff =
          flat->ConsolidationEffectiveness(config.replication_factor,
                                           requested);
      table.AddRow({std::to_string(num_tenants), "flat", "flat",
                    std::to_string(flat->groups.size()),
                    std::to_string(
                        flat->NodesUsed(config.replication_factor)),
                    std::to_string(requested), FormatDouble(flat_eff, 4),
                    Hex(PlanFp(*flat))});
      report.AddMetric("flat_seconds" + suffix, flat_seconds);
      last_flat_seconds = flat_seconds;
      last_flat_tenants = num_tenants;

      const double gap_pp = (flat_eff - hier_eff) * 100.0;
      report.AddMetric("effectiveness_gap_pp" + suffix, gap_pp);
      const bool within = gap_pp <= 2.0;
      report.AddMetric("effectiveness_within_2pp" + suffix, within ? 1 : 0);
      std::cout << "n=" << num_tenants << " flat: eff "
                << FormatDouble(flat_eff, 4) << " in "
                << FormatDouble(flat_seconds, 1) << "s; gap "
                << FormatDouble(gap_pp, 2) << "pp ("
                << (within ? "PASS" : "FAIL") << " <= 2pp), speedup "
                << FormatDouble(flat_seconds / hier_seconds, 1) << "x\n";
      if (!within) all_ok = false;
    } else if (last_flat_tenants > 0) {
      // The flat solver is ~quadratic in the dominant size class; report
      // what this point would have cost it.
      const double ratio = static_cast<double>(num_tenants) /
                           static_cast<double>(last_flat_tenants);
      report.AddMetric("flat_predicted_seconds" + suffix,
                       last_flat_seconds * ratio * ratio);
    }

    // --- Parallelism identity cross (first point only) -----------------
    if (point == 0) {
      bool identical = true;
      for (int num_shards : {1, 4, 16}) {
        for (int jobs : {1, 2, 4}) {
          HierarchicalOptions cross = hier_options;
          cross.num_shards = num_shards;
          cross.shard_jobs = jobs;
          cross.solver_jobs = jobs;
          auto solution = SolveHierarchical(*problem, cross);
          if (!solution.ok()) {
            std::cerr << "cross solve failed: " << solution.status() << "\n";
            return 1;
          }
          const uint64_t fp = PlanFp(*solution);
          const std::string config_text =
              "ns=" + std::to_string(num_shards) + ",j=" +
              std::to_string(jobs);
          table.AddRow({std::to_string(num_tenants), "hierarchical",
                        config_text, std::to_string(solution->groups.size()),
                        std::to_string(
                            solution->NodesUsed(config.replication_factor)),
                        std::to_string(requested),
                        FormatDouble(hier_eff, 4), Hex(fp)});
          if (fp != hier_fp) {
            identical = false;
            std::cout << "plan fingerprint drift at " << config_text << ": "
                      << Hex(fp) << " != " << Hex(hier_fp) << "\n";
          }
        }
      }
      std::cout << "plan fingerprints identical across num_shards x jobs: "
                << (identical ? "PASS" : "FAIL") << "\n";
      report.AddMetric("fingerprints_identical_across_parallelism",
                       identical ? 1 : 0);
      if (!identical) all_ok = false;
    }
  }

  if (!expect_plan.empty()) {
    const bool match = expect_plan == first_plan_fp;
    std::cout << "first-point plan fingerprint matches --expect-plan: "
              << (match ? "PASS" : "FAIL") << " (" << first_plan_fp << ")\n";
    report.AddMetric("expected_plan_fingerprint_match", match ? 1 : 0);
    if (!match) all_ok = false;
  }

  report.AddText(
      "note",
      "Single-core container: shard_jobs/solver_jobs speedups are not "
      "demonstrable here; the claims are the asymptotic wall-time curve vs "
      "the flat solver and byte-identical plan fingerprints at every "
      "num_shards x shard_jobs x solver_jobs. Flat rows exist only at "
      "points <= --flat-max-tenants so the table is a pure function of the "
      "flags.");
  report.SetResultsTable(table);
  report.Write();
  return all_ok ? 0 : 1;
}
