// Extension experiment (§4.4, R2): availability under node failures.
//
// "Node failure is handled directly by the MPPDB. All major MPPDB products
// can still stay online even with (some) node failure. Thrifty will replace
// a failed node by starting a new node upon receiving node failure
// notification." This bench injects failures into a serving group and
// reports: no query is lost, queries on the degraded MPPDB slow down
// proportionally to the lost nodes, replacement restores full speed after
// one node-start time, and Algorithm 1 keeps routing around busy replicas
// throughout.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  SimEngine engine;
  Cluster cluster(16, &engine);

  DeploymentPlan plan;
  plan.replication_factor = 3;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  for (TenantId id = 0; id < 6; ++id) {
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 4;
    spec.data_gb = 400;
    group.tenants.push_back(spec);
  }
  group.cluster.mppdb_nodes = {4, 4, 4};
  plan.groups.push_back(group);

  ServiceOptions options;
  options.replication_factor = 3;
  options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, options);
  if (!service.Deploy(plan).ok()) return 1;

  size_t degraded = 0;
  RunningStats normalized;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    double n = outcome.NormalizedPerformance();
    normalized.Add(n);
    if (n > 1.01) ++degraded;
  });

  // Steady single-tenant load: one Q1 every 4 minutes from a rotating
  // tenant (at most one active at a time -> always a dedicated MPPDB).
  TemplateId q1 = *catalog.FindByName("TPCH-Q1");
  const SimTime horizon = 8 * kHour;
  int turn = 0;
  for (SimTime t = 0; t < horizon; t += 4 * kMinute) {
    TenantId tenant = turn++ % 6;
    engine.ScheduleAt(t, [&service, tenant, q1](SimTime) {
      (void)service.SubmitQuery(tenant, q1);
    });
  }

  // Fail one node of MPPDB_0 at t=2h and two nodes of MPPDB_1 at t=4h;
  // auto-replacement is on.
  engine.ScheduleAt(2 * kHour, [&cluster](SimTime) {
    (void)cluster.InjectNodeFailure(0);
  });
  engine.ScheduleAt(4 * kHour, [&cluster](SimTime) {
    (void)cluster.InjectNodeFailure(1);
    (void)cluster.InjectNodeFailure(1);
  });

  engine.RunUntil(horizon);

  PrintBanner("Extension: availability under node failures (§4.4)",
              "Three failures injected across two MPPDBs of a serving\n"
              "group; replacements start automatically.");
  size_t total = static_cast<size_t>(normalized.count());
  std::cout << "Queries completed:          " << total << " of "
            << horizon / (4 * kMinute) << " submitted\n"
            << "Queries slowed by failures: " << degraded << " ("
            << FormatPercent(static_cast<double>(degraded) /
                                 static_cast<double>(total),
                             1)
            << ")\n"
            << "Worst normalized latency:   "
            << FormatDouble(normalized.max(), 2)
            << " (expect ~1.33 for a 4-node MPPDB missing 1 node,\n"
            << "                             ~2.0 missing 2)\n"
            << "Failures injected/repaired: " << cluster.failures_injected()
            << "\n"
            << "SLA attainment overall:     "
            << FormatPercent(service.metrics().SlaAttainment(), 1) << "\n";
  bool ok = total == service.metrics().completed && degraded > 0 &&
            normalized.max() < 2.2;
  std::cout << (ok ? "\nAvailability behaviour as expected.\n"
                   : "\nWARNING: unexpected availability behaviour!\n");
  return ok ? 0 : 1;
}
