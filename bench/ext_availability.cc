// Extension experiment (§4.4, R2): availability under node failures.
//
// "Node failure is handled directly by the MPPDB. All major MPPDB products
// can still stay online even with (some) node failure. Thrifty will replace
// a failed node by starting a new node upon receiving node failure
// notification." This bench injects failures into a serving group and
// reports: no query is lost, queries on the degraded MPPDB slow down
// proportionally to the lost nodes, replacement restores full speed after
// one node-start time, and Algorithm 1 keeps routing around busy replicas
// throughout.
//
// The scenario is replicated 8 times as independent trials fanned across
// --jobs workers: trial 0 uses the canonical failure times (2h and 4h),
// the other trials jitter the failure times by up to +/-30 minutes drawn
// from the trial's deterministic Rng stream, checking that the availability
// behaviour is robust to when failures land, not an artefact of one timing.

#include <iostream>
#include <stdexcept>

#include "bench_util.h"

namespace thrifty {
namespace {

struct TrialResult {
  size_t submitted = 0;
  size_t completed = 0;
  size_t degraded = 0;
  double worst_normalized = 0;
  double sla_attainment = 0;
  int failures_injected = 0;
  bool ok = false;
};

TrialResult RunScenario(const QueryCatalog& catalog, SimTime first_failure,
                        SimTime second_failure) {
  SimEngine engine;
  Cluster cluster(16, &engine);

  DeploymentPlan plan;
  plan.replication_factor = 3;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  for (TenantId id = 0; id < 6; ++id) {
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 4;
    spec.data_gb = 400;
    group.tenants.push_back(spec);
  }
  group.cluster.mppdb_nodes = {4, 4, 4};
  plan.groups.push_back(group);

  ServiceOptions options;
  options.replication_factor = 3;
  options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, options);
  if (!service.Deploy(plan).ok()) throw std::runtime_error("Deploy failed");

  TrialResult result;
  RunningStats normalized;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    double n = outcome.NormalizedPerformance();
    normalized.Add(n);
    if (n > 1.01) ++result.degraded;
  });

  // Steady single-tenant load: one Q1 every 4 minutes from a rotating
  // tenant (at most one active at a time -> always a dedicated MPPDB).
  TemplateId q1 = *catalog.FindByName("TPCH-Q1");
  const SimTime horizon = 8 * kHour;
  int turn = 0;
  for (SimTime t = 0; t < horizon; t += 4 * kMinute) {
    TenantId tenant = turn++ % 6;
    engine.ScheduleAt(t, [&service, tenant, q1](SimTime) {
      (void)service.SubmitQuery(tenant, q1);
    });
    ++result.submitted;
  }

  // Fail one node of MPPDB_0 at the first failure time and two nodes of
  // MPPDB_1 at the second; auto-replacement is on.
  engine.ScheduleAt(first_failure, [&cluster](SimTime) {
    (void)cluster.InjectNodeFailure(0);
  });
  engine.ScheduleAt(second_failure, [&cluster](SimTime) {
    (void)cluster.InjectNodeFailure(1);
    (void)cluster.InjectNodeFailure(1);
  });

  engine.RunUntil(horizon);

  result.completed = static_cast<size_t>(normalized.count());
  result.worst_normalized = normalized.max();
  result.sla_attainment = service.metrics().SlaAttainment();
  result.failures_injected = cluster.failures_injected();
  result.ok = result.completed == service.metrics().completed &&
              result.degraded > 0 && result.worst_normalized < 2.2;
  return result;
}

}  // namespace
}  // namespace thrifty

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "ext_availability";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();

  constexpr size_t kTrials = 8;
  SweepRunner runner({options.jobs, options.seed});
  auto trials = runner.Map<TrialResult>(kTrials, [&](TrialContext& context) {
    SimTime first = 2 * kHour;
    SimTime second = 4 * kHour;
    if (context.trial_index > 0) {
      first += context.rng.NextInt(-30, 30) * kMinute;
      second += context.rng.NextInt(-30, 30) * kMinute;
    }
    return RunScenario(catalog, first, second);
  });

  PrintBanner("Extension: availability under node failures (§4.4)",
              "Three failures injected across two MPPDBs of a serving\n"
              "group; replacements start automatically. Trial 0 uses the\n"
              "canonical 2h/4h failure times; trials 1-7 jitter them.");

  TablePrinter table({"trial", "completed/submitted", "degraded",
                      "worst norm.", "failures", "SLA att.", "ok"});
  bool all_ok = true;
  for (size_t i = 0; i < kTrials; ++i) {
    const TrialResult& t = trials[i];
    all_ok = all_ok && t.ok;
    table.AddRow({i == 0 ? "0 (canonical)" : std::to_string(i),
                  std::to_string(t.completed) + "/" +
                      std::to_string(t.submitted),
                  std::to_string(t.degraded) + " (" +
                      FormatPercent(static_cast<double>(t.degraded) /
                                        static_cast<double>(t.completed),
                                    1) +
                      ")",
                  FormatDouble(t.worst_normalized, 2),
                  std::to_string(t.failures_injected),
                  FormatPercent(t.sla_attainment, 1), t.ok ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nWorst normalized latency expectation: ~1.33 for a 4-node "
               "MPPDB missing 1 node, ~2.0 missing 2.\n";
  std::cout << (all_ok ? "\nAvailability behaviour as expected in all "
                         "trials.\n"
                       : "\nWARNING: unexpected availability behaviour!\n");

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(kTrials));
  report.AddMetric("all_ok", all_ok ? 1.0 : 0.0);
  report.AddMetric("canonical_worst_normalized", trials[0].worst_normalized);
  report.Write();
  return all_ok ? 0 : 1;
}
