// Reproduces Figure 7.6: consolidation effectiveness under higher active
// tenant ratios (§7.4) — the log-composition modifications:
//   (-)  default: 7 time zones, lunch hour          (paper ratio 11.9%)
//   (1)  offsets {+0, +3} only (all North America)  (paper ratio 25.1%)
//   (2)  (1) plus no lunch hour                     (paper ratio 30.7%)
//   (3)  all +0 (west coast) and no lunch hour      (paper ratio 34.4%)
//
// Expected shape (paper): effectiveness of the 2-step heuristic drops from
// ~81% to ~35% as concentration rises, and the average group shrinks to
// ~5 tenants (R=3 -> three MPPDBs serve five tenants).
//
// The paper's rising "active tenant ratio" numbers correspond to the
// conditional (busy-epoch) ratio: the time-average ratio is invariant to
// concentrating the same activity into fewer clock hours.
//
// Each scenario (workload generation + ratio computation + both solvers)
// is an independent trial fanned across --jobs workers.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_6_active_ratio";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  PrintBanner("Figure 7.6: Higher Active Tenant Ratio",
              "T=5000, theta=0.8, R=3, P=99.9%, E=10s, 14-day horizon.");

  struct Scenario {
    const char* name;
    std::vector<int> offsets;
    bool lunch;
  };
  const Scenario scenarios[] = {
      {"default (7 zones)", {0, 3, 5, 8, 16, 17, 19}, true},
      {"(1) offsets {0,3}", {0, 3}, true},
      {"(2) {0,3}, no lunch", {0, 3}, false},
      {"(3) all +0, no lunch", {0}, false},
  };

  struct ScenarioResult {
    double busy_ratio = 0;
    std::vector<SolverRow> rows;
  };
  SweepRunner runner({options.jobs, options.seed});
  auto results = runner.Map<ScenarioResult>(
      std::size(scenarios), [&](TrialContext& context) {
        const Scenario& scenario = scenarios[context.trial_index];
        ExperimentConfig config;
        config.seed = options.seed;
        config.solver_jobs = options.solver_jobs;
        config.composer.offset_hours = scenario.offsets;
        config.composer.lunch_break = scenario.lunch;
        Workload workload = GenerateWorkload(catalog, config);

        // Conditional (busy-epoch) active-tenant ratio of the composed logs.
        std::vector<TenantLog> pseudo_logs(workload.activity.size());
        for (size_t i = 0; i < workload.activity.size(); ++i) {
          pseudo_logs[i].tenant_id = workload.tenants[i].id;
          for (const auto& iv : workload.activity[i].intervals()) {
            pseudo_logs[i].entries.push_back({iv.begin, 0, iv.length(), -1});
          }
        }
        ScenarioResult result;
        result.busy_ratio = ConditionalActiveTenantRatio(
            pseudo_logs, 0, workload.horizon_end, config.epoch_size);

        auto vectors = EpochizeWorkload(workload, config.epoch_size);
        result.rows = RunBothSolvers(workload, vectors,
                                     config.replication_factor,
                                     config.sla_fraction,
                                     options.solver_jobs);
        return result;
      });

  TablePrinter table({"scenario", "busy-epoch ratio", "FFD eff.",
                      "2-step eff.", "FFD grp", "2-step grp"});
  TablePrinter timings({"scenario", "FFD time (s)", "2-step time (s)"});
  for (size_t s = 0; s < std::size(scenarios); ++s) {
    const ScenarioResult& result = results[s];
    table.AddRow({scenarios[s].name, FormatPercent(result.busy_ratio, 1),
                  FormatPercent(result.rows[0].effectiveness, 1),
                  FormatPercent(result.rows[1].effectiveness, 1),
                  FormatDouble(result.rows[0].average_group_size, 1),
                  FormatDouble(result.rows[1].average_group_size, 1)});
    timings.AddRow({scenarios[s].name,
                    FormatDouble(result.rows[0].solve_seconds, 2),
                    FormatDouble(result.rows[1].solve_seconds, 2)});
    report.AddMetric("busy_ratio_s" + std::to_string(s), result.busy_ratio);
    report.AddMetric("two_step_effectiveness_s" + std::to_string(s),
                     result.rows[1].effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(std::size(scenarios)));
  report.Write();
  return 0;
}
