// Reproduces Figure 7.6: consolidation effectiveness under higher active
// tenant ratios (§7.4) — the log-composition modifications:
//   (-)  default: 7 time zones, lunch hour          (paper ratio 11.9%)
//   (1)  offsets {+0, +3} only (all North America)  (paper ratio 25.1%)
//   (2)  (1) plus no lunch hour                     (paper ratio 30.7%)
//   (3)  all +0 (west coast) and no lunch hour      (paper ratio 34.4%)
//
// Expected shape (paper): effectiveness of the 2-step heuristic drops from
// ~81% to ~35% as concentration rises, and the average group shrinks to
// ~5 tenants (R=3 -> three MPPDBs serve five tenants).
//
// The paper's rising "active tenant ratio" numbers correspond to the
// conditional (busy-epoch) ratio: the time-average ratio is invariant to
// concentrating the same activity into fewer clock hours.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  PrintBanner("Figure 7.6: Higher Active Tenant Ratio",
              "T=5000, theta=0.8, R=3, P=99.9%, E=10s, 14-day horizon.");

  struct Scenario {
    const char* name;
    std::vector<int> offsets;
    bool lunch;
  };
  const Scenario scenarios[] = {
      {"default (7 zones)", {0, 3, 5, 8, 16, 17, 19}, true},
      {"(1) offsets {0,3}", {0, 3}, true},
      {"(2) {0,3}, no lunch", {0, 3}, false},
      {"(3) all +0, no lunch", {0}, false},
  };

  TablePrinter table({"scenario", "busy-epoch ratio", "FFD eff.",
                      "2-step eff.", "FFD grp", "2-step grp"});
  for (const auto& scenario : scenarios) {
    ExperimentConfig config;
    config.composer.offset_hours = scenario.offsets;
    config.composer.lunch_break = scenario.lunch;
    Workload workload = GenerateWorkload(catalog, config);

    // Conditional (busy-epoch) active-tenant ratio of the composed logs.
    std::vector<TenantLog> pseudo_logs(workload.activity.size());
    for (size_t i = 0; i < workload.activity.size(); ++i) {
      pseudo_logs[i].tenant_id = workload.tenants[i].id;
      for (const auto& iv : workload.activity[i].intervals()) {
        pseudo_logs[i].entries.push_back(
            {iv.begin, 0, iv.length(), -1});
      }
    }
    double ratio = ConditionalActiveTenantRatio(pseudo_logs, 0,
                                                workload.horizon_end,
                                                config.epoch_size);

    auto vectors = EpochizeWorkload(workload, config.epoch_size);
    auto rows = RunBothSolvers(workload, vectors, config.replication_factor,
                               config.sla_fraction);
    table.AddRow({scenario.name, FormatPercent(ratio, 1),
                  FormatPercent(rows[0].effectiveness, 1),
                  FormatPercent(rows[1].effectiveness, 1),
                  FormatDouble(rows[0].average_group_size, 1),
                  FormatDouble(rows[1].average_group_size, 1)});
    std::cout << "  [" << scenario.name << " done]" << std::endl;
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
