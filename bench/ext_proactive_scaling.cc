// Extension experiment (§5.1 discussion): reactive vs proactive elastic
// scaling.
//
// Same setup as the Fig 7.7 scenario at small scale: a tenant-group on one
// MPPDB (R = 1) whose member goes rogue with a *gradually increasing*
// query rate (so a trend is visible before the hard breach). The reactive
// scaler acts when the 24h RT-TTP has already fallen below P; the proactive
// scaler acts when a sustained decline is predicted to cross P within its
// lead time, buying back part of the hours-long MPPDB preparation.
//
// Reported: detection time, new-MPPDB-ready time, and SLA violations for
// each policy. The two policy runs are independent trials (each with its
// own SimEngine/Cluster/ThriftyService) fanned across --jobs workers.

#include <iostream>
#include <stdexcept>

#include "bench_util.h"

namespace thrifty {
namespace {

struct PolicyResult {
  SimTime detected = 0;
  SimTime ready = 0;
  bool proactive_trigger = false;
  size_t violations = 0;
  size_t completed = 0;
};

PolicyResult RunPolicy(ScalingPolicy policy, const QueryCatalog& catalog) {
  SimEngine engine;
  Cluster cluster(8, &engine);
  DeploymentPlan plan;
  plan.replication_factor = 1;
  plan.sla_fraction = 0.97;
  GroupDeployment group;
  group.group_id = 0;
  for (TenantId id = 0; id < 4; ++id) {
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 2;
    spec.data_gb = 200;
    group.tenants.push_back(spec);
  }
  group.cluster.mppdb_nodes = {2};
  plan.groups.push_back(group);

  ServiceOptions options;
  options.replication_factor = 1;
  options.sla_fraction = 0.97;
  options.elastic_scaling = true;
  options.scaling.window = 6 * kHour;
  options.scaling.warmup = 3 * kHour;
  options.scaling.check_interval = 15 * kMinute;
  options.scaling.policy = policy;
  options.scaling.proactive_lead = 6 * kHour;
  ThriftyService service(&engine, &cluster, &catalog, options);
  if (!service.Deploy(plan).ok()) throw std::runtime_error("Deploy failed");

  PolicyResult result;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    ++result.completed;
    if (outcome.NormalizedPerformance() > 1.01) ++result.violations;
  });

  // Tenant 0: sparse baseline. Tenants 1 and 2: ramping load — the
  // inter-arrival gap shrinks from 8 minutes to 1 minute over 12 hours.
  TemplateId q6 = *catalog.FindByName("TPCH-Q6");
  const SimTime horizon = 36 * kHour;
  for (SimTime t = 0; t < horizon; t += 45 * kMinute) {
    engine.ScheduleAt(t, [&service, q6](SimTime) {
      (void)service.SubmitQuery(0, q6);
    });
  }
  for (TenantId hog : {1, 2}) {
    SimTime t = 4 * kHour;
    while (t < horizon) {
      engine.ScheduleAt(t, [&service, hog, q6](SimTime) {
        (void)service.SubmitQuery(hog, q6);
      });
      double progress =
          std::min(1.0, static_cast<double>(t - 4 * kHour) / (12.0 * kHour));
      t += static_cast<SimDuration>((8.0 - 7.0 * progress) * kMinute);
    }
  }
  engine.RunUntil(horizon);

  if (service.scaler() != nullptr && !service.scaler()->events().empty()) {
    const ScalingEvent& event = service.scaler()->events()[0];
    result.detected = event.detected_time;
    result.ready = event.ready_time;
    result.proactive_trigger = event.proactive;
  }
  return result;
}

}  // namespace
}  // namespace thrifty

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "ext_proactive_scaling";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();

  PrintBanner(
      "Extension: reactive vs proactive elastic scaling (§5.1 discussion)",
      "A gradually ramping over-active tenant; the proactive policy's\n"
      "trend predictor should detect the sustained RT-TTP decline hours\n"
      "before the reactive breach, so the replacement MPPDB is ready\n"
      "earlier and fewer queries violate the SLA.");

  const ScalingPolicy policies[] = {ScalingPolicy::kReactive,
                                    ScalingPolicy::kProactive};
  SweepRunner runner({options.jobs, options.seed});
  auto results = runner.Map<PolicyResult>(
      std::size(policies), [&](TrialContext& context) {
        return RunPolicy(policies[context.trial_index], catalog);
      });
  const PolicyResult& reactive = results[0];
  const PolicyResult& proactive = results[1];

  TablePrinter table({"policy", "detected (h)", "MPPDB ready (h)",
                      "trigger", "SLA violations", "queries"});
  auto add = [&](const char* name, const PolicyResult& r) {
    table.AddRow({name,
                  r.detected > 0
                      ? FormatDouble(DurationToSeconds(r.detected) / 3600, 1)
                      : "never",
                  r.ready > 0
                      ? FormatDouble(DurationToSeconds(r.ready) / 3600, 1)
                      : "-",
                  r.detected == 0 ? "-"
                                  : (r.proactive_trigger ? "predicted"
                                                         : "breach"),
                  std::to_string(r.violations),
                  std::to_string(r.completed)});
  };
  add("reactive (paper)", reactive);
  add("proactive (extension)", proactive);
  table.Print(std::cout);

  if (proactive.detected > 0 && reactive.detected > 0) {
    double lead_hours = DurationToSeconds(reactive.detected -
                                          proactive.detected) /
                        3600;
    std::cout << "\nProactive lead gained: " << FormatDouble(lead_hours, 1)
              << " hours.\n";
    report.AddMetric("proactive_lead_hours", lead_hours);
  }

  report.SetResultsTable(table);
  report.AddMetric("reactive_violations",
                   static_cast<double>(reactive.violations));
  report.AddMetric("proactive_violations",
                   static_cast<double>(proactive.violations));
  report.Write();
  return 0;
}
