#include "bench_util.h"

#include <cstdio>
#include <iostream>

namespace thrifty {
namespace bench {

Workload GenerateWorkload(const QueryCatalog& catalog,
                          const ExperimentConfig& config) {
  Rng rng(config.seed);
  SessionLibrary library(&catalog, {2, 4, 8, 16, 32},
                         config.sessions_per_class, rng.Fork(1));

  PopulationOptions pop;
  pop.zipf_theta = config.zipf_theta;
  Rng pop_rng = rng.Fork(2);
  auto tenants = GenerateTenantPopulation(config.num_tenants, pop, &pop_rng);
  if (!tenants.ok()) {
    std::cerr << "population generation failed: " << tenants.status() << "\n";
    std::exit(1);
  }

  Workload workload;
  workload.tenants = std::move(tenants).value();
  LogComposerOptions composer_options = config.composer;
  composer_options.horizon_days = config.horizon_days;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  auto activity = composer.ComposeActivity(&workload.tenants, &compose_rng);
  if (!activity.ok()) {
    std::cerr << "log composition failed: " << activity.status() << "\n";
    std::exit(1);
  }
  workload.activity = std::move(activity).value();
  workload.horizon_end = composer.horizon_end();

  // Activity-ratio diagnostics (the paper reports 8.9%-12% for Table 7.1
  // parameters).
  double total_active = 0;
  for (const auto& set : workload.activity) {
    total_active += static_cast<double>(set.TotalLength());
  }
  workload.average_active_ratio =
      total_active / (static_cast<double>(workload.horizon_end) *
                      static_cast<double>(workload.activity.size()));
  return workload;
}

std::vector<ActivityVector> EpochizeWorkload(const Workload& workload,
                                             SimDuration epoch_size) {
  EpochConfig epochs;
  epochs.epoch_size = epoch_size;
  epochs.begin = 0;
  epochs.end = workload.horizon_end;
  std::vector<ActivityVector> vectors;
  vectors.reserve(workload.tenants.size());
  for (size_t i = 0; i < workload.tenants.size(); ++i) {
    vectors.push_back(ActivityVector::FromBitmap(
        workload.tenants[i].id,
        IntervalsToBitmap(workload.activity[i], epochs)));
  }
  return vectors;
}

SolverRow RunSolver(GroupingSolver solver, const Workload& workload,
                    const std::vector<ActivityVector>& vectors,
                    int replication_factor, double sla_fraction) {
  auto problem = MakePackingProblem(workload.tenants, vectors,
                                    replication_factor, sla_fraction);
  if (!problem.ok()) {
    std::cerr << "problem construction failed: " << problem.status() << "\n";
    std::exit(1);
  }
  auto solution = solver == GroupingSolver::kTwoStep ? SolveTwoStep(*problem)
                                                     : SolveFfd(*problem);
  if (!solution.ok()) {
    std::cerr << "solver failed: " << solution.status() << "\n";
    std::exit(1);
  }
  Status valid = VerifySolution(*problem, *solution);
  if (!valid.ok()) {
    std::cerr << "solution verification failed: " << valid << "\n";
    std::exit(1);
  }
  SolverRow row;
  row.solver = solver == GroupingSolver::kTwoStep ? "2-step" : "FFD";
  row.nodes_requested = problem->TotalRequestedNodes();
  row.nodes_used = solution->NodesUsed(replication_factor);
  row.effectiveness = solution->ConsolidationEffectiveness(
      replication_factor, row.nodes_requested);
  row.average_group_size = solution->AverageGroupSize();
  row.solve_seconds = solution->solve_seconds;
  row.num_groups = solution->groups.size();
  return row;
}

std::vector<SolverRow> RunBothSolvers(
    const Workload& workload, const std::vector<ActivityVector>& vectors,
    int replication_factor, double sla_fraction) {
  return {
      RunSolver(GroupingSolver::kFfd, workload, vectors, replication_factor,
                sla_fraction),
      RunSolver(GroupingSolver::kTwoStep, workload, vectors,
                replication_factor, sla_fraction),
  };
}

void PrintBanner(const std::string& title, const std::string& description) {
  std::cout << "\n=== " << title << " ===\n" << description << "\n\n";
}

}  // namespace bench
}  // namespace thrifty
