#include "bench_util.h"

#include <cstdio>

#include "common/fnv.h"
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace thrifty {
namespace bench {

namespace {

[[noreturn]] void PrintUsageAndExit(const std::string& bench_name, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << bench_name << " [options]\n"
     << "  --jobs=N     run sweep trials on N worker threads (default 1);\n"
     << "               results are bit-identical for any N\n"
     << "  --solver-jobs=N\n"
     << "               thread each solve / workload composition on N\n"
     << "               workers (default 1; composes with --jobs);\n"
     << "               results are bit-identical for any N\n"
     << "  --warm-start run an extra sequential two-step pass that seeds\n"
     << "               each sweep point with the previous point's plan\n"
     << "               and reports per-point time savings / effectiveness\n"
     << "               deltas (fig7_1 and fig7_5; the cold fingerprinted\n"
     << "               results are unchanged)\n"
     << "  --seed=S     base seed for deterministic trial streams\n"
     << "  --out=DIR    directory for BENCH_" << bench_name
     << ".json (default .)\n"
     << "  --no-json    skip writing the JSON result file\n"
     << "  --help       this message\n";
  std::exit(code);
}

/// Accepts "--name=value" or "--name value"; advances *i in the latter case.
bool MatchValueFlag(int argc, char** argv, int* i, const char* name,
                    std::string* value) {
  const char* arg = argv[*i];
  size_t name_len = std::strlen(name);
  if (std::strncmp(arg, name, name_len) != 0) return false;
  if (arg[name_len] == '=') {
    *value = arg + name_len + 1;
    return true;
  }
  if (arg[name_len] == '\0') {
    if (*i + 1 >= argc) return false;
    *value = argv[++*i];
    return true;
  }
  return false;
}

void AppendJsonEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonNumber(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

BenchOptions ParseBenchArgs(int argc, char** argv,
                            const std::string& bench_name) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsageAndExit(bench_name, 0);
    } else if (MatchValueFlag(argc, argv, &i, "--jobs", &value) ||
               MatchValueFlag(argc, argv, &i, "-j", &value)) {
      char* end = nullptr;
      options.jobs = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (value.empty() || *end != '\0' || options.jobs < 1) {
        std::cerr << bench_name << ": --jobs needs a positive integer, got '"
                  << value << "'\n";
        std::exit(2);
      }
    } else if (MatchValueFlag(argc, argv, &i, "--solver-jobs", &value)) {
      char* end = nullptr;
      options.solver_jobs =
          static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (value.empty() || *end != '\0' || options.solver_jobs < 1) {
        std::cerr << bench_name
                  << ": --solver-jobs needs a positive integer, got '"
                  << value << "'\n";
        std::exit(2);
      }
    } else if (MatchValueFlag(argc, argv, &i, "--seed", &value)) {
      char* end = nullptr;
      options.seed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        std::cerr << bench_name << ": --seed needs an unsigned integer, got '"
                  << value << "'\n";
        std::exit(2);
      }
      options.seed_set = true;
    } else if (MatchValueFlag(argc, argv, &i, "--out", &value)) {
      options.out_dir = value;
    } else if (std::strcmp(argv[i], "--warm-start") == 0) {
      options.warm_start = true;
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      options.write_json = false;
    } else {
      std::cerr << bench_name << ": unknown argument '" << argv[i] << "'\n";
      PrintUsageAndExit(bench_name, 2);
    }
  }
  return options;
}

uint64_t Fnv1a64(const std::string& text) {
  return thrifty::Fnv1a64(std::string_view(text));
}

std::string RenderTable(const TablePrinter& table) {
  std::ostringstream os;
  table.Print(os);
  return os.str();
}

BenchReport::BenchReport(std::string bench_name, BenchOptions options)
    : bench_name_(std::move(bench_name)),
      options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {}

void BenchReport::AddMetric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

void BenchReport::AddText(const std::string& name, const std::string& value) {
  info_.emplace_back(name, value);
}

void BenchReport::SetResultsTable(const TablePrinter& table) {
  results_table_ = RenderTable(table);
}

double BenchReport::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<size_t>(usage.ru_maxrss);  // already bytes on macOS
#else
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void BenchReport::Write() {
  double wall_seconds = ElapsedSeconds();
  size_t peak_rss = PeakRssBytes();
  if (peak_rss > 0) {
    metrics_.emplace_back("peak_rss_bytes", static_cast<double>(peak_rss));
  }
  char fingerprint[24];
  std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(results_table_)));

  std::cout << "\n[" << bench_name_ << "] wall " << FormatDouble(wall_seconds, 2)
            << "s, jobs=" << options_.jobs
            << ", solver_jobs=" << options_.solver_jobs
            << ", seed=" << options_.seed << ", results fingerprint "
            << fingerprint << "\n";

  if (!options_.write_json) return;
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"";
  AppendJsonEscaped(bench_name_, &json);
  json += "\",\n";
  json += "  \"jobs\": " + std::to_string(options_.jobs) + ",\n";
  json += "  \"solver_jobs\": " + std::to_string(options_.solver_jobs) + ",\n";
  json += "  \"seed\": " + std::to_string(options_.seed) + ",\n";
  json += "  \"wall_seconds\": " + JsonNumber(wall_seconds) + ",\n";
  json += "  \"results_fnv1a\": \"";
  json += fingerprint;
  json += "\",\n";
  json += "  \"metrics\": {";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += "    \"";
    AppendJsonEscaped(metrics_[i].first, &json);
    json += "\": " + JsonNumber(metrics_[i].second);
  }
  json += metrics_.empty() ? "},\n" : "\n  },\n";
  json += "  \"info\": {";
  for (size_t i = 0; i < info_.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += "    \"";
    AppendJsonEscaped(info_[i].first, &json);
    json += "\": \"";
    AppendJsonEscaped(info_[i].second, &json);
    json += "\"";
  }
  json += info_.empty() ? "},\n" : "\n  },\n";
  json += "  \"results_table\": \"";
  AppendJsonEscaped(results_table_, &json);
  json += "\"\n}\n";

  std::string path = options_.out_dir + "/BENCH_" + bench_name_ + ".json";
  std::ofstream file(path);
  if (!file) {
    std::cerr << bench_name_ << ": cannot write " << path << "\n";
    return;
  }
  file << json;
  std::cout << "[" << bench_name_ << "] wrote " << path << "\n";
}

Workload GenerateWorkload(const QueryCatalog& catalog,
                          const ExperimentConfig& config) {
  Rng rng(config.seed);
  SessionLibrary library(&catalog, {2, 4, 8, 16, 32},
                         config.sessions_per_class, rng.Fork(1));

  PopulationOptions pop;
  pop.zipf_theta = config.zipf_theta;
  Rng pop_rng = rng.Fork(2);
  auto tenants = GenerateTenantPopulation(config.num_tenants, pop, &pop_rng);
  if (!tenants.ok()) {
    std::cerr << "population generation failed: " << tenants.status() << "\n";
    std::exit(1);
  }

  Workload workload;
  workload.tenants = std::move(tenants).value();
  LogComposerOptions composer_options = config.composer;
  composer_options.horizon_days = config.horizon_days;
  composer_options.jobs = config.solver_jobs;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  auto activity = composer.ComposeActivity(&workload.tenants, &compose_rng);
  if (!activity.ok()) {
    std::cerr << "log composition failed: " << activity.status() << "\n";
    std::exit(1);
  }
  workload.activity = std::move(activity).value();
  workload.horizon_end = composer.horizon_end();

  // Activity-ratio diagnostics (the paper reports 8.9%-12% for Table 7.1
  // parameters).
  double total_active = 0;
  for (const auto& set : workload.activity) {
    total_active += static_cast<double>(set.TotalLength());
  }
  workload.average_active_ratio =
      total_active / (static_cast<double>(workload.horizon_end) *
                      static_cast<double>(workload.activity.size()));
  return workload;
}

std::vector<ActivityVector> EpochizeWorkload(const Workload& workload,
                                             SimDuration epoch_size, int jobs,
                                             EpochizePath path,
                                             EpochizeGauge* gauge) {
  EpochConfig epochs;
  epochs.epoch_size = epoch_size;
  epochs.begin = 0;
  epochs.end = workload.horizon_end;
  std::vector<ActivityVector> vectors(workload.tenants.size());
  std::optional<ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);
  // Per-index slot writes keep the output byte-identical for any `jobs`.
  ParallelFor(pool ? &*pool : nullptr, workload.tenants.size(), [&](size_t i) {
    if (path == EpochizePath::kStreamed) {
      vectors[i] = EpochizeIntervals(workload.tenants[i].id,
                                     workload.activity[i], epochs, gauge);
    } else {
      // Legacy reference path: the Θ(d) dense bitmap is the intermediate
      // the streamed pipeline eliminates; charge it to the gauge for the
      // window it is alive.
      size_t bitmap_bytes = ((epochs.NumEpochs() + 63) / 64) * sizeof(uint64_t);
      if (gauge != nullptr) gauge->Acquire(bitmap_bytes);
      vectors[i] = ActivityVector::FromBitmap(
          workload.tenants[i].id,
          IntervalsToBitmap(workload.activity[i], epochs));
      if (gauge != nullptr) gauge->Release(bitmap_bytes);
    }
  });
  return vectors;
}

SolverRow RunSolver(GroupingSolver solver, const Workload& workload,
                    const std::vector<ActivityVector>& vectors,
                    int replication_factor, double sla_fraction,
                    int solver_jobs, const GroupingSolution* warm_start,
                    GroupingSolution* solution_out) {
  auto problem = MakePackingProblem(workload.tenants, vectors,
                                    replication_factor, sla_fraction);
  if (!problem.ok()) {
    std::cerr << "problem construction failed: " << problem.status() << "\n";
    std::exit(1);
  }
  TwoStepOptions two_step_options;
  two_step_options.solver_jobs = solver_jobs;
  two_step_options.warm_start = warm_start;
  auto solution = solver == GroupingSolver::kTwoStep
                      ? SolveTwoStep(*problem, two_step_options)
                      : SolveFfd(*problem);
  if (!solution.ok()) {
    std::cerr << "solver failed: " << solution.status() << "\n";
    std::exit(1);
  }
  Status valid = VerifySolution(*problem, *solution);
  if (!valid.ok()) {
    std::cerr << "solution verification failed: " << valid << "\n";
    std::exit(1);
  }
  SolverRow row;
  row.solver = solver == GroupingSolver::kTwoStep ? "2-step" : "FFD";
  row.nodes_requested = problem->TotalRequestedNodes();
  row.nodes_used = solution->NodesUsed(replication_factor);
  row.effectiveness = solution->ConsolidationEffectiveness(
      replication_factor, row.nodes_requested);
  row.average_group_size = solution->AverageGroupSize();
  row.solve_seconds = solution->solve_seconds;
  row.num_groups = solution->groups.size();
  row.level_set_bytes = solution->LevelSetBytes();
  row.level_set_dense_bytes = solution->LevelSetDenseBytes();
  row.warm_groups_kept = solution->warm_groups_kept;
  row.warm_groups_dissolved = solution->warm_groups_dissolved;
  row.warm_groups_repaired = solution->warm_groups_repaired;
  row.warm_members_evicted = solution->warm_members_evicted;
  row.warm_members_missing = solution->warm_members_missing;
  if (solution_out != nullptr) *solution_out = *std::move(solution);
  return row;
}

std::vector<SolverRow> RunBothSolvers(
    const Workload& workload, const std::vector<ActivityVector>& vectors,
    int replication_factor, double sla_fraction, int solver_jobs) {
  return {
      RunSolver(GroupingSolver::kFfd, workload, vectors, replication_factor,
                sla_fraction, solver_jobs),
      RunSolver(GroupingSolver::kTwoStep, workload, vectors,
                replication_factor, sla_fraction, solver_jobs),
  };
}

void PrintBanner(const std::string& title, const std::string& description) {
  std::cout << "\n=== " << title << " ===\n" << description << "\n\n";
}

}  // namespace bench
}  // namespace thrifty
