// Solver-scaling bench: tracks the *intra-solve* parallelism delivered by
// --solver-jobs across the three threaded stages — workload composition
// (GenerateWorkload), the two-step heuristic, and the exact branch-and-
// bound — at solver_jobs = 1, 2, 4.
//
// The headline result is determinism: every stage's output fingerprint
// must be identical across job counts (the rows of the results table, and
// hence the results fingerprint, certify it). Wall-clock per stage and job
// count is reported as metrics, never fingerprinted; on a single-core
// container the speedup is not demonstrable and fingerprint identity alone
// is the correctness claim (see the caveat emitted into the JSON).
//
// Extra flags (before the shared ones): --tenants=N (default 2000) sizes
// the workload/two-step stage; --exact-tenants=N (default 12) sizes the
// synthetic exact-solver instance; --expect=<workload>,<two_step>,<exact>
// pins the three stage fingerprints (16-hex-digit each) and fails the run
// on any drift — CI uses this to catch solver-output regressions, not just
// cross-job nondeterminism.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

/// Incremental FNV-1a, so fingerprinting a multi-GB activity set never
/// materializes one giant string.
uint64_t Fold(uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::string Hex(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "solver_scaling";
  int num_tenants = 2000;
  int exact_tenants = 12;
  std::vector<std::string> expected_fps;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      num_tenants = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--exact-tenants=", 16) == 0) {
      exact_tenants = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--expect=", 9) == 0) {
      std::istringstream ss(argv[i] + 9);
      std::string fp;
      while (std::getline(ss, fp, ',')) expected_fps.push_back(fp);
      if (expected_fps.size() != 3) {
        std::cerr << "--expect needs exactly three comma-separated "
                     "fingerprints: workload,two_step,exact\n";
        return 1;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  PrintBanner("Solver scaling: --solver-jobs inside one solve",
              "workload T=" + std::to_string(num_tenants) +
                  ", two-step on the same instance, exact B&B on " +
                  std::to_string(exact_tenants) +
                  " synthetic tenants; solver_jobs swept over {1, 2, 4} "
                  "(the bench's own --solver-jobs flag is ignored). "
                  "Fingerprints must be identical per stage.");

  QueryCatalog catalog = QueryCatalog::Default();
  const int jobs_list[] = {1, 2, 4};
  TablePrinter table({"stage", "solver_jobs", "fingerprint", "detail"});

  // --- Stage 1: workload composition ---------------------------------
  Workload base_workload;
  std::vector<uint64_t> workload_fps;
  for (int jobs : jobs_list) {
    ExperimentConfig config;
    config.num_tenants = num_tenants;
    config.seed = options.seed;
    config.solver_jobs = jobs;
    auto t0 = std::chrono::steady_clock::now();
    Workload workload = GenerateWorkload(catalog, config);
    report.AddMetric("workload_seconds_jobs" + std::to_string(jobs),
                     Seconds(t0));

    uint64_t fp = kFnvBasis;
    for (size_t i = 0; i < workload.activity.size(); ++i) {
      std::ostringstream os;
      os << workload.tenants[i].id << ":"
         << workload.tenants[i].time_zone_offset_hours << ";";
      for (const auto& iv : workload.activity[i].intervals()) {
        os << iv.begin << "-" << iv.end << ",";
      }
      fp = Fold(fp, os.str());
    }
    workload_fps.push_back(fp);
    table.AddRow({"workload", std::to_string(jobs), Hex(fp),
                  "avg_active=" +
                      FormatPercent(workload.average_active_ratio, 2)});
    if (jobs == 1) base_workload = std::move(workload);
  }

  // --- Stage 2: two-step heuristic on the shared instance -------------
  ExperimentConfig base_config;
  base_config.num_tenants = num_tenants;
  base_config.seed = options.seed;
  const auto vectors = EpochizeWorkload(base_workload, base_config.epoch_size);
  auto problem = MakePackingProblem(base_workload.tenants, vectors,
                                    base_config.replication_factor,
                                    base_config.sla_fraction);
  if (!problem.ok()) {
    std::cerr << "problem construction failed: " << problem.status() << "\n";
    return 1;
  }
  std::vector<uint64_t> two_step_fps;
  for (int jobs : jobs_list) {
    TwoStepOptions two_step_options;
    two_step_options.solver_jobs = jobs;
    auto solution = SolveTwoStep(*problem, two_step_options);
    if (!solution.ok()) {
      std::cerr << "two-step failed: " << solution.status() << "\n";
      return 1;
    }
    Status valid = VerifySolution(*problem, *solution);
    if (!valid.ok()) {
      std::cerr << "two-step solution invalid: " << valid << "\n";
      return 1;
    }
    report.AddMetric("two_step_seconds_jobs" + std::to_string(jobs),
                     solution->solve_seconds);

    uint64_t fp = kFnvBasis;
    for (const auto& group : solution->groups) {
      std::ostringstream os;
      os << group.max_nodes << "[";
      for (TenantId id : group.tenant_ids) os << id << ",";
      os << "];";
      fp = Fold(fp, os.str());
    }
    two_step_fps.push_back(fp);
    table.AddRow(
        {"two_step", std::to_string(jobs), Hex(fp),
         "groups=" + std::to_string(solution->groups.size()) + " nodes=" +
             std::to_string(solution->NodesUsed(
                 base_config.replication_factor))});
  }

  // --- Stage 3: exact branch-and-bound on a synthetic instance --------
  // Overlapping random spans at R=2, P=0.95 keep the B&B tree constrained
  // enough to finish in seconds while still branching widely.
  const size_t exact_epochs = 240;
  Rng exact_rng(options.SeedOr(42) ^ 0xe9ac7ull);
  std::vector<ActivityVector> exact_activities;
  std::vector<TenantSpec> exact_specs;
  const int exact_sizes[] = {2, 4};
  for (int id = 1; id <= exact_tenants; ++id) {
    DynamicBitmap bits(exact_epochs);
    size_t begin = exact_rng.NextBounded(exact_epochs);
    bits.SetRange(begin, begin + 10 + exact_rng.NextBounded(60));
    exact_activities.push_back(
        ActivityVector::FromBitmap(static_cast<TenantId>(id), bits));
    TenantSpec spec;
    spec.id = static_cast<TenantId>(id);
    spec.requested_nodes = exact_sizes[exact_rng.NextBounded(2)];
    exact_specs.push_back(spec);
  }
  auto exact_problem = MakePackingProblem(exact_specs, exact_activities,
                                          /*replication_factor=*/2,
                                          /*sla_fraction=*/0.95);
  if (!exact_problem.ok()) {
    std::cerr << "exact problem construction failed: "
              << exact_problem.status() << "\n";
    return 1;
  }
  std::vector<uint64_t> exact_fps;
  for (int jobs : jobs_list) {
    ExactSolverOptions exact_options;
    exact_options.solver_jobs = jobs;
    auto t0 = std::chrono::steady_clock::now();
    auto solution = SolveExact(*exact_problem, exact_options);
    if (!solution.ok()) {
      std::cerr << "exact solver failed: " << solution.status() << "\n";
      return 1;
    }
    report.AddMetric("exact_seconds_jobs" + std::to_string(jobs),
                     Seconds(t0));

    uint64_t fp = kFnvBasis;
    for (const auto& group : solution->groups) {
      std::ostringstream os;
      os << group.max_nodes << "[";
      for (TenantId id : group.tenant_ids) os << id << ",";
      os << "];";
      fp = Fold(fp, os.str());
    }
    exact_fps.push_back(fp);
    table.AddRow({"exact", std::to_string(jobs), Hex(fp),
                  "groups=" + std::to_string(solution->groups.size()) +
                      " nodes=" + std::to_string(solution->NodesUsed(2))});
  }

  table.Print(std::cout);

  auto all_equal = [](const std::vector<uint64_t>& fps) {
    for (uint64_t fp : fps) {
      if (fp != fps.front()) return false;
    }
    return true;
  };
  const bool identical = all_equal(workload_fps) && all_equal(two_step_fps) &&
                         all_equal(exact_fps);
  std::cout << "\nfingerprint identity across solver_jobs {1, 2, 4}: "
            << (identical ? "PASS" : "FAIL") << "\n";

  bool expected_match = true;
  if (!expected_fps.empty()) {
    const std::pair<const char*, uint64_t> got[] = {
        {"workload", workload_fps.front()},
        {"two_step", two_step_fps.front()},
        {"exact", exact_fps.front()},
    };
    for (size_t s = 0; s < 3; ++s) {
      if (Hex(got[s].second) != expected_fps[s]) {
        expected_match = false;
        std::cout << "fingerprint drift in " << got[s].first << ": expected "
                  << expected_fps[s] << ", got " << Hex(got[s].second) << "\n";
      }
    }
    std::cout << "fingerprints match --expect: "
              << (expected_match ? "PASS" : "FAIL") << "\n";
    report.AddMetric("expected_fingerprints_match", expected_match ? 1 : 0);
  }

  report.SetResultsTable(table);
  report.AddMetric("fingerprints_identical", identical ? 1 : 0);
  report.AddText("identity_check",
                 identical ? "jobs1==jobs2==jobs4 for every stage"
                           : "MISMATCH — parallel solver is nondeterministic");
  report.AddText("speedup_caveat",
                 "speedups are only meaningful on a multi-core machine; on "
                 "a 1-core container time-slicing overhead can make "
                 "solver_jobs>1 slower while fingerprints stay identical");
  report.AddText(
      "workload_fp_provenance",
      "the default-size workload fingerprint moved 3f9ddfba0cebb1fc -> "
      "90881cbb975b2783 when the virtual-time PS executor replaced the "
      "decremented remaining-time arithmetic with immutable finish tags in "
      "Step-1 session simulation: every session keeps the same interval "
      "count but endpoints shift by sub-epoch amounts. Benign and "
      "deterministic — the epochized vectors at E=10s, and therefore the "
      "two_step/exact fingerprints, never moved; all three are now pinned "
      "in CI via --expect at both bench sizes");
  report.Write();
  return identical && expected_match ? 0 : 1;
}
