// Reproduces Figure 7.5: consolidation effectiveness, tenant-group size,
// and execution time as the performance SLA guarantee P varies
// (95% ... 99.99%).
//
// Expected shape (paper): a loose 95% guarantee packs more tenants per
// group (effectiveness up to ~86.5%); tightening to 99.9% costs a few
// points (~81.6%), and 99.99% changes little beyond that (99.9% is already
// effectively "always").
//
// The workload is generated once; the 4 x 2 (P, solver) runs are
// independent trials fanned across --jobs workers over the shared const
// workload.
//
// With --warm-start an extra *sequential* two-step pass runs after the
// cold sweep. Point 0 seeds from its own cold plan — every seed group is
// feasible, so the pass measures the pure revalidation fast path (the
// delta-reconsolidation cost of an unchanged deployment); each later point
// seeds from the previous (looser) point's warm plan, where group repair
// evicts only the members that break the tighter SLA instead of
// dissolving whole groups. Per-point solver-time savings, effectiveness
// deltas, and repair accounting vs the cold rows are recorded; any
// |delta| > 1pp or non-positive saving fails the bench (exit 1). The cold
// fingerprinted results table is unchanged by the flag.

#include <cmath>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_5_sla";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  const Workload workload = GenerateWorkload(catalog, config);
  const auto vectors = EpochizeWorkload(workload, config.epoch_size);

  PrintBanner("Figure 7.5: Varying Performance SLA P",
              "T=5000, theta=0.8, R=3, E=10s, 14-day horizon.");

  const double sla_fractions[] = {0.95, 0.99, 0.999, 0.9999};
  const GroupingSolver solvers[] = {GroupingSolver::kFfd,
                                    GroupingSolver::kTwoStep};
  // Cold two-step solutions per P point, captured so the warm pass can
  // seed point 0 from its own cold plan (per-index slots keep the capture
  // deterministic under --jobs).
  std::vector<GroupingSolution> cold_solutions(std::size(sla_fractions));
  SweepRunner runner({options.jobs, options.seed});
  auto rows = runner.Map<SolverRow>(
      std::size(sla_fractions) * std::size(solvers),
      [&](TrialContext& context) {
        size_t point = context.trial_index / std::size(solvers);
        GroupingSolver solver = solvers[context.trial_index % std::size(solvers)];
        return RunSolver(solver, workload, vectors, config.replication_factor,
                         sla_fractions[point], options.solver_jobs, nullptr,
                         solver == GroupingSolver::kTwoStep
                             ? &cold_solutions[point]
                             : nullptr);
      });

  TablePrinter table({"P", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp"});
  TablePrinter timings({"P", "FFD time (s)", "2-step time (s)"});
  for (size_t point = 0; point < std::size(sla_fractions); ++point) {
    const SolverRow& ffd = rows[point * 2];
    const SolverRow& two_step = rows[point * 2 + 1];
    std::string p = FormatPercent(sla_fractions[point], 2);
    table.AddRow({p, FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1)});
    timings.AddRow({p, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    report.AddMetric("ffd_solve_seconds_p" + std::to_string(point),
                     ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_p" + std::to_string(point),
                     two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_p" + std::to_string(point),
                     two_step.effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  // --warm-start: sequential two-step pass over the P points. Point 0
  // seeds from its own cold plan (pure revalidation — the unchanged-
  // deployment fast path); later points seed from the previous point's
  // warm plan. Groups packed at a looser SLA often violate a tighter one;
  // group repair evicts only the members that break it and keeps the rest
  // grouped, which is where the time saving comes from.
  bool warm_ok = true;
  if (options.warm_start) {
    TablePrinter warm({"P", "cold (s)", "warm (s)", "saved (s)",
                       "eff delta (pp)", "kept", "repaired", "evicted"});
    GroupingSolution previous;
    for (size_t point = 0; point < std::size(sla_fractions); ++point) {
      GroupingSolution current;
      SolverRow row = RunSolver(
          GroupingSolver::kTwoStep, workload, vectors,
          config.replication_factor, sla_fractions[point], options.solver_jobs,
          point == 0 ? &cold_solutions[0] : &previous, &current);
      const SolverRow& cold = rows[point * 2 + 1];
      double saved = cold.solve_seconds - row.solve_seconds;
      double delta_pp = (row.effectiveness - cold.effectiveness) * 100;
      std::string p = FormatPercent(sla_fractions[point], 2);
      warm.AddRow({p, FormatDouble(cold.solve_seconds, 2),
                   FormatDouble(row.solve_seconds, 2),
                   FormatDouble(saved, 2), FormatDouble(delta_pp, 3),
                   std::to_string(row.warm_groups_kept),
                   std::to_string(row.warm_groups_repaired),
                   std::to_string(row.warm_members_evicted)});
      report.AddMetric("warm_two_step_solve_seconds_p" + std::to_string(point),
                       row.solve_seconds);
      report.AddMetric("warm_time_saving_p" + std::to_string(point), saved);
      report.AddMetric("warm_eff_delta_pp_p" + std::to_string(point),
                       delta_pp);
      report.AddMetric("warm_groups_kept_p" + std::to_string(point),
                       static_cast<double>(row.warm_groups_kept));
      report.AddMetric("warm_groups_dissolved_p" + std::to_string(point),
                       static_cast<double>(row.warm_groups_dissolved));
      report.AddMetric("warm_groups_repaired_p" + std::to_string(point),
                       static_cast<double>(row.warm_groups_repaired));
      report.AddMetric("warm_members_evicted_p" + std::to_string(point),
                       static_cast<double>(row.warm_members_evicted));
      if (std::abs(delta_pp) > 1.0) warm_ok = false;
      if (saved <= 0) warm_ok = false;
      previous = std::move(current);
    }
    std::cout << "\nWarm-started two-step pass (sequential; P0 seeded by "
                 "its own cold plan, later points by the previous point's "
                 "plan):\n";
    warm.Print(std::cout);
    if (!warm_ok) {
      std::cout << "\nFAIL: warm start drifted more than 1pp from the cold "
                   "solve or saved no time at some P\n";
    }
    report.AddMetric("warm_start_check_passed", warm_ok ? 1 : 0);
  }

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(rows.size()));
  report.Write();
  return warm_ok ? 0 : 1;
}
