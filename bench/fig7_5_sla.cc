// Reproduces Figure 7.5: consolidation effectiveness, tenant-group size,
// and execution time as the performance SLA guarantee P varies
// (95% ... 99.99%).
//
// Expected shape (paper): a loose 95% guarantee packs more tenants per
// group (effectiveness up to ~86.5%); tightening to 99.9% costs a few
// points (~81.6%), and 99.99% changes little beyond that (99.9% is already
// effectively "always").
//
// The workload is generated once; the 4 x 2 (P, solver) runs are
// independent trials fanned across --jobs workers over the shared const
// workload.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_5_sla";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  const Workload workload = GenerateWorkload(catalog, config);
  const auto vectors = EpochizeWorkload(workload, config.epoch_size);

  PrintBanner("Figure 7.5: Varying Performance SLA P",
              "T=5000, theta=0.8, R=3, E=10s, 14-day horizon.");

  const double sla_fractions[] = {0.95, 0.99, 0.999, 0.9999};
  const GroupingSolver solvers[] = {GroupingSolver::kFfd,
                                    GroupingSolver::kTwoStep};
  SweepRunner runner({options.jobs, options.seed});
  auto rows = runner.Map<SolverRow>(
      std::size(sla_fractions) * std::size(solvers),
      [&](TrialContext& context) {
        double p = sla_fractions[context.trial_index / std::size(solvers)];
        GroupingSolver solver = solvers[context.trial_index % std::size(solvers)];
        return RunSolver(solver, workload, vectors, config.replication_factor,
                         p, options.solver_jobs);
      });

  TablePrinter table({"P", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp"});
  TablePrinter timings({"P", "FFD time (s)", "2-step time (s)"});
  for (size_t point = 0; point < std::size(sla_fractions); ++point) {
    const SolverRow& ffd = rows[point * 2];
    const SolverRow& two_step = rows[point * 2 + 1];
    std::string p = FormatPercent(sla_fractions[point], 2);
    table.AddRow({p, FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1)});
    timings.AddRow({p, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    report.AddMetric("ffd_solve_seconds_p" + std::to_string(point),
                     ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_p" + std::to_string(point),
                     two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_p" + std::to_string(point),
                     two_step.effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(rows.size()));
  report.Write();
  return 0;
}
