// Reproduces Figure 7.5: consolidation effectiveness, tenant-group size,
// and execution time as the performance SLA guarantee P varies
// (95% ... 99.99%).
//
// Expected shape (paper): a loose 95% guarantee packs more tenants per
// group (effectiveness up to ~86.5%); tightening to 99.9% costs a few
// points (~81.6%), and 99.99% changes little beyond that (99.9% is already
// effectively "always").

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  Workload workload = GenerateWorkload(catalog, config);
  auto vectors = EpochizeWorkload(workload, config.epoch_size);

  PrintBanner("Figure 7.5: Varying Performance SLA P",
              "T=5000, theta=0.8, R=3, E=10s, 14-day horizon.");

  TablePrinter table({"P", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp", "FFD time (s)", "2-step time (s)"});
  for (double p : {0.95, 0.99, 0.999, 0.9999}) {
    auto rows = RunBothSolvers(workload, vectors, config.replication_factor,
                               p);
    table.AddRow({FormatPercent(p, 2),
                  FormatPercent(rows[0].effectiveness, 1),
                  FormatPercent(rows[1].effectiveness, 1),
                  FormatDouble(rows[0].average_group_size, 1),
                  FormatDouble(rows[1].average_group_size, 1),
                  FormatDouble(rows[0].solve_seconds, 2),
                  FormatDouble(rows[1].solve_seconds, 2)});
    std::cout << "  [P=" << p << " done]" << std::endl;
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
