// Ablation study: which parts of the two-step heuristic actually matter?
//
// DESIGN.md calls out three design choices; each is disabled in turn on the
// same workload (T=1200, 7-day horizon, R=3, P=99.9%, E=10s):
//
//   full        - Algorithm 2 as in the paper (size-homogeneous initial
//                 groups; least-active seed; level-cascade candidate
//                 criterion).
//   no-step1    - skip the size-homogeneous split: step 2 runs over the
//                 mixed population (exposes the largest-item inflation).
//   no-cascade  - candidate criterion compares only the top activity level
//                 (no tie cascade to lower levels).
//   random-pick - candidates chosen randomly among TTP-feasible tenants
//                 (keeps step 1 and the feasibility rule, drops the
//                 max-active criterion entirely).
//   ffd-*       - the FFD baseline under its three sort keys.

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.h"

namespace thrifty {
namespace {

using bench::Workload;

// Greedy step-2 grouping with configurable seeding/selection.
enum class PickRule { kCascade, kTopLevelOnly, kRandom };

GroupingSolution GreedyGroup(const PackingProblem& problem, bool split_sizes,
                             PickRule rule, Rng rng) {
  std::map<int, std::vector<const PackingItem*>, std::greater<int>> classes;
  for (const auto& item : problem.items) {
    classes[split_sizes ? item.nodes : 0].push_back(&item);
  }
  const int r = problem.replication_factor;
  GroupingSolution solution;
  for (auto& [key, members] : classes) {
    std::vector<const PackingItem*>& remaining = members;
    std::sort(remaining.begin(), remaining.end(),
              [](const PackingItem* a, const PackingItem* b) {
                if (a->activity->ActiveEpochs() != b->activity->ActiveEpochs())
                  return a->activity->ActiveEpochs() <
                         b->activity->ActiveEpochs();
                return a->tenant_id < b->tenant_id;
              });
    while (!remaining.empty()) {
      GroupLevelSet levels(problem.num_epochs);
      TenantGroupResult group;
      const PackingItem* seed = remaining.front();
      remaining.erase(remaining.begin());
      levels.Add(*seed->activity);
      group.tenant_ids.push_back(seed->tenant_id);
      group.max_nodes = seed->nodes;
      while (!remaining.empty()) {
        size_t best = remaining.size();
        std::vector<size_t> best_pops;
        if (rule == PickRule::kRandom) {
          // First feasible candidate in random order.
          std::vector<size_t> order(remaining.size());
          for (size_t i = 0; i < order.size(); ++i) order[i] = i;
          for (size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng.NextBounded(i)]);
          }
          for (size_t i : order) {
            auto pops = levels.EvaluateAdd(*remaining[i]->activity);
            if (levels.TtpFromPopcounts(pops, r) + 1e-12 >=
                problem.sla_fraction) {
              best = i;
              best_pops = std::move(pops);
              break;
            }
          }
          if (best == remaining.size()) break;  // nobody fits
        } else {
          for (size_t i = 0; i < remaining.size(); ++i) {
            auto pops = levels.EvaluateAdd(*remaining[i]->activity);
            bool better;
            if (best == remaining.size()) {
              better = true;
            } else if (rule == PickRule::kCascade) {
              int cmp = CompareCandidateLevels(pops, best_pops);
              better = cmp < 0 ||
                       (cmp == 0 && remaining[i]->tenant_id >
                                        remaining[best]->tenant_id);
            } else {
              // Top level only: fewer epochs at the would-be max level.
              size_t top_a = pops.empty() ? 0 : pops.size();
              size_t top_b = best_pops.empty() ? 0 : best_pops.size();
              size_t ea = pops.empty() ? 0 : pops.back();
              size_t eb = best_pops.empty() ? 0 : best_pops.back();
              better = top_a < top_b || (top_a == top_b && ea < eb);
            }
            if (better) {
              best = i;
              best_pops = std::move(pops);
            }
          }
          if (levels.TtpFromPopcounts(best_pops, r) + 1e-12 <
              problem.sla_fraction) {
            break;
          }
        }
        const PackingItem* item = remaining[best];
        remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
        levels.Add(*item->activity);
        group.tenant_ids.push_back(item->tenant_id);
        group.max_nodes = std::max(group.max_nodes, item->nodes);
      }
      group.ttp = levels.Ttp(r);
      group.max_active = levels.MaxActive();
      solution.groups.push_back(std::move(group));
    }
  }
  return solution;
}

}  // namespace
}  // namespace thrifty

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.num_tenants = 1200;
  config.horizon_days = 7;
  Workload workload = GenerateWorkload(catalog, config);
  auto vectors = EpochizeWorkload(workload, config.epoch_size);
  auto problem = MakePackingProblem(workload.tenants, vectors,
                                    config.replication_factor,
                                    config.sla_fraction);
  if (!problem.ok()) return 1;

  PrintBanner("Ablation: two-step heuristic design choices",
              "T=1200, theta=0.8, R=3, P=99.9%, E=10s, 7-day horizon.");

  TablePrinter table({"variant", "effectiveness", "avg group size",
                      "nodes used"});
  auto report = [&](const std::string& name, const GroupingSolution& s) {
    Status valid = VerifySolution(*problem, s);
    if (!valid.ok()) {
      std::cerr << name << " produced an invalid solution: " << valid << "\n";
      std::exit(1);
    }
    table.AddRow({name,
                  FormatPercent(s.ConsolidationEffectiveness(
                                    config.replication_factor,
                                    problem->TotalRequestedNodes()),
                                1),
                  FormatDouble(s.AverageGroupSize(), 1),
                  std::to_string(s.NodesUsed(config.replication_factor))});
  };

  report("full (Algorithm 2)", *SolveTwoStep(*problem));
  report("no-step1 (mixed sizes)",
         GreedyGroup(*problem, false, PickRule::kCascade, Rng(1)));
  report("no-cascade (top level only)",
         GreedyGroup(*problem, true, PickRule::kTopLevelOnly, Rng(2)));
  report("random-pick (feasible only)",
         GreedyGroup(*problem, true, PickRule::kRandom, Rng(3)));
  for (auto [name, key] :
       {std::pair<const char*, FfdSortKey>{"FFD (n x activity)",
                                           FfdSortKey::kNodesTimesActivity},
        {"FFD (activity)", FfdSortKey::kActivity},
        {"FFD (nodes)", FfdSortKey::kNodes}}) {
    FfdOptions options;
    options.sort_key = key;
    report(name, *SolveFfd(*problem, options));
  }
  table.Print(std::cout);
  return 0;
}
