// Reproduces Figure 7.2: consolidation effectiveness, tenant-group size,
// and execution time as the number of tenants T varies (1000/5000/10000).
//
// Expected shape (paper): effectiveness is largely insensitive to T with a
// minor increase (79.3% -> 83.3% from 1000 to 10000 tenants) because a
// larger pool gives the grouping more complementary candidates; the 2-step
// heuristic beats FFD throughout (the paper's headline: at T=5000 Thrifty
// serves all tenants with ~18.7% of the requested nodes, i.e. ~81.3%
// effectiveness, with R=3 and P=99.9%).
//
// Each T point (workload generation + both solvers) is an independent
// trial fanned across --jobs workers.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_2_num_tenants";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  PrintBanner("Figure 7.2: Varying Number of Tenants T",
              "theta=0.8, R=3, P=99.9%, E=10s, 14-day horizon.");

  const int tenant_counts[] = {1000, 5000, 10000};
  struct PointResult {
    double active_ratio = 0;
    std::vector<SolverRow> rows;
  };
  SweepRunner runner({options.jobs, options.seed});
  auto points = runner.Map<PointResult>(
      std::size(tenant_counts), [&](TrialContext& context) {
        ExperimentConfig config;
        config.num_tenants = tenant_counts[context.trial_index];
        config.seed = options.seed;
        config.solver_jobs = options.solver_jobs;
        Workload workload = GenerateWorkload(catalog, config);
        auto vectors = EpochizeWorkload(workload, config.epoch_size);
        PointResult result;
        result.active_ratio = workload.average_active_ratio;
        result.rows = RunBothSolvers(workload, vectors,
                                     config.replication_factor,
                                     config.sla_fraction,
                                     options.solver_jobs);
        return result;
      });

  TablePrinter table({"T", "active ratio", "FFD eff.", "2-step eff.",
                      "FFD grp", "2-step grp",
                      "2-step nodes used/requested"});
  TablePrinter timings({"T", "FFD time (s)", "2-step time (s)"});
  for (size_t p = 0; p < std::size(tenant_counts); ++p) {
    const SolverRow& ffd = points[p].rows[0];
    const SolverRow& two_step = points[p].rows[1];
    std::string t = std::to_string(tenant_counts[p]);
    table.AddRow({t, FormatPercent(points[p].active_ratio, 1),
                  FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1),
                  std::to_string(two_step.nodes_used) + "/" +
                      std::to_string(two_step.nodes_requested)});
    timings.AddRow({t, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    report.AddMetric("ffd_solve_seconds_t" + t, ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_t" + t, two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_t" + t, two_step.effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);
  std::cout << "\nHeadline check (paper: at T=5000 Thrifty uses only 18.7% "
               "of requested nodes -> 81.3% effectiveness).\n";

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(std::size(tenant_counts)));
  report.Write();
  return 0;
}
