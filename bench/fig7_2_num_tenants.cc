// Reproduces Figure 7.2: consolidation effectiveness, tenant-group size,
// and execution time as the number of tenants T varies (1000/5000/10000).
//
// Expected shape (paper): effectiveness is largely insensitive to T with a
// minor increase (79.3% -> 83.3% from 1000 to 10000 tenants) because a
// larger pool gives the grouping more complementary candidates; the 2-step
// heuristic beats FFD throughout (the paper's headline: at T=5000 Thrifty
// serves all tenants with ~18.7% of the requested nodes, i.e. ~81.3%
// effectiveness, with R=3 and P=99.9%).

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  PrintBanner("Figure 7.2: Varying Number of Tenants T",
              "theta=0.8, R=3, P=99.9%, E=10s, 14-day horizon.");

  TablePrinter table({"T", "active ratio", "FFD eff.", "2-step eff.",
                      "FFD grp", "2-step grp", "FFD time (s)",
                      "2-step time (s)", "2-step nodes used/requested"});
  for (int t : {1000, 5000, 10000}) {
    ExperimentConfig config;
    config.num_tenants = t;
    Workload workload = GenerateWorkload(catalog, config);
    auto vectors = EpochizeWorkload(workload, config.epoch_size);
    auto rows = RunBothSolvers(workload, vectors, config.replication_factor,
                               config.sla_fraction);
    table.AddRow({std::to_string(t),
                  FormatPercent(workload.average_active_ratio, 1),
                  FormatPercent(rows[0].effectiveness, 1),
                  FormatPercent(rows[1].effectiveness, 1),
                  FormatDouble(rows[0].average_group_size, 1),
                  FormatDouble(rows[1].average_group_size, 1),
                  FormatDouble(rows[0].solve_seconds, 2),
                  FormatDouble(rows[1].solve_seconds, 2),
                  std::to_string(rows[1].nodes_used) + "/" +
                      std::to_string(rows[1].nodes_requested)});
    std::cout << "  [T=" << t << " done]" << std::endl;
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nHeadline check (paper: at T=5000 Thrifty uses only 18.7% "
               "of requested nodes -> 81.3% effectiveness).\n";
  return 0;
}
