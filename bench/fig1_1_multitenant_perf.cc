// Reproduces Figure 1.1: query performance in an MPPDB with multi-tenants.
//
//  (a) TPC-H Q1 speedup vs node count — single tenant (1T), x tenants
//      submitting sequentially (xT-SEQ), and x tenants submitting
//      concurrently (xT-CON). Expected shape: Q1 scales out linearly; SEQ
//      lines track 1T; 2T-CON runs 2x slower and 4T-CON 4x slower.
//  (b) Q1 latency of four 2-node tenants: dedicated 2-node MPPDBs (latency
//      A = the SLA) vs one 6-node shared MPPDB with 1 or 2 concurrently
//      active tenants (latencies B and C). Expected: B < C <= A — the
//      second consolidation opportunity.
//  (c) Same as (a) for TPC-H Q19, which does NOT scale out linearly, so
//      the 6-node-shared trick fails for it.

#include <iostream>
#include <vector>

#include "bench_util.h"

namespace thrifty {
namespace {

// Runs `tenants` copies of one query template on a shared `nodes`-node
// instance, each tenant holding `data_gb`; returns mean per-query latency
// in seconds. Sequential mode runs them one after another; concurrent mode
// submits all at once.
double MeasureLatencySeconds(const QueryTemplate& tmpl, int nodes,
                             double data_gb, int tenants, bool concurrent) {
  SimEngine engine;
  MppdbInstance instance(0, nodes, &engine);
  for (TenantId t = 0; t < tenants; ++t) instance.AddTenant(t, data_gb);
  double total_latency = 0;
  int completed = 0;
  instance.set_completion_callback([&](const QueryCompletion& c) {
    total_latency += DurationToSeconds(c.MeasuredLatency());
    ++completed;
  });
  if (concurrent) {
    for (TenantId t = 0; t < tenants; ++t) {
      QuerySubmission s;
      s.query_id = t;
      s.tenant_id = t;
      Status st = instance.Submit(s, tmpl);
      if (!st.ok()) std::exit(1);
    }
    engine.Run();
  } else {
    for (TenantId t = 0; t < tenants; ++t) {
      QuerySubmission s;
      s.query_id = t;
      s.tenant_id = t;
      Status st = instance.Submit(s, tmpl);
      if (!st.ok()) std::exit(1);
      engine.Run();  // finish before the next tenant submits
    }
  }
  return total_latency / completed;
}

void SpeedupPanel(const QueryCatalog& catalog, const char* name) {
  const QueryTemplate& tmpl = catalog.Get(*catalog.FindByName(name));
  const double data_gb = 100;  // TPC-H scale factor 100 per tenant
  const std::vector<int> node_counts = {1, 2, 4, 8, 16, 32};
  double base = MeasureLatencySeconds(tmpl, 1, data_gb, 1, false);

  TablePrinter table({"nodes", "1T", "2T-SEQ", "2T-CON", "4T-SEQ", "4T-CON",
                      "ideal"});
  for (int nodes : node_counts) {
    auto speedup = [&](int tenants, bool concurrent) {
      return base /
             MeasureLatencySeconds(tmpl, nodes, data_gb, tenants, concurrent);
    };
    table.AddRow({std::to_string(nodes), FormatDouble(speedup(1, false), 2),
                  FormatDouble(speedup(2, false), 2),
                  FormatDouble(speedup(2, true), 2),
                  FormatDouble(speedup(4, false), 2),
                  FormatDouble(speedup(4, true), 2),
                  FormatDouble(nodes, 0)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace thrifty

int main() {
  using namespace thrifty;
  QueryCatalog catalog = QueryCatalog::Default();

  bench::PrintBanner(
      "Figure 1.1(a): TPC-H Q1 speedup under multi-tenancy",
      "Speedup relative to 1 node / 1 tenant. xT-SEQ should track 1T;\n"
      "xT-CON should be x times below it (I/O-bound processor sharing).");
  SpeedupPanel(catalog, "TPCH-Q1");

  bench::PrintBanner(
      "Figure 1.1(b): Q1 latency, 4 x 2-node tenants",
      "A = dedicated 2-node MPPDB per tenant (the SLA). B/C = one shared\n"
      "6-node MPPDB with 1 or 2 concurrently active tenants. The second\n"
      "consolidation opportunity requires B < C <= A.");
  {
    const QueryTemplate& q1 = catalog.Get(*catalog.FindByName("TPCH-Q1"));
    double a = MeasureLatencySeconds(q1, 2, 100, 1, false);
    double b = MeasureLatencySeconds(q1, 6, 100, 1, false);
    double c = MeasureLatencySeconds(q1, 6, 100, 2, true);
    TablePrinter table({"point", "setting", "latency (s)", "meets SLA A?"});
    table.AddRow({"A", "dedicated 2-node, 1 active", FormatDouble(a, 1),
                  "(defines SLA)"});
    table.AddRow({"B", "shared 6-node, 1 of 4 active", FormatDouble(b, 1),
                  b <= a ? "yes" : "NO"});
    table.AddRow({"C", "shared 6-node, 2 of 4 active", FormatDouble(c, 1),
                  c <= a ? "yes" : "NO"});
    table.Print(std::cout);
  }

  bench::PrintBanner(
      "Figure 1.1(c): TPC-H Q19 speedup (non-linear scale-out)",
      "Q19's serial fraction caps its speedup, so concurrent execution on\n"
      "a shared MPPDB cannot be absorbed by extra nodes (points E/F).");
  SpeedupPanel(catalog, "TPCH-Q19");

  {
    // The E/F check: shared 6-node with 2 active tenants vs the dedicated
    // 2-node SLA, for the non-linear Q19.
    const QueryTemplate& q19 = catalog.Get(*catalog.FindByName("TPCH-Q19"));
    double a = MeasureLatencySeconds(q19, 2, 100, 1, false);
    double c = MeasureLatencySeconds(q19, 6, 100, 2, true);
    std::cout << "\nQ19 on shared 6-node with 2 active tenants: "
              << FormatDouble(c, 1) << " s vs dedicated-2-node SLA "
              << FormatDouble(a, 1) << " s -> "
              << (c <= a ? "SLA met (unexpected!)" : "SLA violated, as in the paper")
              << "\n";
  }
  return 0;
}
