// Reproduces Figure 1.1: query performance in an MPPDB with multi-tenants.
//
//  (a) TPC-H Q1 speedup vs node count — single tenant (1T), x tenants
//      submitting sequentially (xT-SEQ), and x tenants submitting
//      concurrently (xT-CON). Expected shape: Q1 scales out linearly; SEQ
//      lines track 1T; 2T-CON runs 2x slower and 4T-CON 4x slower.
//  (b) Q1 latency of four 2-node tenants: dedicated 2-node MPPDBs (latency
//      A = the SLA) vs one 6-node shared MPPDB with 1 or 2 concurrently
//      active tenants (latencies B and C). Expected: B < C <= A — the
//      second consolidation opportunity.
//  (c) Same as (a) for TPC-H Q19, which does NOT scale out linearly, so
//      the 6-node-shared trick fails for it.
//
// The virtual-time processor-sharing executor is audited here. Every
// scenario runs twice — once on the production finish-tag min-heap
// (kVirtualTime) and once on the O(k) linear-sweep reference
// (kDenseReference) — and the bench fails (exit 1) unless the integer
// (finish_time, query_id) completion streams are byte-identical:
//
//   1. the Fig 1.1 panel grid itself (every nodes x tenants x seq/con cell
//      for Q1 and Q19, plus the panel-b points);
//   2. a high-concurrency churn point (256 resident queries, 64 under
//      --smoke) with a node failure + repair mid-flight — also the gate
//      that the SimCostGauge records at least 4x fewer queries touched per
//      executor event on the heap than on the dense sweep;
//   3. a fig7_4-style smoke workload: a generated tenant population
//      (sessions -> composed logs -> advisor plan at R = 3) replayed
//      through the full ThriftyService — cluster instances and SLA shadow
//      instances both — with node failures injected mid-replay.
//
// Stream fingerprints (FNV-1a 64) and the per-event cost-gauge readings for
// both modes are recorded in BENCH_fig1_1_multitenant_perf.json.
//
// Extra flags (before the shared ones): --smoke shrinks the churn point
// for CI.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace thrifty {
namespace {

QueryTemplate MakeWorkTemplate(TemplateId id, double work_seconds_per_gb,
                               double serial = 0.0) {
  QueryTemplate t;
  t.id = id;
  t.name = "churn" + std::to_string(id);
  t.work_seconds_per_gb = work_seconds_per_gb;
  t.serial_fraction = serial;
  return t;
}

void AppendCompletion(std::string* stream, const QueryCompletion& c) {
  if (stream == nullptr) return;
  *stream += "t=" + std::to_string(c.finish_time) +
             ",q=" + std::to_string(c.query_id) +
             ",k=" + std::to_string(c.max_concurrency) + ";";
}

// Runs `tenants` copies of one query template on a shared `nodes`-node
// instance, each tenant holding `data_gb`; returns mean per-query latency
// in seconds. Sequential mode runs them one after another; concurrent mode
// submits all at once. When `stream` is given, every completion is appended
// to it (the dual-mode audit's byte-compare input).
double MeasureLatencySeconds(const QueryTemplate& tmpl, int nodes,
                             double data_gb, int tenants, bool concurrent,
                             PsExecutorMode mode = PsExecutorMode::kVirtualTime,
                             std::string* stream = nullptr,
                             SimCostGauge* gauge = nullptr) {
  SimEngine engine;
  engine.set_cost_gauge(gauge);
  MppdbInstance instance(0, nodes, &engine, InstanceState::kOnline, mode);
  for (TenantId t = 0; t < tenants; ++t) instance.AddTenant(t, data_gb);
  double total_latency = 0;
  int completed = 0;
  instance.set_completion_callback([&](const QueryCompletion& c) {
    total_latency += DurationToSeconds(c.MeasuredLatency());
    ++completed;
    AppendCompletion(stream, c);
  });
  if (concurrent) {
    for (TenantId t = 0; t < tenants; ++t) {
      QuerySubmission s;
      s.query_id = t;
      s.tenant_id = t;
      Status st = instance.Submit(s, tmpl);
      if (!st.ok()) std::exit(1);
    }
    engine.Run();
  } else {
    for (TenantId t = 0; t < tenants; ++t) {
      QuerySubmission s;
      s.query_id = t;
      s.tenant_id = t;
      Status st = instance.Submit(s, tmpl);
      if (!st.ok()) std::exit(1);
      engine.Run();  // finish before the next tenant submits
    }
  }
  return total_latency / completed;
}

void SpeedupPanel(const QueryCatalog& catalog, const char* name) {
  const QueryTemplate& tmpl = catalog.Get(*catalog.FindByName(name));
  const double data_gb = 100;  // TPC-H scale factor 100 per tenant
  const std::vector<int> node_counts = {1, 2, 4, 8, 16, 32};
  double base = MeasureLatencySeconds(tmpl, 1, data_gb, 1, false);

  TablePrinter table({"nodes", "1T", "2T-SEQ", "2T-CON", "4T-SEQ", "4T-CON",
                      "ideal"});
  for (int nodes : node_counts) {
    auto speedup = [&](int tenants, bool concurrent) {
      return base /
             MeasureLatencySeconds(tmpl, nodes, data_gb, tenants, concurrent);
    };
    table.AddRow({std::to_string(nodes), FormatDouble(speedup(1, false), 2),
                  FormatDouble(speedup(2, false), 2),
                  FormatDouble(speedup(2, true), 2),
                  FormatDouble(speedup(4, false), 2),
                  FormatDouble(speedup(4, true), 2),
                  FormatDouble(nodes, 0)});
  }
  table.Print(std::cout);
}

// --- Dual-mode executor audit scenarios ---------------------------------

// Audit scenario 1: every Fig 1.1 panel cell, streamed into one string.
std::string RunPanelGrid(const QueryCatalog& catalog, PsExecutorMode mode,
                         SimCostGauge* gauge) {
  std::string stream;
  for (const char* name : {"TPCH-Q1", "TPCH-Q19"}) {
    const QueryTemplate& tmpl = catalog.Get(*catalog.FindByName(name));
    stream += std::string("panel=") + name + ";";
    for (int nodes : {1, 2, 4, 8, 16, 32}) {
      for (int tenants : {1, 2, 4}) {
        for (bool concurrent : {false, true}) {
          MeasureLatencySeconds(tmpl, nodes, 100, tenants, concurrent, mode,
                                &stream, gauge);
        }
      }
    }
  }
  // Panel (b): the shared 6-node consolidation points.
  const QueryTemplate& q1 = catalog.Get(*catalog.FindByName("TPCH-Q1"));
  stream += "panel=b;";
  MeasureLatencySeconds(q1, 2, 100, 1, false, mode, &stream, gauge);
  MeasureLatencySeconds(q1, 6, 100, 1, false, mode, &stream, gauge);
  MeasureLatencySeconds(q1, 6, 100, 2, true, mode, &stream, gauge);
  return stream;
}

// Audit scenario 2: high-concurrency churn. `resident` long-running queries
// pin the concurrency level while short queries arrive and complete under
// processor sharing, with a node failure and repair mid-flight. This is
// where the dense sweep's O(k)-per-event cost shows: the gauge ratio gate
// lives on this scenario.
std::string RunChurnScenario(PsExecutorMode mode, int resident, int churners,
                             SimCostGauge* gauge) {
  SimEngine engine;
  engine.set_cost_gauge(gauge);
  MppdbInstance instance(0, 8, &engine, InstanceState::kOnline, mode);
  for (TenantId t = 0; t < 4; ++t) instance.AddTenant(t, 100);
  std::string stream;
  instance.set_completion_callback(
      [&](const QueryCompletion& c) { AppendCompletion(&stream, c); });

  QueryId next_id = 0;
  auto submit = [&](TenantId tenant, const QueryTemplate& tmpl) {
    QuerySubmission s;
    s.query_id = next_id++;
    s.tenant_id = tenant;
    s.template_id = tmpl.id;
    if (!instance.Submit(s, tmpl).ok()) std::exit(1);
  };

  // Residents: dedicated work far beyond the service they can receive
  // while the churners run, so they hold k near `resident` throughout.
  // 100 GB on 8 nodes at 8.0 s/GB -> 100 s dedicated each.
  const QueryTemplate long_tmpl = MakeWorkTemplate(1, 8.0);
  for (int i = 0; i < resident; ++i) {
    engine.ScheduleAt(10 * i, [&, i](SimTime) { submit(i % 4, long_tmpl); });
  }
  // Churners: short queries (mixed awkward sizes) arriving on a cadence
  // slower than their shared completion time, each triggering a completion
  // event at full concurrency.
  const SimTime churn_start = 10 * resident + kSecond;
  for (int i = 0; i < churners; ++i) {
    const QueryTemplate tmpl =
        MakeWorkTemplate(2 + i, 0.004 + 0.0007 * (i % 5), 0.0);
    engine.ScheduleAt(churn_start + 4 * kSecond * i,
                      [&, tmpl](SimTime) { submit(0, tmpl); });
  }
  // SpeedFactor changes mid-churn: fail one node, then a second, repair one.
  const SimTime mid = churn_start + 4 * kSecond * (churners / 3);
  engine.ScheduleAt(mid, [&](SimTime) { (void)instance.InjectNodeFailure(); });
  engine.ScheduleAt(mid + 30 * kSecond,
                    [&](SimTime) { (void)instance.InjectNodeFailure(); });
  engine.ScheduleAt(mid + 90 * kSecond,
                    [&](SimTime) { (void)instance.RepairNode(); });
  engine.Run();  // drains the residents too
  stream += "completed=" + std::to_string(instance.completed_queries()) +
            ",busy=" + std::to_string(instance.busy_time()) + ";";
  return stream;
}

// Audit scenario 3: a fig7_4-style smoke workload — generated tenant logs
// advised into an R = 3 plan and replayed through the full service (cluster
// instances and SLA shadow instances on the same executor mode), with node
// failures injected mid-replay.
struct ServiceWorkload {
  std::vector<TenantSpec> tenants;
  std::vector<TenantLog> logs;
  DeploymentPlan plan;
};

ServiceWorkload BuildServiceWorkload(const QueryCatalog& catalog,
                                     uint64_t seed) {
  SessionLibrary library(&catalog, {2, 4}, /*sessions_per_class=*/5,
                         Rng(seed));
  PopulationOptions pop_options;
  pop_options.node_sizes = {2, 4};
  Rng pop_rng = Rng(seed).Fork(1);
  auto tenants = GenerateTenantPopulation(12, pop_options, &pop_rng);
  if (!tenants.ok()) std::exit(1);
  ServiceWorkload w;
  w.tenants = *tenants;
  LogComposerOptions composer_options;
  composer_options.horizon_days = 3;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = Rng(seed).Fork(2);
  auto logs = composer.Compose(&w.tenants, &compose_rng);
  if (!logs.ok()) std::exit(1);
  w.logs = *logs;
  AdvisorOptions advisor_options;
  advisor_options.replication_factor = 3;
  advisor_options.sla_fraction = 0.99;
  advisor_options.epoch_size = 30 * kSecond;
  DeploymentAdvisor advisor(advisor_options);
  auto output = advisor.Advise(w.tenants, w.logs, 0, composer.horizon_end());
  if (!output.ok()) std::exit(1);
  w.plan = output->plan;
  return w;
}

std::string RunServiceReplay(const QueryCatalog& catalog,
                             const ServiceWorkload& workload,
                             PsExecutorMode mode, SimCostGauge* gauge) {
  SimEngine engine;
  engine.set_cost_gauge(gauge);
  Cluster cluster(static_cast<int>(workload.plan.TotalNodesUsed()), &engine);
  cluster.set_executor_mode(mode);
  ServiceOptions options;
  options.replication_factor = 3;
  options.sla_fraction = 0.99;
  options.elastic_scaling = false;
  options.executor_mode = mode;
  ThriftyService service(&engine, &cluster, &catalog, options);
  if (!service.Deploy(workload.plan).ok()) std::exit(1);

  std::string stream;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    stream += "t=" + std::to_string(outcome.real.finish_time) +
              ",q=" + std::to_string(outcome.real.query_id) +
              ",i=" + std::to_string(outcome.real.instance_id) +
              ",lat=" + std::to_string(outcome.real.MeasuredLatency()) +
              ",iso=" + std::to_string(outcome.isolated_latency) + ";";
  });
  if (!service.ScheduleLogReplay(workload.logs).ok()) std::exit(1);
  // Degrade two serving MPPDBs mid-replay (auto-replacement on): the §4.4
  // failure flow the fig7_4 replication factor pays for.
  engine.ScheduleAt(6 * kHour,
                    [&](SimTime) { (void)cluster.InjectNodeFailure(0); });
  engine.ScheduleAt(30 * kHour,
                    [&](SimTime) { (void)cluster.InjectNodeFailure(1); });
  engine.Run();
  stream += "completed=" + std::to_string(service.metrics().completed) +
            ",sla=" + FormatDouble(service.metrics().SlaAttainment(), 6) + ";";
  return stream;
}

std::string Hex64(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

}  // namespace
}  // namespace thrifty

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig1_1_multitenant_perf";
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();

  PrintBanner(
      "Figure 1.1(a): TPC-H Q1 speedup under multi-tenancy",
      "Speedup relative to 1 node / 1 tenant. xT-SEQ should track 1T;\n"
      "xT-CON should be x times below it (I/O-bound processor sharing).");
  SpeedupPanel(catalog, "TPCH-Q1");

  PrintBanner(
      "Figure 1.1(b): Q1 latency, 4 x 2-node tenants",
      "A = dedicated 2-node MPPDB per tenant (the SLA). B/C = one shared\n"
      "6-node MPPDB with 1 or 2 concurrently active tenants. The second\n"
      "consolidation opportunity requires B < C <= A.");
  {
    const QueryTemplate& q1 = catalog.Get(*catalog.FindByName("TPCH-Q1"));
    double a = MeasureLatencySeconds(q1, 2, 100, 1, false);
    double b = MeasureLatencySeconds(q1, 6, 100, 1, false);
    double c = MeasureLatencySeconds(q1, 6, 100, 2, true);
    TablePrinter table({"point", "setting", "latency (s)", "meets SLA A?"});
    table.AddRow({"A", "dedicated 2-node, 1 active", FormatDouble(a, 1),
                  "(defines SLA)"});
    table.AddRow({"B", "shared 6-node, 1 of 4 active", FormatDouble(b, 1),
                  b <= a ? "yes" : "NO"});
    table.AddRow({"C", "shared 6-node, 2 of 4 active", FormatDouble(c, 1),
                  c <= a ? "yes" : "NO"});
    table.Print(std::cout);
  }

  PrintBanner(
      "Figure 1.1(c): TPC-H Q19 speedup (non-linear scale-out)",
      "Q19's serial fraction caps its speedup, so concurrent execution on\n"
      "a shared MPPDB cannot be absorbed by extra nodes (points E/F).");
  SpeedupPanel(catalog, "TPCH-Q19");

  {
    // The E/F check: shared 6-node with 2 active tenants vs the dedicated
    // 2-node SLA, for the non-linear Q19.
    const QueryTemplate& q19 = catalog.Get(*catalog.FindByName("TPCH-Q19"));
    double a = MeasureLatencySeconds(q19, 2, 100, 1, false);
    double c = MeasureLatencySeconds(q19, 6, 100, 2, true);
    std::cout << "\nQ19 on shared 6-node with 2 active tenants: "
              << FormatDouble(c, 1) << " s vs dedicated-2-node SLA "
              << FormatDouble(a, 1) << " s -> "
              << (c <= a ? "SLA met (unexpected!)"
                         : "SLA violated, as in the paper")
              << "\n";
  }

  // --- Virtual-time executor audit (dense reference vs min-heap) --------
  PrintBanner(
      "Virtual-time executor audit",
      "Every scenario runs on both executor structures; completion streams\n"
      "must be byte-identical and the heap must touch >= 4x fewer query\n"
      "records per event than the dense sweep at the churn point." +
          std::string(smoke ? " [--smoke scenario]" : ""));

  const int resident = smoke ? 64 : 256;
  const int churners = smoke ? 48 : 96;
  const ServiceWorkload service_workload =
      BuildServiceWorkload(catalog, options.SeedOr(1101));

  struct AuditRow {
    std::string scenario;
    std::string stream_virtual;
    std::string stream_dense;
    SimCostGauge gauge_virtual;
    SimCostGauge gauge_dense;
  };
  AuditRow rows[3];
  rows[0].scenario = "fig1_1_panels";
  rows[0].stream_virtual =
      RunPanelGrid(catalog, PsExecutorMode::kVirtualTime, &rows[0].gauge_virtual);
  rows[0].stream_dense = RunPanelGrid(catalog, PsExecutorMode::kDenseReference,
                                      &rows[0].gauge_dense);
  rows[1].scenario = "churn_k" + std::to_string(resident);
  rows[1].stream_virtual = RunChurnScenario(
      PsExecutorMode::kVirtualTime, resident, churners, &rows[1].gauge_virtual);
  rows[1].stream_dense = RunChurnScenario(PsExecutorMode::kDenseReference,
                                          resident, churners,
                                          &rows[1].gauge_dense);
  rows[2].scenario = "fig7_4_smoke_service";
  rows[2].stream_virtual =
      RunServiceReplay(catalog, service_workload, PsExecutorMode::kVirtualTime,
                       &rows[2].gauge_virtual);
  rows[2].stream_dense =
      RunServiceReplay(catalog, service_workload,
                       PsExecutorMode::kDenseReference, &rows[2].gauge_dense);

  bool streams_identical = true;
  double churn_gauge_ratio = 0;
  TablePrinter audit({"scenario", "completions identical", "fp (virtual)",
                      "events v", "touch/ev dense", "touch/ev virtual",
                      "ratio", "peak k"});
  for (AuditRow& row : rows) {
    const bool identical = row.stream_virtual == row.stream_dense;
    streams_identical = streams_identical && identical;
    const uint64_t fp_virtual = Fnv1a64(row.stream_virtual);
    const uint64_t fp_dense = Fnv1a64(row.stream_dense);
    const double touch_dense = row.gauge_dense.TouchedPerEvent();
    const double touch_virtual = row.gauge_virtual.TouchedPerEvent();
    const double ratio =
        touch_virtual == 0 ? 0 : touch_dense / touch_virtual;
    if (row.scenario.rfind("churn", 0) == 0) churn_gauge_ratio = ratio;
    audit.AddRow({row.scenario, identical ? "yes" : "NO", Hex64(fp_virtual),
                  std::to_string(row.gauge_virtual.completion_events() +
                                 row.gauge_virtual.submits()),
                  FormatDouble(touch_dense, 2),
                  FormatDouble(touch_virtual, 2),
                  FormatDouble(ratio, 1) + "x",
                  std::to_string(row.gauge_virtual.peak_running_set())});
    report.AddText("stream_fingerprint_virtual_" + row.scenario,
                   Hex64(fp_virtual));
    report.AddText("stream_fingerprint_dense_" + row.scenario,
                   Hex64(fp_dense));
    report.AddMetric("streams_identical_" + row.scenario, identical ? 1 : 0);
    report.AddMetric("touched_per_event_dense_" + row.scenario, touch_dense);
    report.AddMetric("touched_per_event_virtual_" + row.scenario,
                     touch_virtual);
    report.AddMetric("touched_per_event_ratio_" + row.scenario, ratio);
    report.AddMetric(
        "peak_running_set_" + row.scenario,
        static_cast<double>(row.gauge_virtual.peak_running_set()));
  }
  audit.Print(std::cout);

  const bool gauge_ok = churn_gauge_ratio >= 4.0;
  const bool audit_passed = streams_identical && gauge_ok;
  if (!streams_identical) {
    std::cout << "\nFAIL: virtual-time and dense-reference executors emitted "
                 "different completion streams\n";
  }
  if (!gauge_ok) {
    std::cout << "\nFAIL: cost-gauge ratio at the churn point is "
              << FormatDouble(churn_gauge_ratio, 1)
              << "x, below the required 4x\n";
  }
  report.SetResultsTable(audit);
  report.AddMetric("churn_gauge_ratio", churn_gauge_ratio);
  report.AddMetric("churn_resident_queries", resident);
  report.AddMetric("audit_passed", audit_passed ? 1 : 0);
  report.Write();
  return audit_passed ? 0 : 1;
}
