// Reproduces Table 5.1: starting and bulk loading an MPPDB.
//
// The provisioning model is calibrated to the paper's EC2 measurements
// (~170 s/node start + ~50.55 s/GB loading, i.e. the paper's 1.2 GB/min).
// This bench prints the modeled times for the paper's five rows next to
// the paper's measured values, and demonstrates the timing end-to-end by
// actually provisioning an instance through the Cluster's async path.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  ProvisioningModel model;

  bench::PrintBanner(
      "Table 5.1: Starting and Bulk Loading a MPPDB",
      "Modeled node-start + MPPDB-init and bulk-loading times vs the\n"
      "paper's measurements (seconds).");

  struct Row {
    int nodes;
    double data_gb;
    double paper_start;
    double paper_load;
  };
  const Row rows[] = {
      {2, 200, 462, 10172},  {4, 400, 850, 20302},   {6, 600, 1248, 30121},
      {8, 800, 1504, 40853}, {10, 1000, 1779, 50446},
  };
  TablePrinter table({"tenant / data", "start+init (model)", "(paper)",
                      "bulk load (model)", "(paper)"});
  for (const auto& row : rows) {
    table.AddRow({std::to_string(row.nodes) + "-node / " +
                      std::to_string(static_cast<int>(row.data_gb)) + "GB",
                  FormatDouble(DurationToSeconds(model.NodeStartTime(row.nodes)), 0) + "s",
                  FormatDouble(row.paper_start, 0) + "s",
                  FormatDouble(DurationToSeconds(model.BulkLoadTime(row.data_gb)), 0) + "s",
                  FormatDouble(row.paper_load, 0) + "s"});
  }
  table.Print(std::cout);

  // End-to-end check through the async provisioning path (10-node / 1 TB,
  // the §5.1 example that takes ~14.5 hours).
  SimEngine engine;
  Cluster cluster(10, &engine);
  SimTime ready_at = 0;
  auto result = cluster.CreateInstanceAsync(
      10, {{0, 1000.0}},
      [&](MppdbInstance*) { ready_at = engine.now(); });
  if (!result.ok()) return 1;
  engine.Run();
  std::cout << "\nEnd-to-end async provisioning of 10-node / 1TB: "
            << FormatDouble(DurationToSeconds(ready_at) / 3600, 2)
            << " hours (paper: ~14.5 hours)\n";
  return 0;
}
