// Reproduces Table 5.1: starting and bulk loading an MPPDB.
//
// The provisioning model is calibrated to the paper's EC2 measurements
// (~170 s/node start + ~50.55 s/GB loading, i.e. the paper's 1.2 GB/min).
// This bench prints the modeled times for the paper's five rows next to
// the paper's measured values, and demonstrates the timing end-to-end by
// actually provisioning each row through the Cluster's async path — each
// row (plus the 10-node / 1 TB §5.1 example) is an independent trial with
// its own SimEngine/Cluster, fanned across --jobs workers.

#include <iostream>
#include <stdexcept>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "table5_1_provisioning";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  ProvisioningModel model;

  PrintBanner(
      "Table 5.1: Starting and Bulk Loading a MPPDB",
      "Modeled node-start + MPPDB-init and bulk-loading times vs the\n"
      "paper's measurements (seconds).");

  struct Row {
    int nodes;
    double data_gb;
    double paper_start;
    double paper_load;
  };
  const Row rows[] = {
      {2, 200, 462, 10172},  {4, 400, 850, 20302},   {6, 600, 1248, 30121},
      {8, 800, 1504, 40853}, {10, 1000, 1779, 50446},
  };

  // Trials 0..4 provision the five paper rows end-to-end through the async
  // path; trial 5 is the §5.1 example (10-node / 1 TB, ~14.5 hours).
  SweepRunner runner({options.jobs, options.seed});
  auto ready_times = runner.Map<SimTime>(
      std::size(rows) + 1, [&](TrialContext& context) {
        int nodes;
        double data_gb;
        if (context.trial_index < std::size(rows)) {
          nodes = rows[context.trial_index].nodes;
          data_gb = rows[context.trial_index].data_gb;
        } else {
          nodes = 10;
          data_gb = 1000.0;
        }
        SimEngine engine;
        Cluster cluster(nodes, &engine);
        SimTime ready_at = -1;
        auto result = cluster.CreateInstanceAsync(
            nodes, {{0, data_gb}},
            [&](MppdbInstance*) { ready_at = engine.now(); });
        if (!result.ok()) throw std::runtime_error("CreateInstanceAsync failed");
        engine.Run();
        if (ready_at < 0) throw std::runtime_error("instance never became ready");
        return ready_at;
      });

  TablePrinter table({"tenant / data", "start+init (model)", "(paper)",
                      "bulk load (model)", "(paper)", "e2e async"});
  for (size_t i = 0; i < std::size(rows); ++i) {
    const Row& row = rows[i];
    table.AddRow({std::to_string(row.nodes) + "-node / " +
                      std::to_string(static_cast<int>(row.data_gb)) + "GB",
                  FormatDouble(DurationToSeconds(model.NodeStartTime(row.nodes)), 0) + "s",
                  FormatDouble(row.paper_start, 0) + "s",
                  FormatDouble(DurationToSeconds(model.BulkLoadTime(row.data_gb)), 0) + "s",
                  FormatDouble(row.paper_load, 0) + "s",
                  FormatDouble(DurationToSeconds(ready_times[i]), 0) + "s"});
  }
  table.Print(std::cout);

  double e2e_hours = DurationToSeconds(ready_times[std::size(rows)]) / 3600;
  std::cout << "\nEnd-to-end async provisioning of 10-node / 1TB: "
            << FormatDouble(e2e_hours, 2)
            << " hours (paper: ~14.5 hours)\n";

  report.SetResultsTable(table);
  report.AddMetric("e2e_10node_1tb_hours", e2e_hours);
  report.AddMetric("trials", static_cast<double>(std::size(rows) + 1));
  report.Write();
  return 0;
}
