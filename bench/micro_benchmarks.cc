// Micro-benchmarks (google-benchmark) for Thrifty's hot paths: the
// level-set candidate evaluation that dominates tenant grouping, Algorithm 1
// routing decisions, processor-sharing instance event handling, and epoch
// discretization.

#include <benchmark/benchmark.h>

#include "common/simd.h"
#include "core/thrifty.h"

namespace thrifty {
namespace {

std::vector<uint64_t> RandomWords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (auto& w : out) w = rng.Next();
  return out;
}

std::vector<ActivityVector> MakeOfficeHourTenants(size_t count,
                                                  size_t num_epochs,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<ActivityVector> out;
  for (TenantId id = 0; id < static_cast<TenantId>(count); ++id) {
    DynamicBitmap bits(num_epochs);
    size_t day = num_epochs / 14 == 0 ? num_epochs : num_epochs / 14;
    for (size_t d = 0; d + day <= num_epochs; d += day) {
      size_t start = d + rng.NextBounded(day / 2 + 1);
      bits.SetRange(start, start + day / 10 + rng.NextBounded(day / 10 + 1));
    }
    out.push_back(ActivityVector::FromBitmap(id, bits));
  }
  return out;
}

void BM_LevelSetEvaluateAdd(benchmark::State& state) {
  size_t num_epochs = static_cast<size_t>(state.range(0));
  auto tenants = MakeOfficeHourTenants(20, num_epochs, 7);
  GroupLevelSet group(num_epochs);
  for (size_t i = 0; i < 10; ++i) group.Add(tenants[i]);
  size_t next = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.EvaluateAdd(tenants[next]));
    next = next == 19 ? 10 : next + 1;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LevelSetEvaluateAdd)->Arg(10'000)->Arg(120'000)->Arg(1'200'000);

void BM_LevelSetAddRemove(benchmark::State& state) {
  size_t num_epochs = static_cast<size_t>(state.range(0));
  auto tenants = MakeOfficeHourTenants(12, num_epochs, 11);
  GroupLevelSet group(num_epochs);
  for (size_t i = 0; i < 11; ++i) group.Add(tenants[i]);
  for (auto _ : state) {
    group.Add(tenants[11]);
    benchmark::DoNotOptimize(group.Ttp(3));
    Status st = group.Remove(tenants[11]);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LevelSetAddRemove)->Arg(120'000);

// SIMD kernel primitives (common/simd.h) at the span lengths the level-set
// argmin streams. Labels report the resolved dispatch target; run with
// THRIFTY_FORCE_SCALAR=1 to benchmark the scalar reference instead.
void BM_SpanPopcount(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto w = RandomWords(n, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::SpanPopcount(w.data(), n));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * n * 8));
  state.SetLabel(simd::TargetName());
}
BENCHMARK(BM_SpanPopcount)->Arg(8)->Arg(64)->Arg(1024);

void BM_FusedAndPopcount(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomWords(n, 22);
  auto b = RandomWords(n, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::AndPopcount(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * n * 2 * 8));
  state.SetLabel(simd::TargetName());
}
BENCHMARK(BM_FusedAndPopcount)->Arg(8)->Arg(64)->Arg(1024);

void BM_OrReduce(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto dst = RandomWords(n, 24);
  auto src = RandomWords(n, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::OrReduce(dst.data(), src.data(), n));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * n * 2 * 8));
  state.SetLabel(simd::TargetName());
}
BENCHMARK(BM_OrReduce)->Arg(8)->Arg(64)->Arg(1024);

void BM_ArgminCandidate(benchmark::State& state) {
  // One pruned candidate evaluation against an incumbent, the inner loop of
  // FindBestCandidate: plan build + top-down level kernels, allocation-free
  // after the first iteration.
  size_t num_epochs = static_cast<size_t>(state.range(0)) * 64;
  auto tenants = MakeOfficeHourTenants(20, num_epochs, 7);
  GroupLevelSet group(num_epochs);
  for (size_t i = 0; i < 10; ++i) group.Add(tenants[i]);
  std::vector<size_t> incumbent = group.EvaluateAdd(tenants[10]);
  GroupLevelSet::EvalScratch scratch;
  size_t next = 11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        group.EvaluateAddCompare(tenants[next], incumbent, &scratch));
    next = next == 19 ? 11 : next + 1;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(simd::TargetName());
}
BENCHMARK(BM_ArgminCandidate)->Arg(8)->Arg(64)->Arg(1024);

void BM_RoutingDecision(benchmark::State& state) {
  SimEngine engine;
  std::vector<std::unique_ptr<MppdbInstance>> instances;
  std::vector<MppdbInstance*> raw;
  for (InstanceId id = 0; id < 3; ++id) {
    instances.push_back(std::make_unique<MppdbInstance>(id, 4, &engine));
    raw.push_back(instances.back().get());
  }
  GroupRouter router(0, raw);
  TenantId tenant = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Route(tenant));
    tenant = (tenant + 1) % 30;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RoutingDecision);

void BM_ProcessorSharingChurn(benchmark::State& state) {
  // Submit/complete churn with the given steady concurrency.
  int concurrency = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimEngine engine;
    MppdbInstance instance(0, 8, &engine);
    instance.AddTenant(0, 100);
    QueryTemplate tmpl;
    tmpl.id = 0;
    tmpl.work_seconds_per_gb = 0.4;
    state.ResumeTiming();
    for (int q = 0; q < 200; ++q) {
      QuerySubmission s;
      s.query_id = q;
      s.tenant_id = 0;
      benchmark::DoNotOptimize(instance.Submit(s, tmpl));
      if (instance.Concurrency() >= concurrency) {
        engine.Step();  // drive one completion
      }
    }
    engine.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_ProcessorSharingChurn)->Arg(1)->Arg(4)->Arg(16);

void BM_InstanceChurn(benchmark::State& state) {
  // High-concurrency churn, the regime the virtual-time executor targets:
  // `resident` long queries pin the concurrency while short queries arrive
  // and complete. Arg 0 selects the executor structure, Arg 1 the resident
  // count — compare dense/64 vs virtual/64 (and /256) for the O(k) vs
  // O(log k) per-event gap the fig1_1 audit gates on.
  PsExecutorMode mode = state.range(0) == 0 ? PsExecutorMode::kDenseReference
                                            : PsExecutorMode::kVirtualTime;
  int resident = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    SimEngine engine;
    MppdbInstance instance(0, 8, &engine, InstanceState::kOnline, mode);
    instance.AddTenant(0, 100);
    QueryTemplate long_tmpl;
    long_tmpl.id = 0;
    long_tmpl.work_seconds_per_gb = 800.0;
    QueryTemplate short_tmpl;
    short_tmpl.id = 1;
    short_tmpl.work_seconds_per_gb = 0.004;
    QueryId next = 0;
    state.ResumeTiming();
    for (int q = 0; q < resident; ++q) {
      QuerySubmission s;
      s.query_id = next++;
      s.tenant_id = 0;
      benchmark::DoNotOptimize(instance.Submit(s, long_tmpl));
    }
    for (int q = 0; q < 400; ++q) {
      QuerySubmission s;
      s.query_id = next++;
      s.tenant_id = 0;
      benchmark::DoNotOptimize(instance.Submit(s, short_tmpl));
      while (instance.Concurrency() > resident) {
        engine.Step();  // drive completions at full concurrency
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 400);
}
BENCHMARK(BM_InstanceChurn)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 256})
    ->Args({1, 256});

void BM_IntervalsToBitmap(benchmark::State& state) {
  Rng rng(13);
  IntervalSet set;
  for (int i = 0; i < 2000; ++i) {
    SimTime begin = rng.NextInt(0, 14 * kDay - kHour);
    set.Add(begin, begin + rng.NextInt(kSecond, kHour));
  }
  EpochConfig epochs{10 * kSecond, 0, 14 * kDay};
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalsToBitmap(set, epochs));
  }
}
BENCHMARK(BM_IntervalsToBitmap);

void BM_StreamedEpochize(benchmark::State& state) {
  // Same interval set as BM_IntervalsToBitmap, but straight to sparse
  // words: no dense intermediate, and finer grids only cost output words.
  Rng rng(13);
  IntervalSet set;
  for (int i = 0; i < 2000; ++i) {
    SimTime begin = rng.NextInt(0, 14 * kDay - kHour);
    set.Add(begin, begin + rng.NextInt(kSecond, kHour));
  }
  EpochConfig epochs{state.range(0) * kSecond, 0, 14 * kDay};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EpochizeIntervals(0, set, epochs));
  }
}
BENCHMARK(BM_StreamedEpochize)->Arg(10)->Arg(1);

void BM_RtTtpUpdateAndQuery(benchmark::State& state) {
  RtTtpMonitor monitor(3, 24 * kHour);
  SimTime now = 0;
  int count = 0;
  Rng rng(17);
  for (auto _ : state) {
    now += static_cast<SimTime>(rng.NextInt(1, 60)) * kSecond;
    count = static_cast<int>(rng.NextInt(0, 6));
    monitor.OnActiveCountChange(now, count);
    benchmark::DoNotOptimize(monitor.RtTtp(now));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RtTtpUpdateAndQuery);

}  // namespace
}  // namespace thrifty

BENCHMARK_MAIN();
