// Reproduces Figure 7.4: consolidation effectiveness, tenant-group size,
// and execution time as the replication factor R varies (1 ... 4).
//
// Expected shape (paper): group size grows strongly with R (4.7 -> 22.2
// tenants from R=1 to R=4) since a group tolerates R concurrently active
// tenants; effectiveness grows only mildly (78.8% -> 82.0%) because R also
// multiplies the MPPDBs each group needs.
//
// The workload is generated once; the 4 x 2 (R, solver) runs are
// independent trials fanned across --jobs workers over the shared const
// workload.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "fig7_4_replication";
  BenchOptions options = ParseBenchArgs(argc, argv, bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  const Workload workload = GenerateWorkload(catalog, config);
  const auto vectors = EpochizeWorkload(workload, config.epoch_size);

  PrintBanner("Figure 7.4: Varying Replication Factor R",
              "T=5000, theta=0.8, P=99.9%, E=10s, 14-day horizon.");

  const int replication_factors[] = {1, 2, 3, 4};
  const GroupingSolver solvers[] = {GroupingSolver::kFfd,
                                    GroupingSolver::kTwoStep};
  SweepRunner runner({options.jobs, options.seed});
  auto rows = runner.Map<SolverRow>(
      std::size(replication_factors) * std::size(solvers),
      [&](TrialContext& context) {
        int r = replication_factors[context.trial_index / std::size(solvers)];
        GroupingSolver solver = solvers[context.trial_index % std::size(solvers)];
        return RunSolver(solver, workload, vectors, r, config.sla_fraction,
                         options.solver_jobs);
      });

  TablePrinter table({"R", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp"});
  TablePrinter timings({"R", "FFD time (s)", "2-step time (s)"});
  for (size_t p = 0; p < std::size(replication_factors); ++p) {
    const SolverRow& ffd = rows[p * 2];
    const SolverRow& two_step = rows[p * 2 + 1];
    std::string r = std::to_string(replication_factors[p]);
    table.AddRow({r, FormatPercent(ffd.effectiveness, 1),
                  FormatPercent(two_step.effectiveness, 1),
                  FormatDouble(ffd.average_group_size, 1),
                  FormatDouble(two_step.average_group_size, 1)});
    timings.AddRow({r, FormatDouble(ffd.solve_seconds, 2),
                    FormatDouble(two_step.solve_seconds, 2)});
    report.AddMetric("ffd_solve_seconds_r" + r, ffd.solve_seconds);
    report.AddMetric("two_step_solve_seconds_r" + r, two_step.solve_seconds);
    report.AddMetric("two_step_effectiveness_r" + r, two_step.effectiveness);
  }
  table.Print(std::cout);
  std::cout << "\nSolver wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  report.SetResultsTable(table);
  report.AddMetric("trials", static_cast<double>(rows.size()));
  report.Write();
  return 0;
}
