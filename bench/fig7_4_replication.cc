// Reproduces Figure 7.4: consolidation effectiveness, tenant-group size,
// and execution time as the replication factor R varies (1 ... 4).
//
// Expected shape (paper): group size grows strongly with R (4.7 -> 22.2
// tenants from R=1 to R=4) since a group tolerates R concurrently active
// tenants; effectiveness grows only mildly (78.8% -> 82.0%) because R also
// multiplies the MPPDBs each group needs.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace thrifty;
  using namespace thrifty::bench;

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  Workload workload = GenerateWorkload(catalog, config);
  auto vectors = EpochizeWorkload(workload, config.epoch_size);

  PrintBanner("Figure 7.4: Varying Replication Factor R",
              "T=5000, theta=0.8, P=99.9%, E=10s, 14-day horizon.");

  TablePrinter table({"R", "FFD eff.", "2-step eff.", "FFD grp",
                      "2-step grp", "FFD time (s)", "2-step time (s)"});
  for (int r : {1, 2, 3, 4}) {
    auto rows = RunBothSolvers(workload, vectors, r, config.sla_fraction);
    table.AddRow({std::to_string(r),
                  FormatPercent(rows[0].effectiveness, 1),
                  FormatPercent(rows[1].effectiveness, 1),
                  FormatDouble(rows[0].average_group_size, 1),
                  FormatDouble(rows[1].average_group_size, 1),
                  FormatDouble(rows[0].solve_seconds, 2),
                  FormatDouble(rows[1].solve_seconds, 2)});
    std::cout << "  [R=" << r << " done]" << std::endl;
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
