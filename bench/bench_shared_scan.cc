// Shared-scan batching sweep: how much effective work does
// PsExecutorMode::kSharedScan eliminate as same-template traffic skews?
//
// One 16-node instance hosting 8 tenants x 100 GB serves k resident
// queries whose templates are Zipf(theta)-sampled over the 22 TPC-H
// templates, in two waves (the second wave lands mid-flight, exercising
// joiner catch-up tags) with a node failure + repair in between. Every
// theta point runs twice — kVirtualTime and kSharedScan — on the same
// deterministic arrival script, and the bench reports per point:
//
//   * shared-scan hit rate (admissions merged into an in-flight batch),
//   * effective-work reduction (gauge query-work / slot-work) — the extra
//     consolidation effectiveness shared execution buys,
//   * SLA pass rate in both modes (latency <= the k-shared reference),
//   * makespan in both modes and both completion-stream fingerprints.
//
// Gates (exit 1 on failure):
//   1. Degeneracy: the theta=1 script remapped to all-distinct template
//      ids runs byte-identically (FNV-1a 64 stream fingerprint) under
//      kSharedScan and kVirtualTime — shared-off costs nothing.
//   2. At theta >= 1 the shared mode serves >= 1.5x fewer effective work
//      units (work ratio >= 1.5) with k = 256 residents (64 --smoke).
//   3. The shared mode's SLA pass rate is never below kVirtualTime's.
//
// Results land in BENCH_shared_scan.json. --smoke shrinks k for CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/distributions.h"

namespace thrifty {
namespace {

struct Arrival {
  SimTime time = 0;
  TenantId tenant = 0;
  TemplateId template_id = 0;
};

// The deterministic arrival script for one theta point: two waves of
// Zipf-skewed template draws round-robined over the tenants, plus the
// failure/repair times. The script is a pure function of (seed, theta, k).
struct Scenario {
  std::vector<Arrival> arrivals;
  SimTime fail_at = 0;
  SimTime repair_at = 0;
};

Scenario BuildScenario(const QueryCatalog& catalog, uint64_t seed,
                       double theta, int residents, int tenants) {
  const std::vector<TemplateId>& tpch =
      catalog.SuiteTemplates(QuerySuite::kTpch);
  ZipfDistribution zipf(tpch.size(), theta);
  Rng rng = Rng(seed).Fork(static_cast<uint64_t>(theta * 1000.0));

  Scenario s;
  // Wave 1: the resident population, staggered 100 ms apart so admissions
  // interleave with nothing in flight yet.
  for (int i = 0; i < residents; ++i) {
    Arrival a;
    a.time = 100 * i;
    a.tenant = i % tenants;
    a.template_id = tpch[zipf.Sample(&rng)];
    s.arrivals.push_back(a);
  }
  // Wave 2: half the population again, landing mid-flight while wave 1 is
  // still being served — these admissions hit open batches and take the
  // joiner catch-up path.
  const SimTime wave2 = 100 * residents + 20 * kSecond;
  for (int i = 0; i < residents / 2; ++i) {
    Arrival a;
    a.time = wave2 + 150 * i;
    a.tenant = (residents + i) % tenants;
    a.template_id = tpch[zipf.Sample(&rng)];
    s.arrivals.push_back(a);
  }
  s.fail_at = wave2 + 150 * (residents / 4);
  s.repair_at = s.fail_at + 60 * kSecond;
  return s;
}

struct RunStats {
  std::string stream;
  uint64_t fingerprint = 0;
  double hit_rate = 0;
  double work_ratio = 0;
  double sla_pass_rate = 0;
  SimTime makespan = 0;
  size_t completed = 0;
};

// Replays one scenario on a fresh instance in `mode`. The SLA reference for
// every query is its dedicated latency times the resident count — the
// latency a query of that template would see at full egalitarian load in
// kVirtualTime — so shared mode can only match or beat the pass rate.
RunStats RunScenario(const QueryCatalog& catalog, const Scenario& scenario,
                     PsExecutorMode mode, int residents, int tenants) {
  SimEngine engine;
  SimCostGauge gauge;
  engine.set_cost_gauge(&gauge);
  const int nodes = 16;
  MppdbInstance instance(0, nodes, &engine, InstanceState::kOnline, mode);
  const double data_gb = 100;
  for (TenantId t = 0; t < tenants; ++t) instance.AddTenant(t, data_gb);

  RunStats stats;
  size_t sla_met = 0;
  instance.set_completion_callback([&](const QueryCompletion& c) {
    stats.stream += "t=" + std::to_string(c.finish_time) +
                    ",q=" + std::to_string(c.query_id) +
                    ",k=" + std::to_string(c.max_concurrency) + ";";
    if (c.MeasuredLatency() <= c.reference_latency) ++sla_met;
    ++stats.completed;
  });

  QueryId next_id = 0;
  for (const Arrival& a : scenario.arrivals) {
    engine.ScheduleAt(a.time, [&, a](SimTime) {
      const QueryTemplate& tmpl = catalog.Get(a.template_id);
      QuerySubmission s;
      s.query_id = next_id++;
      s.tenant_id = a.tenant;
      s.template_id = a.template_id;
      s.reference_latency =
          tmpl.DedicatedLatency(data_gb, nodes) * residents;
      if (!instance.Submit(s, tmpl).ok()) std::exit(1);
    });
  }
  engine.ScheduleAt(scenario.fail_at,
                    [&](SimTime) { (void)instance.InjectNodeFailure(); });
  engine.ScheduleAt(scenario.repair_at,
                    [&](SimTime) { (void)instance.RepairNode(); });
  engine.Run();

  stats.stream += "completed=" + std::to_string(instance.completed_queries()) +
                  ",busy=" + std::to_string(instance.busy_time()) + ";";
  stats.fingerprint = bench::Fnv1a64(stats.stream);
  stats.hit_rate = gauge.SharedHitRate();
  stats.work_ratio = gauge.SharedWorkRatio();
  stats.sla_pass_rate =
      stats.completed == 0
          ? 1.0
          : static_cast<double>(sla_met) / static_cast<double>(stats.completed);
  stats.makespan = engine.now();
  return stats;
}

// Degeneracy audit: the same arrival script with every arrival remapped to
// a distinct synthetic template (cost profile copied from its original), so
// every shared batch is a singleton. kSharedScan must then be byte-identical
// to kVirtualTime.
RunStats RunAllDistinct(const QueryCatalog& catalog, const Scenario& scenario,
                        PsExecutorMode mode, int residents, int tenants) {
  std::vector<QueryTemplate> distinct;
  distinct.reserve(scenario.arrivals.size());
  Scenario remapped = scenario;
  for (size_t i = 0; i < remapped.arrivals.size(); ++i) {
    QueryTemplate t = catalog.Get(remapped.arrivals[i].template_id);
    t.id = static_cast<TemplateId>(i);
    t.name = "distinct" + std::to_string(i);
    distinct.push_back(t);
    remapped.arrivals[i].template_id = t.id;
  }
  QueryCatalog distinct_catalog(std::move(distinct));
  return RunScenario(distinct_catalog, remapped, mode, residents, tenants);
}

std::string Hex64(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

}  // namespace
}  // namespace thrifty

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "shared_scan";
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  QueryCatalog catalog = QueryCatalog::Default();
  const int residents = smoke ? 64 : 256;
  const int tenants = 8;
  const uint64_t seed = options.SeedOr(0x5C4A);
  const std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5, 2.0};

  PrintBanner(
      "Shared-scan batching vs template skew",
      "One 16-node instance, " + std::to_string(residents) +
          " resident queries in two waves, templates Zipf(theta) over the\n"
          "22 TPC-H templates; node failure + repair mid-flight. Each theta\n"
          "runs on kVirtualTime and kSharedScan; work ratio = dedicated\n"
          "work admitted / slot work served." +
          std::string(smoke ? " [--smoke scale]" : ""));

  TablePrinter table({"theta", "hit rate", "work ratio", "SLA virt",
                      "SLA shared", "makespan virt (s)", "makespan shared (s)",
                      "fp virt", "fp shared"});
  bool sla_ok = true;
  bool work_ok = true;
  double peak_work_ratio = 0;
  for (double theta : thetas) {
    Scenario scenario =
        BuildScenario(catalog, seed, theta, residents, tenants);
    RunStats virt = RunScenario(catalog, scenario, PsExecutorMode::kVirtualTime,
                                residents, tenants);
    RunStats shared = RunScenario(catalog, scenario,
                                  PsExecutorMode::kSharedScan, residents,
                                  tenants);
    if (shared.sla_pass_rate + 1e-12 < virt.sla_pass_rate) sla_ok = false;
    if (theta >= 1.0 && shared.work_ratio < 1.5) work_ok = false;
    peak_work_ratio = std::max(peak_work_ratio, shared.work_ratio);
    table.AddRow({FormatDouble(theta, 1), FormatDouble(shared.hit_rate, 3),
                  FormatDouble(shared.work_ratio, 2) + "x",
                  FormatDouble(virt.sla_pass_rate, 4),
                  FormatDouble(shared.sla_pass_rate, 4),
                  FormatDouble(DurationToSeconds(virt.makespan), 1),
                  FormatDouble(DurationToSeconds(shared.makespan), 1),
                  Hex64(virt.fingerprint), Hex64(shared.fingerprint)});
    std::string suffix = "_theta" + FormatDouble(theta, 1);
    report.AddMetric("hit_rate" + suffix, shared.hit_rate);
    report.AddMetric("work_ratio" + suffix, shared.work_ratio);
    report.AddMetric("sla_virtual" + suffix, virt.sla_pass_rate);
    report.AddMetric("sla_shared" + suffix, shared.sla_pass_rate);
    report.AddMetric("makespan_virtual_s" + suffix,
                     DurationToSeconds(virt.makespan));
    report.AddMetric("makespan_shared_s" + suffix,
                     DurationToSeconds(shared.makespan));
  }
  table.Print(std::cout);

  // Gate 1: degeneracy — all-distinct templates make shared scan free.
  Scenario parity_scenario =
      BuildScenario(catalog, seed, 1.0, residents, tenants);
  RunStats parity_virtual = RunAllDistinct(
      catalog, parity_scenario, PsExecutorMode::kVirtualTime, residents,
      tenants);
  RunStats parity_shared = RunAllDistinct(
      catalog, parity_scenario, PsExecutorMode::kSharedScan, residents,
      tenants);
  const bool parity_ok =
      parity_virtual.stream == parity_shared.stream &&
      parity_virtual.fingerprint == parity_shared.fingerprint;
  std::cout << "\nShared-off parity (all-distinct templates): "
            << (parity_ok ? "byte-identical" : "MISMATCH") << " (fp "
            << Hex64(parity_shared.fingerprint) << ")\n";
  if (!parity_ok) {
    std::cout << "FAIL: kSharedScan with singleton batches diverged from "
                 "kVirtualTime\n";
  }
  if (!work_ok) {
    std::cout << "FAIL: work ratio below 1.5x at some theta >= 1\n";
  }
  if (!sla_ok) {
    std::cout << "FAIL: shared mode lost SLA pass rate somewhere\n";
  }

  report.SetResultsTable(table);
  report.AddText("parity_fingerprint", Hex64(parity_shared.fingerprint));
  report.AddMetric("parity_ok", parity_ok ? 1 : 0);
  report.AddMetric("peak_work_ratio", peak_work_ratio);
  report.AddMetric("resident_queries", residents);
  const bool passed = parity_ok && work_ok && sla_ok;
  report.AddMetric("gates_passed", passed ? 1 : 0);
  report.Write();
  return passed ? 0 : 1;
}
