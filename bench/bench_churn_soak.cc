// Churn soak: delta re-consolidation vs cold full solves over a sequence
// of register / de-register / activity-drift cycles.
//
// A tenant population is generated once; an initial deployment plan is
// advised over the starting tenants. Each cycle then deterministically
// de-registers a few tenants, registers fresh ones from a reserve pool,
// and drifts the activity of a few others (their query logs are thinned,
// halving their active ratio). Two planners process every cycle:
//
//   - delta: ReconsolidationPlanner with activity-drift screening and a
//     warm-started re-solve. Untouched groups are carried over
//     byte-identically (ids kept); only affected groups are re-grouped,
//     with group repair keeping feasible seed structure.
//   - cold: a full DeploymentAdvisor::Advise over the entire registered
//     population, as if no previous plan existed.
//
// The soak gates (exit 1 on failure):
//   - determinism: the delta pass's plan-membership fingerprint is
//     byte-identical at --solver-jobs 1, 2, and 4;
//   - effectiveness: per cycle, the delta plan's consolidation
//     effectiveness is within 1pp of the cold plan's;
//   - coverage: every registered tenant appears in the delta plan exactly
//     once;
//   - speed (full scenario only): summed over cycles, the delta re-solve
//     is at least 10x faster than the cold full solve.
//
// Extra flags (before the shared ones): --smoke shrinks the scenario to
// T=260 tenants, a 3-day horizon, and 2 cycles for CI; the speed ratio is
// reported but not gated there (sub-second timings are too noisy).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.h"

namespace thrifty {
namespace {

using bench::Workload;

/// One cycle's churn, as indices into the workload's tenant array. Built
/// up front from the bench seed only, so every pass (delta at each
/// --solver-jobs value, cold) replays the identical schedule.
struct CycleChurn {
  std::vector<size_t> deregistered;
  std::vector<size_t> registered;
  std::vector<size_t> drifted;
};

struct SoakScenario {
  int initial_tenants = 1200;
  int cycles = 5;
  int churn_per_cycle = 6;  // tenants de-registered = registered per cycle
  int drift_per_cycle = 3;  // tenants whose activity drifts per cycle
  int horizon_days = 14;
};

/// Builds a tenant's query log from its activity intervals, keeping every
/// `stride`-th interval. stride 1 reproduces the tenant's full activity;
/// stride 2^g is the g-times-drifted (thinned) variant, whose active
/// ratio is roughly halved per drift.
TenantLog BuildLog(const Workload& workload, size_t index, size_t stride) {
  TenantLog log;
  log.tenant_id = workload.tenants[index].id;
  const auto& intervals = workload.activity[index].intervals();
  for (size_t j = 0; j < intervals.size(); j += stride) {
    log.entries.push_back(
        {intervals[j].begin, 0, intervals[j].length(), -1});
  }
  return log;
}

std::vector<CycleChurn> BuildSchedule(const SoakScenario& scenario,
                                      uint64_t seed) {
  Rng rng = Rng(seed).Fork(0x5eed);
  std::vector<size_t> registered(
      static_cast<size_t>(scenario.initial_tenants));
  for (size_t i = 0; i < registered.size(); ++i) registered[i] = i;
  size_t next_fresh = registered.size();

  std::vector<CycleChurn> schedule(static_cast<size_t>(scenario.cycles));
  for (auto& cycle : schedule) {
    for (int j = 0; j < scenario.churn_per_cycle; ++j) {
      size_t pos = rng.NextBounded(registered.size());
      cycle.deregistered.push_back(registered[pos]);
      registered[pos] = registered.back();
      registered.pop_back();
    }
    for (int j = 0; j < scenario.churn_per_cycle; ++j) {
      cycle.registered.push_back(next_fresh);
      registered.push_back(next_fresh);
      ++next_fresh;
    }
    std::unordered_set<size_t> chosen;
    while (chosen.size() < static_cast<size_t>(scenario.drift_per_cycle)) {
      size_t pos = rng.NextBounded(registered.size());
      if (chosen.insert(registered[pos]).second) {
        cycle.drifted.push_back(registered[pos]);
      }
    }
  }
  return schedule;
}

/// Mutable registration state replayed by every pass.
struct SoakState {
  std::vector<size_t> registered;           // workload indices
  std::vector<TenantLog> history;           // one log per registered tenant
  std::unordered_map<size_t, size_t> drift_gen;  // index -> thinnings

  explicit SoakState(const Workload& workload, int initial_tenants) {
    registered.reserve(static_cast<size_t>(initial_tenants));
    history.reserve(static_cast<size_t>(initial_tenants));
    for (size_t i = 0; i < static_cast<size_t>(initial_tenants); ++i) {
      registered.push_back(i);
      history.push_back(BuildLog(workload, i, 1));
    }
  }

  void Apply(const Workload& workload, const CycleChurn& churn) {
    for (size_t index : churn.deregistered) {
      TenantId id = workload.tenants[index].id;
      auto reg = std::find(registered.begin(), registered.end(), index);
      registered.erase(reg);
      auto log = std::find_if(
          history.begin(), history.end(),
          [id](const TenantLog& l) { return l.tenant_id == id; });
      history.erase(log);
    }
    for (size_t index : churn.registered) {
      registered.push_back(index);
      history.push_back(BuildLog(workload, index, 1));
    }
    for (size_t index : churn.drifted) {
      size_t gen = ++drift_gen[index];
      TenantId id = workload.tenants[index].id;
      auto log = std::find_if(
          history.begin(), history.end(),
          [id](const TenantLog& l) { return l.tenant_id == id; });
      if (log != history.end()) {
        *log = BuildLog(workload, index, size_t{1} << gen);
      }
    }
  }

  std::vector<TenantSpec> RegisteredSpecs(const Workload& workload) const {
    std::vector<TenantSpec> specs;
    specs.reserve(registered.size());
    for (size_t index : registered) specs.push_back(workload.tenants[index]);
    return specs;
  }
};

/// Appends the advisor's excluded (always-active / burst-imminent) tenants
/// as dedicated singleton groups, the way the re-consolidation planner
/// does, so cold plans account for the same node total as delta plans.
Status AppendDedicated(const AdvisorOutput& advised, GroupId* next_id,
                       DeploymentPlan* plan) {
  for (size_t e = 0; e < advised.excluded_tenants.size(); ++e) {
    const TenantSpec& excluded = advised.excluded_tenants[e];
    GroupDeployment dedicated;
    dedicated.group_id = (*next_id)++;
    dedicated.tenants.push_back(excluded);
    dedicated.member_activity_baseline.push_back(
        advised.excluded_active_ratios[e]);
    THRIFTY_ASSIGN_OR_RETURN(
        dedicated.cluster,
        DesignGroupCluster(excluded.requested_nodes, excluded.requested_nodes,
                           plan->replication_factor));
    plan->groups.push_back(std::move(dedicated));
  }
  return Status::OK();
}

/// Deterministic membership stream of a plan: group ids with their sorted
/// member tenant ids and node counts, in group-id order (now the shared
/// canonical form in placement/deployment_plan.h; format unchanged, so the
/// committed fingerprints still compare).
std::string PlanStream(const DeploymentPlan& plan) {
  return CanonicalMembershipStream(plan);
}

/// With CHURN_DEBUG set in the environment, dumps the plan's group-size
/// distribution per size class to stderr (fragmentation shows up as a
/// tail of tiny groups).
void MaybeDumpPlanShape(const char* label, const DeploymentPlan& plan) {
  if (std::getenv("CHURN_DEBUG") == nullptr) return;
  std::cerr << label << " used " << plan.TotalNodesUsed() << ":";
  std::map<int, std::vector<size_t>> by_class;
  for (const auto& group : plan.groups) {
    by_class[group.LargestTenantNodes()].push_back(group.tenants.size());
  }
  for (auto& [nodes, sizes] : by_class) {
    std::cerr << " n" << nodes << "[";
    for (size_t s : sizes) std::cerr << s << ",";
    std::cerr << "]";
  }
  std::cerr << "\n";
}

bool CoversExactly(const DeploymentPlan& plan,
                   const std::vector<TenantSpec>& specs) {
  std::unordered_map<TenantId, int> seen;
  for (const auto& group : plan.groups) {
    for (const auto& tenant : group.tenants) ++seen[tenant.id];
  }
  if (seen.size() != specs.size()) return false;
  for (const auto& spec : specs) {
    if (seen[spec.id] != 1) return false;
  }
  return true;
}

struct CycleStats {
  size_t registered = 0;
  size_t untouched = 0;
  size_t resolved = 0;
  size_t drifted = 0;
  size_t absorbers = 0;
  size_t repaired = 0;
  size_t evicted = 0;
  size_t missing = 0;
  double effectiveness = 0;
  double seconds = 0;
  bool covers = true;
};

struct SoakResult {
  std::vector<CycleStats> cycles;
  uint64_t fingerprint = 0;
  double total_seconds = 0;
};

/// Replays the schedule with the delta planner (warm-started, drift
/// screened); the plan produced by each cycle is the next cycle's input.
SoakResult RunDelta(const Workload& workload, const SoakScenario& scenario,
                    const std::vector<CycleChurn>& schedule,
                    const DeploymentPlan& initial_plan,
                    const AdvisorOptions& base, int solver_jobs) {
  SoakState state(workload, scenario.initial_tenants);
  DeploymentPlan plan = initial_plan;

  ReconsolidationOptions options;
  options.advisor = base;
  options.advisor.solver_jobs = solver_jobs;
  // Per-tenant active ratios in this workload sit around 1-2%; a drift
  // (log thinning) halves a tenant's ratio, moving it by ~0.005-0.01.
  options.activity_delta_threshold = 0.003;
  ReconsolidationPlanner planner(options);

  SoakResult result;
  std::string stream;
  for (const CycleChurn& churn : schedule) {
    state.Apply(workload, churn);

    ReconsolidationInput input;
    input.current_plan = std::move(plan);
    for (size_t index : churn.registered) {
      input.new_tenants.push_back(workload.tenants[index]);
    }
    for (size_t index : churn.deregistered) {
      input.deregistered.insert(workload.tenants[index].id);
    }

    auto start = std::chrono::steady_clock::now();
    auto output =
        planner.Plan(input, state.history, 0, workload.horizon_end);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!output.ok()) throw std::runtime_error(output.status().ToString());
    plan = std::move(output->plan);

    CycleStats stats;
    stats.registered = state.registered.size();
    stats.untouched = output->untouched_groups.size();
    stats.resolved = output->resolved_groups.size();
    stats.drifted = output->drifted_groups;
    stats.absorbers = output->absorber_groups;
    stats.repaired = output->grouping.warm_groups_repaired;
    stats.evicted = output->grouping.warm_members_evicted;
    stats.missing = output->grouping.warm_members_missing;
    stats.effectiveness = plan.ConsolidationEffectiveness();
    stats.seconds = elapsed.count();
    stats.covers = CoversExactly(plan, state.RegisteredSpecs(workload));
    MaybeDumpPlanShape("DELTA", plan);
    result.total_seconds += stats.seconds;
    result.cycles.push_back(stats);
    stream += PlanStream(plan);
  }
  result.fingerprint = bench::Fnv1a64(stream);
  return result;
}

/// Replays the schedule with a cold full Advise over the entire registered
/// population each cycle (no previous plan, no warm start).
SoakResult RunCold(const Workload& workload, const SoakScenario& scenario,
                   const std::vector<CycleChurn>& schedule,
                   const AdvisorOptions& base, int solver_jobs) {
  SoakState state(workload, scenario.initial_tenants);
  AdvisorOptions options = base;
  options.solver_jobs = solver_jobs;
  DeploymentAdvisor advisor(options);

  SoakResult result;
  for (const CycleChurn& churn : schedule) {
    state.Apply(workload, churn);
    std::vector<TenantSpec> specs = state.RegisteredSpecs(workload);

    auto start = std::chrono::steady_clock::now();
    auto advised = advisor.Advise(specs, state.history, 0,
                                  workload.horizon_end);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!advised.ok()) throw std::runtime_error(advised.status().ToString());
    DeploymentPlan plan = std::move(advised->plan);
    GroupId next_id = static_cast<GroupId>(plan.groups.size());
    auto status = AppendDedicated(*advised, &next_id, &plan);
    if (!status.ok()) throw std::runtime_error(status.ToString());

    CycleStats stats;
    stats.registered = state.registered.size();
    stats.effectiveness = plan.ConsolidationEffectiveness();
    stats.seconds = elapsed.count();
    stats.covers = CoversExactly(plan, specs);
    MaybeDumpPlanShape("COLD ", plan);
    result.total_seconds += stats.seconds;
    result.cycles.push_back(stats);
  }
  return result;
}

}  // namespace
}  // namespace thrifty

int main(int argc, char** argv) {
  using namespace thrifty;
  using namespace thrifty::bench;

  const std::string bench_name = "churn_soak";
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchOptions options = ParseBenchArgs(static_cast<int>(passthrough.size()),
                                        passthrough.data(), bench_name);
  BenchReport report(bench_name, options);

  SoakScenario scenario;
  if (smoke) {
    scenario.initial_tenants = 260;
    scenario.cycles = 2;
    scenario.churn_per_cycle = 5;
    scenario.drift_per_cycle = 3;
    scenario.horizon_days = 3;
  }

  QueryCatalog catalog = QueryCatalog::Default();
  ExperimentConfig config;
  config.seed = options.seed;
  config.solver_jobs = options.solver_jobs;
  config.horizon_days = scenario.horizon_days;
  // Reserve pool: enough fresh tenants for every cycle's registrations.
  config.num_tenants = scenario.initial_tenants +
                       scenario.cycles * scenario.churn_per_cycle;
  const Workload workload = GenerateWorkload(catalog, config);

  PrintBanner(
      "Churn soak: delta re-consolidation vs cold full solves",
      "T=" + std::to_string(scenario.initial_tenants) + " initial, " +
          std::to_string(scenario.cycles) + " cycles of " +
          std::to_string(scenario.churn_per_cycle) + " dereg + " +
          std::to_string(scenario.churn_per_cycle) + " new + " +
          std::to_string(scenario.drift_per_cycle) + " drifted, " +
          std::to_string(scenario.horizon_days) + "-day horizon." +
          (smoke ? " [--smoke scenario]" : ""));

  const std::vector<CycleChurn> schedule = BuildSchedule(scenario,
                                                         options.seed);

  // Initial deployment: advise the starting population once; every pass
  // starts from this same plan (advisor output is solver-jobs-invariant).
  AdvisorOptions base;  // R=3, P=99.9%, E=10s
  DeploymentPlan initial_plan;
  {
    SoakState initial(workload, scenario.initial_tenants);
    AdvisorOptions advisor_options = base;
    advisor_options.solver_jobs = options.solver_jobs;
    DeploymentAdvisor advisor(advisor_options);
    auto advised = advisor.Advise(initial.RegisteredSpecs(workload),
                                  initial.history, 0, workload.horizon_end);
    if (!advised.ok()) {
      std::cerr << "initial Advise failed: " << advised.status().ToString()
                << "\n";
      return 1;
    }
    initial_plan = std::move(advised->plan);
    GroupId next_id = static_cast<GroupId>(initial_plan.groups.size());
    if (!AppendDedicated(*advised, &next_id, &initial_plan).ok()) return 1;
  }

  // Delta pass at each solver-jobs value; the first is the canonical one
  // for stats and timing, the others exist to assert determinism.
  const int jobs_values[] = {1, 2, 4};
  std::vector<SoakResult> delta_runs;
  for (int jobs : jobs_values) {
    delta_runs.push_back(RunDelta(workload, scenario, schedule, initial_plan,
                                  base, jobs));
  }
  const SoakResult& delta = delta_runs[0];
  SoakResult cold = RunCold(workload, scenario, schedule, base,
                            options.solver_jobs);

  bool deterministic = true;
  for (const SoakResult& run : delta_runs) {
    if (run.fingerprint != delta.fingerprint) deterministic = false;
  }
  bool covers = true;
  bool effectiveness_ok = true;

  TablePrinter table({"cycle", "tenants", "untouched", "re-solved",
                      "drifted", "absorbers", "repaired", "evicted",
                      "missing", "delta eff", "cold eff"});
  TablePrinter timings({"cycle", "delta (s)", "cold (s)", "speedup"});
  for (size_t c = 0; c < delta.cycles.size(); ++c) {
    const CycleStats& d = delta.cycles[c];
    const CycleStats& k = cold.cycles[c];
    double delta_pp = (d.effectiveness - k.effectiveness) * 100;
    if (std::abs(delta_pp) > 1.0) effectiveness_ok = false;
    if (!d.covers || !k.covers) covers = false;
    table.AddRow({std::to_string(c + 1), std::to_string(d.registered),
                  std::to_string(d.untouched), std::to_string(d.resolved),
                  std::to_string(d.drifted), std::to_string(d.absorbers),
                  std::to_string(d.repaired), std::to_string(d.evicted),
                  std::to_string(d.missing),
                  FormatPercent(d.effectiveness, 2),
                  FormatPercent(k.effectiveness, 2)});
    timings.AddRow({std::to_string(c + 1), FormatDouble(d.seconds, 3),
                    FormatDouble(k.seconds, 3),
                    FormatDouble(k.seconds / std::max(d.seconds, 1e-9), 1)});
    report.AddMetric("delta_solve_seconds_c" + std::to_string(c + 1),
                     d.seconds);
    report.AddMetric("cold_solve_seconds_c" + std::to_string(c + 1),
                     k.seconds);
    report.AddMetric("delta_effectiveness_c" + std::to_string(c + 1),
                     d.effectiveness);
    report.AddMetric("cold_effectiveness_c" + std::to_string(c + 1),
                     k.effectiveness);
    report.AddMetric("eff_delta_pp_c" + std::to_string(c + 1), delta_pp);
  }
  table.Print(std::cout);
  std::cout << "\nPlanner wall-clock (non-deterministic, excluded from the "
               "fingerprint):\n";
  timings.Print(std::cout);

  double speedup = cold.total_seconds / std::max(delta.total_seconds, 1e-9);
  bool speed_ok = smoke || speedup >= 10.0;
  std::cout << "\nTotal: delta " << FormatDouble(delta.total_seconds, 3)
            << " s vs cold " << FormatDouble(cold.total_seconds, 3)
            << " s -> " << FormatDouble(speedup, 1) << "x"
            << (smoke ? " (not gated in --smoke)" : " (gate: >= 10x)")
            << "\n";
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(delta.fingerprint));
  std::cout << "Delta plan fingerprint: " << fp
            << (deterministic ? " (identical at solver-jobs 1/2/4)"
                              : " (MISMATCH across solver-jobs!)")
            << "\n";

  bool ok = deterministic && covers && effectiveness_ok && speed_ok;
  if (!ok) {
    std::cout << "\nFAIL:";
    if (!deterministic) std::cout << " fingerprint-mismatch";
    if (!covers) std::cout << " tenant-coverage";
    if (!effectiveness_ok) std::cout << " effectiveness-drift>1pp";
    if (!speed_ok) std::cout << " speedup<10x";
    std::cout << "\n";
  }

  report.SetResultsTable(table);
  report.AddText("delta_plan_fnv1a", fp);
  report.AddMetric("delta_solve_seconds_total", delta.total_seconds);
  report.AddMetric("cold_solve_seconds_total", cold.total_seconds);
  report.AddMetric("delta_speedup_x", speedup);
  report.AddMetric("determinism_check_passed", deterministic ? 1 : 0);
  report.AddMetric("coverage_check_passed", covers ? 1 : 0);
  report.AddMetric("effectiveness_check_passed", effectiveness_ok ? 1 : 0);
  report.AddMetric("speedup_check_passed", speed_ok ? 1 : 0);
  report.AddMetric("cycles", static_cast<double>(scenario.cycles));
  report.Write();
  return ok ? 0 : 1;
}
