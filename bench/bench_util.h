// Shared harness code for the paper-reproduction benches (Fig 7.1-7.6).
//
// Each bench generates a §7.1 tenant workload, epochizes activity, runs the
// FFD baseline and the two-step heuristic, and prints the same series the
// paper's figures report: consolidation effectiveness (% nodes saved),
// average tenant-group size, and algorithm execution time.

#ifndef THRIFTY_BENCH_BENCH_UTIL_H_
#define THRIFTY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/thrifty.h"

namespace thrifty {
namespace bench {

/// \brief Command-line options shared by every bench binary.
struct BenchOptions {
  /// Worker threads for the trial sweep (--jobs=N). 1 = sequential.
  int jobs = 1;
  /// Worker threads *inside* one solve / one workload composition
  /// (--solver-jobs=N): candidate-evaluation sharding in the two-step
  /// heuristic, parallel branch-and-bound subtrees in the exact solver,
  /// and tenant-sharded log composition. Composes multiplicatively with
  /// --jobs (each concurrent trial gets its own solver pool). Results are
  /// bit-identical for any value. 1 = sequential.
  int solver_jobs = 1;
  /// Warm-start sweep points from their neighbour's grouping
  /// (--warm-start): fig7_1/fig7_5 add a sequential two-step pass that
  /// seeds each point with the previous point's plan and records per-point
  /// solver-time savings and effectiveness deltas. Off by default; the
  /// fingerprinted cold results are unchanged either way.
  bool warm_start = false;
  /// Base seed for the sweep's deterministic trial streams (--seed=S).
  uint64_t seed = 42;
  /// True when --seed was passed explicitly (benches whose canonical
  /// scenario uses a non-default seed keep it unless overridden).
  bool seed_set = false;
  /// Directory for the BENCH_<name>.json result file (--out=DIR).
  std::string out_dir = ".";
  /// Skip writing the JSON file (--no-json).
  bool write_json = true;

  /// \brief The explicit --seed if given, else `fallback`.
  uint64_t SeedOr(uint64_t fallback) const {
    return seed_set ? seed : fallback;
  }
};

/// \brief Parses --jobs/--seed/--out/--no-json/--help; exits on bad usage.
BenchOptions ParseBenchArgs(int argc, char** argv,
                            const std::string& bench_name);

/// \brief FNV-1a 64-bit fingerprint, used to assert byte-identity of result
/// tables across --jobs values.
uint64_t Fnv1a64(const std::string& text);

/// \brief Renders a TablePrinter to a string.
std::string RenderTable(const TablePrinter& table);

/// \brief Collects a bench run's wall clock, metrics, and deterministic
/// result table, and writes them to BENCH_<name>.json.
///
/// The results table must contain only deterministic cells (no wall-clock
/// timings), so its fingerprint is byte-identical for --jobs=1 and
/// --jobs=N; timings belong in metrics, which are reported but never
/// fingerprinted.
class BenchReport {
 public:
  /// \brief Starts the wall clock.
  BenchReport(std::string bench_name, BenchOptions options);

  void AddMetric(const std::string& name, double value);
  void AddText(const std::string& name, const std::string& value);

  /// \brief Stores the deterministic results table (text + fingerprint).
  void SetResultsTable(const TablePrinter& table);

  double ElapsedSeconds() const;

  /// \brief Stops the clock, prints a summary line, and writes the JSON
  /// file (unless --no-json).
  void Write();

 private:
  std::string bench_name_;
  BenchOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::string results_table_;
};

/// \brief Parameters of one experiment run (defaults = Table 7.1 defaults,
/// with a 14-day horizon instead of 30 days to bound bench runtime; see
/// EXPERIMENTS.md).
struct ExperimentConfig {
  int num_tenants = 5000;
  double zipf_theta = 0.8;
  int replication_factor = 3;
  double sla_fraction = 0.999;
  SimDuration epoch_size = 10 * kSecond;
  int horizon_days = 14;
  /// Worker threads for log composition inside GenerateWorkload (and the
  /// default for per-solve parallelism); output is jobs-invariant.
  int solver_jobs = 1;
  /// Step-1 sessions generated per (node size, suite) class; the paper
  /// used 100.
  int sessions_per_class = 25;
  uint64_t seed = 42;
  LogComposerOptions composer;
};

/// \brief A generated multi-tenant workload (activity-only form).
struct Workload {
  std::vector<TenantSpec> tenants;
  std::vector<IntervalSet> activity;
  SimTime horizon_end = 0;
  double average_active_ratio = 0;
};

/// \brief Runs §7.1 Steps 1+2 (activity-only composition).
Workload GenerateWorkload(const QueryCatalog& catalog,
                          const ExperimentConfig& config);

/// \brief Which interval->sparse-word pipeline EpochizeWorkload runs.
///
/// kStreamed is the production path (StreamedEpochizer, no dense
/// intermediate); kDense is the legacy reference path retained so benches
/// can measure the eliminated dense-bitmap footprint and assert the two
/// paths produce identical vectors.
enum class EpochizePath { kStreamed, kDense };

/// \brief Epochizes a workload's activity, tenant-sharded over `jobs`
/// workers (byte-identical output for any value).
///
/// If `gauge` is non-null it records the peak bytes of per-tenant
/// epochization working state (the dense path's Θ(d) bitmaps vs the
/// streamed path's O(1) walker), summed over in-flight tenants.
std::vector<ActivityVector> EpochizeWorkload(
    const Workload& workload, SimDuration epoch_size, int jobs = 1,
    EpochizePath path = EpochizePath::kStreamed,
    EpochizeGauge* gauge = nullptr);

/// \brief Result row of one solver run.
struct SolverRow {
  std::string solver;
  double effectiveness = 0;       // fraction of requested nodes saved
  double average_group_size = 0;  // tenants per tenant-group
  double solve_seconds = 0;
  int64_t nodes_used = 0;
  int64_t nodes_requested = 0;
  size_t num_groups = 0;
  size_t level_set_bytes = 0;        // sparse group-level-set footprint
  size_t level_set_dense_bytes = 0;  // dense-bitmap equivalent footprint
  size_t warm_groups_kept = 0;       // warm-started solves only
  size_t warm_groups_dissolved = 0;
  size_t warm_groups_repaired = 0;
  size_t warm_members_evicted = 0;
  size_t warm_members_missing = 0;
};

/// \brief Runs one solver over the epochized problem (verifying the
/// solution) and summarizes it. `solver_jobs` threads the solve itself;
/// the result is identical for any value. For the two-step solver,
/// `warm_start` optionally seeds the solve with a previous grouping and
/// `solution_out` optionally receives the full grouping so callers can
/// chain warm starts across sweep points.
SolverRow RunSolver(GroupingSolver solver, const Workload& workload,
                    const std::vector<ActivityVector>& vectors,
                    int replication_factor, double sla_fraction,
                    int solver_jobs = 1,
                    const GroupingSolution* warm_start = nullptr,
                    GroupingSolution* solution_out = nullptr);

/// \brief Current process peak resident set size in bytes (0 if the
/// platform doesn't report it).
size_t PeakRssBytes();

/// \brief Runs FFD then the two-step heuristic.
std::vector<SolverRow> RunBothSolvers(const Workload& workload,
                                      const std::vector<ActivityVector>&
                                          vectors,
                                      int replication_factor,
                                      double sla_fraction,
                                      int solver_jobs = 1);

/// \brief Prints a figure banner.
void PrintBanner(const std::string& title, const std::string& description);

}  // namespace bench
}  // namespace thrifty

#endif  // THRIFTY_BENCH_BENCH_UTIL_H_
