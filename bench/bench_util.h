// Shared harness code for the paper-reproduction benches (Fig 7.1-7.6).
//
// Each bench generates a §7.1 tenant workload, epochizes activity, runs the
// FFD baseline and the two-step heuristic, and prints the same series the
// paper's figures report: consolidation effectiveness (% nodes saved),
// average tenant-group size, and algorithm execution time.

#ifndef THRIFTY_BENCH_BENCH_UTIL_H_
#define THRIFTY_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/thrifty.h"

namespace thrifty {
namespace bench {

/// \brief Parameters of one experiment run (defaults = Table 7.1 defaults,
/// with a 14-day horizon instead of 30 days to bound bench runtime; see
/// EXPERIMENTS.md).
struct ExperimentConfig {
  int num_tenants = 5000;
  double zipf_theta = 0.8;
  int replication_factor = 3;
  double sla_fraction = 0.999;
  SimDuration epoch_size = 10 * kSecond;
  int horizon_days = 14;
  /// Step-1 sessions generated per (node size, suite) class; the paper
  /// used 100.
  int sessions_per_class = 25;
  uint64_t seed = 42;
  LogComposerOptions composer;
};

/// \brief A generated multi-tenant workload (activity-only form).
struct Workload {
  std::vector<TenantSpec> tenants;
  std::vector<IntervalSet> activity;
  SimTime horizon_end = 0;
  double average_active_ratio = 0;
};

/// \brief Runs §7.1 Steps 1+2 (activity-only composition).
Workload GenerateWorkload(const QueryCatalog& catalog,
                          const ExperimentConfig& config);

/// \brief Epochizes a workload's activity.
std::vector<ActivityVector> EpochizeWorkload(const Workload& workload,
                                             SimDuration epoch_size);

/// \brief Result row of one solver run.
struct SolverRow {
  std::string solver;
  double effectiveness = 0;       // fraction of requested nodes saved
  double average_group_size = 0;  // tenants per tenant-group
  double solve_seconds = 0;
  int64_t nodes_used = 0;
  int64_t nodes_requested = 0;
  size_t num_groups = 0;
};

/// \brief Runs one solver over the epochized problem (verifying the
/// solution) and summarizes it.
SolverRow RunSolver(GroupingSolver solver, const Workload& workload,
                    const std::vector<ActivityVector>& vectors,
                    int replication_factor, double sla_fraction);

/// \brief Runs FFD then the two-step heuristic.
std::vector<SolverRow> RunBothSolvers(const Workload& workload,
                                      const std::vector<ActivityVector>&
                                          vectors,
                                      int replication_factor,
                                      double sla_fraction);

/// \brief Prints a figure banner.
void PrintBanner(const std::string& title, const std::string& description);

}  // namespace bench
}  // namespace thrifty

#endif  // THRIFTY_BENCH_BENCH_UTIL_H_
