// Packed bitmaps over epoch indices.
//
// DynamicBitmap stores one bit per epoch and exposes the word-level access
// the tenant-grouping inner loop needs: candidate-evaluation in the two-step
// heuristic runs word-parallel boolean algebra restricted to the candidate's
// nonzero words (see activity/level_set.h).

#ifndef THRIFTY_COMMON_BITMAP_H_
#define THRIFTY_COMMON_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace thrifty {

/// \brief Number of set bits in `count` words.
size_t PopcountWords(const uint64_t* words, size_t count);

/// \brief Number of set bits of a & b over two parallel `count`-word spans.
size_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t count);

/// \brief Fixed-size packed bitmap (one bit per epoch index).
class DynamicBitmap {
 public:
  DynamicBitmap() = default;

  /// \brief Creates a bitmap of `num_bits` zero bits.
  explicit DynamicBitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// \brief Sets all bits in [begin, end) (clamped to the bitmap size).
  void SetRange(size_t begin, size_t end);

  /// \brief Number of set bits.
  size_t Popcount() const;

  /// \brief Number of set bits in common with `other` (same size required).
  size_t AndPopcount(const DynamicBitmap& other) const;

  /// \brief ORs `other` into this bitmap. Mismatched sizes grow this bitmap
  /// to the larger of the two (a shorter `other` ORs into the prefix; a
  /// longer one extends this bitmap with zero bits first, so no set bit is
  /// ever truncated). Returns true iff any bit is set afterwards — the
  /// OR-reduction comes for free from the word scan, saving callers a
  /// separate None() pass.
  bool OrWith(const DynamicBitmap& other);

  /// \brief True if no bit is set.
  bool None() const;

  /// \brief Indices of words that contain at least one set bit, ascending.
  std::vector<uint32_t> NonzeroWordIndices() const;

  uint64_t word(size_t w) const { return words_[w]; }
  uint64_t& mutable_word(size_t w) { return words_[w]; }
  const uint64_t* data() const { return words_.data(); }

  bool operator==(const DynamicBitmap& other) const = default;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_BITMAP_H_
