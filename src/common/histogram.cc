#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace thrifty {

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth), log_growth_(std::log(growth)) {
  assert(min_value > 0);
  assert(growth > 1);
}

size_t Histogram::BucketFor(double value) const {
  if (value <= min_value_) return 0;
  return static_cast<size_t>(
             std::ceil(std::log(value / min_value_) / log_growth_ - 1e-12));
}

double Histogram::BucketUpperBound(size_t bucket) const {
  return min_value_ * std::pow(growth_, static_cast<double>(bucket));
}

void Histogram::Add(double value) {
  assert(value >= 0);
  size_t b = BucketFor(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::min() const { return count_ == 0 ? 0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0 : max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  size_t target = static_cast<size_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  size_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target) {
      return std::min(BucketUpperBound(b), max_);
    }
  }
  return max_;
}

double Histogram::FractionAtMost(double threshold) const {
  if (count_ == 0) return 1.0;
  // Bucket-granular and pessimistic: a bucket counts only when its entire
  // range lies at or below the threshold. Including the bucket that merely
  // *contains* the threshold would also count values above it, optimistically
  // inflating SLA attainment by up to one bucket's worth of mass.
  size_t limit = BucketFor(threshold);
  // The threshold's own bucket qualifies only when the threshold sits on its
  // upper bound (relative tolerance absorbs pow/log round-trip error).
  size_t end = limit;
  if (BucketUpperBound(limit) <= threshold * (1 + 1e-9)) ++end;
  size_t seen = 0;
  for (size_t b = 0; b < end && b < buckets_.size(); ++b) {
    seen += buckets_[b];
  }
  return static_cast<double>(seen) / static_cast<double>(count_);
}

void Histogram::Merge(const Histogram& other) {
  assert(min_value_ == other.min_value_ && growth_ == other.growth_);
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace thrifty
