#include "common/simd.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>

// THRIFTY_SIMD_FORCE_SCALAR (the CMake option THRIFTY_FORCE_SCALAR=ON)
// compiles the vector paths out entirely; the env var of the same name
// forces scalar at runtime. Vector paths are built with per-function
// target attributes so the rest of the translation unit (and the whole
// project) keeps the portable baseline flags.
#if !defined(THRIFTY_SIMD_FORCE_SCALAR)
// x86-64 only (the per-lane delta accumulation assumes 64-bit size_t).
#if defined(__x86_64__)
#define THRIFTY_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define THRIFTY_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace thrifty {
namespace simd {

// --- Scalar reference ---------------------------------------------------

size_t ScalarSpanPopcount(const uint64_t* w, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(w[i]);
  return total;
}

size_t ScalarAndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

uint64_t ScalarOrReduce(uint64_t* dst, const uint64_t* src, size_t n) {
  uint64_t any = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] |= src[i];
    any |= dst[i];
  }
  return any;
}

size_t ScalarOrPopcountDelta(const uint64_t* old_w, const uint64_t* cand,
                             size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += std::popcount(old_w[i] | cand[i]) - std::popcount(old_w[i]);
  }
  return total;
}

size_t ScalarOrAndPopcountDelta(const uint64_t* old_w, const uint64_t* below,
                                const uint64_t* cand, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += std::popcount(old_w[i] | (below[i] & cand[i])) -
             std::popcount(old_w[i]);
  }
  return total;
}

void ScalarOrAndBcastStoreDelta(const uint64_t* old_w, const uint64_t* below,
                                uint64_t cand, uint64_t* out, size_t* delta,
                                size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t lifted = (below[i] & cand) & ~old_w[i];
    out[i] = old_w[i] | lifted;
    delta[i] += static_cast<size_t>(std::popcount(lifted));
  }
}

void ScalarAndNotBcastStoreDelta(const uint64_t* old_w, const uint64_t* above,
                                 uint64_t cand, uint64_t* out, size_t* delta,
                                 size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t dropped = (old_w[i] & cand) & ~above[i];
    out[i] = old_w[i] & ~dropped;
    delta[i] += static_cast<size_t>(std::popcount(dropped));
  }
}

// --- AVX2 ---------------------------------------------------------------

#if defined(THRIFTY_SIMD_X86)

#define THRIFTY_AVX2 __attribute__((target("avx2")))

// Per-64-bit-lane popcount of a 256-bit vector: the classic pshufb
// nibble-LUT counts bits per byte, then SAD against zero folds each 8-byte
// lane into its u64 sum. Exact for every input (pure integer), so results
// match the scalar reference bit-for-bit.
THRIFTY_AVX2 static inline __m256i PopLanes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

THRIFTY_AVX2 static inline uint64_t HSum(__m256i acc) {
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

THRIFTY_AVX2 static size_t Avx2SpanPopcount(const uint64_t* w, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    acc = _mm256_add_epi64(acc, PopLanes(a));
    acc = _mm256_add_epi64(acc, PopLanes(b));
  }
  if (i + 4 <= n) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, PopLanes(a));
    i += 4;
  }
  size_t total = HSum(acc);
  for (; i < n; ++i) total += std::popcount(w[i]);
  return total;
}

THRIFTY_AVX2 static size_t Avx2AndPopcount(const uint64_t* a,
                                           const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, PopLanes(_mm256_and_si256(va, vb)));
  }
  size_t total = HSum(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

THRIFTY_AVX2 static uint64_t Avx2OrReduce(uint64_t* dst, const uint64_t* src,
                                          size_t n) {
  __m256i any = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i vo = _mm256_or_si256(vd, vs);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vo);
    any = _mm256_or_si256(any, vo);
  }
  __m128i s = _mm_or_si128(_mm256_castsi256_si128(any),
                           _mm256_extracti128_si256(any, 1));
  uint64_t out = static_cast<uint64_t>(_mm_extract_epi64(s, 0)) |
                 static_cast<uint64_t>(_mm_extract_epi64(s, 1));
  for (; i < n; ++i) {
    dst[i] |= src[i];
    out |= dst[i];
  }
  return out;
}

THRIFTY_AVX2 static size_t Avx2OrPopcountDelta(const uint64_t* old_w,
                                               const uint64_t* cand,
                                               size_t n) {
  // Σ pop(old|cand) − Σ pop(old) == Σ pop(cand & ~old): count only the
  // newly lifted bits, one popcount per word instead of two. The scalar
  // reference computes the subtraction form; these are equal exactly (set
  // algebra on the same words), not just numerically.
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i vo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(old_w + i));
    __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cand + i));
    acc = _mm256_add_epi64(acc, PopLanes(_mm256_andnot_si256(vo, vc)));
  }
  size_t total = HSum(acc);
  for (; i < n; ++i) total += std::popcount(cand[i] & ~old_w[i]);
  return total;
}

THRIFTY_AVX2 static size_t Avx2OrAndPopcountDelta(const uint64_t* old_w,
                                                  const uint64_t* below,
                                                  const uint64_t* cand,
                                                  size_t n) {
  // Σ pop(old|(below&cand)) − Σ pop(old) == Σ pop((below&cand) & ~old).
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i vo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(old_w + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(below + i));
    __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cand + i));
    __m256i lifted =
        _mm256_andnot_si256(vo, _mm256_and_si256(vb, vc));
    acc = _mm256_add_epi64(acc, PopLanes(lifted));
  }
  size_t total = HSum(acc);
  for (; i < n; ++i) {
    total += std::popcount((below[i] & cand[i]) & ~old_w[i]);
  }
  return total;
}

static_assert(sizeof(size_t) == sizeof(uint64_t),
              "per-lane delta accumulation stores u64 lanes into size_t[]");

THRIFTY_AVX2 static void Avx2OrAndBcastStoreDelta(const uint64_t* old_w,
                                                  const uint64_t* below,
                                                  uint64_t cand,
                                                  uint64_t* out,
                                                  size_t* delta, size_t n) {
  const __m256i vc = _mm256_set1_epi64x(static_cast<long long>(cand));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i vo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(old_w + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(below + i));
    __m256i lifted = _mm256_andnot_si256(vo, _mm256_and_si256(vb, vc));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(vo, lifted));
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        reinterpret_cast<const uint64_t*>(delta + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(delta + i),
                        _mm256_add_epi64(vd, PopLanes(lifted)));
  }
  for (; i < n; ++i) {
    uint64_t lifted = (below[i] & cand) & ~old_w[i];
    out[i] = old_w[i] | lifted;
    delta[i] += static_cast<size_t>(std::popcount(lifted));
  }
}

THRIFTY_AVX2 static void Avx2AndNotBcastStoreDelta(const uint64_t* old_w,
                                                   const uint64_t* above,
                                                   uint64_t cand,
                                                   uint64_t* out,
                                                   size_t* delta, size_t n) {
  const __m256i vc = _mm256_set1_epi64x(static_cast<long long>(cand));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i vo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(old_w + i));
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(above + i));
    __m256i dropped = _mm256_andnot_si256(va, _mm256_and_si256(vo, vc));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_andnot_si256(dropped, vo));
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        reinterpret_cast<const uint64_t*>(delta + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(delta + i),
                        _mm256_add_epi64(vd, PopLanes(dropped)));
  }
  for (; i < n; ++i) {
    uint64_t dropped = (old_w[i] & cand) & ~above[i];
    out[i] = old_w[i] & ~dropped;
    delta[i] += static_cast<size_t>(std::popcount(dropped));
  }
}

#endif  // THRIFTY_SIMD_X86

// --- NEON ---------------------------------------------------------------

#if defined(THRIFTY_SIMD_NEON)

// vcntq_u8 counts bits per byte; the vaddv folds to a scalar. NEON is
// baseline on aarch64, so no target attributes are needed.
static inline uint64_t NeonPop128(uint8x16_t v) {
  return vaddvq_u8(vcntq_u8(v));
}

static size_t NeonSpanPopcount(const uint64_t* w, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += NeonPop128(vreinterpretq_u8_u64(vld1q_u64(w + i)));
  }
  for (; i < n; ++i) total += std::popcount(w[i]);
  return total;
}

static size_t NeonAndPopcount(const uint64_t* a, const uint64_t* b,
                              size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    total += NeonPop128(vreinterpretq_u8_u64(v));
  }
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

static uint64_t NeonOrReduce(uint64_t* dst, const uint64_t* src, size_t n) {
  uint64x2_t any = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i));
    vst1q_u64(dst + i, v);
    any = vorrq_u64(any, v);
  }
  uint64_t out = vgetq_lane_u64(any, 0) | vgetq_lane_u64(any, 1);
  for (; i < n; ++i) {
    dst[i] |= src[i];
    out |= dst[i];
  }
  return out;
}

static size_t NeonOrPopcountDelta(const uint64_t* old_w, const uint64_t* cand,
                                  size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // pop(cand & ~old): exactly the bits the candidate lifts.
    uint64x2_t v = vbicq_u64(vld1q_u64(cand + i), vld1q_u64(old_w + i));
    total += NeonPop128(vreinterpretq_u8_u64(v));
  }
  for (; i < n; ++i) total += std::popcount(cand[i] & ~old_w[i]);
  return total;
}

static size_t NeonOrAndPopcountDelta(const uint64_t* old_w,
                                     const uint64_t* below,
                                     const uint64_t* cand, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t bc = vandq_u64(vld1q_u64(below + i), vld1q_u64(cand + i));
    uint64x2_t v = vbicq_u64(bc, vld1q_u64(old_w + i));
    total += NeonPop128(vreinterpretq_u8_u64(v));
  }
  for (; i < n; ++i) {
    total += std::popcount((below[i] & cand[i]) & ~old_w[i]);
  }
  return total;
}

static void NeonOrAndBcastStoreDelta(const uint64_t* old_w,
                                     const uint64_t* below, uint64_t cand,
                                     uint64_t* out, size_t* delta, size_t n) {
  const uint64x2_t vc = vdupq_n_u64(cand);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t vo = vld1q_u64(old_w + i);
    uint64x2_t lifted = vbicq_u64(vandq_u64(vld1q_u64(below + i), vc), vo);
    vst1q_u64(out + i, vorrq_u64(vo, lifted));
    // Per-lane (per-level) popcounts: count bits per byte, then fold each
    // 8-byte lane separately.
    uint64x2_t lanes = vpaddlq_u32(
        vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(lifted)))));
    uint64x2_t vd = vld1q_u64(reinterpret_cast<const uint64_t*>(delta + i));
    vst1q_u64(reinterpret_cast<uint64_t*>(delta + i), vaddq_u64(vd, lanes));
  }
  for (; i < n; ++i) {
    uint64_t lifted = (below[i] & cand) & ~old_w[i];
    out[i] = old_w[i] | lifted;
    delta[i] += static_cast<size_t>(std::popcount(lifted));
  }
}

static void NeonAndNotBcastStoreDelta(const uint64_t* old_w,
                                      const uint64_t* above, uint64_t cand,
                                      uint64_t* out, size_t* delta,
                                      size_t n) {
  const uint64x2_t vc = vdupq_n_u64(cand);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t vo = vld1q_u64(old_w + i);
    uint64x2_t dropped =
        vbicq_u64(vandq_u64(vo, vc), vld1q_u64(above + i));
    vst1q_u64(out + i, vbicq_u64(vo, dropped));
    uint64x2_t lanes = vpaddlq_u32(
        vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(dropped)))));
    uint64x2_t vd = vld1q_u64(reinterpret_cast<const uint64_t*>(delta + i));
    vst1q_u64(reinterpret_cast<uint64_t*>(delta + i), vaddq_u64(vd, lanes));
  }
  for (; i < n; ++i) {
    uint64_t dropped = (old_w[i] & cand) & ~above[i];
    out[i] = old_w[i] & ~dropped;
    delta[i] += static_cast<size_t>(std::popcount(dropped));
  }
}

static_assert(sizeof(size_t) == sizeof(uint64_t),
              "per-lane delta accumulation stores u64 lanes into size_t[]");

#endif  // THRIFTY_SIMD_NEON

// --- Dispatch -----------------------------------------------------------

namespace {

constexpr Kernels kScalarKernels = {
    &ScalarSpanPopcount,       &ScalarAndPopcount,
    &ScalarOrReduce,           &ScalarOrPopcountDelta,
    &ScalarOrAndPopcountDelta, &ScalarOrAndBcastStoreDelta,
    &ScalarAndNotBcastStoreDelta};

#if defined(THRIFTY_SIMD_X86)
constexpr Kernels kAvx2Kernels = {
    &Avx2SpanPopcount,       &Avx2AndPopcount,
    &Avx2OrReduce,           &Avx2OrPopcountDelta,
    &Avx2OrAndPopcountDelta, &Avx2OrAndBcastStoreDelta,
    &Avx2AndNotBcastStoreDelta};
#endif
#if defined(THRIFTY_SIMD_NEON)
constexpr Kernels kNeonKernels = {
    &NeonSpanPopcount,       &NeonAndPopcount,
    &NeonOrReduce,           &NeonOrPopcountDelta,
    &NeonOrAndPopcountDelta, &NeonOrAndBcastStoreDelta,
    &NeonAndNotBcastStoreDelta};
#endif

const Kernels* KernelsFor(Target target) {
  switch (target) {
#if defined(THRIFTY_SIMD_X86)
    case Target::kAvx2:
      return &kAvx2Kernels;
#endif
#if defined(THRIFTY_SIMD_NEON)
    case Target::kNeon:
      return &kNeonKernels;
#endif
    default:
      return &kScalarKernels;
  }
}

Target DetectTarget() {
  const char* force = std::getenv("THRIFTY_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Target::kScalar;
  }
#if defined(THRIFTY_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Target::kAvx2;
#endif
#if defined(THRIFTY_SIMD_NEON)
  return Target::kNeon;
#endif
  return Target::kScalar;
}

struct Dispatch {
  Target target;
  const Kernels* kernels;
  Dispatch() : target(DetectTarget()), kernels(KernelsFor(target)) {}
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;
  return dispatch;
}

}  // namespace

Target ActiveTarget() { return GetDispatch().target; }

const Kernels& ActiveKernels() { return *GetDispatch().kernels; }

const char* TargetName(Target target) {
  switch (target) {
    case Target::kAvx2:
      return "avx2";
    case Target::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

const char* TargetName() { return TargetName(ActiveTarget()); }

bool TargetSupported(Target target) {
  switch (target) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
#if defined(THRIFTY_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Target::kNeon:
#if defined(THRIFTY_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Target SetSimdTargetForTest(Target target) {
  if (!TargetSupported(target)) target = Target::kScalar;
  Dispatch& dispatch = GetDispatch();
  dispatch.target = target;
  dispatch.kernels = KernelsFor(target);
  return target;
}

}  // namespace simd

// --- EvalArena ----------------------------------------------------------

EvalArena::~EvalArena() {
  ::operator delete[](block_, std::align_val_t{64});
}

EvalArena::EvalArena(EvalArena&& other) noexcept
    : block_(other.block_), capacity_(other.capacity_), used_(other.used_) {
  other.block_ = nullptr;
  other.capacity_ = 0;
  other.used_ = 0;
}

EvalArena& EvalArena::operator=(EvalArena&& other) noexcept {
  if (this != &other) {
    ::operator delete[](block_, std::align_val_t{64});
    block_ = other.block_;
    capacity_ = other.capacity_;
    used_ = other.used_;
    other.block_ = nullptr;
    other.capacity_ = 0;
    other.used_ = 0;
  }
  return *this;
}

void EvalArena::Grow(size_t words) {
  size_t capacity = capacity_ == 0 ? 256 : capacity_ * 2;
  if (capacity < words) capacity = words;
  uint64_t* block = static_cast<uint64_t*>(
      ::operator new[](capacity * sizeof(uint64_t), std::align_val_t{64}));
  if (used_ > 0) std::memcpy(block, block_, used_ * sizeof(uint64_t));
  ::operator delete[](block_, std::align_val_t{64});
  block_ = block;
  capacity_ = capacity;
}

}  // namespace thrifty
