// Result<T>: a value-or-Status, the Arrow-style companion to Status.

#ifndef THRIFTY_COMMON_RESULT_H_
#define THRIFTY_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace thrifty {

/// \brief Holds either a successfully computed T or the Status explaining
/// why the computation failed.
///
/// A Result constructed from an OK Status is a programming error (asserted in
/// debug builds, converted to an Internal error otherwise).
template <typename T>
class Result {
 public:
  /// \brief Constructs a successful Result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  /// \brief Constructs a failed Result from a non-OK Status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The failure Status, or OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief The held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` if this Result failed.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace thrifty

/// \brief Assigns the value of a Result expression to `lhs`, or propagates
/// its error Status.
#define THRIFTY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define THRIFTY_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define THRIFTY_ASSIGN_OR_RETURN_NAME(x, y) \
  THRIFTY_ASSIGN_OR_RETURN_CONCAT(x, y)

#define THRIFTY_ASSIGN_OR_RETURN(lhs, expr)                                   \
  THRIFTY_ASSIGN_OR_RETURN_IMPL(                                              \
      THRIFTY_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

#endif  // THRIFTY_COMMON_RESULT_H_
