#include "common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace thrifty {

ZipfDistribution::ZipfDistribution(size_t n, double theta) : theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  assert(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0;
  for (size_t k = 0; k < weights.size(); ++k) {
    assert(weights[k] >= 0);
    total += weights[k];
    cdf_[k] = total;
  }
  assert(total > 0);
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double DiscreteDistribution::Pmf(size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace thrifty
