// Deterministic pseudo-random number generation.
//
// Thrifty's experiments must be exactly reproducible from a seed, so all
// randomness flows through this xoshiro256** implementation rather than
// std::mt19937 (whose distributions are not specified bit-exactly across
// standard library implementations).

#ifndef THRIFTY_COMMON_RNG_H_
#define THRIFTY_COMMON_RNG_H_

#include <cstdint>

namespace thrifty {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seedable and splittable.
///
/// `Fork(stream_id)` derives an independent child generator so that, e.g.,
/// each tenant's log generation is insensitive to the order in which other
/// tenants are generated.
class Rng {
 public:
  /// \brief Seeds the generator; equal seeds yield equal sequences.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound), bias-free. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli draw with probability p of returning true.
  bool NextBool(double p);

  /// \brief Exponentially distributed draw with the given mean (> 0).
  double NextExponential(double mean);

  /// \brief Derives an independent generator for the given stream.
  ///
  /// Children with distinct stream ids (or from distinct parents) produce
  /// statistically independent sequences.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t seed_;
  uint64_t s_[4];
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_RNG_H_
