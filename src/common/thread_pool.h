// Fixed-size worker pool for CPU-parallel experiment execution.

#ifndef THRIFTY_COMMON_THREAD_POOL_H_
#define THRIFTY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace thrifty {

/// \brief Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Submit returns a future that resolves when the task finishes; if the
/// task throws, the exception is captured and rethrown from future::get(),
/// so a failing task never takes down a worker thread. Destruction drains
/// every already-submitted task, then joins all workers.
class ThreadPool {
 public:
  /// \param num_threads worker count; values below 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `task` for execution on some worker.
  ///
  /// The returned future carries the task's exception, if any. Submitting
  /// from inside a task is allowed; submitting during destruction is not.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs `fn(i)` for every i in [0, n), on the pool's workers plus
/// the calling thread.
///
/// Work items are drained from a shared atomic counter, so the partition of
/// indices across threads is load-balanced and scheduling-dependent — `fn`
/// must therefore write only to per-index state (callers that need a
/// deterministic result reduce the per-index slots afterwards, in index
/// order). The calling thread participates and helper tasks are
/// fire-and-forget (they keep the shared state alive and exit as soon as no
/// index remains), so nesting ParallelFor inside a pool task cannot
/// deadlock: the innermost caller drains its own work even when every
/// worker is busy.
///
/// A null `pool` (or n <= 1) runs everything inline on the calling thread.
/// If one or more invocations throw, every index still runs and the
/// exception of the lowest failing index is rethrown.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace thrifty

#endif  // THRIFTY_COMMON_THREAD_POOL_H_
