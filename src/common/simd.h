// Portable SIMD kernel layer for the word-wise hot loops.
//
// Every solve-bound inner loop in this codebase has the same shape: a scan
// over spans of 64-bit activity words combining bitwise algebra with
// popcounts (the Fig 5.3 candidate argmin, DynamicBitmap span popcounts,
// activity OR-reductions). This header exposes those scans as a small set
// of kernel primitives with three implementations — AVX2, NEON, and a
// scalar reference — selected once at startup by runtime CPU detection:
//
//   * SpanPopcount        — popcount over a word span.
//   * AndPopcount         — fused AND + popcount over two parallel spans.
//   * OrReduce            — dst |= src with nonzero-word detection (returns
//                           the OR of all result words).
//   * OrPopcountDelta     — Σ pop(old|cand) − Σ pop(old): the level-1 body
//                           of the candidate argmin.
//   * OrAndPopcountDelta  — Σ pop(old|(below&cand)) − Σ pop(old): the
//                           general level body of the candidate argmin
//                           (L'_m = L_m | (L_{m-1} & C) restricted to the
//                           candidate's words).
//   * OrAndBcastStoreDelta / AndNotBcastStoreDelta — the level-column
//                           rebuild bodies of GroupLevelSet::Add/Remove:
//                           one candidate word broadcast against a
//                           contiguous column of level words, writing the
//                           new column and the per-level popcount deltas.
//
// Correctness contract: every implementation computes bit-identical integer
// results to the scalar reference for every input (these are pure integer
// kernels — there is no floating point anywhere), so swapping dispatch
// targets can never change a solver fingerprint. tests/simd_kernel_test.cc
// proves this with randomized replayable cases per primitive.
//
// Dispatch control:
//   * runtime: set THRIFTY_FORCE_SCALAR=1 in the environment to pin the
//     scalar reference regardless of CPU support (read once, at first use).
//   * compile time: configure with -DTHRIFTY_FORCE_SCALAR=ON to compile the
//     vector paths out entirely.
//   * tests: SetSimdTargetForTest overrides dispatch in-process (never
//     upward — a target the CPU lacks is clamped to scalar).

#ifndef THRIFTY_COMMON_SIMD_H_
#define THRIFTY_COMMON_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace thrifty {
namespace simd {

/// \brief Instruction-set target the kernel dispatch resolved to.
enum class Target {
  kScalar,
  kAvx2,
  kNeon,
};

/// \brief The active dispatch target (CPU detection + THRIFTY_FORCE_SCALAR,
/// resolved once).
Target ActiveTarget();

/// \brief Lower-case name of the active target: "avx2", "neon", "scalar".
const char* TargetName();

/// \brief Name of `target`.
const char* TargetName(Target target);

/// \brief True if the running CPU (and build) can execute `target`.
bool TargetSupported(Target target);

/// \brief Overrides dispatch for tests/benches. Unsupported targets clamp
/// to scalar; returns the target actually installed. Not thread-safe —
/// call only from single-threaded test/bench setup.
Target SetSimdTargetForTest(Target target);

// --- Scalar reference implementations (always available) ---------------
// These are the semantics; the vector paths must match them bit-for-bit.

size_t ScalarSpanPopcount(const uint64_t* w, size_t n);
size_t ScalarAndPopcount(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t ScalarOrReduce(uint64_t* dst, const uint64_t* src, size_t n);
size_t ScalarOrPopcountDelta(const uint64_t* old_w, const uint64_t* cand,
                             size_t n);
size_t ScalarOrAndPopcountDelta(const uint64_t* old_w, const uint64_t* below,
                                const uint64_t* cand, size_t n);
void ScalarOrAndBcastStoreDelta(const uint64_t* old_w, const uint64_t* below,
                                uint64_t cand, uint64_t* out, size_t* delta,
                                size_t n);
void ScalarAndNotBcastStoreDelta(const uint64_t* old_w, const uint64_t* above,
                                 uint64_t cand, uint64_t* out, size_t* delta,
                                 size_t n);

// --- Dispatched kernels -------------------------------------------------

struct Kernels {
  size_t (*span_popcount)(const uint64_t*, size_t);
  size_t (*and_popcount)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*or_reduce)(uint64_t*, const uint64_t*, size_t);
  size_t (*or_popcount_delta)(const uint64_t*, const uint64_t*, size_t);
  size_t (*or_and_popcount_delta)(const uint64_t*, const uint64_t*,
                                  const uint64_t*, size_t);
  void (*or_and_bcast_store_delta)(const uint64_t*, const uint64_t*, uint64_t,
                                   uint64_t*, size_t*, size_t);
  void (*and_not_bcast_store_delta)(const uint64_t*, const uint64_t*,
                                    uint64_t, uint64_t*, size_t*, size_t);
};

/// \brief The active kernel table (initialized on first use).
const Kernels& ActiveKernels();

/// \brief Spans shorter than this run the inline scalar body below instead
/// of paying the dispatch indirection; identical results either way (the
/// vector paths are bit-exact against scalar).
constexpr size_t kInlineSpanWords = 8;

/// \brief Popcount over `n` words.
inline size_t SpanPopcount(const uint64_t* w, size_t n) {
  if (n < kInlineSpanWords) {
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) total += std::popcount(w[i]);
    return total;
  }
  return ActiveKernels().span_popcount(w, n);
}

/// \brief Popcount of a[i] & b[i] over `n` parallel words.
inline size_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  if (n < kInlineSpanWords) {
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
    return total;
  }
  return ActiveKernels().and_popcount(a, b, n);
}

/// \brief dst[i] |= src[i] over `n` words; returns the OR of all result
/// words (nonzero ⇔ at least one set bit anywhere in dst afterwards).
inline uint64_t OrReduce(uint64_t* dst, const uint64_t* src, size_t n) {
  if (n < kInlineSpanWords) {
    uint64_t any = 0;
    for (size_t i = 0; i < n; ++i) {
      dst[i] |= src[i];
      any |= dst[i];
    }
    return any;
  }
  return ActiveKernels().or_reduce(dst, src, n);
}

/// \brief Σ pop(old|cand) − Σ pop(old) over `n` parallel words: how many
/// zero bits of `old` the candidate lifts (the L_0 ≡ all-ones level body).
inline size_t OrPopcountDelta(const uint64_t* old_w, const uint64_t* cand,
                              size_t n) {
  if (n < kInlineSpanWords) {
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += std::popcount(cand[i] & ~old_w[i]);
    }
    return total;
  }
  return ActiveKernels().or_popcount_delta(old_w, cand, n);
}

/// \brief Σ pop(old|(below&cand)) − Σ pop(old) over `n` parallel words: the
/// level-m argmin body, L'_m = L_m | (L_{m-1} & C).
inline size_t OrAndPopcountDelta(const uint64_t* old_w, const uint64_t* below,
                                 const uint64_t* cand, size_t n) {
  if (n < kInlineSpanWords) {
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += std::popcount((below[i] & cand[i]) & ~old_w[i]);
    }
    return total;
  }
  return ActiveKernels().or_and_popcount_delta(old_w, below, cand, n);
}

/// \brief Column-rebuild body of GroupLevelSet::Add with the candidate word
/// broadcast: out[i] = old[i] | (below[i] & cand) and
/// delta[i] += pop(out[i]) − pop(old[i]), elementwise over `n` levels.
inline void OrAndBcastStoreDelta(const uint64_t* old_w, const uint64_t* below,
                                 uint64_t cand, uint64_t* out, size_t* delta,
                                 size_t n) {
  if (n < kInlineSpanWords) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t lifted = (below[i] & cand) & ~old_w[i];
      out[i] = old_w[i] | lifted;
      delta[i] += static_cast<size_t>(std::popcount(lifted));
    }
    return;
  }
  ActiveKernels().or_and_bcast_store_delta(old_w, below, cand, out, delta, n);
}

/// \brief Column-rebuild body of GroupLevelSet::Remove with the candidate
/// word broadcast: out[i] = old[i] & (~cand | above[i]) and
/// delta[i] += pop(old[i]) − pop(out[i]), elementwise over `n` levels.
inline void AndNotBcastStoreDelta(const uint64_t* old_w,
                                  const uint64_t* above, uint64_t cand,
                                  uint64_t* out, size_t* delta, size_t n) {
  if (n < kInlineSpanWords) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t dropped = (old_w[i] & cand) & ~above[i];
      out[i] = old_w[i] & ~dropped;
      delta[i] += static_cast<size_t>(std::popcount(dropped));
    }
    return;
  }
  ActiveKernels().and_not_bcast_store_delta(old_w, above, cand, out, delta,
                                            n);
}

}  // namespace simd

/// \brief Bump-pointer arena for the candidate-evaluation scratch state.
///
/// One arena lives in each solver shard's EvalScratch; every candidate
/// evaluation Reset()s it and carves its working arrays (matched-column
/// index, height-sorted views, lazily gathered level rows) out of one
/// contiguous block, so the argmin inner loop performs no heap allocation
/// and its whole working set stays cache-resident. Reserve() must be called
/// with an upper bound before the per-candidate Alloc()s — the block never
/// grows between Reset()s, which is what keeps previously returned spans
/// stable.
class EvalArena {
 public:
  /// \brief Ensures capacity for `words` 8-byte units. Invalidates
  /// outstanding spans if it grows; call before the first Alloc of a cycle.
  void Reserve(size_t words) {
    if (words > capacity_) Grow(words);
  }

  /// \brief Starts a new allocation cycle (O(1); memory is retained).
  void Reset() { used_ = 0; }

  /// \brief Carves `count` elements of trivially-destructible type T
  /// (rounded up to whole 8-byte units), uninitialized.
  template <typename T>
  T* Alloc(size_t count) {
    static_assert(alignof(T) <= alignof(uint64_t));
    size_t words = (count * sizeof(T) + 7) / 8;
    // Callers pre-Reserve; this is the backstop that keeps Alloc safe if a
    // bound was computed too tightly (it invalidates nothing already
    // handed out only because Grow copies the live prefix).
    if (used_ + words > capacity_) Grow((used_ + words) * 2);
    T* out = reinterpret_cast<T*>(block_ + used_);
    used_ += words;
    return out;
  }

  size_t capacity_words() const { return capacity_; }
  size_t used_words() const { return used_; }

  ~EvalArena();
  EvalArena() = default;
  EvalArena(EvalArena&& other) noexcept;
  EvalArena& operator=(EvalArena&& other) noexcept;
  EvalArena(const EvalArena&) = delete;
  EvalArena& operator=(const EvalArena&) = delete;

 private:
  void Grow(size_t words);

  uint64_t* block_ = nullptr;
  size_t capacity_ = 0;
  size_t used_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_SIMD_H_
