#include "common/status.h"

namespace thrifty {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace thrifty
