#include "common/interval.h"

#include <algorithm>

namespace thrifty {

IntervalSet::IntervalSet(std::vector<TimeInterval> intervals)
    : intervals_(std::move(intervals)), normalized_(false) {
  intervals_.erase(
      std::remove_if(intervals_.begin(), intervals_.end(),
                     [](const TimeInterval& iv) { return iv.empty(); }),
      intervals_.end());
}

void IntervalSet::Add(SimTime begin, SimTime end) {
  if (end <= begin) return;
  // Common case: appending in time order onto an already-normalized set.
  if (normalized_ && !intervals_.empty() && intervals_.back().end < begin) {
    intervals_.push_back({begin, end});
    return;
  }
  if (normalized_ && !intervals_.empty() && begin >= intervals_.back().begin &&
      begin <= intervals_.back().end) {
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }
  intervals_.push_back({begin, end});
  if (intervals_.size() > 1) normalized_ = false;
}

void IntervalSet::Union(const IntervalSet& other) {
  for (const auto& iv : other.intervals()) Add(iv);
}

SimDuration IntervalSet::TotalLength() const {
  Normalize();
  SimDuration total = 0;
  for (const auto& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::Contains(SimTime t) const {
  Normalize();
  // First interval with end > t could contain t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](SimTime v, const TimeInterval& iv) { return v < iv.end; });
  return it != intervals_.end() && it->Contains(t);
}

bool IntervalSet::OverlapsRange(SimTime begin, SimTime end) const {
  if (end <= begin) return false;
  Normalize();
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](SimTime v, const TimeInterval& iv) { return v < iv.end; });
  return it != intervals_.end() && it->begin < end;
}

const std::vector<TimeInterval>& IntervalSet::intervals() const {
  Normalize();
  return intervals_;
}

IntervalSet IntervalSet::Clip(SimTime begin, SimTime end) const {
  Normalize();
  IntervalSet out;
  for (const auto& iv : intervals_) {
    if (iv.end <= begin) continue;
    if (iv.begin >= end) break;
    out.Add(std::max(iv.begin, begin), std::min(iv.end, end));
  }
  return out;
}

IntervalSet IntervalSet::Shift(SimDuration offset) const {
  Normalize();
  IntervalSet out;
  for (const auto& iv : intervals_) out.Add(iv.begin + offset, iv.end + offset);
  return out;
}

bool IntervalSet::empty() const {
  Normalize();
  return intervals_.empty();
}

void IntervalSet::Normalize() const {
  if (normalized_) return;
  std::sort(intervals_.begin(), intervals_.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::vector<TimeInterval> merged;
  merged.reserve(intervals_.size());
  for (const auto& iv : intervals_) {
    if (iv.empty()) continue;
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
  normalized_ = true;
}

}  // namespace thrifty
