// Half-open time intervals and normalized interval sets.
//
// Tenant activity is fundamentally a set of [query start, query end)
// intervals; epoch bitmaps (activity/activity_vector.h) are a discretized
// view of these sets.

#ifndef THRIFTY_COMMON_INTERVAL_H_
#define THRIFTY_COMMON_INTERVAL_H_

#include <vector>

#include "common/sim_time.h"

namespace thrifty {

/// \brief Half-open interval [begin, end) in simulated time.
struct TimeInterval {
  SimTime begin = 0;
  SimTime end = 0;

  SimDuration length() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool Contains(SimTime t) const { return t >= begin && t < end; }
  bool Overlaps(const TimeInterval& other) const {
    return begin < other.end && other.begin < end;
  }

  bool operator==(const TimeInterval& other) const = default;
};

/// \brief A set of disjoint, sorted, non-empty half-open intervals.
///
/// Arbitrary (overlapping, unsorted) intervals may be added; the set
/// normalizes lazily. Adjacent intervals ([a,b) and [b,c)) are coalesced.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(std::vector<TimeInterval> intervals);

  /// \brief Adds one interval (empty intervals are ignored).
  void Add(SimTime begin, SimTime end);
  void Add(const TimeInterval& iv) { Add(iv.begin, iv.end); }

  /// \brief Adds every interval of `other`.
  void Union(const IntervalSet& other);

  /// \brief Total covered duration.
  SimDuration TotalLength() const;

  /// \brief True if `t` lies in some interval.
  bool Contains(SimTime t) const;

  /// \brief True if [begin, end) overlaps any interval of the set.
  bool OverlapsRange(SimTime begin, SimTime end) const;

  /// \brief The normalized (sorted, disjoint, coalesced) intervals.
  const std::vector<TimeInterval>& intervals() const;

  /// \brief Restricts the set to [begin, end), clipping boundary intervals.
  IntervalSet Clip(SimTime begin, SimTime end) const;

  /// \brief Returns a copy with every interval shifted by `offset`.
  IntervalSet Shift(SimDuration offset) const;

  bool empty() const;
  size_t size() const { return intervals().size(); }

 private:
  void Normalize() const;

  mutable std::vector<TimeInterval> intervals_;
  mutable bool normalized_ = true;
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_INTERVAL_H_
