#include "common/bitmap.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"

namespace thrifty {

size_t PopcountWords(const uint64_t* words, size_t count) {
  return simd::SpanPopcount(words, count);
}

size_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t count) {
  return simd::AndPopcount(a, b, count);
}

void DynamicBitmap::SetRange(size_t begin, size_t end) {
  end = std::min(end, num_bits_);
  if (begin >= end) return;
  size_t first_word = begin >> 6;
  size_t last_word = (end - 1) >> 6;
  uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    words_[first_word] |= first_mask & last_mask;
    return;
  }
  words_[first_word] |= first_mask;
  for (size_t w = first_word + 1; w < last_word; ++w) words_[w] = ~uint64_t{0};
  words_[last_word] |= last_mask;
}

size_t DynamicBitmap::Popcount() const {
  return PopcountWords(words_.data(), words_.size());
}

size_t DynamicBitmap::AndPopcount(const DynamicBitmap& other) const {
  assert(num_bits_ == other.num_bits_);
  return AndPopcountWords(words_.data(), other.words_.data(), words_.size());
}

bool DynamicBitmap::OrWith(const DynamicBitmap& other) {
  if (other.num_bits_ > num_bits_) {
    num_bits_ = other.num_bits_;
    words_.resize(other.words_.size(), 0);
  }
  return simd::OrReduce(words_.data(), other.words_.data(),
                        other.words_.size()) != 0;
}

bool DynamicBitmap::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::vector<uint32_t> DynamicBitmap::NonzeroWordIndices() const {
  std::vector<uint32_t> out;
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) out.push_back(static_cast<uint32_t>(w));
  }
  return out;
}

}  // namespace thrifty
