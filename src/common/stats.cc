#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace thrifty {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0 : mean_; }

double RunningStats::Variance() const {
  return count_ < 2 ? 0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::min() const { return count_ == 0 ? 0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0 : max_; }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = new_mean;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

void RunningStats::Reset() { *this = RunningStats(); }

}  // namespace thrifty
