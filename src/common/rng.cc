#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace thrifty {

namespace {

// SplitMix64: used to expand a single seed into full generator state and to
// mix stream ids when forking.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (-bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // 1 - u is in (0, 1], so the log is finite.
  return -mean * std::log1p(-u);
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Derive from the original seed, not the evolved state, so a fork is
  // insensitive to how much of the parent's sequence was consumed.
  uint64_t sm =
      seed_ ^ (stream_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(&sm));
}

}  // namespace thrifty
