// Simulated-time primitives.
//
// All simulation timestamps and durations are integral milliseconds. Using a
// fixed-point representation keeps event ordering exact and runs reproducible
// across platforms (no floating-point accumulation drift in the event loop).

#ifndef THRIFTY_COMMON_SIM_TIME_H_
#define THRIFTY_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace thrifty {

/// \brief A point in simulated time, in milliseconds since simulation start.
using SimTime = int64_t;

/// \brief A span of simulated time, in milliseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kMillisecond = 1;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;
inline constexpr SimDuration kWeek = 7 * kDay;

/// \brief Sentinel for "no time" / "never".
inline constexpr SimTime kNeverTime = INT64_MAX;

/// \brief Converts a duration in (possibly fractional) seconds to SimDuration,
/// rounding to the nearest millisecond.
inline constexpr SimDuration SecondsToDuration(double seconds) {
  return static_cast<SimDuration>(seconds * kSecond + 0.5);
}

/// \brief Converts a SimDuration to fractional seconds.
inline constexpr double DurationToSeconds(SimDuration d) {
  return static_cast<double>(d) / kSecond;
}

/// \brief Renders a time as "Dd HH:MM:SS.mmm" for logs and traces.
inline std::string FormatSimTime(SimTime t) {
  const char* sign = t < 0 ? "-" : "";
  if (t < 0) t = -t;
  int64_t ms = t % 1000;
  int64_t s = (t / kSecond) % 60;
  int64_t m = (t / kMinute) % 60;
  int64_t h = (t / kHour) % 24;
  int64_t d = t / kDay;
  char buf[64];
  snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld.%03lld", sign,
           static_cast<long long>(d), static_cast<long long>(h),
           static_cast<long long>(m), static_cast<long long>(s),
           static_cast<long long>(ms));
  return buf;
}

}  // namespace thrifty

#endif  // THRIFTY_COMMON_SIM_TIME_H_
