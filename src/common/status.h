// Status: error-handling primitive used across Thrifty's public API.
//
// Following the Arrow/RocksDB idiom, fallible operations return a Status (or
// a Result<T>, see result.h) instead of throwing exceptions across API
// boundaries.

#ifndef THRIFTY_COMMON_STATUS_H_
#define THRIFTY_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace thrifty {

/// \brief Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCapacityExceeded,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// The default-constructed Status is OK. Statuses are cheap to copy (OK
/// carries no allocation in the common case of an empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \brief Constructs an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief "<code name>: <message>", or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace thrifty

/// \brief Propagates a non-OK Status to the caller.
#define THRIFTY_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::thrifty::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // THRIFTY_COMMON_STATUS_H_
