// FNV-1a 64-bit hashing.
//
// The one fingerprint function used everywhere byte-identity is asserted:
// bench result tables, deployment-plan membership streams, event logs, and
// controller trajectories all hash through this so fingerprints recorded in
// results/BENCH_*.json are comparable across binaries and dispatch targets.

#ifndef THRIFTY_COMMON_FNV_H_
#define THRIFTY_COMMON_FNV_H_

#include <cstdint>
#include <string_view>

namespace thrifty {

inline constexpr uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// \brief FNV-1a over a byte string, optionally chained from a prior hash.
inline uint64_t Fnv1a64(std::string_view bytes,
                        uint64_t hash = kFnv1a64Offset) {
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv1a64Prime;
  }
  return hash;
}

}  // namespace thrifty

#endif  // THRIFTY_COMMON_FNV_H_
