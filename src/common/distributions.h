// Samplers for the non-uniform distributions used in workload generation.

#ifndef THRIFTY_COMMON_DISTRIBUTIONS_H_
#define THRIFTY_COMMON_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace thrifty {

/// \brief Zipf sampler over ranks {0, 1, ..., n-1}.
///
/// Rank k is drawn with probability proportional to 1 / (k+1)^theta. The
/// paper samples tenant sizes "from the CDF of a Zipf distribution with a
/// parameter 0 < theta < 1, where a smaller theta tends to uniform whereas a
/// larger theta tends to skew" (§7.1); this class implements exactly that
/// inverse-CDF sampling.
class ZipfDistribution {
 public:
  /// \brief Builds the CDF for `n` ranks with exponent `theta`.
  ///
  /// Requires n >= 1 and theta >= 0 (theta == 0 degenerates to uniform).
  ZipfDistribution(size_t n, double theta);

  /// \brief Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// \brief Probability mass of rank k.
  double Pmf(size_t k) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); cdf_.back() == 1.
};

/// \brief Draws an index from an explicit discrete weight vector.
///
/// Weights need not be normalized; they must be non-negative with a positive
/// sum.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  size_t Sample(Rng* rng) const;

  /// \brief Normalized probability of index k.
  double Pmf(size_t k) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_DISTRIBUTIONS_H_
