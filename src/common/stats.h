// Scalar summary statistics (mean / variance / extremes), Welford-style.

#ifndef THRIFTY_COMMON_STATS_H_
#define THRIFTY_COMMON_STATS_H_

#include <cstddef>

namespace thrifty {

/// \brief Streaming accumulator for mean, variance, min, and max.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double Mean() const;
  /// \brief Sample variance (n-1 denominator); 0 with fewer than 2 samples.
  double Variance() const;
  double StdDev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  void Merge(const RunningStats& other);
  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_STATS_H_
