#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace thrifty {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatPercent(double ratio, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace thrifty
