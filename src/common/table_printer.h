// Fixed-width table rendering for the benchmark harnesses, which print the
// same rows/series the paper's tables and figures report.

#ifndef THRIFTY_COMMON_TABLE_PRINTER_H_
#define THRIFTY_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace thrifty {

/// \brief Accumulates string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// \brief Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// \brief Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double with `decimals` fraction digits.
std::string FormatDouble(double v, int decimals = 2);

/// \brief Formats a ratio as a percentage string, e.g. 0.813 -> "81.3%".
std::string FormatPercent(double ratio, int decimals = 1);

}  // namespace thrifty

#endif  // THRIFTY_COMMON_TABLE_PRINTER_H_
