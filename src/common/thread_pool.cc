#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <utility>

namespace thrifty {

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> result = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // exceptions land in the task's future, not the worker
  }
}

namespace {

/// Shared state of one ParallelFor: helpers hold it via shared_ptr so a
/// helper scheduled after the caller has already drained every index (and
/// returned) still touches live memory.
struct ParallelForState {
  ParallelForState(size_t total, const std::function<void(size_t)>& body)
      : n(total), fn(body) {}

  const size_t n;
  std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t error_index = SIZE_MAX;
  std::exception_ptr error;

  /// Claims and runs indices until none remain. Every claimed index counts
  /// toward `done` even when fn throws, so the caller's wait terminates.
  void Drain() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr caught;
      try {
        fn(i);
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (caught && i < error_index) {
        error_index = i;
        error = caught;
      }
      if (++done == n) cv.notify_all();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->size() == 0 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, fn);
  size_t helpers = pool->size() < n - 1 ? pool->size() : n - 1;
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { state->Drain(); });  // fire-and-forget
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace thrifty
