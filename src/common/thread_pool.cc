#include "common/thread_pool.h"

#include <utility>

namespace thrifty {

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> result = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // exceptions land in the task's future, not the worker
  }
}

}  // namespace thrifty
