// Latency histogram with percentile queries, used for SLA accounting.

#ifndef THRIFTY_COMMON_HISTOGRAM_H_
#define THRIFTY_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace thrifty {

/// \brief Exponentially-bucketed histogram of non-negative values.
///
/// Buckets grow geometrically from `min_value` by `growth` per bucket, so
/// percentile estimates carry a bounded relative error (growth - 1). Values
/// below min_value land in bucket 0; values above the last bucket extend the
/// bucket vector on demand.
class Histogram {
 public:
  /// \param min_value upper bound of the first bucket (> 0).
  /// \param growth geometric bucket growth factor (> 1).
  explicit Histogram(double min_value = 1.0, double growth = 1.05);

  void Add(double value);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;

  /// \brief Value at quantile q in [0, 1] (estimate via bucket upper bounds).
  double Percentile(double q) const;

  /// \brief Fraction of recorded values <= threshold (bucket-granular).
  ///
  /// Counts only buckets whose entire range lies at or below the threshold,
  /// so the estimate is a *lower* bound: values in the bucket containing a
  /// mid-bucket threshold are excluded even if they are <= it (relative
  /// error bounded by one bucket, i.e. growth - 1). The previous behavior
  /// included the whole containing bucket, over-counting values above the
  /// threshold and optimistically biasing SLA attainment.
  double FractionAtMost(double threshold) const;

  void Merge(const Histogram& other);
  void Reset();

 private:
  size_t BucketFor(double value) const;
  double BucketUpperBound(size_t bucket) const;

  double min_value_;
  double growth_;
  double log_growth_;
  std::vector<size_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_COMMON_HISTOGRAM_H_
