// Parallel experiment execution: fans independent trials across a worker
// pool and merges their results in trial order, so a sweep's output is
// bit-identical for any --jobs value.

#ifndef THRIFTY_EXP_SWEEP_RUNNER_H_
#define THRIFTY_EXP_SWEEP_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"

namespace thrifty {

/// \brief Sweep-wide execution options.
struct SweepOptions {
  /// Worker threads; 1 runs every trial inline on the calling thread.
  int jobs = 1;
  /// Base seed; trial i's RNG stream is Rng(seed).Fork(i).
  uint64_t seed = 42;
};

/// \brief Per-trial context handed to the trial body.
struct TrialContext {
  size_t trial_index = 0;
  uint64_t sweep_seed = 0;
  /// Private deterministic stream, a function of (sweep seed, trial index)
  /// only — never of scheduling order or job count.
  Rng rng{0};
};

/// \brief Named RunningStats/Histogram accumulators filled by one trial and
/// merged across trials in trial order.
class TrialRecorder {
 public:
  /// \brief The stats accumulator `name`, created on first use.
  RunningStats& Stats(const std::string& name);

  /// \brief The histogram `name`; bucket parameters apply on first use and
  /// must match across trials (Histogram::Merge requirement).
  Histogram& Hist(const std::string& name, double min_value = 1.0,
                  double growth = 1.05);

  /// \brief Folds another recorder's accumulators into this one.
  void Merge(const TrialRecorder& other);

  const std::map<std::string, RunningStats>& stats() const { return stats_; }
  const std::map<std::string, Histogram>& hists() const { return hists_; }

 private:
  std::map<std::string, RunningStats> stats_;
  std::map<std::string, Histogram> hists_;
};

/// \brief Runs N independent trials, optionally across a thread pool.
///
/// Each trial must own all mutable state it touches (its own SimEngine,
/// Cluster, ThriftyService, ...); shared inputs must be const. Results are
/// collected by trial index and merged in that order, so `--jobs=1` and
/// `--jobs=N` produce bit-identical output.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options) : options_(options) {}

  const SweepOptions& options() const { return options_; }

  /// \brief Runs `fn` for every trial in [0, num_trials); returns the
  /// results indexed by trial. Result must be default-constructible.
  ///
  /// If one or more trials throw, every remaining trial still runs to
  /// completion (no deadlocked workers, no dangling references) and the
  /// exception of the lowest-indexed failing trial is rethrown.
  template <typename Result>
  std::vector<Result> Map(size_t num_trials,
                          const std::function<Result(TrialContext&)>& fn) const {
    std::vector<Result> results(num_trials);
    RunIndexed(num_trials, [&](TrialContext& context) {
      results[context.trial_index] = fn(context);
    });
    return results;
  }

  /// \brief Runs `fn(context, recorder)` per trial and merges the per-trial
  /// recorders in trial order.
  TrialRecorder Run(
      size_t num_trials,
      const std::function<void(TrialContext&, TrialRecorder&)>& fn) const;

 private:
  /// \brief Shared driver: executes `body` once per trial with the
  /// deterministic per-trial context, in parallel when jobs > 1.
  void RunIndexed(size_t num_trials,
                  const std::function<void(TrialContext&)>& body) const;

  SweepOptions options_;
};

}  // namespace thrifty

#endif  // THRIFTY_EXP_SWEEP_RUNNER_H_
