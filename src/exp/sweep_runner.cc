#include "exp/sweep_runner.h"

#include <algorithm>
#include <exception>
#include <future>
#include <utility>

#include "common/thread_pool.h"

namespace thrifty {

RunningStats& TrialRecorder::Stats(const std::string& name) {
  return stats_[name];
}

Histogram& TrialRecorder::Hist(const std::string& name, double min_value,
                               double growth) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(min_value, growth)).first;
  }
  return it->second;
}

void TrialRecorder::Merge(const TrialRecorder& other) {
  for (const auto& [name, stats] : other.stats_) {
    stats_[name].Merge(stats);
  }
  for (const auto& [name, hist] : other.hists_) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      hists_.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
}

void SweepRunner::RunIndexed(
    size_t num_trials, const std::function<void(TrialContext&)>& body) const {
  const Rng root(options_.seed);  // Fork() is const and pure: shareable
  auto run_trial = [&](size_t i) {
    TrialContext context;
    context.trial_index = i;
    context.sweep_seed = options_.seed;
    context.rng = root.Fork(static_cast<uint64_t>(i));
    body(context);
  };

  if (options_.jobs <= 1 || num_trials <= 1) {
    for (size_t i = 0; i < num_trials; ++i) run_trial(i);
    return;
  }

  ThreadPool pool(static_cast<int>(std::min<size_t>(
      static_cast<size_t>(options_.jobs), num_trials)));
  std::vector<std::future<void>> futures;
  futures.reserve(num_trials);
  for (size_t i = 0; i < num_trials; ++i) {
    futures.push_back(pool.Submit([&run_trial, i] { run_trial(i); }));
  }
  // Drain every trial before rethrowing so no worker still references the
  // caller's frame; the lowest-indexed failure wins, deterministically.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

TrialRecorder SweepRunner::Run(
    size_t num_trials,
    const std::function<void(TrialContext&, TrialRecorder&)>& fn) const {
  std::vector<TrialRecorder> recorders(num_trials);
  RunIndexed(num_trials, [&](TrialContext& context) {
    fn(context, recorders[context.trial_index]);
  });
  TrialRecorder merged;
  for (const TrialRecorder& recorder : recorders) merged.Merge(recorder);
  return merged;
}

}  // namespace thrifty
