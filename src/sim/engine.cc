#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace thrifty {

EventId SimEngine::ScheduleAt(SimTime t, EventCallback cb) {
  assert(t >= now_);
  if (t < now_) t = now_;  // release-mode safety: never travel backwards
  return queue_.Schedule(t, std::move(cb));
}

EventId SimEngine::ScheduleAfter(SimDuration delay, EventCallback cb) {
  assert(delay >= 0);
  return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

bool SimEngine::Step() {
  if (queue_.Empty()) return false;
  SimTime t;
  EventCallback cb = queue_.Pop(&t);
  now_ = t;
  ++events_processed_;
  cb(t);
  return true;
}

void SimEngine::Run() {
  while (Step()) {
  }
}

void SimEngine::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace thrifty
