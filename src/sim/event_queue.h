// Cancellable priority event queue for the discrete-event engine.

#ifndef THRIFTY_SIM_EVENT_QUEUE_H_
#define THRIFTY_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace thrifty {

/// \brief Handle identifying a scheduled event (for cancellation).
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// \brief Callback invoked when an event fires; receives the firing time.
using EventCallback = std::function<void(SimTime)>;

/// \brief Time-ordered queue of cancellable events.
///
/// Events at equal times fire in scheduling order (FIFO by sequence number),
/// which makes simulation runs fully deterministic. Cancellation is lazy:
/// cancelled entries are skipped at pop time, and the heap is compacted
/// whenever tombstones outnumber live entries, so long runs that schedule
/// and cancel far-future events stay bounded in memory.
class EventQueue {
 public:
  /// \brief Schedules `cb` at absolute time `t`; returns a cancellation
  /// handle.
  EventId Schedule(SimTime t, EventCallback cb);

  /// \brief Cancels a previously scheduled event. Cancelling an already
  /// fired or already cancelled event is a harmless no-op and leaves no
  /// bookkeeping behind.
  void Cancel(EventId id);

  /// \brief True if no live event remains.
  bool Empty() const;

  /// \brief Time of the earliest live event; kNeverTime if empty.
  SimTime NextTime() const;

  /// \brief Removes and returns the earliest live event.
  ///
  /// Must not be called when Empty(). Sets *time to the event's time.
  EventCallback Pop(SimTime* time);

  /// \brief Number of live (scheduled, not yet fired or cancelled) events.
  size_t LiveCount() const { return pending_.size(); }

  /// \brief Number of cancelled-but-not-yet-reclaimed heap entries.
  ///
  /// Exposed for tests/diagnostics; bounded by LiveCount() + a constant via
  /// amortized compaction.
  size_t CancelledCount() const { return cancelled_.size(); }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventCallback cb;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      // Larger time (or larger sequence at equal time) = lower priority.
      return a.time > b.time || (a.time == b.time && a.id > b.id);
    }
  };
  // Exposes the protected underlying container so compaction can drop
  // tombstoned entries in one O(n) pass instead of popping one by one.
  struct Heap : std::priority_queue<Entry, std::vector<Entry>, EntryLater> {
    std::vector<Entry>& entries() { return c; }
  };

  /// \brief Drops cancelled entries from the queue head.
  void SkipCancelled() const;

  /// \brief Rebuilds the heap without tombstoned entries once they
  /// outnumber live ones (amortized O(1) per cancel).
  void CompactIfNeeded();

  // Lazy cancellation mutates the heap/tombstones from logically-const
  // queries (Empty/NextTime), hence mutable.
  mutable Heap queue_;
  /// Ids scheduled but not yet fired or cancelled. Guards Cancel against
  /// ids that already fired (a stale cancel must be a no-op and must not
  /// grow cancelled_).
  std::unordered_set<EventId> pending_;
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace thrifty

#endif  // THRIFTY_SIM_EVENT_QUEUE_H_
