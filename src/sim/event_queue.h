// Cancellable priority event queue for the discrete-event engine.

#ifndef THRIFTY_SIM_EVENT_QUEUE_H_
#define THRIFTY_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace thrifty {

/// \brief Handle identifying a scheduled event (for cancellation).
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// \brief Callback invoked when an event fires; receives the firing time.
using EventCallback = std::function<void(SimTime)>;

/// \brief Time-ordered queue of cancellable events.
///
/// Events at equal times fire in scheduling order (FIFO by sequence number),
/// which makes simulation runs fully deterministic. Cancellation is lazy:
/// cancelled entries are skipped at pop time.
class EventQueue {
 public:
  /// \brief Schedules `cb` at absolute time `t`; returns a cancellation
  /// handle.
  EventId Schedule(SimTime t, EventCallback cb);

  /// \brief Cancels a previously scheduled event. Cancelling an already
  /// fired or already cancelled event is a harmless no-op.
  void Cancel(EventId id);

  /// \brief True if no live event remains.
  bool Empty();

  /// \brief Time of the earliest live event; kNeverTime if empty.
  SimTime NextTime();

  /// \brief Removes and returns the earliest live event.
  ///
  /// Must not be called when Empty(). Sets *time to the event's time.
  EventCallback Pop(SimTime* time);

  /// \brief Number of live (scheduled, not yet fired or cancelled) events.
  size_t LiveCount() const { return pending_.size(); }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventCallback cb;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      // Larger time (or larger sequence at equal time) = lower priority.
      return a.time > b.time || (a.time == b.time && a.id > b.id);
    }
  };

  /// \brief Drops cancelled entries from the queue head.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  /// Ids scheduled but not yet fired or cancelled. Guards Cancel against
  /// ids that already fired (a stale cancel must be a no-op).
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace thrifty

#endif  // THRIFTY_SIM_EVENT_QUEUE_H_
