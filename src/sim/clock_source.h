// Clock sources for the streaming service mode.
//
// The discrete-event SimEngine owns simulated time for experiments, but the
// long-running StreamingService must also run on a real wall clock. Both are
// expressed behind one interface so every consumer is clock-agnostic: tests
// and byte-deterministic replay pin a VirtualClock, simulations adapt the
// engine's clock through SimEngineClock, and deployments use WallClock.
// Determinism contract: nothing downstream of a ClockSource may branch on
// *when* Now() is sampled beyond recording it — the streaming service writes
// every sampled time into its event log, so a replay never consults a clock.

#ifndef THRIFTY_SIM_CLOCK_SOURCE_H_
#define THRIFTY_SIM_CLOCK_SOURCE_H_

#include <chrono>

#include "common/sim_time.h"

namespace thrifty {

class SimEngine;

/// \brief A monotone millisecond clock.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// \brief Milliseconds since the clock's origin; never decreases.
  virtual SimTime Now() const = 0;
};

/// \brief Manually advanced clock for tests and event-log replay.
class VirtualClock : public ClockSource {
 public:
  explicit VirtualClock(SimTime start = 0) : now_(start) {}

  SimTime Now() const override { return now_; }

  /// \brief Moves the clock to `t`; ignores moves into the past (the clock
  /// is monotone by contract).
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  void Advance(SimDuration delta) {
    if (delta > 0) now_ += delta;
  }

 private:
  SimTime now_;
};

/// \brief Real time since construction (steady clock, immune to NTP steps).
class WallClock : public ClockSource {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  SimTime Now() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// \brief Adapts a SimEngine's simulated clock (the extraction that lets
/// simulation-driven components and the streaming service share one time
/// source). The engine must outlive the adapter.
class SimEngineClock : public ClockSource {
 public:
  explicit SimEngineClock(const SimEngine* engine) : engine_(engine) {}

  SimTime Now() const override;

 private:
  const SimEngine* engine_;
};

}  // namespace thrifty

#endif  // THRIFTY_SIM_CLOCK_SOURCE_H_
