#include "sim/clock_source.h"

#include "sim/engine.h"

namespace thrifty {

SimTime SimEngineClock::Now() const { return engine_->now(); }

}  // namespace thrifty
