#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace thrifty {

EventId EventQueue::Schedule(SimTime t, EventCallback cb) {
  EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

void EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Cancelling an id that already fired (or was already cancelled) is a
  // no-op: only pending ids carry a tombstone.
  if (pending_.erase(id) > 0) {
    cancelled_.insert(id);
  }
}

void EventQueue::SkipCancelled() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool EventQueue::Empty() {
  SkipCancelled();
  return queue_.empty();
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return queue_.empty() ? kNeverTime : queue_.top().time;
}

EventCallback EventQueue::Pop(SimTime* time) {
  SkipCancelled();
  assert(!queue_.empty());
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry& top = const_cast<Entry&>(queue_.top());
  *time = top.time;
  EventCallback cb = std::move(top.cb);
  pending_.erase(top.id);
  queue_.pop();
  return cb;
}

}  // namespace thrifty
