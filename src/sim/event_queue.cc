#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace thrifty {

EventId EventQueue::Schedule(SimTime t, EventCallback cb) {
  EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

void EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Cancelling an id that already fired (or was already cancelled) is a
  // no-op: only pending ids carry a tombstone, so repeated stale cancels
  // cannot grow cancelled_.
  if (pending_.erase(id) == 0) return;
  cancelled_.insert(id);
  CompactIfNeeded();
}

void EventQueue::SkipCancelled() const {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

void EventQueue::CompactIfNeeded() {
  // Head-skipping alone reclaims a tombstone only when it surfaces, so a
  // workload that keeps cancelling far-future events would grow both the
  // heap and cancelled_ without bound. Rebuild once tombstones dominate;
  // each entry is dropped at most once, so cancels stay amortized O(1).
  if (cancelled_.size() < 64 || cancelled_.size() <= pending_.size()) return;
  std::vector<Entry>& entries = queue_.entries();
  std::erase_if(entries, [this](const Entry& entry) {
    return cancelled_.count(entry.id) > 0;
  });
  std::make_heap(entries.begin(), entries.end(), EntryLater{});
  cancelled_.clear();
}

bool EventQueue::Empty() const {
  SkipCancelled();
  return queue_.empty();
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return queue_.empty() ? kNeverTime : queue_.top().time;
}

EventCallback EventQueue::Pop(SimTime* time) {
  SkipCancelled();
  assert(!queue_.empty());
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry& top = const_cast<Entry&>(queue_.top());
  *time = top.time;
  EventCallback cb = std::move(top.cb);
  pending_.erase(top.id);
  queue_.pop();
  return cb;
}

}  // namespace thrifty
