#include "sim/cost_gauge.h"

namespace thrifty {

void SimCostGauge::RecordCompletionEvent(uint64_t queries_touched) {
  completion_events_.fetch_add(1, std::memory_order_relaxed);
  queries_touched_.fetch_add(queries_touched, std::memory_order_relaxed);
}

void SimCostGauge::RecordSubmit(uint64_t queries_touched) {
  submits_.fetch_add(1, std::memory_order_relaxed);
  queries_touched_.fetch_add(queries_touched, std::memory_order_relaxed);
}

void SimCostGauge::RecordRunningSetSize(size_t size) {
  size_t peak = peak_running_set_.load(std::memory_order_relaxed);
  while (size > peak && !peak_running_set_.compare_exchange_weak(
                            peak, size, std::memory_order_relaxed)) {
  }
}

void SimCostGauge::RecordSlotWork(uint64_t query_work_ms,
                                  uint64_t slot_work_ms) {
  query_work_ms_.fetch_add(query_work_ms, std::memory_order_relaxed);
  slot_work_ms_.fetch_add(slot_work_ms, std::memory_order_relaxed);
}

void SimCostGauge::RecordBatchOpen() {
  shared_batches_.fetch_add(1, std::memory_order_relaxed);
}

void SimCostGauge::RecordBatchJoin() {
  shared_joins_.fetch_add(1, std::memory_order_relaxed);
}

double SimCostGauge::SharedWorkRatio() const {
  uint64_t slot = slot_work_ms();
  if (slot == 0) return 1.0;
  return static_cast<double>(query_work_ms()) / static_cast<double>(slot);
}

double SimCostGauge::SharedHitRate() const {
  uint64_t total = shared_batches() + shared_joins();
  if (total == 0) return 0.0;
  return static_cast<double>(shared_joins()) / static_cast<double>(total);
}

double SimCostGauge::TouchedPerEvent() const {
  uint64_t events = completion_events() + submits();
  if (events == 0) return 0;
  return static_cast<double>(queries_touched()) / static_cast<double>(events);
}

void SimCostGauge::Reset() {
  completion_events_.store(0, std::memory_order_relaxed);
  submits_.store(0, std::memory_order_relaxed);
  queries_touched_.store(0, std::memory_order_relaxed);
  peak_running_set_.store(0, std::memory_order_relaxed);
  query_work_ms_.store(0, std::memory_order_relaxed);
  slot_work_ms_.store(0, std::memory_order_relaxed);
  shared_batches_.store(0, std::memory_order_relaxed);
  shared_joins_.store(0, std::memory_order_relaxed);
}

}  // namespace thrifty
