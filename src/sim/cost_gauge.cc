#include "sim/cost_gauge.h"

namespace thrifty {

void SimCostGauge::RecordCompletionEvent(uint64_t queries_touched) {
  completion_events_.fetch_add(1, std::memory_order_relaxed);
  queries_touched_.fetch_add(queries_touched, std::memory_order_relaxed);
}

void SimCostGauge::RecordSubmit(uint64_t queries_touched) {
  submits_.fetch_add(1, std::memory_order_relaxed);
  queries_touched_.fetch_add(queries_touched, std::memory_order_relaxed);
}

void SimCostGauge::RecordRunningSetSize(size_t size) {
  size_t peak = peak_running_set_.load(std::memory_order_relaxed);
  while (size > peak && !peak_running_set_.compare_exchange_weak(
                            peak, size, std::memory_order_relaxed)) {
  }
}

double SimCostGauge::TouchedPerEvent() const {
  uint64_t events = completion_events() + submits();
  if (events == 0) return 0;
  return static_cast<double>(queries_touched()) / static_cast<double>(events);
}

void SimCostGauge::Reset() {
  completion_events_.store(0, std::memory_order_relaxed);
  submits_.store(0, std::memory_order_relaxed);
  queries_touched_.store(0, std::memory_order_relaxed);
  peak_running_set_.store(0, std::memory_order_relaxed);
}

}  // namespace thrifty
