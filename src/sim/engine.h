// The discrete-event simulation engine driving all Thrifty experiments.

#ifndef THRIFTY_SIM_ENGINE_H_
#define THRIFTY_SIM_ENGINE_H_

#include <cstddef>

#include "common/status.h"
#include "sim/cost_gauge.h"
#include "sim/event_queue.h"

namespace thrifty {

/// \brief Deterministic discrete-event simulator.
///
/// Components schedule callbacks at absolute or relative simulated times; the
/// engine fires them in (time, scheduling-order) order. The simulated clock
/// only moves when Run*/Step are called.
class SimEngine {
 public:
  /// \brief Current simulated time.
  SimTime now() const { return now_; }

  /// \brief Schedules `cb` at absolute time `t` (must be >= now()).
  EventId ScheduleAt(SimTime t, EventCallback cb);

  /// \brief Schedules `cb` after `delay` (must be >= 0).
  EventId ScheduleAfter(SimDuration delay, EventCallback cb);

  /// \brief Cancels a scheduled event (no-op if already fired).
  void Cancel(EventId id) { queue_.Cancel(id); }

  /// \brief Fires the next event, if any; returns false when the queue is
  /// empty.
  bool Step();

  /// \brief Runs until no events remain.
  void Run();

  /// \brief Runs events with time <= deadline, then advances the clock to
  /// exactly `deadline`. Later events stay queued.
  void RunUntil(SimTime deadline);

  /// \brief Number of events fired so far.
  size_t events_processed() const { return events_processed_; }

  /// \brief Number of pending events.
  size_t events_pending() const { return queue_.LiveCount(); }

  /// \brief Attaches a per-event cost gauge; every MppdbInstance driven by
  /// this engine charges its executor work to it. Pass nullptr to detach.
  /// The gauge must outlive the engine's use of it.
  void set_cost_gauge(SimCostGauge* gauge) { cost_gauge_ = gauge; }
  SimCostGauge* cost_gauge() const { return cost_gauge_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  size_t events_processed_ = 0;
  SimCostGauge* cost_gauge_ = nullptr;
};

}  // namespace thrifty

#endif  // THRIFTY_SIM_ENGINE_H_
