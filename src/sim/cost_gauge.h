// Per-event cost metering for the discrete-event simulator core.

#ifndef THRIFTY_SIM_COST_GAUGE_H_
#define THRIFTY_SIM_COST_GAUGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace thrifty {

/// \brief Counts the work the processor-sharing executor does per simulator
/// event: completion events fired, admissions handled, query records touched
/// (read, written, or moved) while handling each, and the peak running-set
/// size (heap or sweep vector).
///
/// Attach one to a SimEngine (SimEngine::set_cost_gauge) and every
/// MppdbInstance driven by that engine charges to it. The dense-reference
/// executor touches O(k) records per event; the virtual-time executor
/// touches O(log k) — the gauge is how benches prove that, so touches are
/// counted as actual record reads/moves, not asymptotic claims.
///
/// Thread-safe (relaxed atomics): SweepRunner trials each use their own
/// engine + gauge, but nothing breaks if one gauge is shared.
class SimCostGauge {
 public:
  /// \brief One completion event handled, touching `queries_touched`
  /// running-query records (min scan + completion collection + reschedule).
  void RecordCompletionEvent(uint64_t queries_touched);

  /// \brief One admission handled, touching `queries_touched` records
  /// (insert + sift or min rescan).
  void RecordSubmit(uint64_t queries_touched);

  /// \brief Samples the running-set size after a structural change.
  void RecordRunningSetSize(size_t size);

  /// \brief One admitted query's work accounting: `query_work_ms` is the
  /// dedicated work an independent execution would pay, `slot_work_ms` is
  /// the work actually admitted into a processor-sharing slot (equal in the
  /// non-shared executors; the batch-join delta for a shared-scan joiner).
  void RecordSlotWork(uint64_t query_work_ms, uint64_t slot_work_ms);

  /// \brief One shared batch opened (a leader claimed a new PS slot).
  void RecordBatchOpen();

  /// \brief One query merged into an in-flight shared batch.
  void RecordBatchJoin();

  uint64_t completion_events() const {
    return completion_events_.load(std::memory_order_relaxed);
  }
  uint64_t submits() const { return submits_.load(std::memory_order_relaxed); }
  uint64_t queries_touched() const {
    return queries_touched_.load(std::memory_order_relaxed);
  }
  size_t peak_running_set() const {
    return peak_running_set_.load(std::memory_order_relaxed);
  }
  uint64_t query_work_ms() const {
    return query_work_ms_.load(std::memory_order_relaxed);
  }
  uint64_t slot_work_ms() const {
    return slot_work_ms_.load(std::memory_order_relaxed);
  }
  uint64_t shared_batches() const {
    return shared_batches_.load(std::memory_order_relaxed);
  }
  uint64_t shared_joins() const {
    return shared_joins_.load(std::memory_order_relaxed);
  }

  /// \brief Mean records touched per executor event (submits + completions);
  /// 0 when nothing was recorded.
  double TouchedPerEvent() const;

  /// \brief Effective-work reduction from shared execution: dedicated work
  /// of all admitted queries divided by the slot work actually served.
  /// 1.0 for the non-shared executors (and when nothing was admitted).
  double SharedWorkRatio() const;

  /// \brief Fraction of admissions that merged into an in-flight batch
  /// instead of claiming a slot (0 when no shared admissions happened).
  double SharedHitRate() const;

  void Reset();

 private:
  std::atomic<uint64_t> completion_events_{0};
  std::atomic<uint64_t> submits_{0};
  std::atomic<uint64_t> queries_touched_{0};
  std::atomic<size_t> peak_running_set_{0};
  std::atomic<uint64_t> query_work_ms_{0};
  std::atomic<uint64_t> slot_work_ms_{0};
  std::atomic<uint64_t> shared_batches_{0};
  std::atomic<uint64_t> shared_joins_{0};
};

}  // namespace thrifty

#endif  // THRIFTY_SIM_COST_GAUGE_H_
