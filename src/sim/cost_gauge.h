// Per-event cost metering for the discrete-event simulator core.

#ifndef THRIFTY_SIM_COST_GAUGE_H_
#define THRIFTY_SIM_COST_GAUGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace thrifty {

/// \brief Counts the work the processor-sharing executor does per simulator
/// event: completion events fired, admissions handled, query records touched
/// (read, written, or moved) while handling each, and the peak running-set
/// size (heap or sweep vector).
///
/// Attach one to a SimEngine (SimEngine::set_cost_gauge) and every
/// MppdbInstance driven by that engine charges to it. The dense-reference
/// executor touches O(k) records per event; the virtual-time executor
/// touches O(log k) — the gauge is how benches prove that, so touches are
/// counted as actual record reads/moves, not asymptotic claims.
///
/// Thread-safe (relaxed atomics): SweepRunner trials each use their own
/// engine + gauge, but nothing breaks if one gauge is shared.
class SimCostGauge {
 public:
  /// \brief One completion event handled, touching `queries_touched`
  /// running-query records (min scan + completion collection + reschedule).
  void RecordCompletionEvent(uint64_t queries_touched);

  /// \brief One admission handled, touching `queries_touched` records
  /// (insert + sift or min rescan).
  void RecordSubmit(uint64_t queries_touched);

  /// \brief Samples the running-set size after a structural change.
  void RecordRunningSetSize(size_t size);

  uint64_t completion_events() const {
    return completion_events_.load(std::memory_order_relaxed);
  }
  uint64_t submits() const { return submits_.load(std::memory_order_relaxed); }
  uint64_t queries_touched() const {
    return queries_touched_.load(std::memory_order_relaxed);
  }
  size_t peak_running_set() const {
    return peak_running_set_.load(std::memory_order_relaxed);
  }

  /// \brief Mean records touched per executor event (submits + completions);
  /// 0 when nothing was recorded.
  double TouchedPerEvent() const;

  void Reset();

 private:
  std::atomic<uint64_t> completion_events_{0};
  std::atomic<uint64_t> submits_{0};
  std::atomic<uint64_t> queries_touched_{0};
  std::atomic<size_t> peak_running_set_{0};
};

}  // namespace thrifty

#endif  // THRIFTY_SIM_COST_GAUGE_H_
