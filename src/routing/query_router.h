// Query routing (Algorithm 1, §4.3).
//
// The router "routes an active tenant" — not individual queries — to one
// MPPDB: while a tenant has queries running on MPPDB_x, all its queries
// follow to MPPDB_x (so the tenant exclusively owns that MPPDB's capacity);
// once the tenant goes inactive its next query may go anywhere. A free
// MPPDB_0 (the tuning MPPDB) is preferred, then any free MPPDB; if all are
// busy the query overflows to MPPDB_0 for concurrent processing — the case
// manual tuning (Chapter 6) sizes U for.

#ifndef THRIFTY_ROUTING_QUERY_ROUTER_H_
#define THRIFTY_ROUTING_QUERY_ROUTER_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mppdb/instance.h"
#include "placement/deployment_plan.h"

namespace thrifty {

/// \brief Which branch of Algorithm 1 served a routing decision.
enum class RouteKind {
  /// Line 2: tenant already has queries running on this MPPDB.
  kTenantAffinity,
  /// Line 5: MPPDB_0 was free.
  kTuningFree,
  /// Line 8: some other MPPDB was free.
  kOtherFree,
  /// Line 10: everything busy; concurrent processing on MPPDB_0.
  kOverflow,
  /// Tenant was moved to a dedicated elastic-scaling MPPDB (§5.1).
  kDedicated,
};

const char* RouteKindToString(RouteKind kind);

/// \brief A routing decision.
struct RouteDecision {
  MppdbInstance* instance = nullptr;
  RouteKind kind = RouteKind::kOverflow;
};

/// \brief Router state for one tenant-group and its A MPPDBs.
class GroupRouter {
 public:
  /// \param mppdbs the group's instances; index 0 must be the tuning MPPDB.
  GroupRouter(GroupId group_id, std::vector<MppdbInstance*> mppdbs);

  GroupId group_id() const { return group_id_; }
  const std::vector<MppdbInstance*>& mppdbs() const { return mppdbs_; }

  /// \brief Chooses the MPPDB for a query of `tenant` per Algorithm 1.
  ///
  /// Fails if the group has no online MPPDB at all.
  Result<RouteDecision> Route(TenantId tenant) const;

  /// \brief Directs all future queries of `tenant` to a dedicated instance
  /// (lightweight elastic scaling outcome).
  void AssignDedicated(TenantId tenant, MppdbInstance* instance);

  /// \brief Removes a dedicated assignment (re-consolidation).
  void RemoveDedicated(TenantId tenant);

  bool HasDedicated(TenantId tenant) const {
    return dedicated_.count(tenant) > 0;
  }

  /// \brief Per-branch routing counters (for tests and reports).
  const std::unordered_map<RouteKind, int64_t>& counters() const {
    return counters_;
  }

 private:
  GroupId group_id_;
  std::vector<MppdbInstance*> mppdbs_;
  std::unordered_map<TenantId, MppdbInstance*> dedicated_;
  mutable std::unordered_map<RouteKind, int64_t> counters_;
};

/// \brief Per-template traffic counters kept by the router. Shared-scan
/// batching only pays off on templates that are hot at the same time, so the
/// admin report surfaces which templates carry the traffic.
struct TemplateTraffic {
  int64_t submitted = 0;
  int64_t completed = 0;
};

/// \brief Service-wide router: tenant -> group -> Algorithm 1.
class QueryRouter {
 public:
  /// \brief Registers a tenant-group and its MPPDBs.
  Status AddGroup(GroupId group_id, std::vector<MppdbInstance*> mppdbs,
                  const std::vector<TenantId>& tenants);

  /// \brief Unregisters a tenant-group: its router and every tenant mapping
  /// pointing at it are removed (re-consolidation dissolved the group).
  Status RemoveGroup(GroupId group_id);

  /// \brief Routes a query of `tenant`.
  Result<RouteDecision> Route(TenantId tenant) const;

  /// \brief The group router responsible for a tenant.
  Result<GroupRouter*> RouterFor(TenantId tenant);

  Result<GroupRouter*> RouterForGroup(GroupId group_id);

  /// \brief Counts one routed submission of `tmpl`.
  void RecordTemplateSubmit(TemplateId tmpl) {
    ++template_traffic_[tmpl].submitted;
  }

  /// \brief Counts one completion of `tmpl`.
  void RecordTemplateComplete(TemplateId tmpl) {
    ++template_traffic_[tmpl].completed;
  }

  /// \brief Per-template submit/complete counters, ordered by template id
  /// (deterministic iteration for reports and fingerprints).
  const std::map<TemplateId, TemplateTraffic>& template_traffic() const {
    return template_traffic_;
  }

 private:
  std::unordered_map<GroupId, GroupRouter> groups_;
  std::unordered_map<TenantId, GroupId> tenant_group_;
  std::map<TemplateId, TemplateTraffic> template_traffic_;
};

}  // namespace thrifty

#endif  // THRIFTY_ROUTING_QUERY_ROUTER_H_
