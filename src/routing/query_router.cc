#include "routing/query_router.h"

#include <cassert>
#include <string>

namespace thrifty {

const char* RouteKindToString(RouteKind kind) {
  switch (kind) {
    case RouteKind::kTenantAffinity:
      return "tenant-affinity";
    case RouteKind::kTuningFree:
      return "tuning-free";
    case RouteKind::kOtherFree:
      return "other-free";
    case RouteKind::kOverflow:
      return "overflow";
    case RouteKind::kDedicated:
      return "dedicated";
  }
  return "unknown";
}

GroupRouter::GroupRouter(GroupId group_id,
                         std::vector<MppdbInstance*> mppdbs)
    : group_id_(group_id), mppdbs_(std::move(mppdbs)) {
  assert(!mppdbs_.empty());
}

namespace {

bool IsOnline(const MppdbInstance* m) {
  return m != nullptr && m->state() == InstanceState::kOnline;
}

}  // namespace

Result<RouteDecision> GroupRouter::Route(TenantId tenant) const {
  auto record = [this](MppdbInstance* m, RouteKind kind) {
    ++counters_[kind];
    return RouteDecision{m, kind};
  };

  // Dedicated elastic-scaling instance takes precedence: the tenant-group
  // "excludes all the activities of the removed tenant" (§7.5).
  auto dedicated_it = dedicated_.find(tenant);
  if (dedicated_it != dedicated_.end() && IsOnline(dedicated_it->second)) {
    return record(dedicated_it->second, RouteKind::kDedicated);
  }

  // Line 1-2: tenant already has queries running somewhere.
  for (MppdbInstance* m : mppdbs_) {
    if (IsOnline(m) && m->IsServingTenant(tenant)) {
      return record(m, RouteKind::kTenantAffinity);
    }
  }
  // Line 4-5: MPPDB_0 free.
  MppdbInstance* tuning = mppdbs_[0];
  if (IsOnline(tuning) && tuning->IsFree()) {
    return record(tuning, RouteKind::kTuningFree);
  }
  // Line 7-8: any other free MPPDB.
  for (size_t j = 1; j < mppdbs_.size(); ++j) {
    if (IsOnline(mppdbs_[j]) && mppdbs_[j]->IsFree()) {
      return record(mppdbs_[j], RouteKind::kOtherFree);
    }
  }
  // Line 10: overflow to MPPDB_0 for concurrent processing.
  if (IsOnline(tuning)) {
    return record(tuning, RouteKind::kOverflow);
  }
  // Tuning MPPDB offline (e.g. failed mid-replacement): overflow to any
  // online replica instead of rejecting the query.
  for (MppdbInstance* m : mppdbs_) {
    if (IsOnline(m)) return record(m, RouteKind::kOverflow);
  }
  return Status::Unavailable("tenant-group " + std::to_string(group_id_) +
                             " has no online MPPDB");
}

void GroupRouter::AssignDedicated(TenantId tenant, MppdbInstance* instance) {
  dedicated_[tenant] = instance;
}

void GroupRouter::RemoveDedicated(TenantId tenant) {
  dedicated_.erase(tenant);
}

Status QueryRouter::AddGroup(GroupId group_id,
                             std::vector<MppdbInstance*> mppdbs,
                             const std::vector<TenantId>& tenants) {
  if (mppdbs.empty()) {
    return Status::InvalidArgument("group needs at least one MPPDB");
  }
  auto [it, inserted] =
      groups_.emplace(group_id, GroupRouter(group_id, std::move(mppdbs)));
  if (!inserted) {
    return Status::AlreadyExists("group " + std::to_string(group_id) +
                                 " already registered");
  }
  for (TenantId t : tenants) {
    auto [tit, tenant_inserted] = tenant_group_.emplace(t, group_id);
    if (!tenant_inserted) {
      return Status::AlreadyExists("tenant " + std::to_string(t) +
                                   " already assigned to group " +
                                   std::to_string(tit->second));
    }
  }
  return Status::OK();
}

Status QueryRouter::RemoveGroup(GroupId group_id) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound("group " + std::to_string(group_id) +
                            " not registered with the router");
  }
  groups_.erase(it);
  for (auto tit = tenant_group_.begin(); tit != tenant_group_.end();) {
    if (tit->second == group_id) {
      tit = tenant_group_.erase(tit);
    } else {
      ++tit;
    }
  }
  return Status::OK();
}

Result<RouteDecision> QueryRouter::Route(TenantId tenant) const {
  auto it = tenant_group_.find(tenant);
  if (it == tenant_group_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant) +
                            " not registered with the router");
  }
  return groups_.at(it->second).Route(tenant);
}

Result<GroupRouter*> QueryRouter::RouterFor(TenantId tenant) {
  auto it = tenant_group_.find(tenant);
  if (it == tenant_group_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant) +
                            " not registered with the router");
  }
  return &groups_.at(it->second);
}

Result<GroupRouter*> QueryRouter::RouterForGroup(GroupId group_id) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound("group " + std::to_string(group_id) +
                            " not registered with the router");
  }
  return &it->second;
}

}  // namespace thrifty
