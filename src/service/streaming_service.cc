#include "service/streaming_service.h"

#include <algorithm>
#include <bit>
#include <set>
#include <utility>

#include "common/fnv.h"

namespace thrifty {

namespace {

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

void AppendIdList(const char* tag, const std::vector<GroupId>& ids,
                  std::string* out) {
  *out += tag;
  *out += '[';
  for (GroupId id : ids) {
    *out += std::to_string(id);
    *out += ',';
  }
  *out += ']';
}

}  // namespace

SlaBudgetController::SlaBudgetController(SlaControllerOptions options)
    : options_(options), sla_fraction_(options.initial_sla_fraction) {}

void SlaBudgetController::Observe(uint64_t queries, uint64_t violations) {
  if (queries > 0) {
    double observed =
        static_cast<double>(violations) / static_cast<double>(queries);
    double budget = 1.0 - sla_fraction_;
    budget += options_.gain * (options_.target_violation_rate - observed);
    double lo = 1.0 - options_.max_sla_fraction;
    double hi = 1.0 - options_.min_sla_fraction;
    if (budget < lo) budget = lo;
    if (budget > hi) budget = hi;
    sla_fraction_ = 1.0 - budget;
  }
  trajectory_.push_back(sla_fraction_);
}

uint64_t SlaBudgetController::TrajectoryFingerprint() const {
  std::string bytes;
  bytes.reserve(trajectory_.size() * 8);
  for (double p : trajectory_) {
    uint64_t raw = std::bit_cast<uint64_t>(p);
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<char>((raw >> (8 * i)) & 0xff));
    }
  }
  return Fnv1a64(bytes);
}

std::string CycleDecisionStream(const CycleDecision& decision) {
  std::string out;
  out += 'c';
  out += std::to_string(decision.cycle);
  out += 't';
  out += std::to_string(decision.time);
  out += 'e';
  out += std::to_string(decision.events_consumed);
  out += 'P';
  out += HexU64(std::bit_cast<uint64_t>(decision.sla_fraction));
  out += 'f';
  out += HexU64(decision.plan_fingerprint);
  AppendIdList("r", decision.resolved_groups, &out);
  AppendIdList("u", decision.untouched_groups, &out);
  AppendIdList("d", decision.dissolved_groups, &out);
  AppendIdList("n", decision.created_groups, &out);
  out += ';';
  return out;
}

StreamingService::StreamingService(StreamingServiceOptions options)
    : options_(options), controller_(options.controller) {}

Status StreamingService::Ingest(TenantEvent event) {
  if (!event_log_.empty() && event.time < event_log_.back().time) {
    return Status::InvalidArgument(
        "event time " + std::to_string(event.time) +
        " regresses behind the log tail " +
        std::to_string(event_log_.back().time));
  }
  event.sequence = event_log_.size();
  if (event.type == EventType::kCycleMark) {
    event_log_.push_back(event);
    ++events_since_mark_;
    return RunCycle(event_log_.back());
  }
  THRIFTY_RETURN_NOT_OK(Apply(event));
  event_log_.push_back(std::move(event));
  ++events_since_mark_;
  return Status::OK();
}

Status StreamingService::Apply(const TenantEvent& event) {
  switch (event.type) {
    case EventType::kRegister: {
      if (event.spec.id != event.tenant) {
        return Status::InvalidArgument(
            "register event for tenant " + std::to_string(event.tenant) +
            " carries spec of tenant " + std::to_string(event.spec.id));
      }
      if (event.spec.requested_nodes < 1) {
        return Status::InvalidArgument(
            "tenant " + std::to_string(event.tenant) +
            " requests fewer than 1 node");
      }
      if (registered_.count(event.tenant) || pending_new_.count(event.tenant)) {
        return Status::AlreadyExists("tenant " + std::to_string(event.tenant) +
                                     " is already registered");
      }
      pending_new_.emplace(event.tenant, event.spec);
      TenantLog log;
      log.tenant_id = event.tenant;
      log.entries = event.log_entries;
      log.SortEntries();
      history_[event.tenant] = std::move(log);
      return Status::OK();
    }
    case EventType::kDeregister: {
      auto pending = pending_new_.find(event.tenant);
      if (pending != pending_new_.end()) {
        // Registered and gone within one batch: cancel the registration
        // instead of handing the planner a tenant that is both new and
        // de-registered.
        pending_new_.erase(pending);
        history_.erase(event.tenant);
        return Status::OK();
      }
      if (!registered_.count(event.tenant)) {
        return Status::NotFound("tenant " + std::to_string(event.tenant) +
                                " is not registered");
      }
      if (!pending_dereg_.insert(event.tenant).second) {
        return Status::AlreadyExists("tenant " + std::to_string(event.tenant) +
                                     " already de-registered this cycle");
      }
      return Status::OK();
    }
    case EventType::kActivityDrift: {
      if (event.stride == 0) {
        return Status::InvalidArgument(
            "activity drift for tenant " + std::to_string(event.tenant) +
            " has zero stride");
      }
      auto it = history_.find(event.tenant);
      if (it == history_.end()) {
        return Status::NotFound("tenant " + std::to_string(event.tenant) +
                                " is not registered");
      }
      if (event.stride == 1) return Status::OK();
      std::vector<QueryLogEntry> thinned;
      thinned.reserve(it->second.entries.size() / event.stride + 1);
      for (size_t i = 0; i < it->second.entries.size(); i += event.stride) {
        thinned.push_back(it->second.entries[i]);
      }
      it->second.entries = std::move(thinned);
      return Status::OK();
    }
    case EventType::kSlaReport: {
      if (event.violations > event.queries) {
        return Status::InvalidArgument(
            "SLA report claims " + std::to_string(event.violations) +
            " violations out of " + std::to_string(event.queries) +
            " queries");
      }
      pending_queries_ += event.queries;
      pending_violations_ += event.violations;
      return Status::OK();
    }
    case EventType::kGroupFailure: {
      bool known = false;
      for (const auto& group : current_plan_.groups) {
        if (group.group_id == event.group) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::NotFound("group " + std::to_string(event.group) +
                                " is not in the current plan");
      }
      pending_failed_groups_.insert(event.group);
      return Status::OK();
    }
    case EventType::kCycleMark:
      return Status::Internal("cycle marks are handled by Ingest");
  }
  return Status::Internal("unhandled event type");
}

Status StreamingService::RunCycle(const TenantEvent& mark) {
  controller_.Observe(pending_queries_, pending_violations_);
  double p = controller_.sla_fraction();
  if (p < min_sla_fraction_) min_sla_fraction_ = p;

  ReconsolidationInput input;
  input.current_plan = current_plan_;
  input.scaled_groups = pending_failed_groups_;
  input.new_tenants.reserve(pending_new_.size());
  for (const auto& [id, spec] : pending_new_) input.new_tenants.push_back(spec);
  input.deregistered = pending_dereg_;

  ReconsolidationOptions planner_options = options_.reconsolidation;
  planner_options.advisor.sla_fraction = p;
  ReconsolidationPlanner planner(planner_options);
  THRIFTY_ASSIGN_OR_RETURN(
      ReconsolidationOutput output,
      planner.Plan(input, CurrentHistory(), options_.history_begin,
                   options_.history_end));

  std::set<GroupId> old_ids;
  for (const auto& group : current_plan_.groups) old_ids.insert(group.group_id);
  std::set<GroupId> new_ids;
  for (const auto& group : output.plan.groups) new_ids.insert(group.group_id);
  std::vector<GroupId> dissolved;
  for (GroupId id : old_ids) {
    if (!new_ids.count(id)) dissolved.push_back(id);
  }
  std::vector<GroupId> created;
  for (GroupId id : new_ids) {
    if (!old_ids.count(id)) created.push_back(id);
  }

  if (master_ != nullptr) {
    THRIFTY_RETURN_NOT_OK(ApplyPlanDelta(dissolved, created, output.plan));
  }

  current_plan_ = std::move(output.plan);
  for (const auto& [id, spec] : pending_new_) registered_.emplace(id, spec);
  for (TenantId tenant : pending_dereg_) {
    registered_.erase(tenant);
    history_.erase(tenant);
  }
  pending_new_.clear();
  pending_dereg_.clear();
  pending_failed_groups_.clear();
  pending_queries_ = 0;
  pending_violations_ = 0;

  CycleDecision decision;
  decision.cycle = decisions_.size();
  decision.time = mark.time;
  decision.events_consumed = events_since_mark_;
  decision.sla_fraction = p;
  decision.plan_fingerprint = PlanFingerprint(current_plan_);
  decision.resolved_groups = output.resolved_groups;
  std::sort(decision.resolved_groups.begin(), decision.resolved_groups.end());
  decision.untouched_groups = output.untouched_groups;
  std::sort(decision.untouched_groups.begin(),
            decision.untouched_groups.end());
  decision.dissolved_groups = std::move(dissolved);
  decision.created_groups = std::move(created);
  decision.solve_wall_ms = output.grouping.solve_seconds * 1000.0;
  decisions_.push_back(std::move(decision));

  events_since_mark_ = 0;
  last_mark_time_ = mark.time;
  any_cycle_ran_ = true;
  return Status::OK();
}

Status StreamingService::ApplyPlanDelta(const std::vector<GroupId>& dissolved,
                                        const std::vector<GroupId>& created,
                                        const DeploymentPlan& next_plan) {
  // Tear down first so the freed nodes are back in the hibernated pool
  // before the new groups draw from it.
  for (GroupId id : dissolved) {
    auto it = deployed_instances_.find(id);
    if (it == deployed_instances_.end()) continue;
    THRIFTY_RETURN_NOT_OK(master_->UndeployGroup(id, it->second));
    deployed_instances_.erase(it);
  }
  for (GroupId id : created) {
    const GroupDeployment* group = nullptr;
    for (const auto& candidate : next_plan.groups) {
      if (candidate.group_id == id) {
        group = &candidate;
        break;
      }
    }
    if (group == nullptr) {
      return Status::Internal("created group " + std::to_string(id) +
                              " missing from the next plan");
    }
    THRIFTY_ASSIGN_OR_RETURN(DeployedGroup deployed,
                             master_->DeployGroup(*group));
    std::vector<InstanceId> ids;
    ids.reserve(deployed.instances.size());
    for (const MppdbInstance* instance : deployed.instances) {
      ids.push_back(instance->id());
    }
    deployed_instances_.emplace(id, std::move(ids));
  }
  return Status::OK();
}

Result<bool> StreamingService::Tick() {
  if (clock_ == nullptr) {
    return Status::FailedPrecondition(
        "no clock attached; AttachClock before Tick");
  }
  SimTime now = clock_->Now();
  if (any_cycle_ran_ && now < last_mark_time_ + options_.cycle_period) {
    return false;
  }
  if (!event_log_.empty() && now < event_log_.back().time) {
    return Status::InvalidArgument(
        "clock " + std::to_string(now) + " is behind the event log tail " +
        std::to_string(event_log_.back().time));
  }
  THRIFTY_RETURN_NOT_OK(Ingest(MakeCycleMarkEvent(now)));
  return true;
}

Result<StreamingService> StreamingService::Replay(
    std::string_view encoded_log, StreamingServiceOptions options,
    DeploymentMaster* master) {
  THRIFTY_ASSIGN_OR_RETURN(std::vector<TenantEvent> events,
                           DecodeEventLog(encoded_log));
  StreamingService service(std::move(options));
  if (master != nullptr) service.AttachDeployment(master);
  for (TenantEvent& event : events) {
    THRIFTY_RETURN_NOT_OK(service.Ingest(std::move(event)));
  }
  return service;
}

uint64_t StreamingService::DecisionFingerprint() const {
  std::string stream;
  for (const CycleDecision& decision : decisions_) {
    stream += CycleDecisionStream(decision);
  }
  return Fnv1a64(stream);
}

std::vector<TenantSpec> StreamingService::RegisteredSpecs() const {
  std::vector<TenantSpec> specs;
  specs.reserve(registered_.size());
  for (const auto& [id, spec] : registered_) specs.push_back(spec);
  return specs;
}

std::vector<TenantLog> StreamingService::CurrentHistory() const {
  std::vector<TenantLog> history;
  history.reserve(history_.size());
  for (const auto& [id, log] : history_) history.push_back(log);
  return history;
}

std::vector<InstanceId> StreamingService::InstancesOf(GroupId group) const {
  auto it = deployed_instances_.find(group);
  if (it == deployed_instances_.end()) return {};
  return it->second;
}

}  // namespace thrifty
