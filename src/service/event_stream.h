// The tenant event stream: the streaming service's single source of truth.
//
// Every input the online service reacts to — tenant registration and
// de-registration, activity drift, SLA feedback, group failures, and the
// cycle boundaries themselves — is a TenantEvent in one totally-ordered
// stream. The stream serializes to a canonical little-endian binary log
// ("TEVTLG01"), and the service is a pure function of that log: replaying
// it reproduces every cycle decision byte-identically (see
// streaming_service.h for the full determinism contract).

#ifndef THRIFTY_SERVICE_EVENT_STREAM_H_
#define THRIFTY_SERVICE_EVENT_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "workload/query_log.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Index of a tenant-group within a deployment plan (mirrors
/// placement/deployment_plan.h without pulling the full header in).
using ServiceGroupId = int32_t;

/// \brief What happened. Wire values are part of the log format — append
/// only, never renumber.
enum class EventType : uint8_t {
  /// A tenant joined the service; carries its spec and the query history
  /// it was on-boarded with (the advisor needs history to consolidate).
  kRegister = 1,
  /// A tenant left; its group is re-consolidated next cycle.
  kDeregister = 2,
  /// The tenant's observed activity changed: its stored history is thinned
  /// to every `stride`-th entry, so the next cycle's drift screening sees
  /// the new fingerprint.
  kActivityDrift = 3,
  /// Aggregate SLA feedback since the last cycle: `queries` served, of
  /// which `violations` missed their SLA. Feeds the violation-budget
  /// controller.
  kSlaReport = 4,
  /// A node of this group's MPPDBs failed without auto-replacement; the
  /// group is re-consolidated next cycle.
  kGroupFailure = 5,
  /// A re-consolidation cycle boundary. In live mode the service emits one
  /// whenever the attached clock crosses the cycle period; in replay the
  /// recorded mark pins the boundary, so replay never consults a clock.
  kCycleMark = 6,
};

const char* EventTypeToString(EventType type);

/// \brief One event of the stream. Only the fields of the event's type are
/// meaningful (and serialized); the rest stay default.
struct TenantEvent {
  EventType type = EventType::kCycleMark;
  /// Dense position in the stream, stamped by the service at ingest (0, 1,
  /// 2, ...). Decoding rejects gaps and reorderings.
  uint64_t sequence = 0;
  /// Event time (ms). Must be non-decreasing along the stream.
  SimTime time = 0;
  /// Subject tenant; kInvalidTenantId for kSlaReport / kGroupFailure /
  /// kCycleMark.
  TenantId tenant = kInvalidTenantId;

  /// kRegister: the joining tenant's spec (spec.id == tenant).
  TenantSpec spec;
  /// kRegister: on-boarding query history, sorted by submit time.
  std::vector<QueryLogEntry> log_entries;
  /// kActivityDrift: keep every stride-th stored entry (>= 1).
  uint32_t stride = 1;
  /// kSlaReport: queries served / SLA violations since the last report.
  uint32_t queries = 0;
  uint32_t violations = 0;
  /// kGroupFailure: the failed group.
  ServiceGroupId group = -1;
};

/// \brief Convenience constructors (sequence is stamped at ingest).
TenantEvent MakeRegisterEvent(SimTime time, const TenantSpec& spec,
                              std::vector<QueryLogEntry> log_entries);
TenantEvent MakeDeregisterEvent(SimTime time, TenantId tenant);
TenantEvent MakeActivityDriftEvent(SimTime time, TenantId tenant,
                                   uint32_t stride);
TenantEvent MakeSlaReportEvent(SimTime time, uint32_t queries,
                               uint32_t violations);
TenantEvent MakeGroupFailureEvent(SimTime time, ServiceGroupId group);
TenantEvent MakeCycleMarkEvent(SimTime time);

/// \brief Appends one record in canonical binary form (no magic).
void AppendEventRecord(const TenantEvent& event, std::string* out);

/// \brief Serializes a whole log: 8-byte magic "TEVTLG01" followed by the
/// events' records in order. The encoding is canonical — two logs encode to
/// the same bytes iff they hold the same events.
std::string EncodeEventLog(const std::vector<TenantEvent>& events);

/// \brief Parses a log written by EncodeEventLog.
///
/// Strictly validated: rejects a bad magic, a record truncated mid-field
/// (reporting the byte offset), sequences that are not dense from zero,
/// time regressions, unknown event types, unknown benchmark suites, and
/// zero drift strides — each with a precise error message, so a corrupt or
/// hand-edited log never silently replays differently.
Result<std::vector<TenantEvent>> DecodeEventLog(std::string_view bytes);

/// \brief FNV-1a fingerprint of EncodeEventLog(events) — the stream
/// identity the soak gates compare between live runs and replays.
uint64_t EventLogFingerprint(const std::vector<TenantEvent>& events);

}  // namespace thrifty

#endif  // THRIFTY_SERVICE_EVENT_STREAM_H_
