// The online streaming service mode (Chapter 3 run live).
//
// StreamingService consumes the totally-ordered TenantEvent stream
// (event_stream.h), batches events between cycle marks, and runs one
// re-consolidation cycle per mark: the Tempo-style violation-budget
// controller turns the batch's SLA feedback into the cycle's performance
// guarantee P, ReconsolidationPlanner delta-solves the affected groups
// under that P, and the resulting plan delta is applied through the
// Deployment Master (dissolved groups undeployed first, fresh groups
// deployed after).
//
// Determinism contract: the service is a pure function of its event log.
// Cycle boundaries are themselves recorded events (kCycleMark) — in live
// mode the attached ClockSource only decides *where* the marks land; once
// recorded, replaying the log re-runs every cycle without consulting any
// clock. Replaying the same log therefore yields byte-identical cycle
// decisions (DecisionFingerprint), plan fingerprints (PlanFingerprint),
// and controller trajectories at any AdvisorOptions::solver_jobs and under
// SIMD or forced-scalar dispatch, and the replayed service re-encodes a
// byte-identical event log.

#ifndef THRIFTY_SERVICE_STREAMING_SERVICE_H_
#define THRIFTY_SERVICE_STREAMING_SERVICE_H_

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "core/deployment_master.h"
#include "core/reconsolidation.h"
#include "service/event_stream.h"
#include "sim/clock_source.h"

namespace thrifty {

/// \brief Knobs of the violation-budget controller.
///
/// The controller tracks a violation budget B = 1 - P and nudges it toward
/// the configured per-cycle violation rate: observing a rate above target
/// shrinks the budget (stricter P for the next solve), a rate below target
/// relaxes it, reclaiming consolidation headroom. Updates are additive and
/// clamped — no libm, so trajectories are bit-reproducible everywhere.
struct SlaControllerOptions {
  /// Starting guarantee P (also the plan's sla_fraction on cycle 0).
  double initial_sla_fraction = 0.999;
  /// Per-cycle SLA violation rate the controller steers toward.
  double target_violation_rate = 0.02;
  /// Fraction of the observed-vs-target error applied per cycle. The
  /// budget band is only ~1e-2 wide, so gains near 1 bang-bang against the
  /// clamps; 0.1 converges in a few cycles without oscillating.
  double gain = 0.1;
  /// Clamp band for P: [min_sla_fraction, max_sla_fraction].
  double min_sla_fraction = 0.99;
  double max_sla_fraction = 0.9999;
};

/// \brief Tempo-style additive-update controller over the violation budget.
class SlaBudgetController {
 public:
  explicit SlaBudgetController(SlaControllerOptions options);

  /// \brief Current guarantee P.
  double sla_fraction() const { return sla_fraction_; }

  /// \brief Feeds one cycle's aggregate feedback and appends the resulting
  /// P to the trajectory. queries == 0 means no feedback arrived: P is
  /// held (but still recorded, keeping the trajectory one entry per cycle).
  void Observe(uint64_t queries, uint64_t violations);

  /// \brief P after each Observe call, in order.
  const std::vector<double>& trajectory() const { return trajectory_; }

  /// \brief FNV-1a over the trajectory's raw double bit patterns — the
  /// byte-identity surface of the controller replay gates.
  uint64_t TrajectoryFingerprint() const;

 private:
  SlaControllerOptions options_;
  double sla_fraction_;
  std::vector<double> trajectory_;
};

/// \brief Streaming service configuration.
struct StreamingServiceOptions {
  /// Planner knobs; reconsolidation.advisor.sla_fraction is overridden each
  /// cycle by the controller's current P.
  ReconsolidationOptions reconsolidation;
  SlaControllerOptions controller;
  /// Activity-history window the per-cycle solves are evaluated over
  /// (tenant logs ingested via kRegister events must cover it).
  SimTime history_begin = 0;
  SimTime history_end = 0;
  /// Live mode: Tick() emits a kCycleMark whenever the attached clock has
  /// advanced cycle_period past the previous mark.
  SimDuration cycle_period = kDay;
  /// Executor mode applied to the attached deployment's cluster (every
  /// instance deployed by a cycle runs in this mode). Planning never reads
  /// executor state, so decisions/plan fingerprints are mode-independent —
  /// the soak gates assert exactly that.
  PsExecutorMode executor_mode = PsExecutorMode::kVirtualTime;
};

/// \brief What one re-consolidation cycle decided. Wall times are
/// measurements, not decisions — they are excluded from the fingerprint.
struct CycleDecision {
  /// 0-based cycle index.
  uint64_t cycle = 0;
  /// The triggering kCycleMark's time.
  SimTime time = 0;
  /// Events consumed since the previous mark (the mark included).
  uint64_t events_consumed = 0;
  /// The guarantee P this cycle solved under (controller output).
  double sla_fraction = 0;
  /// Fingerprint of the plan this cycle produced.
  uint64_t plan_fingerprint = 0;
  /// Input-plan groups re-solved / carried over (planner accounting).
  std::vector<GroupId> resolved_groups;
  std::vector<GroupId> untouched_groups;
  /// Plan delta actually applied: groups torn down / newly deployed.
  std::vector<GroupId> dissolved_groups;
  std::vector<GroupId> created_groups;
  /// Solver wall time (ms) of the delta re-solve. NOT fingerprinted.
  double solve_wall_ms = 0;
};

/// \brief Canonical byte stream of a decision (everything but wall times).
std::string CycleDecisionStream(const CycleDecision& decision);

/// \brief The online service: event stream in, cycle decisions out.
class StreamingService {
 public:
  explicit StreamingService(StreamingServiceOptions options);

  /// \brief Live mode wiring: cluster-applying master (optional — without
  /// one the service plans but does not deploy) and the clock Tick() reads.
  void AttachDeployment(DeploymentMaster* master) {
    master_ = master;
    if (master_ != nullptr) {
      master_->cluster()->set_executor_mode(options_.executor_mode);
    }
  }
  void AttachClock(const ClockSource* clock) { clock_ = clock; }

  /// \brief Appends one event to the log and applies it. The sequence is
  /// re-stamped densely (callers never manage sequences); the time must be
  /// non-decreasing. A kCycleMark runs a re-consolidation cycle before
  /// Ingest returns. Invalid events (duplicate registration, unknown
  /// tenant, zero stride, ...) are rejected and NOT appended.
  Status Ingest(TenantEvent event);

  /// \brief Live mode: emits (and runs) a kCycleMark stamped with the
  /// attached clock's now if a full cycle_period has passed since the last
  /// mark (or if no cycle ran yet). Returns true when a cycle ran.
  Result<bool> Tick();

  /// \brief Replays an encoded event log from scratch: decodes, then
  /// ingests every event in order (marks re-run the cycles). The replayed
  /// service's decisions, fingerprints, and controller trajectory are
  /// byte-identical to the recorder's.
  static Result<StreamingService> Replay(std::string_view encoded_log,
                                         StreamingServiceOptions options,
                                         DeploymentMaster* master = nullptr);

  /// \brief The recorded stream (sequences stamped).
  const std::vector<TenantEvent>& event_log() const { return event_log_; }

  /// \brief Serializes the recorded stream (replays re-encode these exact
  /// bytes).
  std::string EncodeLog() const { return EncodeEventLog(event_log_); }

  /// \brief All cycle decisions so far.
  const std::vector<CycleDecision>& decisions() const { return decisions_; }

  /// \brief FNV-1a over the concatenated CycleDecisionStreams — the single
  /// value the soak's live-vs-replay gate compares.
  uint64_t DecisionFingerprint() const;

  const SlaBudgetController& controller() const { return controller_; }
  const DeploymentPlan& current_plan() const { return current_plan_; }

  /// \brief Smallest P any cycle solved under so far (1.0 before the first
  /// cycle) — the sound bound for feasibility checks across cycles.
  double min_sla_fraction() const { return min_sla_fraction_; }

  /// \brief Registered tenants in id order.
  std::vector<TenantSpec> RegisteredSpecs() const;

  /// \brief Current (drift-thinned) history in tenant-id order.
  std::vector<TenantLog> CurrentHistory() const;

  /// \brief Instances deployed for a group (empty without a master).
  std::vector<InstanceId> InstancesOf(GroupId group) const;

 private:
  Status Apply(const TenantEvent& event);
  Status RunCycle(const TenantEvent& mark);
  Status ApplyPlanDelta(const std::vector<GroupId>& dissolved,
                        const std::vector<GroupId>& created,
                        const DeploymentPlan& next_plan);

  StreamingServiceOptions options_;
  DeploymentMaster* master_ = nullptr;
  const ClockSource* clock_ = nullptr;

  std::vector<TenantEvent> event_log_;
  std::vector<CycleDecision> decisions_;
  SlaBudgetController controller_;
  double min_sla_fraction_ = 1.0;

  /// Registered tenants and their (drift-thinned) history.
  std::map<TenantId, TenantSpec> registered_;
  std::map<TenantId, TenantLog> history_;

  /// Batched inputs for the next cycle.
  std::map<TenantId, TenantSpec> pending_new_;
  std::unordered_set<TenantId> pending_dereg_;
  std::unordered_set<GroupId> pending_failed_groups_;
  uint64_t pending_queries_ = 0;
  uint64_t pending_violations_ = 0;
  uint64_t events_since_mark_ = 0;

  DeploymentPlan current_plan_;
  /// Instances per deployed group (only populated with a master attached).
  std::map<GroupId, std::vector<InstanceId>> deployed_instances_;

  bool any_cycle_ran_ = false;
  SimTime last_mark_time_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_SERVICE_STREAMING_SERVICE_H_
