#include "service/event_stream.h"

#include <bit>
#include <cstring>

#include "common/fnv.h"

namespace thrifty {

namespace {

constexpr char kMagic[8] = {'T', 'E', 'V', 'T', 'L', 'G', '0', '1'};

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  PutU64(std::bit_cast<uint64_t>(v), out);
}

/// Cursor over the encoded bytes; every read checks bounds and reports the
/// offset of the first missing byte on truncation.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t offset() const { return offset_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }

  Status Read(void* dst, size_t n, const char* what) {
    if (bytes_.size() - offset_ < n) {
      return Status::InvalidArgument(
          "event log truncated: " + std::string(what) + " needs " +
          std::to_string(n) + " bytes at offset " + std::to_string(offset_) +
          " but only " + std::to_string(bytes_.size() - offset_) + " remain");
    }
    std::memcpy(dst, bytes_.data() + offset_, n);
    offset_ += n;
    return Status::OK();
  }

  Result<uint8_t> U8(const char* what) {
    uint8_t v;
    THRIFTY_RETURN_NOT_OK(Read(&v, 1, what));
    return v;
  }
  Result<uint32_t> U32(const char* what) {
    unsigned char raw[4];
    THRIFTY_RETURN_NOT_OK(Read(raw, 4, what));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(raw[i]) << (8 * i);
    return v;
  }
  Result<uint64_t> U64(const char* what) {
    unsigned char raw[8];
    THRIFTY_RETURN_NOT_OK(Read(raw, 8, what));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
    return v;
  }
  Result<int32_t> I32(const char* what) {
    THRIFTY_ASSIGN_OR_RETURN(uint32_t v, U32(what));
    return static_cast<int32_t>(v);
  }
  Result<int64_t> I64(const char* what) {
    THRIFTY_ASSIGN_OR_RETURN(uint64_t v, U64(what));
    return static_cast<int64_t>(v);
  }
  Result<double> F64(const char* what) {
    THRIFTY_ASSIGN_OR_RETURN(uint64_t v, U64(what));
    return std::bit_cast<double>(v);
  }

 private:
  std::string_view bytes_;
  size_t offset_ = 0;
};

}  // namespace

const char* EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kRegister:
      return "register";
    case EventType::kDeregister:
      return "deregister";
    case EventType::kActivityDrift:
      return "activity-drift";
    case EventType::kSlaReport:
      return "sla-report";
    case EventType::kGroupFailure:
      return "group-failure";
    case EventType::kCycleMark:
      return "cycle-mark";
  }
  return "unknown";
}

TenantEvent MakeRegisterEvent(SimTime time, const TenantSpec& spec,
                              std::vector<QueryLogEntry> log_entries) {
  TenantEvent e;
  e.type = EventType::kRegister;
  e.time = time;
  e.tenant = spec.id;
  e.spec = spec;
  e.log_entries = std::move(log_entries);
  return e;
}

TenantEvent MakeDeregisterEvent(SimTime time, TenantId tenant) {
  TenantEvent e;
  e.type = EventType::kDeregister;
  e.time = time;
  e.tenant = tenant;
  return e;
}

TenantEvent MakeActivityDriftEvent(SimTime time, TenantId tenant,
                                   uint32_t stride) {
  TenantEvent e;
  e.type = EventType::kActivityDrift;
  e.time = time;
  e.tenant = tenant;
  e.stride = stride;
  return e;
}

TenantEvent MakeSlaReportEvent(SimTime time, uint32_t queries,
                               uint32_t violations) {
  TenantEvent e;
  e.type = EventType::kSlaReport;
  e.time = time;
  e.queries = queries;
  e.violations = violations;
  return e;
}

TenantEvent MakeGroupFailureEvent(SimTime time, ServiceGroupId group) {
  TenantEvent e;
  e.type = EventType::kGroupFailure;
  e.time = time;
  e.group = group;
  return e;
}

TenantEvent MakeCycleMarkEvent(SimTime time) {
  TenantEvent e;
  e.type = EventType::kCycleMark;
  e.time = time;
  return e;
}

void AppendEventRecord(const TenantEvent& event, std::string* out) {
  PutU8(static_cast<uint8_t>(event.type), out);
  PutU64(event.sequence, out);
  PutI64(event.time, out);
  PutI32(event.tenant, out);
  switch (event.type) {
    case EventType::kRegister: {
      PutI32(event.spec.requested_nodes, out);
      PutF64(event.spec.data_gb, out);
      PutU8(static_cast<uint8_t>(event.spec.suite), out);
      PutI32(event.spec.time_zone_offset_hours, out);
      PutI32(event.spec.max_users, out);
      PutU32(static_cast<uint32_t>(event.log_entries.size()), out);
      for (const QueryLogEntry& entry : event.log_entries) {
        PutI64(entry.submit_time, out);
        PutI32(entry.template_id, out);
        PutI64(entry.observed_latency, out);
        PutI32(entry.batch_id, out);
      }
      break;
    }
    case EventType::kDeregister:
      break;
    case EventType::kActivityDrift:
      PutU32(event.stride, out);
      break;
    case EventType::kSlaReport:
      PutU32(event.queries, out);
      PutU32(event.violations, out);
      break;
    case EventType::kGroupFailure:
      PutI32(event.group, out);
      break;
    case EventType::kCycleMark:
      break;
  }
}

std::string EncodeEventLog(const std::vector<TenantEvent>& events) {
  std::string out(kMagic, sizeof(kMagic));
  for (const TenantEvent& event : events) AppendEventRecord(event, &out);
  return out;
}

Result<std::vector<TenantEvent>> DecodeEventLog(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "event log has bad magic: expected \"TEVTLG01\" in the first 8 "
        "bytes");
  }
  Reader reader(bytes.substr(sizeof(kMagic)));
  std::vector<TenantEvent> events;
  while (!reader.AtEnd()) {
    TenantEvent event;
    THRIFTY_ASSIGN_OR_RETURN(uint8_t raw_type, reader.U8("record type"));
    if (raw_type < static_cast<uint8_t>(EventType::kRegister) ||
        raw_type > static_cast<uint8_t>(EventType::kCycleMark)) {
      return Status::InvalidArgument(
          "event log record " + std::to_string(events.size()) +
          " has unknown event type " + std::to_string(raw_type));
    }
    event.type = static_cast<EventType>(raw_type);
    THRIFTY_ASSIGN_OR_RETURN(event.sequence, reader.U64("sequence"));
    if (event.sequence != events.size()) {
      return Status::InvalidArgument(
          "event log record " + std::to_string(events.size()) +
          " has non-contiguous sequence " + std::to_string(event.sequence) +
          " (expected " + std::to_string(events.size()) + ")");
    }
    THRIFTY_ASSIGN_OR_RETURN(event.time, reader.I64("time"));
    if (!events.empty() && event.time < events.back().time) {
      return Status::InvalidArgument(
          "event log record " + std::to_string(events.size()) +
          " regresses in time: " + std::to_string(event.time) + " < " +
          std::to_string(events.back().time));
    }
    THRIFTY_ASSIGN_OR_RETURN(event.tenant, reader.I32("tenant id"));
    switch (event.type) {
      case EventType::kRegister: {
        event.spec.id = event.tenant;
        THRIFTY_ASSIGN_OR_RETURN(event.spec.requested_nodes,
                                 reader.I32("requested nodes"));
        THRIFTY_ASSIGN_OR_RETURN(event.spec.data_gb, reader.F64("data gb"));
        THRIFTY_ASSIGN_OR_RETURN(uint8_t raw_suite,
                                 reader.U8("benchmark suite"));
        if (raw_suite > static_cast<uint8_t>(QuerySuite::kTpcds)) {
          return Status::InvalidArgument(
              "event log record " + std::to_string(events.size()) +
              " has unknown benchmark suite " + std::to_string(raw_suite));
        }
        event.spec.suite = static_cast<QuerySuite>(raw_suite);
        THRIFTY_ASSIGN_OR_RETURN(event.spec.time_zone_offset_hours,
                                 reader.I32("time zone offset"));
        THRIFTY_ASSIGN_OR_RETURN(event.spec.max_users,
                                 reader.I32("max users"));
        THRIFTY_ASSIGN_OR_RETURN(uint32_t count,
                                 reader.U32("log entry count"));
        event.log_entries.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          QueryLogEntry entry;
          THRIFTY_ASSIGN_OR_RETURN(entry.submit_time,
                                   reader.I64("entry submit time"));
          THRIFTY_ASSIGN_OR_RETURN(entry.template_id,
                                   reader.I32("entry template id"));
          THRIFTY_ASSIGN_OR_RETURN(entry.observed_latency,
                                   reader.I64("entry latency"));
          THRIFTY_ASSIGN_OR_RETURN(entry.batch_id, reader.I32("entry batch"));
          event.log_entries.push_back(entry);
        }
        break;
      }
      case EventType::kDeregister:
        break;
      case EventType::kActivityDrift: {
        THRIFTY_ASSIGN_OR_RETURN(event.stride, reader.U32("drift stride"));
        if (event.stride == 0) {
          return Status::InvalidArgument(
              "event log record " + std::to_string(events.size()) +
              " has zero drift stride");
        }
        break;
      }
      case EventType::kSlaReport: {
        THRIFTY_ASSIGN_OR_RETURN(event.queries, reader.U32("query count"));
        THRIFTY_ASSIGN_OR_RETURN(event.violations,
                                 reader.U32("violation count"));
        break;
      }
      case EventType::kGroupFailure: {
        THRIFTY_ASSIGN_OR_RETURN(event.group, reader.I32("group id"));
        break;
      }
      case EventType::kCycleMark:
        break;
    }
    events.push_back(std::move(event));
  }
  return events;
}

uint64_t EventLogFingerprint(const std::vector<TenantEvent>& events) {
  return Fnv1a64(EncodeEventLog(events));
}

}  // namespace thrifty
