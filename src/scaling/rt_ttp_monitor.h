// Run-time TTP (RT-TTP) tracking (§5.1).
//
// At run time a tenant-group's activity may deviate from history. The
// Tenant Activity Monitor watches, per group, the step function "number of
// concurrently active tenants" over a sliding window (the paper uses 24
// hours) and computes the RT-TTP: the fraction of that window during which
// at most R tenants were active. When RT-TTP drops below the SLA guarantee
// P, elastic scaling takes action.

#ifndef THRIFTY_SCALING_RT_TTP_MONITOR_H_
#define THRIFTY_SCALING_RT_TTP_MONITOR_H_

#include <deque>

#include "common/sim_time.h"

namespace thrifty {

/// \brief Sliding-window RT-TTP of one tenant-group.
///
/// Time before the first recorded change counts as zero active tenants.
class RtTtpMonitor {
 public:
  /// \param r replication factor (the count threshold).
  /// \param window sliding window length (default 24 h).
  explicit RtTtpMonitor(int r, SimDuration window = 24 * kHour);

  int r() const { return r_; }
  SimDuration window() const { return window_; }

  /// \brief Records that the group's active-tenant count changed at `now`.
  ///
  /// Calls must be in non-decreasing time order.
  void OnActiveCountChange(SimTime now, int count);

  /// \brief Active-tenant count right now.
  int current_count() const;

  /// \brief Fraction of [now - window, now) with count <= r. Returns 1 for
  /// an empty window (now <= 0 history counts as inactive).
  double RtTtp(SimTime now) const;

  /// \brief Fraction of [now - window, now) with count > threshold
  /// (generalization used by tests and manual tuning).
  double FractionAbove(SimTime now, int threshold) const;

 private:
  struct Segment {
    SimTime since;
    int count;
  };

  /// \brief Drops segments that ended before `horizon` (keeps the one
  /// straddling it).
  void Prune(SimTime horizon);

  int r_;
  SimDuration window_;
  std::deque<Segment> segments_;
};

}  // namespace thrifty

#endif  // THRIFTY_SCALING_RT_TTP_MONITOR_H_
