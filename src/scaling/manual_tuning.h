// Manual tuning of the tuning MPPDB (Chapter 6).
//
// When a group's RT-TTP sits only slightly below P and is not trending
// down, starting a whole new MPPDB is overkill. A system administrator can
// instead raise U — the node count of MPPDB_0 — so that the rare overflow
// queries (Algorithm 1 line 10) are concurrently processed with enough extra
// parallelism to still meet their latency SLA empirically.

#ifndef THRIFTY_SCALING_MANUAL_TUNING_H_
#define THRIFTY_SCALING_MANUAL_TUNING_H_

#include "common/result.h"

namespace thrifty {

/// \brief What the administrator should do about a group's RT-TTP breach.
enum class TuningAction {
  /// RT-TTP is fine; do nothing.
  kNone,
  /// Small, flat breach: override elastic scaling and raise U instead.
  kRaiseTuningNodes,
  /// Large or worsening breach: let elastic scaling proceed.
  kElasticScale,
};

const char* TuningActionToString(TuningAction action);

struct TuningAdvice {
  TuningAction action = TuningAction::kNone;
  /// Recommended U when action == kRaiseTuningNodes (otherwise the current
  /// value).
  int recommended_tuning_nodes = 0;
};

/// \brief Advises on a group's RT-TTP breach.
///
/// \param rt_ttp the group's current 24 h RT-TTP.
/// \param rt_ttp_trending_down whether the monitor shows a continuing drop.
/// \param sla_fraction P.
/// \param largest_tenant_nodes n_1 of the group.
/// \param current_tuning_nodes the current U.
/// \param max_tuning_nodes the U upper bound N - (A-1) n_1.
/// \param observed_overflow_concurrency highest number of queries seen
///        concurrently on MPPDB_0 during breaches (>= 1).
/// \param small_breach_threshold breaches up to this far below P count as
///        "tiny" (the paper's example: 99.8% vs 99.9% = 0.001).
Result<TuningAdvice> AdviseTuning(double rt_ttp, bool rt_ttp_trending_down,
                                  double sla_fraction,
                                  int largest_tenant_nodes,
                                  int current_tuning_nodes,
                                  int max_tuning_nodes,
                                  int observed_overflow_concurrency,
                                  double small_breach_threshold = 0.002);

}  // namespace thrifty

#endif  // THRIFTY_SCALING_MANUAL_TUNING_H_
