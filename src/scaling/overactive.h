// Over-active-tenant identification (§5.1).
//
// When a tenant-group's RT-TTP drops below P, Thrifty must find the
// tenant(s) that are more active than history indicated. The algorithm is
// the tenant-grouping algorithm (Algorithm 2) restricted to the group's own
// members and their *recent* activity: tenants that can no longer fit into
// a single group with TTP >= P are the over-active ones.

#ifndef THRIFTY_SCALING_OVERACTIVE_H_
#define THRIFTY_SCALING_OVERACTIVE_H_

#include <vector>

#include "activity/activity_vector.h"
#include "common/result.h"

namespace thrifty {

/// \brief Identifies the over-active tenants of one tenant-group.
///
/// \param member_activity recent activity vectors of the group's members
///        (e.g. from the last 24-hour window).
/// \param replication_factor R.
/// \param sla_fraction P.
/// \returns tenant ids that do not fit; possibly empty (a transient spike
/// that the regrouping can still absorb).
Result<std::vector<TenantId>> IdentifyOveractiveTenants(
    const std::vector<ActivityVector>& member_activity,
    int replication_factor, double sla_fraction);

/// \brief The member with the largest recent active ratio (fallback victim
/// when regrouping fits everyone but RT-TTP is still below P).
Result<TenantId> MostActiveTenant(
    const std::vector<ActivityVector>& member_activity);

}  // namespace thrifty

#endif  // THRIFTY_SCALING_OVERACTIVE_H_
