#include "scaling/manual_tuning.h"

#include <algorithm>

namespace thrifty {

const char* TuningActionToString(TuningAction action) {
  switch (action) {
    case TuningAction::kNone:
      return "none";
    case TuningAction::kRaiseTuningNodes:
      return "raise-tuning-nodes";
    case TuningAction::kElasticScale:
      return "elastic-scale";
  }
  return "unknown";
}

Result<TuningAdvice> AdviseTuning(double rt_ttp, bool rt_ttp_trending_down,
                                  double sla_fraction,
                                  int largest_tenant_nodes,
                                  int current_tuning_nodes,
                                  int max_tuning_nodes,
                                  int observed_overflow_concurrency,
                                  double small_breach_threshold) {
  if (rt_ttp < 0 || rt_ttp > 1 || sla_fraction <= 0 || sla_fraction > 1) {
    return Status::InvalidArgument("fractions must lie in [0, 1]");
  }
  if (largest_tenant_nodes < 1 || current_tuning_nodes < largest_tenant_nodes) {
    return Status::InvalidArgument("tuning MPPDB smaller than n_1");
  }
  if (observed_overflow_concurrency < 1) {
    return Status::InvalidArgument("overflow concurrency must be >= 1");
  }

  TuningAdvice advice;
  advice.recommended_tuning_nodes = current_tuning_nodes;
  if (rt_ttp + 1e-12 >= sla_fraction) {
    advice.action = TuningAction::kNone;
    return advice;
  }
  double breach = sla_fraction - rt_ttp;
  if (rt_ttp_trending_down || breach > small_breach_threshold) {
    advice.action = TuningAction::kElasticScale;
    return advice;
  }
  // Tiny, flat breach: size MPPDB_0 so that the observed overflow
  // concurrency still gives each query at least n_1 nodes' worth of
  // processor-sharing rate (U / k >= n_1), clamped to the design bound.
  int wanted = largest_tenant_nodes * (observed_overflow_concurrency + 1);
  wanted = std::min(wanted, max_tuning_nodes);
  if (wanted <= current_tuning_nodes) {
    // Already at or above what the overflow needs (or at the cap): a bigger
    // U cannot help, so scale elastically.
    advice.action = TuningAction::kElasticScale;
    return advice;
  }
  advice.action = TuningAction::kRaiseTuningNodes;
  advice.recommended_tuning_nodes = wanted;
  return advice;
}

}  // namespace thrifty
