#include "scaling/overactive.h"

#include <algorithm>

#include "activity/level_set.h"
#include "placement/two_step.h"

namespace thrifty {

Result<std::vector<TenantId>> IdentifyOveractiveTenants(
    const std::vector<ActivityVector>& member_activity,
    int replication_factor, double sla_fraction) {
  if (member_activity.empty()) {
    return Status::InvalidArgument("empty tenant-group");
  }
  size_t num_epochs = member_activity[0].num_epochs();
  for (const auto& a : member_activity) {
    if (a.num_epochs() != num_epochs) {
      return Status::InvalidArgument("mismatched activity vector lengths");
    }
  }

  // Algorithm 2's second step, building a single group.
  std::vector<const ActivityVector*> remaining;
  for (const auto& a : member_activity) remaining.push_back(&a);
  std::sort(remaining.begin(), remaining.end(),
            [](const ActivityVector* a, const ActivityVector* b) {
              if (a->ActiveEpochs() != b->ActiveEpochs()) {
                return a->ActiveEpochs() < b->ActiveEpochs();
              }
              return a->tenant_id() < b->tenant_id();
            });

  GroupLevelSet levels(num_epochs);
  levels.Add(*remaining.front());
  remaining.erase(remaining.begin());

  while (!remaining.empty()) {
    size_t best_index = 0;
    std::vector<size_t> best_pops;
    for (size_t i = 0; i < remaining.size(); ++i) {
      std::vector<size_t> pops = levels.EvaluateAdd(*remaining[i]);
      if (best_pops.empty()) {
        best_pops = std::move(pops);
        best_index = i;
        continue;
      }
      int cmp = CompareCandidateLevels(pops, best_pops);
      bool better = cmp < 0 || (cmp == 0 && remaining[i]->tenant_id() >
                                                remaining[best_index]
                                                    ->tenant_id());
      if (better) {
        best_pops = std::move(pops);
        best_index = i;
      }
    }
    if (levels.TtpFromPopcounts(best_pops, replication_factor) + 1e-12 <
        sla_fraction) {
      break;  // everyone left is over-active
    }
    levels.Add(*remaining[best_index]);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best_index));
  }

  std::vector<TenantId> overactive;
  overactive.reserve(remaining.size());
  for (const ActivityVector* a : remaining) {
    overactive.push_back(a->tenant_id());
  }
  std::sort(overactive.begin(), overactive.end());
  return overactive;
}

Result<TenantId> MostActiveTenant(
    const std::vector<ActivityVector>& member_activity) {
  if (member_activity.empty()) {
    return Status::InvalidArgument("empty tenant-group");
  }
  const ActivityVector* best = &member_activity[0];
  for (const auto& a : member_activity) {
    if (a.ActiveEpochs() > best->ActiveEpochs() ||
        (a.ActiveEpochs() == best->ActiveEpochs() &&
         a.tenant_id() > best->tenant_id())) {
      best = &a;
    }
  }
  return best->tenant_id();
}

}  // namespace thrifty
