#include "scaling/rt_ttp_monitor.h"

#include <algorithm>
#include <cassert>

namespace thrifty {

RtTtpMonitor::RtTtpMonitor(int r, SimDuration window)
    : r_(r), window_(window) {
  assert(r >= 0);
  assert(window > 0);
}

void RtTtpMonitor::OnActiveCountChange(SimTime now, int count) {
  assert(segments_.empty() || now >= segments_.back().since);
  if (!segments_.empty() && segments_.back().since == now) {
    segments_.back().count = count;
    // Collapse a no-op rewrite into the previous segment.
    if (segments_.size() >= 2 &&
        segments_[segments_.size() - 2].count == count) {
      segments_.pop_back();
    }
    return;
  }
  if (!segments_.empty() && segments_.back().count == count) return;
  segments_.push_back({now, count});
  Prune(now - window_);
}

int RtTtpMonitor::current_count() const {
  return segments_.empty() ? 0 : segments_.back().count;
}

double RtTtpMonitor::FractionAbove(SimTime now, int threshold) const {
  SimTime begin = now - window_;
  if (now <= begin) return 0;
  SimDuration above = 0;
  // Sweep segments overlapping [begin, now). Time before the first segment
  // counts as zero active tenants (never above a non-negative threshold).
  for (size_t i = 0; i < segments_.size(); ++i) {
    SimTime seg_begin = std::max(segments_[i].since, begin);
    SimTime seg_end =
        i + 1 < segments_.size() ? segments_[i + 1].since : now;
    seg_end = std::min(seg_end, now);
    if (seg_end <= seg_begin) continue;
    if (segments_[i].count > threshold) above += seg_end - seg_begin;
  }
  return static_cast<double>(above) / static_cast<double>(window_);
}

double RtTtpMonitor::RtTtp(SimTime now) const {
  return 1.0 - FractionAbove(now, r_);
}

void RtTtpMonitor::Prune(SimTime horizon) {
  // Keep at least one segment starting at or before the horizon so the
  // straddling portion remains computable.
  while (segments_.size() >= 2 && segments_[1].since <= horizon) {
    segments_.pop_front();
  }
}

}  // namespace thrifty
