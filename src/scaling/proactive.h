// Proactive elastic scaling support (§5.1 discussion).
//
// The paper's Thrifty is reactive; it notes a proactive alternative —
// predict at run time whether the RT-TTP will soon drop below P and trigger
// lightweight scaling before the breach — but warns that it "is subjected
// to prediction error and spikes (e.g., sharp drop of RT-TTP followed by
// sharp rise) in tenant activities". This module implements that
// alternative: a least-squares trend predictor over recent RT-TTP samples
// with a spike guard (a breach is only predicted when the decline is
// sustained, not a single-sample dip).

#ifndef THRIFTY_SCALING_PROACTIVE_H_
#define THRIFTY_SCALING_PROACTIVE_H_

#include <deque>

#include "common/result.h"
#include "common/sim_time.h"

namespace thrifty {

/// \brief Configuration of the trend predictor.
struct TrendPredictorOptions {
  /// Number of recent (time, RT-TTP) samples regressed over.
  size_t window_samples = 12;
  /// Minimum samples before any prediction is made.
  size_t min_samples = 6;
  /// Spike guard: at least this fraction of consecutive sample steps must
  /// be non-increasing for the decline to count as sustained.
  double sustained_fraction = 0.7;
};

/// \brief Least-squares RT-TTP trend with spike rejection.
class RtTtpTrendPredictor {
 public:
  explicit RtTtpTrendPredictor(
      TrendPredictorOptions options = TrendPredictorOptions());

  /// \brief Feeds one sample; times must be non-decreasing.
  void AddSample(SimTime time, double rt_ttp);

  size_t sample_count() const { return samples_.size(); }

  /// \brief Fitted slope in RT-TTP units per hour; fails with
  /// FailedPrecondition until min_samples are available.
  Result<double> SlopePerHour() const;

  /// \brief Extrapolated RT-TTP at `time` (clamped to [0, 1]).
  Result<double> PredictAt(SimTime time) const;

  /// \brief True if the fitted trend is a *sustained* decline that crosses
  /// below `sla_fraction` within `lead` from `now`.
  Result<bool> PredictsBreach(double sla_fraction, SimDuration lead,
                              SimTime now) const;

 private:
  struct Sample {
    SimTime time;
    double value;
  };

  TrendPredictorOptions options_;
  std::deque<Sample> samples_;
};

}  // namespace thrifty

#endif  // THRIFTY_SCALING_PROACTIVE_H_
