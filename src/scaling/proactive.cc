#include "scaling/proactive.h"

#include <algorithm>
#include <cassert>

namespace thrifty {

RtTtpTrendPredictor::RtTtpTrendPredictor(TrendPredictorOptions options)
    : options_(options) {
  assert(options_.window_samples >= 2);
  assert(options_.min_samples >= 2);
}

void RtTtpTrendPredictor::AddSample(SimTime time, double rt_ttp) {
  assert(samples_.empty() || time >= samples_.back().time);
  samples_.push_back({time, rt_ttp});
  while (samples_.size() > options_.window_samples) samples_.pop_front();
}

Result<double> RtTtpTrendPredictor::SlopePerHour() const {
  if (samples_.size() < options_.min_samples) {
    return Status::FailedPrecondition("not enough RT-TTP samples yet");
  }
  // Least squares over (hours since first sample, value).
  double n = static_cast<double>(samples_.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  SimTime t0 = samples_.front().time;
  for (const auto& s : samples_) {
    double x = static_cast<double>(s.time - t0) / kHour;
    sum_x += x;
    sum_y += s.value;
    sum_xx += x * x;
    sum_xy += x * s.value;
  }
  double denom = n * sum_xx - sum_x * sum_x;
  if (denom <= 1e-12) return 0.0;  // all samples at (nearly) the same time
  return (n * sum_xy - sum_x * sum_y) / denom;
}

Result<double> RtTtpTrendPredictor::PredictAt(SimTime time) const {
  THRIFTY_ASSIGN_OR_RETURN(double slope, SlopePerHour());
  // Intercept from the mean point of the fit.
  double n = static_cast<double>(samples_.size());
  double mean_x = 0, mean_y = 0;
  SimTime t0 = samples_.front().time;
  for (const auto& s : samples_) {
    mean_x += static_cast<double>(s.time - t0) / kHour;
    mean_y += s.value;
  }
  mean_x /= n;
  mean_y /= n;
  double x = static_cast<double>(time - t0) / kHour;
  return std::clamp(mean_y + slope * (x - mean_x), 0.0, 1.0);
}

Result<bool> RtTtpTrendPredictor::PredictsBreach(double sla_fraction,
                                                 SimDuration lead,
                                                 SimTime now) const {
  THRIFTY_ASSIGN_OR_RETURN(double slope, SlopePerHour());
  if (slope >= 0) return false;
  // Spike guard: the decline must be sustained across the window, not one
  // sharp dip (possibly already recovering).
  size_t non_increasing = 0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].value <= samples_[i - 1].value + 1e-12) ++non_increasing;
  }
  double fraction = static_cast<double>(non_increasing) /
                    static_cast<double>(samples_.size() - 1);
  if (fraction < options_.sustained_fraction) return false;
  THRIFTY_ASSIGN_OR_RETURN(double predicted, PredictAt(now + lead));
  return predicted < sla_fraction;
}

}  // namespace thrifty
