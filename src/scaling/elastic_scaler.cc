#include "scaling/elastic_scaler.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "activity/streamed_epochizer.h"
#include "scaling/overactive.h"

namespace thrifty {

ElasticScaler::ElasticScaler(SimEngine* engine, Cluster* cluster,
                             TenantActivityTracker* tracker,
                             int replication_factor, double sla_fraction,
                             ElasticScalerOptions options)
    : engine_(engine),
      cluster_(cluster),
      tracker_(tracker),
      replication_factor_(replication_factor),
      sla_fraction_(sla_fraction),
      options_(options) {
  assert(engine != nullptr && cluster != nullptr && tracker != nullptr);
}

void ElasticScaler::AddGroup(GroupId group_id, std::vector<TenantSpec> tenants,
                             GroupRouter* router, RtTtpMonitor* monitor) {
  WatchedGroup group;
  group.tenants = std::move(tenants);
  group.router = router;
  group.monitor = monitor;
  group.predictor = RtTtpTrendPredictor(options_.predictor);
  groups_.emplace(group_id, std::move(group));
}

void ElasticScaler::Start() {
  if (started_) return;
  started_ = true;
  // Self-rescheduling periodic check, first fired after the warm-up.
  struct Ticker {
    ElasticScaler* scaler;
    void operator()(SimTime now) {
      scaler->CheckNow(now);
      scaler->engine_->ScheduleAfter(scaler->options_.check_interval,
                                     Ticker{scaler});
    }
  };
  engine_->ScheduleAfter(options_.warmup, Ticker{this});
}

void ElasticScaler::CheckNow(SimTime now) {
  for (auto& [group_id, group] : groups_) {
    CheckGroup(group_id, &group, now);
  }
}

void ElasticScaler::CheckGroup(GroupId group_id, WatchedGroup* group,
                               SimTime now) {
  if (group->scaling_in_flight) return;
  if (options_.once_per_group && group->scaled) return;
  double rt_ttp = group->monitor->RtTtp(now);
  group->predictor.AddSample(now, rt_ttp);
  bool breached = rt_ttp + 1e-12 < sla_fraction_;
  bool predicted = false;
  if (!breached && options_.policy == ScalingPolicy::kProactive) {
    predicted = group->predictor
                    .PredictsBreach(sla_fraction_, options_.proactive_lead,
                                    now)
                    .value_or(false);
  }
  if (!breached && !predicted) return;

  // RT-TTP breached: identify the over-active tenants from the last
  // window's run-time activity.
  auto wall_start = std::chrono::steady_clock::now();
  EpochConfig epochs;
  epochs.epoch_size = options_.epoch_size;
  epochs.begin = std::max<SimTime>(0, now - options_.window);
  epochs.end = now;
  if (!epochs.Valid()) return;

  std::vector<ActivityVector> recent;
  recent.reserve(group->tenants.size());
  for (const auto& spec : group->tenants) {
    if (group->router->HasDedicated(spec.id)) continue;  // already moved out
    IntervalSet history =
        tracker_->ActivityHistory(spec.id, epochs.begin, epochs.end);
    recent.push_back(EpochizeIntervals(spec.id, history, epochs));
  }
  if (recent.size() <= 1) return;  // nothing sensible to split off

  auto overactive_result = IdentifyOveractiveTenants(
      recent, replication_factor_, sla_fraction_);
  if (!overactive_result.ok()) return;
  std::vector<TenantId> victims = std::move(overactive_result).value();
  if (victims.empty()) {
    // Regrouping absorbs everyone, yet RT-TTP is below P (greedy/window
    // mismatch): fall back to moving the most active tenant.
    auto most_active = MostActiveTenant(recent);
    if (!most_active.ok()) return;
    victims.push_back(*most_active);
  }
  double identification_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Size the new MPPDB for the largest victim and load only victim data.
  int nodes = 0;
  std::vector<TenantDataSpec> data;
  for (TenantId victim : victims) {
    for (const auto& spec : group->tenants) {
      if (spec.id == victim) {
        nodes = std::max(nodes, spec.requested_nodes);
        data.push_back({victim, spec.data_gb});
        break;
      }
    }
  }
  if (nodes == 0) return;

  ScalingEvent event;
  event.group_id = group_id;
  event.detected_time = now;
  event.identification_seconds = identification_seconds;
  event.tenants = victims;
  event.new_mppdb_nodes = nodes;
  event.proactive = !breached;
  size_t event_index = events_.size();

  group->scaling_in_flight = true;
  auto created = cluster_->CreateInstanceAsync(
      nodes, std::move(data),
      [this, group_id, victims, event_index](MppdbInstance* instance) {
        auto it = groups_.find(group_id);
        if (it == groups_.end()) return;
        WatchedGroup& g = it->second;
        for (TenantId victim : victims) {
          g.router->AssignDedicated(victim, instance);
        }
        g.scaling_in_flight = false;
        g.scaled = true;
        events_[event_index].ready_time = engine_->now();
        events_[event_index].new_instance_id = instance->id();
        reconsolidation_.insert(group_id);
        if (on_exclusion_) {
          on_exclusion_(group_id, victims, engine_->now());
        }
      });
  if (!created.ok()) {
    // Pool exhausted: give up this round; the next check retries.
    group->scaling_in_flight = false;
    return;
  }
  events_.push_back(std::move(event));
}

}  // namespace thrifty
