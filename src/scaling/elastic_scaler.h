// Lightweight elastic scaling (§5.1).
//
// Thrifty's reactive approach: when a tenant-group's 24-hour RT-TTP drops
// below the SLA guarantee P, identify the over-active tenant(s) and start a
// *new* MPPDB loaded with only those tenants' data (loading scales with
// data volume — Table 5.1 — so loading one tenant is far cheaper than
// reloading the whole group). When the new MPPDB is ready, the Query Router
// sends the over-active tenants' queries there and the group's RT-TTP
// accounting excludes them. Scaled groups land on the re-consolidation list
// for the next consolidation cycle.

#ifndef THRIFTY_SCALING_ELASTIC_SCALER_H_
#define THRIFTY_SCALING_ELASTIC_SCALER_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "activity/activity_monitor.h"
#include "mppdb/cluster.h"
#include "routing/query_router.h"
#include "scaling/proactive.h"
#include "scaling/rt_ttp_monitor.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief When the scaler acts.
enum class ScalingPolicy {
  /// Act once RT-TTP has dropped below P (the paper's Thrifty).
  kReactive,
  /// Additionally act when a sustained RT-TTP decline is predicted to
  /// cross P within `proactive_lead` (§5.1's discussed alternative).
  kProactive,
};

/// \brief Elastic-scaling policy knobs.
struct ElasticScalerOptions {
  /// RT-TTP observation window (the paper's 24 hours).
  SimDuration window = 24 * kHour;
  /// How often RT-TTP is checked against P.
  SimDuration check_interval = 5 * kMinute;
  /// Epoch size used to build run-time activity vectors for over-active
  /// identification.
  SimDuration epoch_size = 10 * kSecond;
  /// Warm-up before the first check (a fresh 24h window reads artificially
  /// high because pre-history counts as inactive).
  SimDuration warmup = 24 * kHour;
  /// At most one scaling action per group until re-consolidation.
  bool once_per_group = true;
  ScalingPolicy policy = ScalingPolicy::kReactive;
  /// Proactive mode: act when the predicted RT-TTP crosses P within this
  /// lead time (roughly the MPPDB preparation time it buys back).
  SimDuration proactive_lead = 4 * kHour;
  TrendPredictorOptions predictor;
};

/// \brief One completed or in-flight scaling action.
struct ScalingEvent {
  GroupId group_id = -1;
  /// When the RT-TTP breach was detected.
  SimTime detected_time = 0;
  /// How long over-active identification took (informational; the paper
  /// reports ~2 seconds).
  double identification_seconds = 0;
  /// When the new MPPDB came online (0 while still loading).
  SimTime ready_time = 0;
  /// The tenants moved to the new MPPDB.
  std::vector<TenantId> tenants;
  /// Nodes of the new MPPDB.
  int new_mppdb_nodes = 0;
  InstanceId new_instance_id = kInvalidInstanceId;
  /// True if triggered by trend prediction before an actual breach.
  bool proactive = false;
};

/// \brief Reactive scaler watching all tenant-groups.
class ElasticScaler {
 public:
  /// Fired when over-active tenants are moved out of a group (so the
  /// service can exclude them from the group's active-count bookkeeping).
  using ExclusionCallback =
      std::function<void(GroupId, const std::vector<TenantId>&, SimTime)>;

  ElasticScaler(SimEngine* engine, Cluster* cluster,
                TenantActivityTracker* tracker, int replication_factor,
                double sla_fraction,
                ElasticScalerOptions options = ElasticScalerOptions());

  /// \brief Registers a tenant-group to watch. `router` and `monitor` must
  /// outlive the scaler.
  void AddGroup(GroupId group_id, std::vector<TenantSpec> tenants,
                GroupRouter* router, RtTtpMonitor* monitor);

  void set_exclusion_callback(ExclusionCallback cb) {
    on_exclusion_ = std::move(cb);
  }

  /// \brief Starts the periodic RT-TTP checks.
  ///
  /// The check event reschedules itself indefinitely, so a simulation with
  /// a started scaler never quiesces: drive it with SimEngine::RunUntil,
  /// not Run.
  void Start();

  /// \brief Checks all groups once, immediately (also used by Start's
  /// periodic loop).
  void CheckNow(SimTime now);

  /// \brief All scaling actions taken so far.
  const std::vector<ScalingEvent>& events() const { return events_; }

  /// \brief Groups that scaled and should be re-consolidated next cycle.
  const std::unordered_set<GroupId>& reconsolidation_list() const {
    return reconsolidation_;
  }

 private:
  struct WatchedGroup {
    std::vector<TenantSpec> tenants;
    GroupRouter* router = nullptr;
    RtTtpMonitor* monitor = nullptr;
    RtTtpTrendPredictor predictor;
    bool scaling_in_flight = false;
    bool scaled = false;
  };

  void CheckGroup(GroupId group_id, WatchedGroup* group, SimTime now);

  SimEngine* engine_;
  Cluster* cluster_;
  TenantActivityTracker* tracker_;
  int replication_factor_;
  double sla_fraction_;
  ElasticScalerOptions options_;
  std::unordered_map<GroupId, WatchedGroup> groups_;
  std::vector<ScalingEvent> events_;
  std::unordered_set<GroupId> reconsolidation_;
  ExclusionCallback on_exclusion_;
  bool started_ = false;
};

}  // namespace thrifty

#endif  // THRIFTY_SCALING_ELASTIC_SCALER_H_
