#include "workload/statistics.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

#include "common/table_printer.h"

namespace thrifty {

Result<TenantWorkloadSummary> SummarizeTenantLog(const TenantLog& log,
                                                 SimTime begin, SimTime end) {
  if (end <= begin) return Status::InvalidArgument("empty window");
  TenantWorkloadSummary summary;
  summary.tenant_id = log.tenant_id;
  std::set<int32_t> batches;
  size_t batched_queries = 0;
  for (const auto& e : log.entries) {
    if (e.submit_time < begin || e.submit_time >= end) continue;
    ++summary.queries;
    summary.latency_seconds.Add(DurationToSeconds(e.observed_latency));
    if (e.batch_id >= 0) {
      ++batched_queries;
      batches.insert(e.batch_id);
    }
  }
  summary.batches = batches.size();
  summary.batch_query_fraction =
      summary.queries == 0
          ? 0
          : static_cast<double>(batched_queries) /
                static_cast<double>(summary.queries);

  IntervalSet activity = log.ActivityIntervals().Clip(begin, end);
  summary.active_ratio = static_cast<double>(activity.TotalLength()) /
                         static_cast<double>(end - begin);
  for (const auto& iv : activity.intervals()) {
    summary.longest_active_stretch_seconds =
        std::max(summary.longest_active_stretch_seconds,
                 DurationToSeconds(iv.length()));
  }
  double active_hours =
      DurationToSeconds(activity.TotalLength()) / 3600.0;
  summary.queries_per_active_hour =
      active_hours > 0 ? static_cast<double>(summary.queries) / active_hours
                       : 0;
  return summary;
}

Result<WorkloadSummary> SummarizeWorkload(
    const std::vector<TenantLog>& logs, SimTime begin, SimTime end,
    const std::vector<TenantSpec>* specs) {
  WorkloadSummary summary;
  std::unordered_map<TenantId, int> size_by_tenant;
  if (specs != nullptr) {
    for (const auto& spec : *specs) {
      size_by_tenant[spec.id] = spec.requested_nodes;
    }
  }
  for (const auto& log : logs) {
    THRIFTY_ASSIGN_OR_RETURN(TenantWorkloadSummary tenant,
                             SummarizeTenantLog(log, begin, end));
    summary.latency_seconds.Merge(tenant.latency_seconds);
    summary.tenant_active_ratio.Add(tenant.active_ratio);
    summary.total_queries += tenant.queries;
    if (specs != nullptr) {
      auto it = size_by_tenant.find(log.tenant_id);
      if (it == size_by_tenant.end()) {
        return Status::InvalidArgument(
            "no spec for tenant " + std::to_string(log.tenant_id));
      }
      summary.active_ratio_by_size[it->second].Add(tenant.active_ratio);
    }
    summary.tenants.push_back(std::move(tenant));
  }
  return summary;
}

void PrintWorkloadSummary(const WorkloadSummary& summary, std::ostream& os) {
  os << "Workload: " << summary.tenants.size() << " tenants, "
     << summary.total_queries << " queries; mean latency "
     << FormatDouble(summary.latency_seconds.Mean(), 1) << "s (max "
     << FormatDouble(summary.latency_seconds.max(), 1)
     << "s); mean tenant active ratio "
     << FormatPercent(summary.tenant_active_ratio.Mean(), 1) << "\n";
  if (!summary.active_ratio_by_size.empty()) {
    TablePrinter table({"parallelism", "tenants", "mean active ratio",
                        "max active ratio"});
    for (const auto& [nodes, stats] : summary.active_ratio_by_size) {
      table.AddRow({std::to_string(nodes) + "-node",
                    std::to_string(stats.count()),
                    FormatPercent(stats.Mean(), 1),
                    FormatPercent(stats.max(), 1)});
    }
    table.Print(os);
  }
}

}  // namespace thrifty
