// §7.1 Step 1 — Real Query Log Collection.
//
// The paper imitates a tenant against a real MPPDB: the tenant has at most S
// autonomous users (S uniform in [1,5]); each user either submits one random
// suite query or a batch of M (uniform in [1,10]) queries, waits for them to
// complete, pauses W seconds (W uniform in [3,600]), and repeats for 3 hours.
// The MPPDB's query log is collected as a "3-hour real query log of an
// artificial tenant".
//
// SessionSimulator reproduces this by running the user procedure against a
// dedicated simulated MPPDB instance of the tenant's requested size, so the
// observed latencies include genuine intra-tenant concurrency (batches and
// multiple users processor-share the tenant's own instance, exactly as they
// would on real hardware).

#ifndef THRIFTY_WORKLOAD_SESSION_H_
#define THRIFTY_WORKLOAD_SESSION_H_

#include "common/rng.h"
#include "common/sim_time.h"
#include "mppdb/catalog.h"
#include "workload/query_log.h"

namespace thrifty {

/// \brief Knobs of the §7.1 user procedure (defaults are the paper's).
struct SessionOptions {
  /// Session length (the paper's 3 hours).
  SimDuration duration = 3 * kHour;
  /// Probability a user action is a batch (vs a single query); the paper
  /// draws (a) or (b) uniformly.
  double batch_probability = 0.5;
  /// Batch size M range (inclusive).
  int min_batch_queries = 1;
  int max_batch_queries = 10;
  /// Think time W range (inclusive), seconds.
  int min_think_seconds = 3;
  int max_think_seconds = 600;
  /// Users begin their first action uniformly within this window, imitating
  /// staggered morning arrival.
  SimDuration arrival_window = 5 * kMinute;
  /// A tenant has *at most* S autonomous users (§7.1); each user beyond the
  /// first participates in a given 3-hour session with this probability
  /// (the first user always participates, so every session has activity).
  double user_participation = 0.5;
};

/// \brief Simulates one 3-hour single-tenant session on a dedicated MPPDB.
class SessionSimulator {
 public:
  explicit SessionSimulator(const QueryCatalog* catalog,
                            SessionOptions options = SessionOptions());

  /// \brief Runs the user procedure and returns the collected query log.
  ///
  /// Submit times are relative to the session start. Latencies are as
  /// observed on the dedicated `nodes`-node instance holding `data_gb` GB.
  ///
  /// \param num_users the tenant's S (>= 1).
  TenantLog Run(int nodes, double data_gb, QuerySuite suite, int num_users,
                Rng* rng) const;

 private:
  const QueryCatalog* catalog_;
  SessionOptions options_;
};

}  // namespace thrifty

#endif  // THRIFTY_WORKLOAD_SESSION_H_
