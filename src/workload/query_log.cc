#include "workload/query_log.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "activity/streamed_epochizer.h"
#include "common/bitmap.h"
#include "common/simd.h"

namespace thrifty {

IntervalSet TenantLog::ActivityIntervals() const {
  IntervalSet set;
  for (const auto& e : entries) {
    set.Add(e.submit_time, e.submit_time + e.observed_latency);
  }
  return set;
}

double TenantLog::ActiveRatio(SimTime begin, SimTime end) const {
  if (end <= begin) return 0;
  IntervalSet clipped = ActivityIntervals().Clip(begin, end);
  return static_cast<double>(clipped.TotalLength()) /
         static_cast<double>(end - begin);
}

void TenantLog::SortEntries() {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const QueryLogEntry& a, const QueryLogEntry& b) {
                     return a.submit_time < b.submit_time;
                   });
}

Status WriteLogsCsv(const std::vector<TenantLog>& logs, std::ostream& os) {
  os << "tenant_id,submit_ms,template_id,latency_ms,batch_id\n";
  for (const auto& log : logs) {
    for (const auto& e : log.entries) {
      os << log.tenant_id << ',' << e.submit_time << ',' << e.template_id
         << ',' << e.observed_latency << ',' << e.batch_id << '\n';
    }
  }
  if (!os) return Status::Internal("stream write failure");
  return Status::OK();
}

Result<std::vector<TenantLog>> ReadLogsCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("empty log file");
  }
  if (line.rfind("tenant_id,", 0) != 0) {
    return Status::InvalidArgument("missing CSV header");
  }
  std::map<TenantId, TenantLog> by_tenant;
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    long long values[5];
    for (int f = 0; f < 5; ++f) {
      if (!std::getline(ss, field, f < 4 ? ',' : '\n')) {
        return Status::InvalidArgument("malformed CSV at line " +
                                       std::to_string(line_no));
      }
      try {
        values[f] = std::stoll(field);
      } catch (...) {
        return Status::InvalidArgument("non-numeric field at line " +
                                       std::to_string(line_no));
      }
    }
    TenantId tid = static_cast<TenantId>(values[0]);
    TenantLog& log = by_tenant[tid];
    log.tenant_id = tid;
    QueryLogEntry e;
    e.submit_time = values[1];
    e.template_id = static_cast<TemplateId>(values[2]);
    e.observed_latency = values[3];
    e.batch_id = static_cast<int32_t>(values[4]);
    log.entries.push_back(e);
  }
  std::vector<TenantLog> out;
  out.reserve(by_tenant.size());
  for (auto& [tid, log] : by_tenant) {
    log.SortEntries();
    out.push_back(std::move(log));
  }
  return out;
}

double ConditionalActiveTenantRatio(const std::vector<TenantLog>& logs,
                                    SimTime begin, SimTime end,
                                    SimDuration epoch_size) {
  if (logs.empty() || end <= begin || epoch_size <= 0) return 0;
  EpochConfig epochs{epoch_size, begin, end};
  // Each tenant counts once per epoch (its streamed nonzero words already
  // merge intervals sharing an epoch); the busy-epoch set is the OR of all
  // tenants' words, so only one bit per epoch is ever materialized.
  DynamicBitmap busy_epochs(epochs.NumEpochs());
  uint64_t total = 0;
  std::vector<uint32_t> word_idx;
  std::vector<uint64_t> word_bits;
  for (const auto& log : logs) {
    // Buffer the streamed words per tenant so the per-tenant popcount runs
    // as one span kernel instead of word-at-a-time in the callback.
    word_idx.clear();
    word_bits.clear();
    ForEachActivityWord(log.ActivityIntervals(), epochs,
                        [&](uint32_t index, uint64_t bits) {
                          word_idx.push_back(index);
                          word_bits.push_back(bits);
                        });
    total += simd::SpanPopcount(word_bits.data(), word_bits.size());
    for (size_t i = 0; i < word_idx.size(); ++i) {
      busy_epochs.mutable_word(word_idx[i]) |= word_bits[i];
    }
  }
  size_t busy = busy_epochs.Popcount();
  if (busy == 0) return 0;
  return static_cast<double>(total) /
         (static_cast<double>(busy) * static_cast<double>(logs.size()));
}

double AverageActiveTenantRatio(const std::vector<TenantLog>& logs,
                                SimTime begin, SimTime end) {
  if (logs.empty() || end <= begin) return 0;
  // Time-average of the active count == sum of per-tenant active durations.
  double total_active = 0;
  for (const auto& log : logs) {
    total_active += static_cast<double>(
        log.ActivityIntervals().Clip(begin, end).TotalLength());
  }
  return total_active /
         (static_cast<double>(end - begin) * static_cast<double>(logs.size()));
}

}  // namespace thrifty
