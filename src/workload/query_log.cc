#include "workload/query_log.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

namespace thrifty {

IntervalSet TenantLog::ActivityIntervals() const {
  IntervalSet set;
  for (const auto& e : entries) {
    set.Add(e.submit_time, e.submit_time + e.observed_latency);
  }
  return set;
}

double TenantLog::ActiveRatio(SimTime begin, SimTime end) const {
  if (end <= begin) return 0;
  IntervalSet clipped = ActivityIntervals().Clip(begin, end);
  return static_cast<double>(clipped.TotalLength()) /
         static_cast<double>(end - begin);
}

void TenantLog::SortEntries() {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const QueryLogEntry& a, const QueryLogEntry& b) {
                     return a.submit_time < b.submit_time;
                   });
}

Status WriteLogsCsv(const std::vector<TenantLog>& logs, std::ostream& os) {
  os << "tenant_id,submit_ms,template_id,latency_ms,batch_id\n";
  for (const auto& log : logs) {
    for (const auto& e : log.entries) {
      os << log.tenant_id << ',' << e.submit_time << ',' << e.template_id
         << ',' << e.observed_latency << ',' << e.batch_id << '\n';
    }
  }
  if (!os) return Status::Internal("stream write failure");
  return Status::OK();
}

Result<std::vector<TenantLog>> ReadLogsCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("empty log file");
  }
  if (line.rfind("tenant_id,", 0) != 0) {
    return Status::InvalidArgument("missing CSV header");
  }
  std::map<TenantId, TenantLog> by_tenant;
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    long long values[5];
    for (int f = 0; f < 5; ++f) {
      if (!std::getline(ss, field, f < 4 ? ',' : '\n')) {
        return Status::InvalidArgument("malformed CSV at line " +
                                       std::to_string(line_no));
      }
      try {
        values[f] = std::stoll(field);
      } catch (...) {
        return Status::InvalidArgument("non-numeric field at line " +
                                       std::to_string(line_no));
      }
    }
    TenantId tid = static_cast<TenantId>(values[0]);
    TenantLog& log = by_tenant[tid];
    log.tenant_id = tid;
    QueryLogEntry e;
    e.submit_time = values[1];
    e.template_id = static_cast<TemplateId>(values[2]);
    e.observed_latency = values[3];
    e.batch_id = static_cast<int32_t>(values[4]);
    log.entries.push_back(e);
  }
  std::vector<TenantLog> out;
  out.reserve(by_tenant.size());
  for (auto& [tid, log] : by_tenant) {
    log.SortEntries();
    out.push_back(std::move(log));
  }
  return out;
}

double ConditionalActiveTenantRatio(const std::vector<TenantLog>& logs,
                                    SimTime begin, SimTime end,
                                    SimDuration epoch_size) {
  if (logs.empty() || end <= begin || epoch_size <= 0) return 0;
  size_t num_epochs =
      static_cast<size_t>((end - begin + epoch_size - 1) / epoch_size);
  std::vector<uint32_t> counts(num_epochs, 0);
  for (const auto& log : logs) {
    // Epochize this tenant's (disjoint, sorted) intervals, merging ranges
    // that touch the same epoch so the tenant counts once per epoch.
    size_t next_free_epoch = 0;
    IntervalSet clipped = log.ActivityIntervals().Clip(begin, end);
    for (const auto& iv : clipped.intervals()) {
      size_t first = static_cast<size_t>((iv.begin - begin) / epoch_size);
      size_t last = static_cast<size_t>((iv.end - 1 - begin) / epoch_size);
      first = std::max(first, next_free_epoch);
      for (size_t k = first; k <= last && k < num_epochs; ++k) ++counts[k];
      next_free_epoch = std::max(next_free_epoch, last + 1);
    }
  }
  uint64_t total = 0;
  size_t busy = 0;
  for (uint32_t c : counts) {
    total += c;
    busy += c > 0 ? 1 : 0;
  }
  if (busy == 0) return 0;
  return static_cast<double>(total) /
         (static_cast<double>(busy) * static_cast<double>(logs.size()));
}

double AverageActiveTenantRatio(const std::vector<TenantLog>& logs,
                                SimTime begin, SimTime end) {
  if (logs.empty() || end <= begin) return 0;
  // Time-average of the active count == sum of per-tenant active durations.
  double total_active = 0;
  for (const auto& log : logs) {
    total_active += static_cast<double>(
        log.ActivityIntervals().Clip(begin, end).TotalLength());
  }
  return total_active /
         (static_cast<double>(end - begin) * static_cast<double>(logs.size()));
}

}  // namespace thrifty
