// §7.1 Step 2 — Multi-Tenant Log Composition.
//
// SessionLibrary holds the pool of 3-hour session logs produced by Step 1
// (one pool per node-size x suite class). LogComposer builds each tenant's
// multi-day activity log by pasting randomly drawn session logs at the
// tenant's time-zone-offset office hours (morning, post-lunch afternoon,
// evening report generation), skipping weekends and two public holidays.

#ifndef THRIFTY_WORKLOAD_LOG_GENERATOR_H_
#define THRIFTY_WORKLOAD_LOG_GENERATOR_H_

#include <map>
#include <utility>
#include <vector>

#include "activity/streamed_epochizer.h"
#include "common/result.h"
#include "common/rng.h"
#include "workload/query_log.h"
#include "workload/session.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Pool of Step-1 session logs, keyed by (node size, suite).
class SessionLibrary {
 public:
  /// \brief Generates `sessions_per_class` session logs for every
  /// combination of `node_sizes` and both suites. The paper used 100 runs
  /// per 2/4/8/16/32-node MPPDB.
  ///
  /// Each run draws its own S (number of users) uniformly in [1, 5],
  /// matching the paper's procedure.
  SessionLibrary(const QueryCatalog* catalog, std::vector<int> node_sizes,
                 int sessions_per_class, Rng rng,
                 SessionOptions session_options = SessionOptions());

  /// \brief Draws a uniformly random session log of the given class.
  Result<const TenantLog*> Sample(int nodes, QuerySuite suite,
                                  Rng* rng) const;

  const std::vector<int>& node_sizes() const { return node_sizes_; }
  int sessions_per_class() const { return sessions_per_class_; }

  /// \brief All sessions of one class (for inspection/tests).
  Result<const std::vector<TenantLog>*> SessionsFor(int nodes,
                                                    QuerySuite suite) const;

 private:
  std::vector<int> node_sizes_;
  int sessions_per_class_;
  std::map<std::pair<int, QuerySuite>, std::vector<TenantLog>> sessions_;
};

/// \brief Knobs of the Step-2 composition; defaults reproduce §7.1, and the
/// §7.4 "higher active tenant ratio" scenarios are expressed by overriding
/// offset_hours / lunch_break.
struct LogComposerOptions {
  /// Log horizon (the paper generates 30-day activities).
  int horizon_days = 30;
  /// Office-hour start offsets imitating time zones: Seattle, New York,
  /// Sao Paulo, London, Beijing, Japan, Sydney.
  std::vector<int> offset_hours = {0, 3, 5, 8, 16, 17, 19};
  /// Two hours of lunch between the morning and afternoon sessions.
  bool lunch_break = true;
  /// Report-generation session starts this many hours after office hours
  /// end (the paper's "6 hours after the office hour").
  int report_gap_hours = 6;
  /// Weekday public holidays within the horizon, shared per time zone.
  int num_holidays = 2;
  /// Tenants rest on Saturday/Sunday (days 5 and 6 of each week).
  bool weekends_off = true;
  /// Worker threads for composition. Every tenant's sampling runs on its
  /// own forked Rng stream keyed by tenant id, so tenants are sharded
  /// across workers and the composed logs/activity are byte-identical for
  /// any value. 1 = sequential.
  int jobs = 1;
};

/// \brief Composes multi-day tenant logs from Step-1 sessions.
class LogComposer {
 public:
  LogComposer(const SessionLibrary* library,
              LogComposerOptions options = LogComposerOptions());

  /// \brief Builds one activity log per tenant.
  ///
  /// Assigns each tenant a random time-zone offset (recorded back into the
  /// spec) and pastes three session logs per working day. Entries whose
  /// submit time falls past the horizon are dropped.
  Result<std::vector<TenantLog>> Compose(std::vector<TenantSpec>* tenants,
                                         Rng* rng) const;

  /// \brief Like Compose, but produces only each tenant's activity
  /// intervals (the union of its query execution spans).
  ///
  /// Identical sampling decisions as Compose for the same seed, but avoids
  /// materializing tens of millions of log entries — the consolidation
  /// experiments only need activity, and session activity-interval sets are
  /// cached per library log.
  Result<std::vector<IntervalSet>> ComposeActivity(
      std::vector<TenantSpec>* tenants, Rng* rng) const;

  /// \brief Like ComposeActivity, but epochizes each tenant's intervals
  /// into a sparse ActivityVector the moment that tenant's composition
  /// finishes and discards the intervals.
  ///
  /// Identical sampling decisions as Compose/ComposeActivity for the same
  /// seed (the produced vectors equal EpochizeIntervals over
  /// ComposeActivity's sets), but the interval working set is bounded by
  /// the tenants in flight rather than the whole population — at 10^6
  /// tenants only the sparse activity words survive composition. `epochs`
  /// must cover [0, horizon_end()); `gauge`, when non-null, is charged the
  /// per-tenant interval + walker working state.
  Result<std::vector<ActivityVector>> ComposeActivityVectors(
      std::vector<TenantSpec>* tenants, Rng* rng, const EpochConfig& epochs,
      EpochizeGauge* gauge = nullptr) const;

  const LogComposerOptions& options() const { return options_; }

  SimTime horizon_end() const {
    return static_cast<SimTime>(options_.horizon_days) * kDay;
  }

 private:
  const SessionLibrary* library_;
  LogComposerOptions options_;
};

}  // namespace thrifty

#endif  // THRIFTY_WORKLOAD_LOG_GENERATOR_H_
