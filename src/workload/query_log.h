// Query logs: the unit of history the Tenant Activity Monitor collects and
// the Deployment Advisor consumes.

#ifndef THRIFTY_WORKLOAD_QUERY_LOG_H_
#define THRIFTY_WORKLOAD_QUERY_LOG_H_

#include <iosfwd>
#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "mppdb/instance.h"
#include "mppdb/query_model.h"

namespace thrifty {

/// \brief One logged query execution.
struct QueryLogEntry {
  SimTime submit_time = 0;
  TemplateId template_id = -1;
  /// Latency observed when the log was recorded (on the tenant's own
  /// dedicated MPPDB, possibly with the tenant's own intra-tenant
  /// concurrency).
  SimDuration observed_latency = 0;
  /// Queries submitted together as one report-generation batch share an id;
  /// -1 for single interactive queries.
  int32_t batch_id = -1;
};

/// \brief The full query history of one tenant over the log horizon.
struct TenantLog {
  TenantId tenant_id = kInvalidTenantId;
  /// Entries sorted by submit_time.
  std::vector<QueryLogEntry> entries;

  /// \brief Union of [submit, submit + latency) over all entries: the spans
  /// during which the tenant is *active* (has a query being executed).
  IntervalSet ActivityIntervals() const;

  /// \brief Fraction of [begin, end) during which the tenant is active.
  double ActiveRatio(SimTime begin, SimTime end) const;

  /// \brief Sorts entries by submit time (stable).
  void SortEntries();
};

/// \brief Writes logs as CSV (tenant_id,submit_ms,template_id,latency_ms,
/// batch_id) — one row per entry.
Status WriteLogsCsv(const std::vector<TenantLog>& logs, std::ostream& os);

/// \brief Parses logs written by WriteLogsCsv.
Result<std::vector<TenantLog>> ReadLogsCsv(std::istream& is);

/// \brief Mean over [begin, end) of (#tenants active at time t) / #tenants —
/// the "active tenant ratio" of the paper (about 10% in real DaaS).
double AverageActiveTenantRatio(const std::vector<TenantLog>& logs,
                                SimTime begin, SimTime end);

/// \brief Mean of (#active tenants / #tenants) over *busy* epochs only
/// (epochs with at least one active tenant).
///
/// Unlike the time-average, this conditional ratio rises when the same
/// per-tenant activity is concentrated into fewer clock hours — the effect
/// the §7.4 "higher active tenant ratio" scenarios (single time zone, no
/// lunch hour) produce.
double ConditionalActiveTenantRatio(const std::vector<TenantLog>& logs,
                                    SimTime begin, SimTime end,
                                    SimDuration epoch_size = 10 * kSecond);

}  // namespace thrifty

#endif  // THRIFTY_WORKLOAD_QUERY_LOG_H_
