// Workload statistics (Fig 3.1a: the Tenant Activity Monitor "summarizes
// the query characteristics of individual tenants" for the Deployment
// Advisor and for administrator tuning).

#ifndef THRIFTY_WORKLOAD_STATISTICS_H_
#define THRIFTY_WORKLOAD_STATISTICS_H_

#include <map>
#include <ostream>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "workload/query_log.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Query characteristics of one tenant over a history window.
struct TenantWorkloadSummary {
  TenantId tenant_id = kInvalidTenantId;
  size_t queries = 0;
  size_t batches = 0;          // distinct report-generation batches
  double batch_query_fraction = 0;  // queries submitted as part of a batch
  RunningStats latency_seconds;
  double active_ratio = 0;     // fraction of the window with queries running
  /// Longest continuous active stretch (seconds).
  double longest_active_stretch_seconds = 0;
  /// Queries per active hour (intensity while working).
  double queries_per_active_hour = 0;
};

/// \brief Service-wide aggregation.
struct WorkloadSummary {
  std::vector<TenantWorkloadSummary> tenants;
  RunningStats latency_seconds;      // across all queries
  RunningStats tenant_active_ratio;  // across tenants
  size_t total_queries = 0;

  /// \brief Per requested-node-count aggregates (needs specs; see
  /// SummarizeWorkload overload).
  std::map<int, RunningStats> active_ratio_by_size;
};

/// \brief Summarizes one tenant's log over [begin, end).
Result<TenantWorkloadSummary> SummarizeTenantLog(const TenantLog& log,
                                                 SimTime begin, SimTime end);

/// \brief Summarizes all logs; when `specs` is non-null, also aggregates by
/// requested node count (matched by tenant id).
Result<WorkloadSummary> SummarizeWorkload(
    const std::vector<TenantLog>& logs, SimTime begin, SimTime end,
    const std::vector<TenantSpec>* specs = nullptr);

/// \brief Renders a service-wide summary table.
void PrintWorkloadSummary(const WorkloadSummary& summary, std::ostream& os);

}  // namespace thrifty

#endif  // THRIFTY_WORKLOAD_STATISTICS_H_
