#include "workload/log_generator.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "common/thread_pool.h"

namespace thrifty {

SessionLibrary::SessionLibrary(const QueryCatalog* catalog,
                               std::vector<int> node_sizes,
                               int sessions_per_class, Rng rng,
                               SessionOptions session_options)
    : node_sizes_(std::move(node_sizes)),
      sessions_per_class_(sessions_per_class) {
  assert(catalog != nullptr);
  assert(sessions_per_class >= 1);
  SessionSimulator simulator(catalog, session_options);
  uint64_t stream = 1;
  for (int nodes : node_sizes_) {
    for (QuerySuite suite : {QuerySuite::kTpch, QuerySuite::kTpcds}) {
      auto& pool = sessions_[{nodes, suite}];
      pool.reserve(static_cast<size_t>(sessions_per_class));
      for (int s = 0; s < sessions_per_class; ++s) {
        Rng session_rng = rng.Fork(stream++);
        int num_users = static_cast<int>(session_rng.NextInt(1, 5));
        pool.push_back(simulator.Run(nodes, kDataGbPerNode * nodes, suite,
                                     num_users, &session_rng));
      }
    }
  }
}

Result<const TenantLog*> SessionLibrary::Sample(int nodes, QuerySuite suite,
                                                Rng* rng) const {
  auto it = sessions_.find({nodes, suite});
  if (it == sessions_.end() || it->second.empty()) {
    return Status::NotFound("no session logs for " + std::to_string(nodes) +
                            "-node " + QuerySuiteToString(suite));
  }
  return &it->second[rng->NextBounded(it->second.size())];
}

Result<const std::vector<TenantLog>*> SessionLibrary::SessionsFor(
    int nodes, QuerySuite suite) const {
  auto it = sessions_.find({nodes, suite});
  if (it == sessions_.end()) {
    return Status::NotFound("no session logs for " + std::to_string(nodes) +
                            "-node " + QuerySuiteToString(suite));
  }
  return &it->second;
}

LogComposer::LogComposer(const SessionLibrary* library,
                         LogComposerOptions options)
    : library_(library), options_(std::move(options)) {
  assert(library != nullptr);
}

namespace {

// Composition core shared by Compose, ComposeActivity, and
// ComposeActivityVectors: makes every sampling decision of §7.1 Step 2,
// reports each placed session via `visit(spec, session_start, session)`,
// and calls `finish(spec)` once all of a tenant's sessions are placed. The
// entry points differ only in what they do with a placed session.
//
// Every tenant samples from its own Rng stream (forked by tenant id), so
// tenant composition is sharded across `pool` when one is given: `visit`
// and `finish` may then run concurrently for *distinct* tenants and must
// only touch per-tenant state; calls for one tenant stay in session order
// on one thread (with `finish` last), so the composed output is
// byte-identical for any job count.
template <typename Visitor, typename Finisher>
Status ForEachSession(const SessionLibrary& library,
                      const LogComposerOptions& options,
                      std::vector<TenantSpec>* tenants, Rng* rng,
                      ThreadPool* pool, Visitor&& visit, Finisher&& finish) {
  if (options.offset_hours.empty()) {
    return Status::InvalidArgument("offset_hours must not be empty");
  }
  if (options.horizon_days < 1) {
    return Status::InvalidArgument("horizon must be at least one day");
  }

  // Working days: weekdays minus per-zone holidays. Holiday choices are
  // "randomly chosen, but they are the same for the tenants in the same
  // time zone" (§7.1).
  std::vector<int> weekdays;
  for (int d = 0; d < options.horizon_days; ++d) {
    bool weekend = options.weekends_off && (d % 7 == 5 || d % 7 == 6);
    if (!weekend) weekdays.push_back(d);
  }
  if (weekdays.empty()) {
    return Status::InvalidArgument("horizon has no working days");
  }
  std::map<int, std::set<int>> holidays_by_zone;
  for (int zone : options.offset_hours) {
    auto& holidays = holidays_by_zone[zone];
    Rng zone_rng = rng->Fork(0x401dull + static_cast<uint64_t>(zone));
    int wanted = std::min<int>(options.num_holidays,
                               static_cast<int>(weekdays.size()));
    while (static_cast<int>(holidays.size()) < wanted) {
      holidays.insert(weekdays[zone_rng.NextBounded(weekdays.size())]);
    }
  }

  const SimDuration session_len = 3 * kHour;
  const SimDuration lunch = options.lunch_break ? 2 * kHour : 0;

  // Per-tenant composition; returns the first failing status, if any. Reads
  // only const state (rng->Fork is pure) and writes only this tenant's spec
  // plus whatever the visitor touches.
  auto compose_tenant = [&](TenantSpec& spec) -> Status {
    Rng tenant_rng = rng->Fork(0x7e4a47ull * 31 +
                               static_cast<uint64_t>(spec.id) + 1);
    spec.time_zone_offset_hours = options.offset_hours[tenant_rng.NextBounded(
        options.offset_hours.size())];
    const auto& holidays = holidays_by_zone.at(spec.time_zone_offset_hours);

    for (int day : weekdays) {
      if (holidays.count(day)) continue;
      SimTime base = static_cast<SimTime>(day) * kDay +
                     static_cast<SimTime>(spec.time_zone_offset_hours) * kHour;
      // Morning office hours, afternoon office hours after lunch, and the
      // evening report-generation window.
      SimTime morning = base;
      SimTime afternoon = morning + session_len + lunch;
      SimTime evening = afternoon + session_len +
                        static_cast<SimTime>(options.report_gap_hours) * kHour;
      for (SimTime session_start : {morning, afternoon, evening}) {
        THRIFTY_ASSIGN_OR_RETURN(
            const TenantLog* session,
            library.Sample(spec.requested_nodes, spec.suite, &tenant_rng));
        visit(spec, session_start, *session);
      }
    }
    finish(spec);
    return Status::OK();
  };

  std::vector<Status> statuses(tenants->size());
  ParallelFor(pool, tenants->size(), [&](size_t i) {
    statuses[i] = compose_tenant((*tenants)[i]);
  });
  for (const Status& status : statuses) {
    THRIFTY_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

template <typename Visitor>
Status ForEachSession(const SessionLibrary& library,
                      const LogComposerOptions& options,
                      std::vector<TenantSpec>* tenants, Rng* rng,
                      ThreadPool* pool, Visitor&& visit) {
  return ForEachSession(library, options, tenants, rng, pool,
                        std::forward<Visitor>(visit),
                        [](const TenantSpec&) {});
}

// Session activity intervals are expensive to recompute (union over
// hundreds of entries); precompute one normalized set per library log.
// Eagerly over the whole library — a lazily filled cache would be shared
// mutable state across tenants, which tenant sharding cannot tolerate.
struct SessionActivityCache {
  std::vector<IntervalSet> sets;
  std::unordered_map<const TenantLog*, const IntervalSet*> by_session;
};

SessionActivityCache BuildSessionActivityCache(const SessionLibrary& library,
                                               ThreadPool* pool) {
  SessionActivityCache cache;
  std::vector<const TenantLog*> sessions;
  for (int nodes : library.node_sizes()) {
    for (QuerySuite suite : {QuerySuite::kTpch, QuerySuite::kTpcds}) {
      auto pool_result = library.SessionsFor(nodes, suite);
      if (!pool_result.ok()) continue;
      for (const TenantLog& session : **pool_result) {
        sessions.push_back(&session);
      }
    }
  }
  cache.sets.resize(sessions.size());
  ParallelFor(pool, sessions.size(), [&](size_t i) {
    cache.sets[i] = sessions[i]->ActivityIntervals();
  });
  cache.by_session.reserve(sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    cache.by_session.emplace(sessions[i], &cache.sets[i]);
  }
  return cache;
}

// Appends one placed session's activity to a tenant's interval set,
// clipping at the horizon.
void AppendSessionActivity(const IntervalSet& session_activity,
                           SimTime session_start, SimTime horizon,
                           IntervalSet* out) {
  for (const auto& iv : session_activity.intervals()) {
    SimTime begin = session_start + iv.begin;
    if (begin >= horizon) break;
    out->Add(begin, std::min(horizon, session_start + iv.end));
  }
}

/// The composition pool, or null for the sequential path.
std::unique_ptr<ThreadPool> MakeComposerPool(const LogComposerOptions& options,
                                             size_t num_tenants) {
  if (options.jobs <= 1 || num_tenants <= 1) return nullptr;
  return std::make_unique<ThreadPool>(options.jobs - 1);
}

}  // namespace

Result<std::vector<TenantLog>> LogComposer::Compose(
    std::vector<TenantSpec>* tenants, Rng* rng) const {
  const SimTime horizon = horizon_end();
  std::vector<TenantLog> logs;
  logs.reserve(tenants->size());
  std::unordered_map<TenantId, size_t> log_index;
  for (const auto& spec : *tenants) {
    log_index[spec.id] = logs.size();
    TenantLog log;
    log.tenant_id = spec.id;
    logs.push_back(std::move(log));
  }
  std::unique_ptr<ThreadPool> pool =
      MakeComposerPool(options_, tenants->size());
  THRIFTY_RETURN_NOT_OK(ForEachSession(
      *library_, options_, tenants, rng, pool.get(),
      [&](const TenantSpec& spec, SimTime session_start,
          const TenantLog& session) {
        // Writes only this tenant's log slot; log_index is const by now.
        TenantLog& log = logs[log_index.at(spec.id)];
        for (const auto& e : session.entries) {
          SimTime submit = session_start + e.submit_time;
          if (submit >= horizon) continue;
          QueryLogEntry shifted = e;
          shifted.submit_time = submit;
          log.entries.push_back(shifted);
        }
      }));
  ParallelFor(pool.get(), logs.size(),
              [&](size_t i) { logs[i].SortEntries(); });
  return logs;
}

Result<std::vector<IntervalSet>> LogComposer::ComposeActivity(
    std::vector<TenantSpec>* tenants, Rng* rng) const {
  const SimTime horizon = horizon_end();
  std::unique_ptr<ThreadPool> pool =
      MakeComposerPool(options_, tenants->size());
  const SessionActivityCache cache =
      BuildSessionActivityCache(*library_, pool.get());

  std::vector<IntervalSet> activity(tenants->size());
  std::unordered_map<TenantId, size_t> index;
  for (size_t i = 0; i < tenants->size(); ++i) {
    index[(*tenants)[i].id] = i;
  }
  THRIFTY_RETURN_NOT_OK(ForEachSession(
      *library_, options_, tenants, rng, pool.get(),
      [&](const TenantSpec& spec, SimTime session_start,
          const TenantLog& session) {
        // Writes only this tenant's activity slot; the session cache and
        // the index map are const by now.
        AppendSessionActivity(*cache.by_session.at(&session), session_start,
                              horizon, &activity[index.at(spec.id)]);
      }));
  return activity;
}

Result<std::vector<ActivityVector>> LogComposer::ComposeActivityVectors(
    std::vector<TenantSpec>* tenants, Rng* rng, const EpochConfig& epochs,
    EpochizeGauge* gauge) const {
  if (!epochs.Valid() || epochs.end < horizon_end()) {
    return Status::InvalidArgument(
        "epoch grid must cover the composition horizon");
  }
  const SimTime horizon = horizon_end();
  std::unique_ptr<ThreadPool> pool =
      MakeComposerPool(options_, tenants->size());
  const SessionActivityCache cache =
      BuildSessionActivityCache(*library_, pool.get());

  std::vector<ActivityVector> vectors(tenants->size());
  std::vector<IntervalSet> scratch(tenants->size());
  std::unordered_map<TenantId, size_t> index;
  for (size_t i = 0; i < tenants->size(); ++i) {
    index[(*tenants)[i].id] = i;
  }
  THRIFTY_RETURN_NOT_OK(ForEachSession(
      *library_, options_, tenants, rng, pool.get(),
      [&](const TenantSpec& spec, SimTime session_start,
          const TenantLog& session) {
        AppendSessionActivity(*cache.by_session.at(&session), session_start,
                              horizon, &scratch[index.at(spec.id)]);
      },
      [&](const TenantSpec& spec) {
        // The tenant is fully composed: epochize and drop its intervals so
        // only the sparse words outlive composition.
        const size_t i = index.at(spec.id);
        if (gauge != nullptr) {
          gauge->Acquire(scratch[i].intervals().capacity() *
                         sizeof(TimeInterval));
        }
        vectors[i] = EpochizeIntervals(spec.id, scratch[i], epochs, gauge);
        if (gauge != nullptr) {
          gauge->Release(scratch[i].intervals().capacity() *
                         sizeof(TimeInterval));
        }
        scratch[i] = IntervalSet();
      }));
  return vectors;
}

}  // namespace thrifty
