// Tenant population generation (§7.1 Step 2 inputs).
//
// Tenant sizes are drawn from a Zipf(theta) distribution over the allowed
// node counts — smaller tenants are more common, and a larger theta skews
// harder toward small tenants (the paper's default theta is 0.8, citing
// Gray et al.'s observation that database sizes across companies are skewed).

#ifndef THRIFTY_WORKLOAD_TENANT_POPULATION_H_
#define THRIFTY_WORKLOAD_TENANT_POPULATION_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Knobs for tenant population generation.
struct PopulationOptions {
  /// MPPDB sizes tenants may request; the evaluation prepared 2/4/8/16/32.
  std::vector<int> node_sizes = {2, 4, 8, 16, 32};
  /// Zipf skew of the size distribution (rank 0 = smallest size).
  double zipf_theta = 0.8;
  /// Probability a tenant holds TPC-H (vs TPC-DS) data.
  double tpch_probability = 0.5;
  /// Data volume per requested node.
  double data_gb_per_node = kDataGbPerNode;
  /// Range of S, the tenant's maximum number of autonomous users.
  int min_users = 1;
  int max_users = 5;
};

/// \brief Generates `count` tenant specs with ids 0..count-1.
Result<std::vector<TenantSpec>> GenerateTenantPopulation(
    int count, const PopulationOptions& options, Rng* rng);

/// \brief Number of tenants per requested node count (the Fig 5.2 view).
std::map<int, int> TenantSizeHistogram(const std::vector<TenantSpec>& tenants);

}  // namespace thrifty

#endif  // THRIFTY_WORKLOAD_TENANT_POPULATION_H_
