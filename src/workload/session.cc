#include "workload/session.h"

#include <cassert>
#include <memory>
#include <unordered_map>

#include "mppdb/instance.h"
#include "sim/engine.h"

namespace thrifty {

SessionSimulator::SessionSimulator(const QueryCatalog* catalog,
                                   SessionOptions options)
    : catalog_(catalog), options_(options) {
  assert(catalog != nullptr);
}

namespace {

// Mutable state shared by the user callbacks during one session run.
struct SessionState {
  SimEngine engine;
  std::unique_ptr<MppdbInstance> instance;
  TenantLog log;
  // query id -> index into log.entries, to fill observed latency on finish.
  std::unordered_map<QueryId, size_t> entry_index;
  // query id -> submitting user, to resume that user's think/act loop.
  std::unordered_map<QueryId, int> query_owner;
  // per-user count of outstanding queries in the current action.
  std::vector<int> outstanding;
  QueryId next_query_id = 0;
  int32_t next_batch_id = 0;
};

// One autonomous user of the §7.1 procedure.
class UserDriver {
 public:
  UserDriver(SessionState* state, const QueryCatalog* catalog,
             const SessionOptions* options, QuerySuite suite, Rng rng,
             int user)
      : state_(state),
        catalog_(catalog),
        options_(options),
        suite_(suite),
        rng_(rng),
        user_(user) {}

  // Submits a single query or a batch; completions drive OnQueryDone.
  void TakeAction(SimTime now) {
    if (now >= options_->duration) return;  // office hours are over
    bool is_batch = rng_.NextBool(options_->batch_probability);
    int m = is_batch
                ? static_cast<int>(rng_.NextInt(options_->min_batch_queries,
                                                options_->max_batch_queries))
                : 1;
    int32_t batch_id = is_batch ? state_->next_batch_id++ : -1;
    state_->outstanding[static_cast<size_t>(user_)] = m;
    for (int i = 0; i < m; ++i) {
      TemplateId tid = catalog_->SampleFromSuite(suite_, &rng_);
      QueryId qid = state_->next_query_id++;
      QueryLogEntry entry;
      entry.submit_time = now;
      entry.template_id = tid;
      entry.batch_id = batch_id;
      state_->entry_index[qid] = state_->log.entries.size();
      state_->query_owner[qid] = user_;
      state_->log.entries.push_back(entry);
      QuerySubmission submission;
      submission.query_id = qid;
      submission.tenant_id = 0;
      submission.template_id = tid;
      Status st = state_->instance->Submit(submission, catalog_->Get(tid));
      assert(st.ok());
      (void)st;
    }
  }

  // Called when one of this user's queries completes.
  void OnQueryDone(SimTime now) {
    int& left = state_->outstanding[static_cast<size_t>(user_)];
    if (--left > 0) return;  // batch not complete yet
    SimDuration think = rng_.NextInt(options_->min_think_seconds,
                                     options_->max_think_seconds) *
                        kSecond;
    state_->engine.ScheduleAt(now + think,
                              [this](SimTime t) { TakeAction(t); });
  }

  Rng* rng() { return &rng_; }

 private:
  SessionState* state_;
  const QueryCatalog* catalog_;
  const SessionOptions* options_;
  QuerySuite suite_;
  Rng rng_;
  int user_;
};

}  // namespace

TenantLog SessionSimulator::Run(int nodes, double data_gb, QuerySuite suite,
                                int num_users, Rng* rng) const {
  assert(nodes >= 1);
  assert(num_users >= 1);

  SessionState state;
  state.instance = std::make_unique<MppdbInstance>(
      /*id=*/0, nodes, &state.engine, InstanceState::kOnline);
  state.instance->AddTenant(/*tenant=*/0, data_gb);
  state.log.tenant_id = 0;

  std::vector<std::unique_ptr<UserDriver>> users;
  Rng participation_rng = rng->Fork(0);
  for (int u = 0; u < num_users; ++u) {
    // "At most S autonomous users": only a subset shows up per session.
    if (u > 0 &&
        !participation_rng.NextBool(options_.user_participation)) {
      continue;
    }
    users.push_back(std::make_unique<UserDriver>(
        &state, catalog_, &options_, suite,
        rng->Fork(static_cast<uint64_t>(u) + 1),
        static_cast<int>(users.size())));
  }
  state.outstanding.assign(users.size(), 0);

  state.instance->set_completion_callback([&](const QueryCompletion& c) {
    auto idx_it = state.entry_index.find(c.query_id);
    assert(idx_it != state.entry_index.end());
    state.log.entries[idx_it->second].observed_latency = c.MeasuredLatency();
    auto owner_it = state.query_owner.find(c.query_id);
    assert(owner_it != state.query_owner.end());
    int owner = owner_it->second;
    state.query_owner.erase(owner_it);
    users[static_cast<size_t>(owner)]->OnQueryDone(c.finish_time);
  });

  // Users begin their first action staggered within the arrival window.
  for (auto& user : users) {
    UserDriver* u = user.get();
    SimTime start = u->rng()->NextInt(0, options_.arrival_window);
    state.engine.ScheduleAt(start, [u](SimTime t) { u->TakeAction(t); });
  }

  // Users stop issuing at the horizon, so the engine quiesces once the tail
  // queries drain.
  state.engine.Run();
  assert(state.query_owner.empty());
  state.log.SortEntries();
  return std::move(state.log);
}

}  // namespace thrifty
