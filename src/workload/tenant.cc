#include "workload/tenant.h"

namespace thrifty {

int64_t TotalRequestedNodes(const std::vector<TenantSpec>& tenants) {
  int64_t total = 0;
  for (const auto& t : tenants) total += t.requested_nodes;
  return total;
}

}  // namespace thrifty
