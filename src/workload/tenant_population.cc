#include "workload/tenant_population.h"

#include <algorithm>

#include "common/distributions.h"

namespace thrifty {

Result<std::vector<TenantSpec>> GenerateTenantPopulation(
    int count, const PopulationOptions& options, Rng* rng) {
  if (count < 0) return Status::InvalidArgument("negative tenant count");
  if (options.node_sizes.empty()) {
    return Status::InvalidArgument("node_sizes must not be empty");
  }
  if (options.min_users < 1 || options.max_users < options.min_users) {
    return Status::InvalidArgument("invalid user range");
  }
  std::vector<int> sizes = options.node_sizes;
  std::sort(sizes.begin(), sizes.end());
  ZipfDistribution size_dist(sizes.size(), options.zipf_theta);

  std::vector<TenantSpec> tenants;
  tenants.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    TenantSpec spec;
    spec.id = static_cast<TenantId>(i);
    spec.requested_nodes = sizes[size_dist.Sample(rng)];
    spec.data_gb = options.data_gb_per_node * spec.requested_nodes;
    spec.suite = rng->NextBool(options.tpch_probability) ? QuerySuite::kTpch
                                                         : QuerySuite::kTpcds;
    spec.max_users =
        static_cast<int>(rng->NextInt(options.min_users, options.max_users));
    tenants.push_back(spec);
  }
  return tenants;
}

std::map<int, int> TenantSizeHistogram(
    const std::vector<TenantSpec>& tenants) {
  std::map<int, int> histogram;
  for (const auto& t : tenants) ++histogram[t.requested_nodes];
  return histogram;
}

}  // namespace thrifty
