// Tenant descriptors.

#ifndef THRIFTY_WORKLOAD_TENANT_H_
#define THRIFTY_WORKLOAD_TENANT_H_

#include <string>
#include <vector>

#include "mppdb/catalog.h"
#include "mppdb/instance.h"

namespace thrifty {

/// \brief Data volume per requested node (GB); §7.1 Step 1 gives every node
/// a 100 GB partition.
inline constexpr double kDataGbPerNode = 100.0;

/// \brief A service tenant: a company renting an n-node MPPDB.
struct TenantSpec {
  TenantId id = kInvalidTenantId;

  /// Degree of parallelism the tenant pays for (the n_i of §4.1).
  int requested_nodes = 0;

  /// Total data volume (GB); defaults to 100 GB per requested node.
  double data_gb = 0;

  /// Which benchmark suite the tenant's schema/workload resembles.
  QuerySuite suite = QuerySuite::kTpch;

  /// Office-hour start offset (hours) imitating the tenant's time zone
  /// (§7.1 Step 2: Seattle +0, New York +3, ..., Sydney +19).
  int time_zone_offset_hours = 0;

  /// Maximum number of autonomous users (S in §7.1, uniform in [1, 5]).
  int max_users = 1;
};

/// \brief Total nodes requested by a set of tenants (N = sum n_i).
int64_t TotalRequestedNodes(const std::vector<TenantSpec>& tenants);

}  // namespace thrifty

#endif  // THRIFTY_WORKLOAD_TENANT_H_
