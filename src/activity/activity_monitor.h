// Runtime tenant-activity tracking (the Tenant Activity Monitor's core).
//
// Tracks, per tenant, how many queries are currently executing, derives
// active/inactive transitions (a tenant is active iff it has at least one
// query being executed by any MPPDB), and retains the recent activity
// history as interval sets so the Deployment Advisor can re-derive activity
// vectors at run-time (over-active-tenant identification, re-consolidation).

#ifndef THRIFTY_ACTIVITY_ACTIVITY_MONITOR_H_
#define THRIFTY_ACTIVITY_ACTIVITY_MONITOR_H_

#include <functional>
#include <unordered_map>

#include "common/interval.h"
#include "common/status.h"
#include "mppdb/instance.h"

namespace thrifty {

/// \brief Observes query start/finish events and maintains per-tenant
/// activity state and history.
class TenantActivityTracker {
 public:
  /// Fired when a tenant transitions between inactive and active.
  using TransitionCallback =
      std::function<void(TenantId, bool active, SimTime)>;

  /// \param history_retention how much activity history to keep per tenant
  ///        (pruned lazily); 0 keeps everything.
  explicit TenantActivityTracker(SimDuration history_retention = 35 * kDay);

  void set_transition_callback(TransitionCallback cb) {
    on_transition_ = std::move(cb);
  }

  /// \brief Records that a query of `tenant` started executing at `now`.
  void OnQueryStart(TenantId tenant, SimTime now);

  /// \brief Records that a query of `tenant` finished at `now`.
  ///
  /// Fails if the tenant has no running queries (bookkeeping bug upstream).
  Status OnQueryFinish(TenantId tenant, SimTime now);

  /// \brief True iff the tenant currently has a query executing.
  bool IsActive(TenantId tenant) const;

  /// \brief Number of queries the tenant has executing right now.
  int RunningQueries(TenantId tenant) const;

  /// \brief The tenant's active intervals clipped to [begin, end). If the
  /// tenant is active now, the open interval is closed at `end`.
  IntervalSet ActivityHistory(TenantId tenant, SimTime begin,
                              SimTime end) const;

  /// \brief Fraction of [begin, end) the tenant was active.
  double ActiveRatio(TenantId tenant, SimTime begin, SimTime end) const;

 private:
  struct TenantState {
    int running = 0;
    SimTime active_since = 0;  // valid when running > 0
    IntervalSet history;
    SimTime last_prune = 0;
  };

  void MaybePrune(TenantState* state, SimTime now) const;

  SimDuration history_retention_;
  mutable std::unordered_map<TenantId, TenantState> tenants_;
  TransitionCallback on_transition_;
};

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_ACTIVITY_MONITOR_H_
