#include "activity/activity_vector.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <optional>

#include "activity/streamed_epochizer.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace thrifty {

ActivityVector ActivityVector::FromBitmap(TenantId tenant_id,
                                          const DynamicBitmap& bits) {
  ActivityVector v;
  v.tenant_id_ = tenant_id;
  v.num_epochs_ = bits.num_bits();
  for (size_t w = 0; w < bits.num_words(); ++w) {
    uint64_t word = bits.word(w);
    if (word != 0) {
      v.word_indices_.push_back(static_cast<uint32_t>(w));
      v.word_bits_.push_back(word);
    }
  }
  v.active_epochs_ = simd::SpanPopcount(v.word_bits_.data(),
                                        v.word_bits_.size());
  return v;
}

ActivityVector ActivityVector::FromWords(TenantId tenant_id,
                                         size_t num_epochs,
                                         std::vector<uint32_t> word_indices,
                                         std::vector<uint64_t> word_bits) {
  assert(word_indices.size() == word_bits.size());
  ActivityVector v;
  v.tenant_id_ = tenant_id;
  v.num_epochs_ = num_epochs;
  v.word_indices_ = std::move(word_indices);
  v.word_bits_ = std::move(word_bits);
  for (size_t i = 0; i < v.word_bits_.size(); ++i) {
    assert(v.word_bits_[i] != 0);
    assert(i == 0 || v.word_indices_[i - 1] < v.word_indices_[i]);
  }
  v.active_epochs_ = simd::SpanPopcount(v.word_bits_.data(),
                                        v.word_bits_.size());
  return v;
}

bool ActivityVector::Get(size_t k) const {
  uint32_t w = static_cast<uint32_t>(k >> 6);
  auto it = std::lower_bound(word_indices_.begin(), word_indices_.end(), w);
  if (it == word_indices_.end() || *it != w) return false;
  uint64_t word = word_bits_[static_cast<size_t>(it - word_indices_.begin())];
  return (word >> (k & 63)) & 1;
}

DynamicBitmap ActivityVector::ToBitmap() const {
  DynamicBitmap bits(num_epochs_);
  for (size_t i = 0; i < word_indices_.size(); ++i) {
    bits.mutable_word(word_indices_[i]) = word_bits_[i];
  }
  return bits;
}

DynamicBitmap IntervalsToBitmap(const IntervalSet& intervals,
                                const EpochConfig& epochs) {
  DynamicBitmap bits(epochs.NumEpochs());
  for (const auto& iv : intervals.intervals()) {
    SimTime begin = std::max(iv.begin, epochs.begin);
    SimTime end = std::min(iv.end, epochs.end);
    if (begin >= end) continue;
    size_t first = epochs.EpochOf(begin);
    // end is exclusive; an interval touching an epoch boundary does not
    // occupy the next epoch.
    size_t last = epochs.EpochOf(end - 1);
    bits.SetRange(first, last + 1);
  }
  return bits;
}

ActivityVector MakeActivityVector(const TenantLog& log,
                                  const EpochConfig& epochs) {
  return EpochizeIntervals(log.tenant_id, log.ActivityIntervals(), epochs);
}

std::vector<ActivityVector> MakeActivityVectors(
    const std::vector<TenantLog>& logs, const EpochConfig& epochs,
    int jobs) {
  std::vector<ActivityVector> out(logs.size());
  // Each index writes only its own slot, so the tenant shard partition is
  // free to be scheduling-dependent while the output stays byte-identical.
  std::optional<ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);
  ParallelFor(pool ? &*pool : nullptr, logs.size(), [&](size_t i) {
    out[i] = MakeActivityVector(logs[i], epochs);
  });
  return out;
}

}  // namespace thrifty
