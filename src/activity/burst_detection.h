// Regular-burst tenant detection (§5.1).
//
// "Finally, tenants with regular bursts in tenant activity (e.g., there are
// usually bursts near the end of a fiscal year) could be identified by
// Thrifty's regular activity monitoring and they would be excluded from
// consolidation before the bursts arrive."
//
// A tenant has a *regular burst* when, at the same phase of successive
// calendar periods (week, month, quarter), its activity is consistently far
// above its own baseline. The detector folds the tenant's activity history
// onto a period, compares per-phase-bin activity against the tenant's
// baseline ratio, and reports bins that exceed the threshold in (almost)
// every period. The Deployment Advisor can then exclude such tenants ahead
// of their next predicted burst window.

#ifndef THRIFTY_ACTIVITY_BURST_DETECTION_H_
#define THRIFTY_ACTIVITY_BURST_DETECTION_H_

#include <vector>

#include "common/interval.h"
#include "common/result.h"

namespace thrifty {

/// \brief Burst-detector configuration.
struct BurstDetectorOptions {
  /// Calendar period the history is folded onto (e.g., 7 days for weekly
  /// patterns, 30 days for month-end bursts).
  SimDuration period = 7 * kDay;
  /// Resolution of the folded profile.
  SimDuration bin_size = 1 * kHour;
  /// A bin bursts when its activity ratio exceeds
  /// max(baseline x burst_factor, min_burst_ratio).
  double burst_factor = 3.0;
  double min_burst_ratio = 0.5;
  /// Fraction of periods in which a bin must burst to count as *regular*.
  double recurrence_fraction = 0.8;
  /// Minimum full periods of history required.
  int min_periods = 2;
};

/// \brief One recurring burst window within the period.
struct BurstWindow {
  /// Offset of the window within the period (phase), half-open.
  SimDuration phase_begin = 0;
  SimDuration phase_end = 0;
  /// Mean activity ratio inside the window across periods.
  double mean_ratio = 0;

  /// \brief Next occurrence of this window at or after `now`.
  TimeInterval NextOccurrence(SimTime now, SimDuration period) const;
};

/// \brief Detection result for one tenant.
struct BurstReport {
  /// The tenant's overall active ratio over the analyzed history.
  double baseline_ratio = 0;
  /// Recurring burst windows, sorted by phase (empty = no regular bursts).
  std::vector<BurstWindow> windows;

  bool HasRegularBursts() const { return !windows.empty(); }
};

/// \brief Analyzes a tenant's activity history for regular bursts.
///
/// \param activity the tenant's active intervals.
/// \param history_begin/end the analyzed window; must cover at least
///        options.min_periods full periods.
Result<BurstReport> DetectRegularBursts(
    const IntervalSet& activity, SimTime history_begin, SimTime history_end,
    const BurstDetectorOptions& options = BurstDetectorOptions());

/// \brief True if `when` falls inside a predicted occurrence of any of the
/// report's burst windows.
bool InPredictedBurst(const BurstReport& report, SimTime when,
                      SimDuration period);

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_BURST_DETECTION_H_
