// Epoch discretization of simulated time (§5: tenant activities are divided
// into sequences of d fixed-width time epochs).

#ifndef THRIFTY_ACTIVITY_EPOCH_H_
#define THRIFTY_ACTIVITY_EPOCH_H_

#include <cstddef>

#include "common/sim_time.h"

namespace thrifty {

/// \brief Fixed-width epoch grid over [begin, end).
struct EpochConfig {
  /// Epoch width (the paper's E; empirically 10-30 s is best, §5).
  SimDuration epoch_size = 10 * kSecond;
  SimTime begin = 0;
  SimTime end = 0;

  /// \brief Number of epochs d covering [begin, end); 0 for degenerate or
  /// invalid configs (empty window or non-positive epoch size).
  size_t NumEpochs() const;

  /// \brief Epoch index containing time t (t must lie in [begin, end)).
  size_t EpochOf(SimTime t) const;

  /// \brief Start time of epoch k.
  SimTime EpochBegin(size_t k) const {
    return begin + static_cast<SimTime>(k) * epoch_size;
  }

  /// \brief End time of epoch k (exclusive), clamped to `end`.
  SimTime EpochEnd(size_t k) const;

  bool Valid() const { return epoch_size > 0 && end > begin; }
};

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_EPOCH_H_
