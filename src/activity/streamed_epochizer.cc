#include "activity/streamed_epochizer.h"

#include <algorithm>
#include <cassert>

namespace thrifty {

StreamedEpochizer::StreamedEpochizer(const IntervalSet& intervals,
                                     const EpochConfig& epochs)
    : intervals_(&intervals.intervals()), epochs_(epochs) {
  assert(epochs.Valid());
}

uint64_t StreamedEpochizer::WordMask(uint32_t w) const {
  size_t lo = (w == range_first_epoch_ >> 6) ? (range_first_epoch_ & 63) : 0;
  size_t hi = (w == range_last_epoch_ >> 6) ? (range_last_epoch_ & 63) : 63;
  return (~uint64_t{0} >> (63 - hi)) & (~uint64_t{0} << lo);
}

bool StreamedEpochizer::Next(uint32_t* word_index, uint64_t* word_bits) {
  while (true) {
    if (in_range_) {
      uint32_t w = range_word_;
      uint64_t mask = WordMask(w);
      if (range_word_ == range_last_word_) {
        in_range_ = false;
      } else {
        ++range_word_;
      }
      if (has_pending_ && pending_index_ == w) {
        // Adjacent interval landing in the pending word: merge, the word
        // may still grow.
        pending_bits_ |= mask;
        continue;
      }
      // Ranges walk strictly forward, so a pending word behind `w` is
      // final: emit it and stash `w` as the new pending word.
      uint32_t out_index = pending_index_;
      uint64_t out_bits = pending_bits_;
      bool emit = has_pending_;
      pending_index_ = w;
      pending_bits_ = mask;
      has_pending_ = true;
      if (emit) {
        *word_index = out_index;
        *word_bits = out_bits;
        return true;
      }
      continue;
    }
    if (next_interval_ >= intervals_->size()) {
      if (has_pending_) {
        *word_index = pending_index_;
        *word_bits = pending_bits_;
        has_pending_ = false;
        return true;
      }
      return false;
    }
    const TimeInterval& iv = (*intervals_)[next_interval_++];
    SimTime begin = std::max(iv.begin, epochs_.begin);
    SimTime end = std::min(iv.end, epochs_.end);
    if (begin >= end) {
      if (iv.begin >= epochs_.end) {
        // Sorted intervals: everything further is past the grid too.
        next_interval_ = intervals_->size();
      }
      continue;
    }
    range_first_epoch_ = epochs_.EpochOf(begin);
    // end is exclusive; an interval touching an epoch boundary does not
    // occupy the next epoch (same rule as IntervalsToBitmap).
    range_last_epoch_ = epochs_.EpochOf(end - 1);
    range_word_ = static_cast<uint32_t>(range_first_epoch_ >> 6);
    range_last_word_ = static_cast<uint32_t>(range_last_epoch_ >> 6);
    in_range_ = true;
  }
}

void ForEachActivityWord(const IntervalSet& intervals,
                         const EpochConfig& epochs,
                         const std::function<void(uint32_t, uint64_t)>& fn) {
  StreamedEpochizer stream(intervals, epochs);
  uint32_t index;
  uint64_t bits;
  while (stream.Next(&index, &bits)) fn(index, bits);
}

void EpochizeGauge::Acquire(size_t bytes) {
  size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void EpochizeGauge::Release(size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

ActivityVector EpochizeIntervals(TenantId tenant_id,
                                 const IntervalSet& intervals,
                                 const EpochConfig& epochs,
                                 EpochizeGauge* gauge) {
  if (gauge != nullptr) gauge->Acquire(sizeof(StreamedEpochizer));
  std::vector<uint32_t> word_indices;
  std::vector<uint64_t> word_bits;
  StreamedEpochizer stream(intervals, epochs);
  uint32_t index;
  uint64_t bits;
  while (stream.Next(&index, &bits)) {
    word_indices.push_back(index);
    word_bits.push_back(bits);
  }
  if (gauge != nullptr) gauge->Release(sizeof(StreamedEpochizer));
  return ActivityVector::FromWords(tenant_id, epochs.NumEpochs(),
                                   std::move(word_indices),
                                   std::move(word_bits));
}

}  // namespace thrifty
