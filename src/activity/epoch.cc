#include "activity/epoch.h"

#include <algorithm>
#include <cassert>

namespace thrifty {

size_t EpochConfig::NumEpochs() const {
  if (!Valid()) return 0;
  return static_cast<size_t>((end - begin + epoch_size - 1) / epoch_size);
}

size_t EpochConfig::EpochOf(SimTime t) const {
  assert(t >= begin && t < end);
  return static_cast<size_t>((t - begin) / epoch_size);
}

SimTime EpochConfig::EpochEnd(size_t k) const {
  return std::min(end, begin + static_cast<SimTime>(k + 1) * epoch_size);
}

}  // namespace thrifty
