// Group-level activity algebra: the data structure behind tenant grouping.
//
// A tenant-group's packing state is the per-epoch count of active tenants
// (the sum-of-activity-vectors of §5). GroupLevelSet represents that count
// vector as *level bitmaps*: L_m has bit k set iff at least m tenants are
// active in epoch k. This makes the two operations the two-step heuristic
// needs extremely cheap:
//
//  * TTP(R) — the total time percentage with <= R active tenants — is
//    1 - popcount(L_{R+1}) / d.
//
//  * Evaluating "what happens if tenant C joins?" is pure word-parallel
//    boolean algebra: the new L'_m = L_m | (L_{m-1} & C), and only C's
//    nonzero words can change, so one candidate costs
//    O(levels x |C's nonzero words|) word operations instead of a pass over
//    all epochs. This is what keeps the O(g^2)-search heuristic fast at
//    thousands of tenants.
//
// Storage is *sparse over the touched-word index*: every level can only
// have set bits inside words where at least one member is active, so the
// levels are stored as word columns over the sorted union of the members'
// nonzero word indices instead of as full d-bit bitmaps. Tenant activity is
// bursty (office-hour blocks), so at fine epoch sizes (the paper sweeps E
// down to 0.1 s — millions of epochs) the touched set is a small fraction
// of the horizon and the footprint shrinks accordingly; all operations
// iterate only the intersection of the candidate's nonzero words with the
// touched set. The touched index never shrinks on Remove (it stays an
// upper bound) and is rebuilt only when the group drains to zero activity.
//
// Levels are nested (L_m is a subset of L_{m-1}), so within one touched
// column the nonzero level words form a *prefix*: if level m's word is
// nonzero, so is level m-1's. The columns are therefore stored ragged in a
// single column-major arena — column p holds only its nonzero prefix of
// `height(p)` words — rather than as an L x touched matrix. High levels
// are nonzero only where many members overlap, which is rare, so the arena
// is far smaller than the matrix while any (level, column) word is still
// one bounds-check away.

#ifndef THRIFTY_ACTIVITY_LEVEL_SET_H_
#define THRIFTY_ACTIVITY_LEVEL_SET_H_

#include <cstdint>
#include <vector>

#include "activity/activity_vector.h"
#include "common/bitmap.h"
#include "common/simd.h"
#include "common/status.h"

namespace thrifty {

/// \brief Per-epoch active-tenant counts of one tenant-group, as level
/// bitmaps stored sparsely over the group's touched-word index.
class GroupLevelSet {
 public:
  explicit GroupLevelSet(size_t num_epochs);

  size_t num_epochs() const { return num_epochs_; }
  int num_tenants() const { return num_tenants_; }

  /// \brief Adds a tenant's activity to the group.
  void Add(const ActivityVector& v);

  /// \brief Removes a tenant's activity. The caller must only remove
  /// vectors previously added (the structure stores counts, not members).
  Status Remove(const ActivityVector& v);

  /// \brief Number of epochs with >= m active tenants (m >= 1).
  size_t CountAtLeast(int m) const;

  /// \brief Number of epochs with <= m active tenants (m >= 0) — the
  /// COUNT^{<=R} of §5.
  size_t CountAtMost(int m) const;

  /// \brief Total time percentage (as a fraction in [0,1]) with <= r active
  /// tenants: the TTP of §5.
  double Ttp(int r) const;

  /// \brief Highest number of concurrently active tenants over all epochs.
  int MaxActive() const { return static_cast<int>(pops_.size()); }

  /// \brief Fraction of epochs with exactly m active tenants, for
  /// m = 1..MaxActive() (index 0 holds m=1).
  std::vector<double> ExactLevelFractions() const;

  /// \brief Reusable scratch state for allocation-free candidate
  /// evaluation: the would-be popcount vector plus a bump-pointer arena
  /// holding the per-candidate evaluation plan (the candidate/touched
  /// intersection in height-sorted order and the lazily gathered level
  /// rows the SIMD kernels consume — see EvalCore in level_set.cc). One
  /// instance per scanning thread; the arena is Reset() per candidate and
  /// retains its block, so the argmin inner loop performs no heap
  /// allocation and its working set stays cache-resident.
  struct EvalScratch {
    /// Would-be level popcounts, in the EvaluateAdd layout.
    std::vector<size_t> pops;
    /// Backing store for the evaluation plan, reset per candidate.
    EvalArena arena;
  };

  /// \brief Evaluates adding `v` without mutating the group.
  ///
  /// Returns the would-be popcounts of levels 1..MaxActive()+1 (the last
  /// entry is the possibly-new top level). Entry m-1 is the number of epochs
  /// that would have >= m active tenants.
  std::vector<size_t> EvaluateAdd(const ActivityVector& v) const;

  /// \brief EvaluateAdd into `scratch->pops`, reusing its buffers.
  void EvaluateAddInto(const ActivityVector& v, EvalScratch* scratch) const;

  /// \brief Pruned EvaluateAdd-and-compare against an incumbent outcome.
  ///
  /// Computes the would-be level popcounts top-down and compares them
  /// against `incumbent` under the Fig 5.3 total order (exact-level counts
  /// from the highest level downward — CompareCandidateLevels in
  /// placement/two_step.h is the canonical definition). Returns negative if
  /// adding `v` is the strictly better (smaller) outcome, positive if
  /// strictly worse, 0 on a full tie. As soon as a level strictly exceeds
  /// the incumbent's the evaluation is abandoned — the pruning that keeps
  /// the argmin cheap — so `scratch->pops` is complete (and equal to
  /// EvaluateAdd) only when the result is <= 0.
  ///
  /// `incumbent` must be an EvaluateAdd outcome against this same group
  /// state (so incumbent.size() <= MaxActive() + 1) and non-empty.
  int EvaluateAddCompare(const ActivityVector& v,
                         const std::vector<size_t>& incumbent,
                         EvalScratch* scratch) const;

  /// \brief TTP(r) computed from EvaluateAdd popcounts.
  double TtpFromPopcounts(const std::vector<size_t>& at_least_pops,
                          int r) const;

  /// \brief Level popcounts (epochs with >= m active), m = 1..MaxActive().
  const std::vector<size_t>& level_popcounts() const { return pops_; }

  /// \brief Words of the touched index (union of members' nonzero words).
  size_t touched_words() const { return touched_.size(); }

  /// \brief Bytes held by the sparse level storage (touched index plus the
  /// per-level word columns and cached popcounts), by element count.
  size_t MemoryBytes() const;

  /// \brief Bytes the same levels would occupy as dense full-horizon
  /// bitmaps (the pre-sparse representation): levels x ceil(d/64) words.
  size_t DenseEquivalentBytes() const;

 private:
  /// Merges `widx` into the touched index, inserting height-zero columns
  /// (the arena itself is unchanged — only the column starts shift), and
  /// writes each candidate word's touched position into `cand_pos`
  /// (parallel to `widx`).
  void MergeTouched(const std::vector<uint32_t>& widx,
                    std::vector<uint32_t>* cand_pos);

  /// The per-candidate evaluation plan: the candidate/touched column
  /// intersection sorted by stored height (descending), so each level's
  /// participating columns form a prefix, plus the lazily gathered
  /// contiguous level rows the SIMD kernels run over. All arrays live in
  /// the scratch arena. Defined in level_set.cc.
  struct EvalPlan;

  /// Builds `plan` for evaluating `v` against this group (intersects the
  /// candidate's nonzero words with the touched index, counting-sorts the
  /// matches by column height, and popcounts the words outside the index
  /// — those can only contribute to level 1).
  void BuildPlan(const ActivityVector& v, EvalScratch* scratch,
                 EvalPlan* plan) const;

  /// Shared body of EvaluateAddInto / EvaluateAddCompare: computes the
  /// would-be level popcounts top-down into scratch->pops (level rows
  /// gathered lazily, bodies run through the simd:: kernels). With a
  /// non-null `incumbent` it additionally compares exact-level counts
  /// under the Fig 5.3 total order, returning +1 as soon as a level is
  /// strictly worse (pops left incomplete) and -1/0 otherwise; with a null
  /// incumbent it returns 0 and always completes pops.
  int EvalCore(const ActivityVector& v, const std::vector<size_t>* incumbent,
               EvalScratch* scratch) const;

  /// Rewrites the candidate columns listed in `cand_pos` (sorted) with the
  /// ragged new columns in `new_words` (`new_first[j]`/`new_heights[j]`
  /// delimit column j's words), recompacting the arena and column starts.
  void SpliceColumns(const std::vector<uint32_t>& cand_pos,
                     const std::vector<uint64_t>& new_words,
                     const std::vector<uint32_t>& new_first,
                     const std::vector<uint32_t>& new_heights);

  size_t num_epochs_;
  int num_tenants_ = 0;
  /// Sorted word indices where any member has activity.
  std::vector<uint32_t> touched_;
  /// Column p's nonzero level prefix lives at
  /// arena_[col_start_[p] .. col_start_[p+1]): entry i is level i+1's word.
  /// col_start_ has touched_.size()+1 entries (empty when touched_ is).
  std::vector<uint32_t> col_start_;
  std::vector<uint64_t> arena_;
  std::vector<size_t> pops_;  // cached popcount per level
};

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_LEVEL_SET_H_
