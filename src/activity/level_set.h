// Group-level activity algebra: the data structure behind tenant grouping.
//
// A tenant-group's packing state is the per-epoch count of active tenants
// (the sum-of-activity-vectors of §5). GroupLevelSet represents that count
// vector as *level bitmaps*: L_m has bit k set iff at least m tenants are
// active in epoch k. This makes the two operations the two-step heuristic
// needs extremely cheap:
//
//  * TTP(R) — the total time percentage with <= R active tenants — is
//    1 - popcount(L_{R+1}) / d.
//
//  * Evaluating "what happens if tenant C joins?" is pure word-parallel
//    boolean algebra: the new L'_m = L_m | (L_{m-1} & C), and only C's
//    nonzero words can change, so one candidate costs
//    O(levels x |C's nonzero words|) word operations instead of a pass over
//    all epochs. This is what keeps the O(g^2)-search heuristic fast at
//    thousands of tenants.

#ifndef THRIFTY_ACTIVITY_LEVEL_SET_H_
#define THRIFTY_ACTIVITY_LEVEL_SET_H_

#include <vector>

#include "activity/activity_vector.h"
#include "common/bitmap.h"
#include "common/status.h"

namespace thrifty {

/// \brief Per-epoch active-tenant counts of one tenant-group, as level
/// bitmaps.
class GroupLevelSet {
 public:
  explicit GroupLevelSet(size_t num_epochs);

  size_t num_epochs() const { return num_epochs_; }
  int num_tenants() const { return num_tenants_; }

  /// \brief Adds a tenant's activity to the group.
  void Add(const ActivityVector& v);

  /// \brief Removes a tenant's activity. The caller must only remove
  /// vectors previously added (the structure stores counts, not members).
  Status Remove(const ActivityVector& v);

  /// \brief Number of epochs with >= m active tenants (m >= 1).
  size_t CountAtLeast(int m) const;

  /// \brief Number of epochs with <= m active tenants (m >= 0) — the
  /// COUNT^{<=R} of §5.
  size_t CountAtMost(int m) const;

  /// \brief Total time percentage (as a fraction in [0,1]) with <= r active
  /// tenants: the TTP of §5.
  double Ttp(int r) const;

  /// \brief Highest number of concurrently active tenants over all epochs.
  int MaxActive() const { return static_cast<int>(levels_.size()); }

  /// \brief Fraction of epochs with exactly m active tenants, for
  /// m = 1..MaxActive() (index 0 holds m=1).
  std::vector<double> ExactLevelFractions() const;

  /// \brief Evaluates adding `v` without mutating the group.
  ///
  /// Returns the would-be popcounts of levels 1..MaxActive()+1 (the last
  /// entry is the possibly-new top level). Entry m-1 is the number of epochs
  /// that would have >= m active tenants.
  std::vector<size_t> EvaluateAdd(const ActivityVector& v) const;

  /// \brief TTP(r) computed from EvaluateAdd popcounts.
  double TtpFromPopcounts(const std::vector<size_t>& at_least_pops,
                          int r) const;

  /// \brief Level popcounts (epochs with >= m active), m = 1..MaxActive().
  const std::vector<size_t>& level_popcounts() const { return pops_; }

 private:
  size_t num_epochs_;
  int num_tenants_ = 0;
  std::vector<DynamicBitmap> levels_;  // levels_[m-1] = L_m
  std::vector<size_t> pops_;           // cached popcount per level
};

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_LEVEL_SET_H_
