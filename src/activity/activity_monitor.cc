#include "activity/activity_monitor.h"

#include <string>

namespace thrifty {

TenantActivityTracker::TenantActivityTracker(SimDuration history_retention)
    : history_retention_(history_retention) {}

void TenantActivityTracker::OnQueryStart(TenantId tenant, SimTime now) {
  TenantState& state = tenants_[tenant];
  if (state.running == 0) {
    state.active_since = now;
    if (on_transition_) on_transition_(tenant, true, now);
  }
  ++state.running;
}

Status TenantActivityTracker::OnQueryFinish(TenantId tenant, SimTime now) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.running == 0) {
    return Status::FailedPrecondition(
        "tenant " + std::to_string(tenant) + " has no running queries");
  }
  TenantState& state = it->second;
  if (--state.running == 0) {
    state.history.Add(state.active_since, now);
    MaybePrune(&state, now);
    if (on_transition_) on_transition_(tenant, false, now);
  }
  return Status::OK();
}

bool TenantActivityTracker::IsActive(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.running > 0;
}

int TenantActivityTracker::RunningQueries(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.running;
}

IntervalSet TenantActivityTracker::ActivityHistory(TenantId tenant,
                                                   SimTime begin,
                                                   SimTime end) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return IntervalSet();
  IntervalSet history = it->second.history;
  if (it->second.running > 0) {
    history.Add(it->second.active_since, end);
  }
  return history.Clip(begin, end);
}

double TenantActivityTracker::ActiveRatio(TenantId tenant, SimTime begin,
                                          SimTime end) const {
  if (end <= begin) return 0;
  return static_cast<double>(ActivityHistory(tenant, begin, end).TotalLength()) /
         static_cast<double>(end - begin);
}

void TenantActivityTracker::MaybePrune(TenantState* state,
                                       SimTime now) const {
  if (history_retention_ <= 0) return;
  // Amortize: prune at most once per retention period.
  if (now - state->last_prune < history_retention_) return;
  state->history = state->history.Clip(now - history_retention_, now);
  state->last_prune = now;
}

}  // namespace thrifty
