#include "activity/burst_detection.h"

#include <algorithm>
#include <cmath>

namespace thrifty {

TimeInterval BurstWindow::NextOccurrence(SimTime now,
                                         SimDuration period) const {
  // The k-th occurrence covers [k*period + phase_begin, k*period +
  // phase_end). Find the first one ending after `now`.
  SimTime k = now / period;
  while (k * period + phase_end <= now) ++k;
  return {k * period + phase_begin, k * period + phase_end};
}

Result<BurstReport> DetectRegularBursts(const IntervalSet& activity,
                                        SimTime history_begin,
                                        SimTime history_end,
                                        const BurstDetectorOptions& options) {
  if (options.period <= 0 || options.bin_size <= 0 ||
      options.bin_size > options.period) {
    return Status::InvalidArgument("invalid period/bin size");
  }
  if (options.period % options.bin_size != 0) {
    return Status::InvalidArgument("bin size must divide the period");
  }
  if (history_end <= history_begin) {
    return Status::InvalidArgument("empty history window");
  }
  int num_periods =
      static_cast<int>((history_end - history_begin) / options.period);
  if (num_periods < options.min_periods) {
    return Status::FailedPrecondition(
        "history covers " + std::to_string(num_periods) +
        " full periods, need " + std::to_string(options.min_periods));
  }

  const size_t bins_per_period =
      static_cast<size_t>(options.period / options.bin_size);

  BurstReport report;
  SimTime analyzed_end =
      history_begin + static_cast<SimTime>(num_periods) * options.period;
  IntervalSet clipped = activity.Clip(history_begin, analyzed_end);
  report.baseline_ratio =
      static_cast<double>(clipped.TotalLength()) /
      static_cast<double>(analyzed_end - history_begin);

  // Per (period, bin) activity ratio.
  std::vector<std::vector<double>> ratios(
      static_cast<size_t>(num_periods),
      std::vector<double>(bins_per_period, 0));
  for (int p = 0; p < num_periods; ++p) {
    for (size_t b = 0; b < bins_per_period; ++b) {
      SimTime begin = history_begin + p * options.period +
                      static_cast<SimTime>(b) * options.bin_size;
      SimTime end = begin + options.bin_size;
      ratios[static_cast<size_t>(p)][b] =
          static_cast<double>(clipped.Clip(begin, end).TotalLength()) /
          static_cast<double>(options.bin_size);
    }
  }

  double threshold = std::max(report.baseline_ratio * options.burst_factor,
                              options.min_burst_ratio);
  // A bin is a regular burst when it exceeds the threshold in at least
  // recurrence_fraction of the periods.
  std::vector<bool> bursty(bins_per_period, false);
  std::vector<double> bin_means(bins_per_period, 0);
  for (size_t b = 0; b < bins_per_period; ++b) {
    int hits = 0;
    double sum = 0;
    for (int p = 0; p < num_periods; ++p) {
      double r = ratios[static_cast<size_t>(p)][b];
      sum += r;
      hits += r > threshold ? 1 : 0;
    }
    bin_means[b] = sum / num_periods;
    bursty[b] = static_cast<double>(hits) / num_periods + 1e-12 >=
                options.recurrence_fraction;
  }

  // Coalesce consecutive bursty bins into windows.
  size_t b = 0;
  while (b < bins_per_period) {
    if (!bursty[b]) {
      ++b;
      continue;
    }
    size_t end = b;
    double sum = 0;
    while (end < bins_per_period && bursty[end]) {
      sum += bin_means[end];
      ++end;
    }
    BurstWindow window;
    window.phase_begin = static_cast<SimDuration>(b) * options.bin_size;
    window.phase_end = static_cast<SimDuration>(end) * options.bin_size;
    window.mean_ratio = sum / static_cast<double>(end - b);
    report.windows.push_back(window);
    b = end;
  }
  return report;
}

bool InPredictedBurst(const BurstReport& report, SimTime when,
                      SimDuration period) {
  if (period <= 0) return false;
  SimDuration phase = when % period;
  for (const auto& window : report.windows) {
    if (phase >= window.phase_begin && phase < window.phase_end) return true;
  }
  return false;
}

}  // namespace thrifty
