// Streamed interval -> sparse epochization (§5 discretization without the
// dense intermediate).
//
// The original pipeline discretized a tenant's activity intervals by
// materializing a d-bit DynamicBitmap (one bit per epoch) and then
// compressing it into the sparse ActivityVector form. At fine epoch sizes
// (the paper sweeps E down to 0.1 s, i.e. millions of epochs) that dense
// intermediate is pure waste: a bursty tenant touches a small fraction of
// the horizon, yet every tenant transiently allocates the full Θ(d) bitmap.
//
// StreamedEpochizer removes the intermediate entirely. It walks the
// tenant's normalized (sorted, disjoint) IntervalSet over the epoch grid
// and emits exactly the nonzero 64-bit activity words, in ascending word
// order, merging intervals that land in the same word on the fly. The key
// invariant making single-pass merging possible: for disjoint sorted
// intervals, interval i's last epoch is <= interval i+1's first epoch, so
// a pending word can only ever be extended by the *next* interval and is
// final as soon as the walk moves past it. Working state is O(1); the only
// allocation is the output itself.
//
// Consumers: ActivityVector construction (EpochizeIntervals and the
// MakeActivityVector* family), GroupLevelSet's touched-word index (which
// takes the sparse words as-is via ActivityVector::FromWords), and the
// runtime paths that epochize activity histories (deployment advisor,
// elastic scaler). IntervalsToBitmap remains as the dense reference that
// tests/epochize_property_test.cc cross-checks this pipeline against.

#ifndef THRIFTY_ACTIVITY_STREAMED_EPOCHIZER_H_
#define THRIFTY_ACTIVITY_STREAMED_EPOCHIZER_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "activity/activity_vector.h"
#include "activity/epoch.h"
#include "common/interval.h"

namespace thrifty {

/// \brief Pull-style iterator over the nonzero activity words of one
/// tenant's interval set on an epoch grid.
///
/// Words come out in strictly ascending word-index order with nonzero bits;
/// no dense per-epoch storage is ever allocated. The interval set must
/// outlive the epochizer.
class StreamedEpochizer {
 public:
  StreamedEpochizer(const IntervalSet& intervals, const EpochConfig& epochs);

  /// \brief Advances to the next nonzero word.
  ///
  /// Returns false when the stream is exhausted (then never true again).
  bool Next(uint32_t* word_index, uint64_t* word_bits);

 private:
  /// Bits of word `w` covered by the current interval's epoch range.
  uint64_t WordMask(uint32_t w) const;

  const std::vector<TimeInterval>* intervals_;
  EpochConfig epochs_;
  size_t next_interval_ = 0;
  // Word currently being merged across adjacent intervals.
  bool has_pending_ = false;
  uint32_t pending_index_ = 0;
  uint64_t pending_bits_ = 0;
  // Epoch/word range of the interval currently being walked.
  bool in_range_ = false;
  size_t range_first_epoch_ = 0;
  size_t range_last_epoch_ = 0;
  uint32_t range_word_ = 0;
  uint32_t range_last_word_ = 0;
};

/// \brief Invokes `fn(word_index, word_bits)` for every nonzero activity
/// word of `intervals` on the `epochs` grid, in ascending word order.
void ForEachActivityWord(const IntervalSet& intervals,
                         const EpochConfig& epochs,
                         const std::function<void(uint32_t, uint64_t)>& fn);

/// \brief High-water byte gauge for the epochization stage.
///
/// Thread-safe; benches use one gauge per epochization pass to record the
/// peak bytes of per-tenant working state (the dense path's Θ(d) bitmap
/// intermediates vs the streamed path's O(1) walker state) summed over
/// concurrently in-flight tenants. Scheduling-dependent, so the value
/// belongs in metrics, never in fingerprinted results.
class EpochizeGauge {
 public:
  void Acquire(size_t bytes);
  void Release(size_t bytes);
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

/// \brief Builds one tenant's sparse activity vector straight from its
/// interval set — the streamed replacement for
/// ActivityVector::FromBitmap(IntervalsToBitmap(...)).
///
/// If `gauge` is non-null, the walker's working-state bytes are charged to
/// it for the duration of the call (the streamed counterpart of the dense
/// path's bitmap charge).
ActivityVector EpochizeIntervals(TenantId tenant_id,
                                 const IntervalSet& intervals,
                                 const EpochConfig& epochs,
                                 EpochizeGauge* gauge = nullptr);

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_STREAMED_EPOCHIZER_H_
