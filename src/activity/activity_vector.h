// Per-tenant epoch activity vectors (the A_i of §5).
//
// A tenant is active in epoch k if any of its queries is executing at some
// point during epoch k (the paper's strong notion of inactive: "as long as a
// tenant does not have any queries being executed by any MPPDB, that tenant
// is inactive at that moment").
//
// Activity is bursty (office-hour blocks), so the packed bitmap is stored
// sparsely: only 64-bit words containing at least one set bit are kept, as
// parallel (word index, word bits) arrays. All consumers — most importantly
// GroupLevelSet's candidate evaluation — iterate exactly these nonzero
// words, and at fine epoch sizes (the paper sweeps E down to 0.1 s, i.e.
// millions of epochs) the sparse form is ~8x smaller than a full bitmap.

#ifndef THRIFTY_ACTIVITY_ACTIVITY_VECTOR_H_
#define THRIFTY_ACTIVITY_ACTIVITY_VECTOR_H_

#include <cstdint>
#include <vector>

#include "activity/epoch.h"
#include "common/bitmap.h"
#include "common/interval.h"
#include "workload/query_log.h"

namespace thrifty {

/// \brief Sparse activity bitmap of one tenant: bit k set iff active in
/// epoch k.
class ActivityVector {
 public:
  ActivityVector() = default;

  /// \brief Compresses a full bitmap into sparse form.
  static ActivityVector FromBitmap(TenantId tenant_id,
                                   const DynamicBitmap& bits);

  /// \brief Adopts already-sparse word storage (ascending word indices,
  /// every word nonzero) — the zero-copy sink of the streamed epochization
  /// pipeline (activity/streamed_epochizer.h).
  static ActivityVector FromWords(TenantId tenant_id, size_t num_epochs,
                                  std::vector<uint32_t> word_indices,
                                  std::vector<uint64_t> word_bits);

  TenantId tenant_id() const { return tenant_id_; }
  size_t num_epochs() const { return num_epochs_; }

  /// \brief Number of epochs in which the tenant is active.
  size_t ActiveEpochs() const { return active_epochs_; }

  /// \brief ActiveEpochs() / num_epochs().
  double ActiveRatio() const {
    return num_epochs_ == 0 ? 0
                            : static_cast<double>(active_epochs_) /
                                  static_cast<double>(num_epochs_);
  }

  /// \brief Indices of 64-bit words containing set bits, ascending.
  const std::vector<uint32_t>& word_indices() const { return word_indices_; }

  /// \brief Word contents, parallel to word_indices().
  const std::vector<uint64_t>& word_bits() const { return word_bits_; }

  /// \brief Whether epoch k is active (binary search; for tests/small use).
  bool Get(size_t k) const;

  /// \brief Expands back to a full bitmap.
  DynamicBitmap ToBitmap() const;

 private:
  TenantId tenant_id_ = kInvalidTenantId;
  size_t num_epochs_ = 0;
  size_t active_epochs_ = 0;
  std::vector<uint32_t> word_indices_;
  std::vector<uint64_t> word_bits_;
};

/// \brief Discretizes activity intervals onto the epoch grid as a dense
/// bitmap.
///
/// This is the dense *reference* discretization: production construction
/// streams intervals straight into sparse words (see
/// activity/streamed_epochizer.h) and never allocates the d-bit bitmap;
/// tests cross-check the two paths against each other.
DynamicBitmap IntervalsToBitmap(const IntervalSet& intervals,
                                const EpochConfig& epochs);

/// \brief Builds the activity vector of one tenant log (streamed, no dense
/// intermediate).
ActivityVector MakeActivityVector(const TenantLog& log,
                                  const EpochConfig& epochs);

/// \brief Builds activity vectors for all logs, tenant-sharded over `jobs`
/// workers (byte-identical output for any value).
std::vector<ActivityVector> MakeActivityVectors(
    const std::vector<TenantLog>& logs, const EpochConfig& epochs,
    int jobs = 1);

}  // namespace thrifty

#endif  // THRIFTY_ACTIVITY_ACTIVITY_VECTOR_H_
