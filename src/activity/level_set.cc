#include "activity/level_set.h"

#include <bit>
#include <cassert>
#include <limits>

namespace thrifty {

namespace {
constexpr uint32_t kNoOldPos = std::numeric_limits<uint32_t>::max();

inline size_t Pop(uint64_t word) {
  return static_cast<size_t>(std::popcount(word));
}
}  // namespace

GroupLevelSet::GroupLevelSet(size_t num_epochs) : num_epochs_(num_epochs) {}

void GroupLevelSet::MergeTouched(const std::vector<uint32_t>& widx,
                                 std::vector<uint32_t>* cand_pos) {
  cand_pos->resize(widx.size());
  std::vector<uint32_t> merged;
  merged.reserve(touched_.size() + widx.size());
  // For each merged column, the touched position it came from (or new).
  std::vector<uint32_t> old_pos;
  old_pos.reserve(touched_.size() + widx.size());
  size_t i = 0, j = 0;
  bool grew = false;
  while (i < touched_.size() || j < widx.size()) {
    uint32_t tw = i < touched_.size() ? touched_[i]
                                      : std::numeric_limits<uint32_t>::max();
    uint32_t cw = j < widx.size() ? widx[j]
                                  : std::numeric_limits<uint32_t>::max();
    if (tw < cw) {
      old_pos.push_back(static_cast<uint32_t>(i));
      merged.push_back(tw);
      ++i;
    } else if (cw < tw) {
      (*cand_pos)[j] = static_cast<uint32_t>(merged.size());
      old_pos.push_back(kNoOldPos);
      merged.push_back(cw);
      ++j;
      grew = true;
    } else {
      (*cand_pos)[j] = static_cast<uint32_t>(merged.size());
      old_pos.push_back(static_cast<uint32_t>(i));
      merged.push_back(tw);
      ++i;
      ++j;
    }
  }
  if (!grew) return;
  // The merge is stable over the old columns, so the arena's word order is
  // unchanged — new columns have height zero and only the starts shift.
  std::vector<uint32_t> starts(merged.size() + 1);
  uint32_t offset = 0;
  for (size_t k = 0; k < merged.size(); ++k) {
    starts[k] = offset;
    if (old_pos[k] != kNoOldPos) {
      offset += col_start_[old_pos[k] + 1] - col_start_[old_pos[k]];
    }
  }
  starts.back() = offset;
  col_start_ = std::move(starts);
  touched_ = std::move(merged);
}

size_t GroupLevelSet::IntersectTouched(const ActivityVector& v,
                                       EvalScratch* scratch) const {
  scratch->cand.clear();
  scratch->pos.clear();
  scratch->cstart.clear();
  scratch->cheight.clear();
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t outside_pop = 0;
  size_t i = 0;
  for (size_t j = 0; j < widx.size(); ++j) {
    while (i < touched_.size() && touched_[i] < widx[j]) ++i;
    if (i < touched_.size() && touched_[i] == widx[j]) {
      scratch->cand.push_back(static_cast<uint32_t>(j));
      scratch->pos.push_back(static_cast<uint32_t>(i));
      scratch->cstart.push_back(col_start_[i]);
      scratch->cheight.push_back(col_start_[i + 1] - col_start_[i]);
    } else {
      outside_pop += Pop(wbits[j]);
    }
  }
  return outside_pop;
}

void GroupLevelSet::SpliceColumns(const std::vector<uint32_t>& cand_pos,
                                  const std::vector<uint64_t>& new_words,
                                  const std::vector<uint32_t>& new_first,
                                  const std::vector<uint32_t>& new_heights) {
  std::vector<uint64_t> arena;
  arena.reserve(arena_.size() + new_words.size());
  std::vector<uint32_t> starts(touched_.size() + 1);
  size_t j = 0;
  for (size_t p = 0; p < touched_.size(); ++p) {
    starts[p] = static_cast<uint32_t>(arena.size());
    if (j < cand_pos.size() && cand_pos[j] == p) {
      arena.insert(arena.end(), new_words.begin() + new_first[j],
                   new_words.begin() + new_first[j] + new_heights[j]);
      ++j;
    } else {
      arena.insert(arena.end(), arena_.begin() + col_start_[p],
                   arena_.begin() + col_start_[p + 1]);
    }
  }
  starts.back() = static_cast<uint32_t>(arena.size());
  arena_ = std::move(arena);
  col_start_ = std::move(starts);
}

void GroupLevelSet::Add(const ActivityVector& v) {
  assert(v.num_epochs() == num_epochs_);
  ++num_tenants_;
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = pops_.size();

  if (num_levels == 0) {
    // A tenant with no activity contributes no level. No level also means
    // every current member is inactive everywhere, so the candidate's words
    // *are* the touched index (heights all one: widx holds nonzero words).
    if (v.ActiveEpochs() > 0) {
      touched_ = widx;
      col_start_.resize(touched_.size() + 1);
      for (size_t k = 0; k <= touched_.size(); ++k) {
        col_start_[k] = static_cast<uint32_t>(k);
      }
      arena_ = wbits;
      pops_.assign(1, v.ActiveEpochs());
    }
    return;
  }

  std::vector<uint32_t> cand_pos;
  MergeTouched(widx, &cand_pos);

  // Recompute each candidate column from its old prefix. Within a column
  // levels are nested, so every updated word at m <= height stays nonzero
  // and only the height+1 entry (old top AND candidate) can be new — the
  // column grows by at most one word.
  std::vector<uint64_t> new_words;
  new_words.reserve(arena_.size() / 2 + widx.size());
  std::vector<uint32_t> new_first(widx.size());
  std::vector<uint32_t> new_heights(widx.size());
  std::vector<size_t> delta(num_levels + 1, 0);
  for (size_t j = 0; j < widx.size(); ++j) {
    uint32_t s = col_start_[cand_pos[j]];
    uint32_t h = col_start_[cand_pos[j] + 1] - s;
    uint64_t cw = wbits[j];
    new_first[j] = static_cast<uint32_t>(new_words.size());
    for (uint32_t m = 1; m <= h; ++m) {
      uint64_t old_word = arena_[s + m - 1];
      // L_0 is conceptually all-ones, so at m == 1 the join term is C.
      uint64_t below = m >= 2 ? arena_[s + m - 2] : ~uint64_t{0};
      uint64_t new_word = old_word | (below & cw);
      if (new_word != old_word) delta[m - 1] += Pop(new_word) - Pop(old_word);
      new_words.push_back(new_word);
    }
    // The possibly-new top word: old-top AND candidate (for a height-zero
    // column the candidate lifts level 1 directly).
    uint64_t top = h >= 1 ? (arena_[s + h - 1] & cw) : cw;
    if (top != 0) {
      delta[h] += Pop(top);
      new_words.push_back(top);
      new_heights[j] = h + 1;
    } else {
      new_heights[j] = h;
    }
  }
  SpliceColumns(cand_pos, new_words, new_first, new_heights);

  for (size_t m = 1; m <= num_levels; ++m) pops_[m - 1] += delta[m - 1];
  if (delta[num_levels] > 0) pops_.push_back(delta[num_levels]);
}

Status GroupLevelSet::Remove(const ActivityVector& v) {
  assert(v.num_epochs() == num_epochs_);
  if (num_tenants_ == 0) {
    return Status::FailedPrecondition("group is empty");
  }
  --num_tenants_;
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = pops_.size();
  // Only previously-added vectors may be removed, so every candidate word
  // is in the touched index already.
  std::vector<uint32_t> cand_pos(widx.size());
  {
    size_t i = 0;
    for (size_t j = 0; j < widx.size(); ++j) {
      while (i < touched_.size() && touched_[i] < widx[j]) ++i;
      assert(i < touched_.size() && touched_[i] == widx[j]);
      cand_pos[j] = static_cast<uint32_t>(i);
    }
  }
  // An epoch leaves level m iff its old count was exactly m (in L_m but
  // not L_{m+1}) and the tenant was active there; each new word reads only
  // *old* column words, then trailing zero words are trimmed so columns
  // stay nonzero prefixes.
  std::vector<uint64_t> new_words;
  new_words.reserve(arena_.size() / 2);
  std::vector<uint32_t> new_first(widx.size());
  std::vector<uint32_t> new_heights(widx.size());
  std::vector<size_t> delta(num_levels, 0);
  for (size_t j = 0; j < widx.size(); ++j) {
    uint32_t s = col_start_[cand_pos[j]];
    uint32_t h = col_start_[cand_pos[j] + 1] - s;
    uint64_t cw = wbits[j];
    new_first[j] = static_cast<uint32_t>(new_words.size());
    uint32_t nh = 0;
    for (uint32_t m = 1; m <= h; ++m) {
      uint64_t old_word = arena_[s + m - 1];
      uint64_t above = m < h ? arena_[s + m] : 0;
      uint64_t new_word = old_word & (~cw | above);
      if (new_word != old_word) delta[m - 1] += Pop(old_word) - Pop(new_word);
      new_words.push_back(new_word);
      if (new_word != 0) nh = m;
    }
    new_words.resize(new_first[j] + nh);  // trim the zero tail
    new_heights[j] = nh;
  }
  SpliceColumns(cand_pos, new_words, new_first, new_heights);

  for (size_t m = 1; m <= num_levels; ++m) pops_[m - 1] -= delta[m - 1];
  while (!pops_.empty() && pops_.back() == 0) pops_.pop_back();
  // The touched index stays as an upper bound while levels exist; once the
  // group drains to zero activity the next Add rebuilds it from scratch.
  if (pops_.empty()) {
    touched_.clear();
    col_start_.clear();
    arena_.clear();
  }
  return Status::OK();
}

size_t GroupLevelSet::CountAtLeast(int m) const {
  assert(m >= 1);
  if (static_cast<size_t>(m) > pops_.size()) return 0;
  return pops_[static_cast<size_t>(m) - 1];
}

size_t GroupLevelSet::CountAtMost(int m) const {
  assert(m >= 0);
  if (static_cast<size_t>(m) >= pops_.size()) return num_epochs_;
  return num_epochs_ - pops_[static_cast<size_t>(m)];
}

double GroupLevelSet::Ttp(int r) const {
  if (num_epochs_ == 0) return 1.0;
  return static_cast<double>(CountAtMost(r)) /
         static_cast<double>(num_epochs_);
}

std::vector<double> GroupLevelSet::ExactLevelFractions() const {
  std::vector<double> fractions(pops_.size());
  for (size_t m = 1; m <= pops_.size(); ++m) {
    size_t at_least_m = pops_[m - 1];
    size_t at_least_m1 = m < pops_.size() ? pops_[m] : 0;
    fractions[m - 1] = static_cast<double>(at_least_m - at_least_m1) /
                       static_cast<double>(num_epochs_);
  }
  return fractions;
}

std::vector<size_t> GroupLevelSet::EvaluateAdd(const ActivityVector& v) const {
  EvalScratch scratch;
  EvaluateAddInto(v, &scratch);
  return std::move(scratch.pops);
}

void GroupLevelSet::EvaluateAddInto(const ActivityVector& v,
                                    EvalScratch* scratch) const {
  assert(v.num_epochs() == num_epochs_);
  const auto& wbits = v.word_bits();
  size_t outside_pop = IntersectTouched(v, scratch);
  size_t num_levels = pops_.size();
  scratch->pops.assign(num_levels + 1, 0);
  for (size_t m = 1; m <= num_levels + 1; ++m) {
    size_t base = m <= num_levels ? pops_[m - 1] : 0;
    // Words outside the touched index have zero count, so the candidate
    // lifts them straight into level 1 and nowhere else.
    size_t delta = m == 1 ? outside_pop : 0;
    for (size_t k = 0; k < scratch->cand.size(); ++k) {
      uint32_t h = scratch->cheight[k];
      // Columns shorter than m - 1 contribute nothing at level m.
      if (h + 1 < m) continue;
      uint64_t cw = wbits[scratch->cand[k]];
      uint32_t s = scratch->cstart[k];
      uint64_t old_word = m <= h ? arena_[s + m - 1] : 0;
      // L_0 is all-ones, so at m == 1 the joining term is C itself.
      uint64_t below = m >= 2 ? (m - 1 <= h ? arena_[s + m - 2] : 0)
                              : ~uint64_t{0};
      uint64_t new_word = old_word | (below & cw);
      if (new_word != old_word) delta += Pop(new_word) - Pop(old_word);
    }
    scratch->pops[m - 1] = base + delta;
  }
  // Drop an empty would-be top level so MaxActive stays meaningful.
  if (scratch->pops.back() == 0) scratch->pops.pop_back();
}

int GroupLevelSet::EvaluateAddCompare(const ActivityVector& v,
                                      const std::vector<size_t>& incumbent,
                                      EvalScratch* scratch) const {
  assert(v.num_epochs() == num_epochs_);
  assert(!incumbent.empty());
  assert(incumbent.size() <= pops_.size() + 1);
  const auto& wbits = v.word_bits();
  size_t outside_pop = IntersectTouched(v, scratch);
  size_t num_levels = pops_.size();
  scratch->pops.assign(num_levels + 1, 0);
  // Levels are independent of each other, so they can be computed top-down,
  // in exactly the order the Fig 5.3 comparison consumes them: the exact
  // count at level m is at_least(m) - at_least(m+1). The first strictly
  // differing level decides, which is what makes abandoning a losing
  // candidate early (`return 1` below) outcome-identical to the full
  // EvaluateAdd + CompareCandidateLevels.
  size_t above = 0;  // at_least(m + 1), from the previous iteration
  int winner = 0;
  for (size_t m = num_levels + 1; m >= 1; --m) {
    size_t base = m <= num_levels ? pops_[m - 1] : 0;
    size_t delta = m == 1 ? outside_pop : 0;
    for (size_t k = 0; k < scratch->cand.size(); ++k) {
      uint32_t h = scratch->cheight[k];
      if (h + 1 < m) continue;
      uint64_t cw = wbits[scratch->cand[k]];
      uint32_t s = scratch->cstart[k];
      uint64_t old_word = m <= h ? arena_[s + m - 1] : 0;
      uint64_t below = m >= 2 ? (m - 1 <= h ? arena_[s + m - 2] : 0)
                              : ~uint64_t{0};
      uint64_t new_word = old_word | (below & cw);
      if (new_word != old_word) delta += Pop(new_word) - Pop(old_word);
    }
    size_t at_least = base + delta;
    scratch->pops[m - 1] = at_least;
    if (winner == 0) {
      size_t exact = at_least - above;
      size_t inc_m = m <= incumbent.size() ? incumbent[m - 1] : 0;
      size_t inc_m1 = m < incumbent.size() ? incumbent[m] : 0;
      size_t inc_exact = inc_m - inc_m1;
      if (exact < inc_exact) {
        winner = -1;  // already won; keep filling pops for the caller
      } else if (exact > inc_exact) {
        return 1;  // prune: lower levels can no longer matter
      }
    }
    above = at_least;
  }
  if (scratch->pops.back() == 0) scratch->pops.pop_back();
  return winner;
}

double GroupLevelSet::TtpFromPopcounts(
    const std::vector<size_t>& at_least_pops, int r) const {
  assert(r >= 0);
  if (num_epochs_ == 0) return 1.0;
  size_t above = static_cast<size_t>(r) < at_least_pops.size()
                     ? at_least_pops[static_cast<size_t>(r)]
                     : 0;
  return static_cast<double>(num_epochs_ - above) /
         static_cast<double>(num_epochs_);
}

size_t GroupLevelSet::MemoryBytes() const {
  return touched_.size() * sizeof(uint32_t) +
         col_start_.size() * sizeof(uint32_t) +
         arena_.size() * sizeof(uint64_t) + pops_.size() * sizeof(size_t);
}

size_t GroupLevelSet::DenseEquivalentBytes() const {
  size_t words = (num_epochs_ + 63) / 64;
  return pops_.size() * words * sizeof(uint64_t) +
         pops_.size() * sizeof(size_t);
}

}  // namespace thrifty
