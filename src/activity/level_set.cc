#include "activity/level_set.h"

#include <bit>
#include <cassert>
#include <cstring>
#include <limits>

#include "common/simd.h"

namespace thrifty {

namespace {
constexpr uint32_t kNoOldPos = std::numeric_limits<uint32_t>::max();

inline size_t Pop(uint64_t word) {
  return static_cast<size_t>(std::popcount(word));
}
}  // namespace

/// Candidate-evaluation plan over the height-sorted column intersection.
///
/// Columns matched between the candidate and the touched index are held in
/// *descending stored-height* order (stable over word index), so the
/// columns participating at level m — those with height >= m-1 — are
/// exactly the prefix [0, CntAt(m-1)), and within it the sub-prefix
/// [0, CntAt(m)) still has a stored word at level m while the tail
/// [CntAt(m), CntAt(m-1)) sits exactly one level above its column top
/// (old word zero). Level m's stored words across the prefix are gathered
/// once, on demand, into the contiguous `rows[m]`, which turns every level
/// body into a span kernel over parallel arrays (simd::OrAndPopcountDelta
/// and friends) instead of a ragged pointer chase. Reordering columns only
/// permutes commutative integer sums, so every popcount — and therefore
/// every solver fingerprint — is unchanged.
struct GroupLevelSet::EvalPlan {
  uint64_t* cw = nullptr;        // matched candidate words, height-desc
  uint32_t* cstart = nullptr;    // arena column starts, parallel to cw
  uint32_t* cnt = nullptr;       // cnt[m] = #matched columns with h >= m
  uint64_t** rows = nullptr;     // rows[m] = gathered level-m words
  uint32_t n = 0;                // matched column count (== cnt[0])
  uint32_t maxh = 0;             // tallest matched column
  size_t outside_pop = 0;        // candidate bits outside the touched index

  uint32_t CntAt(size_t m) const {
    return m <= maxh ? cnt[m] : 0;
  }

  /// Gathers level m's stored words (m in [1, maxh]) on first use.
  const uint64_t* Row(size_t m, const std::vector<uint64_t>& arena,
                      EvalArena* scratch_arena) {
    uint64_t*& row = rows[m];
    if (row == nullptr) {
      uint32_t count = cnt[m];
      row = scratch_arena->Alloc<uint64_t>(count);
      for (uint32_t k = 0; k < count; ++k) {
        row[k] = arena[cstart[k] + m - 1];
      }
    }
    return row;
  }
};

GroupLevelSet::GroupLevelSet(size_t num_epochs) : num_epochs_(num_epochs) {}

void GroupLevelSet::MergeTouched(const std::vector<uint32_t>& widx,
                                 std::vector<uint32_t>* cand_pos) {
  cand_pos->resize(widx.size());
  std::vector<uint32_t> merged;
  merged.reserve(touched_.size() + widx.size());
  // For each merged column, the touched position it came from (or new).
  std::vector<uint32_t> old_pos;
  old_pos.reserve(touched_.size() + widx.size());
  size_t i = 0, j = 0;
  bool grew = false;
  while (i < touched_.size() || j < widx.size()) {
    uint32_t tw = i < touched_.size() ? touched_[i]
                                      : std::numeric_limits<uint32_t>::max();
    uint32_t cw = j < widx.size() ? widx[j]
                                  : std::numeric_limits<uint32_t>::max();
    if (tw < cw) {
      old_pos.push_back(static_cast<uint32_t>(i));
      merged.push_back(tw);
      ++i;
    } else if (cw < tw) {
      (*cand_pos)[j] = static_cast<uint32_t>(merged.size());
      old_pos.push_back(kNoOldPos);
      merged.push_back(cw);
      ++j;
      grew = true;
    } else {
      (*cand_pos)[j] = static_cast<uint32_t>(merged.size());
      old_pos.push_back(static_cast<uint32_t>(i));
      merged.push_back(tw);
      ++i;
      ++j;
    }
  }
  if (!grew) return;
  // The merge is stable over the old columns, so the arena's word order is
  // unchanged — new columns have height zero and only the starts shift.
  std::vector<uint32_t> starts(merged.size() + 1);
  uint32_t offset = 0;
  for (size_t k = 0; k < merged.size(); ++k) {
    starts[k] = offset;
    if (old_pos[k] != kNoOldPos) {
      offset += col_start_[old_pos[k] + 1] - col_start_[old_pos[k]];
    }
  }
  starts.back() = offset;
  col_start_ = std::move(starts);
  touched_ = std::move(merged);
}

void GroupLevelSet::BuildPlan(const ActivityVector& v, EvalScratch* scratch,
                              EvalPlan* plan) const {
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  const size_t W = widx.size();
  const size_t L = pops_.size();

  // One capacity reservation covers every Alloc of this candidate's cycle
  // (temporaries, sorted arrays, and the worst-case lazily gathered rows —
  // bounded by the whole column arena), so spans handed out below are
  // never invalidated by growth.
  EvalArena& arena = scratch->arena;
  arena.Reset();
  arena.Reserve(4 * W + 2 * (L + 2) + arena_.size() + 16);

  // Pass 1: two-pointer merge of the candidate's nonzero words with the
  // touched index, in word order. Matches stage their (height, start,
  // word) triples; misses stage their words for one fused span popcount.
  uint32_t* tmp_h = arena.Alloc<uint32_t>(W);
  uint32_t* tmp_start = arena.Alloc<uint32_t>(W);
  uint64_t* tmp_cw = arena.Alloc<uint64_t>(W);
  uint64_t* outside = arena.Alloc<uint64_t>(W);
  uint32_t n = 0;
  uint32_t n_out = 0;
  uint32_t maxh = 0;
  size_t i = 0;
  for (size_t j = 0; j < W; ++j) {
    while (i < touched_.size() && touched_[i] < widx[j]) ++i;
    if (i < touched_.size() && touched_[i] == widx[j]) {
      uint32_t h = col_start_[i + 1] - col_start_[i];
      tmp_h[n] = h;
      tmp_start[n] = col_start_[i];
      tmp_cw[n] = wbits[j];
      if (h > maxh) maxh = h;
      ++n;
    } else {
      outside[n_out++] = wbits[j];
    }
  }
  plan->n = n;
  plan->maxh = maxh;
  plan->outside_pop = simd::SpanPopcount(outside, n_out);

  // Pass 2: counting sort by height, descending, stable over word order.
  // cnt[m] = #columns with height >= m doubles as both the sort offsets
  // and the per-level prefix lengths the eval loop needs.
  uint32_t* cnt = arena.Alloc<uint32_t>(maxh + 2);
  std::memset(cnt, 0, (maxh + 2) * sizeof(uint32_t));
  for (uint32_t k = 0; k < n; ++k) ++cnt[tmp_h[k]];
  // Suffix-sum the histogram: after this, cnt[m] counts h >= m.
  for (size_t m = maxh + 1; m-- > 0;) cnt[m] += cnt[m + 1];
  uint32_t* off = arena.Alloc<uint32_t>(maxh + 1);
  for (size_t m = 0; m <= maxh; ++m) off[m] = cnt[m + 1];
  uint64_t* cw = arena.Alloc<uint64_t>(n);
  uint32_t* cstart = arena.Alloc<uint32_t>(n);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t p = off[tmp_h[k]]++;
    cw[p] = tmp_cw[k];
    cstart[p] = tmp_start[k];
  }
  plan->cw = cw;
  plan->cstart = cstart;
  plan->cnt = cnt;
  plan->rows = arena.Alloc<uint64_t*>(maxh + 1);
  std::memset(plan->rows, 0, (maxh + 1) * sizeof(uint64_t*));
}

void GroupLevelSet::SpliceColumns(const std::vector<uint32_t>& cand_pos,
                                  const std::vector<uint64_t>& new_words,
                                  const std::vector<uint32_t>& new_first,
                                  const std::vector<uint32_t>& new_heights) {
  std::vector<uint64_t> arena;
  arena.reserve(arena_.size() + new_words.size());
  std::vector<uint32_t> starts(touched_.size() + 1);
  size_t j = 0;
  for (size_t p = 0; p < touched_.size(); ++p) {
    starts[p] = static_cast<uint32_t>(arena.size());
    if (j < cand_pos.size() && cand_pos[j] == p) {
      arena.insert(arena.end(), new_words.begin() + new_first[j],
                   new_words.begin() + new_first[j] + new_heights[j]);
      ++j;
    } else {
      arena.insert(arena.end(), arena_.begin() + col_start_[p],
                   arena_.begin() + col_start_[p + 1]);
    }
  }
  starts.back() = static_cast<uint32_t>(arena.size());
  arena_ = std::move(arena);
  col_start_ = std::move(starts);
}

void GroupLevelSet::Add(const ActivityVector& v) {
  assert(v.num_epochs() == num_epochs_);
  ++num_tenants_;
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = pops_.size();

  if (num_levels == 0) {
    // A tenant with no activity contributes no level. No level also means
    // every current member is inactive everywhere, so the candidate's words
    // *are* the touched index (heights all one: widx holds nonzero words).
    if (v.ActiveEpochs() > 0) {
      touched_ = widx;
      col_start_.resize(touched_.size() + 1);
      for (size_t k = 0; k <= touched_.size(); ++k) {
        col_start_[k] = static_cast<uint32_t>(k);
      }
      arena_ = wbits;
      pops_.assign(1, v.ActiveEpochs());
    }
    return;
  }

  std::vector<uint32_t> cand_pos;
  MergeTouched(widx, &cand_pos);

  // Recompute each candidate column from its old prefix. Within a column
  // levels are nested, so every updated word at m <= height stays nonzero
  // and only the height+1 entry (old top AND candidate) can be new — the
  // column grows by at most one word.
  std::vector<uint64_t> new_words;
  new_words.reserve(arena_.size() / 2 + widx.size());
  std::vector<uint32_t> new_first(widx.size());
  std::vector<uint32_t> new_heights(widx.size());
  std::vector<size_t> delta(num_levels + 1, 0);
  for (size_t j = 0; j < widx.size(); ++j) {
    uint32_t s = col_start_[cand_pos[j]];
    uint32_t h = col_start_[cand_pos[j] + 1] - s;
    uint64_t cw = wbits[j];
    new_first[j] = static_cast<uint32_t>(new_words.size());
    new_words.resize(new_first[j] + h);
    const uint64_t* col = arena_.data() + s;
    uint64_t* out = new_words.data() + new_first[j];
    if (h >= 1) {
      // L_0 is conceptually all-ones, so at m == 1 the join term is C.
      uint64_t lifted = cw & ~col[0];
      out[0] = col[0] | lifted;
      delta[0] += Pop(lifted);
      // Levels 2..h have below = col[m - 2], a contiguous column span.
      simd::OrAndBcastStoreDelta(col + 1, col, cw, out + 1, delta.data() + 1,
                                 h - 1);
    }
    // The possibly-new top word: old-top AND candidate (for a height-zero
    // column the candidate lifts level 1 directly).
    uint64_t top = h >= 1 ? col[h - 1] & cw : cw;
    if (top != 0) {
      delta[h] += Pop(top);
      new_words.push_back(top);
      new_heights[j] = h + 1;
    } else {
      new_heights[j] = h;
    }
  }
  SpliceColumns(cand_pos, new_words, new_first, new_heights);

  for (size_t m = 1; m <= num_levels; ++m) pops_[m - 1] += delta[m - 1];
  if (delta[num_levels] > 0) pops_.push_back(delta[num_levels]);
}

Status GroupLevelSet::Remove(const ActivityVector& v) {
  assert(v.num_epochs() == num_epochs_);
  if (num_tenants_ == 0) {
    return Status::FailedPrecondition("group is empty");
  }
  --num_tenants_;
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = pops_.size();
  // Only previously-added vectors may be removed, so every candidate word
  // is in the touched index already.
  std::vector<uint32_t> cand_pos(widx.size());
  {
    size_t i = 0;
    for (size_t j = 0; j < widx.size(); ++j) {
      while (i < touched_.size() && touched_[i] < widx[j]) ++i;
      assert(i < touched_.size() && touched_[i] == widx[j]);
      cand_pos[j] = static_cast<uint32_t>(i);
    }
  }
  // An epoch leaves level m iff its old count was exactly m (in L_m but
  // not L_{m+1}) and the tenant was active there; each new word reads only
  // *old* column words, then trailing zero words are trimmed so columns
  // stay nonzero prefixes.
  std::vector<uint64_t> new_words;
  new_words.reserve(arena_.size() / 2);
  std::vector<uint32_t> new_first(widx.size());
  std::vector<uint32_t> new_heights(widx.size());
  std::vector<size_t> delta(num_levels, 0);
  for (size_t j = 0; j < widx.size(); ++j) {
    uint32_t s = col_start_[cand_pos[j]];
    uint32_t h = col_start_[cand_pos[j] + 1] - s;
    uint64_t cw = wbits[j];
    new_first[j] = static_cast<uint32_t>(new_words.size());
    new_words.resize(new_first[j] + h);
    const uint64_t* col = arena_.data() + s;
    uint64_t* out = new_words.data() + new_first[j];
    if (h >= 1) {
      // Levels 1..h-1 have above = col[m], a contiguous column span; the
      // top level's above is zero.
      simd::AndNotBcastStoreDelta(col, col + 1, cw, out, delta.data(), h - 1);
      uint64_t dropped = col[h - 1] & cw;
      out[h - 1] = col[h - 1] & ~dropped;
      delta[h - 1] += Pop(dropped);
    }
    // Levels stay nested, so the new column is still a nonzero prefix.
    uint32_t nh = h;
    while (nh > 0 && out[nh - 1] == 0) --nh;
    new_words.resize(new_first[j] + nh);  // trim the zero tail
    new_heights[j] = nh;
  }
  SpliceColumns(cand_pos, new_words, new_first, new_heights);

  for (size_t m = 1; m <= num_levels; ++m) pops_[m - 1] -= delta[m - 1];
  while (!pops_.empty() && pops_.back() == 0) pops_.pop_back();
  // The touched index stays as an upper bound while levels exist; once the
  // group drains to zero activity the next Add rebuilds it from scratch.
  if (pops_.empty()) {
    touched_.clear();
    col_start_.clear();
    arena_.clear();
  }
  return Status::OK();
}

size_t GroupLevelSet::CountAtLeast(int m) const {
  assert(m >= 1);
  if (static_cast<size_t>(m) > pops_.size()) return 0;
  return pops_[static_cast<size_t>(m) - 1];
}

size_t GroupLevelSet::CountAtMost(int m) const {
  assert(m >= 0);
  if (static_cast<size_t>(m) >= pops_.size()) return num_epochs_;
  return num_epochs_ - pops_[static_cast<size_t>(m)];
}

double GroupLevelSet::Ttp(int r) const {
  if (num_epochs_ == 0) return 1.0;
  return static_cast<double>(CountAtMost(r)) /
         static_cast<double>(num_epochs_);
}

std::vector<double> GroupLevelSet::ExactLevelFractions() const {
  std::vector<double> fractions(pops_.size());
  for (size_t m = 1; m <= pops_.size(); ++m) {
    size_t at_least_m = pops_[m - 1];
    size_t at_least_m1 = m < pops_.size() ? pops_[m] : 0;
    fractions[m - 1] = static_cast<double>(at_least_m - at_least_m1) /
                       static_cast<double>(num_epochs_);
  }
  return fractions;
}

std::vector<size_t> GroupLevelSet::EvaluateAdd(const ActivityVector& v) const {
  EvalScratch scratch;
  EvaluateAddInto(v, &scratch);
  return std::move(scratch.pops);
}

int GroupLevelSet::EvalCore(const ActivityVector& v,
                            const std::vector<size_t>* incumbent,
                            EvalScratch* scratch) const {
  EvalPlan plan;
  BuildPlan(v, scratch, &plan);
  const size_t num_levels = pops_.size();
  scratch->pops.assign(num_levels + 1, 0);
  // Levels are independent of each other, so they can be computed top-down,
  // in exactly the order the Fig 5.3 comparison consumes them: the exact
  // count at level m is at_least(m) - at_least(m+1). The first strictly
  // differing level decides, which is what makes abandoning a losing
  // candidate early (`return 1` below) outcome-identical to the full
  // EvaluateAdd + CompareCandidateLevels. Each level's body runs as span
  // kernels over the height-sorted prefix: columns with a stored word at
  // level m contribute pop(L_m | (L_{m-1} & C)) − pop(L_m), columns whose
  // top is exactly level m-1 contribute pop(L_{m-1} & C), and shorter
  // columns contribute nothing. Working top-down also means each gathered
  // row is built at most once (level m reuses level m+1's `below` row).
  size_t above = 0;  // at_least(m + 1), from the previous iteration
  int winner = 0;
  for (size_t m = num_levels + 1; m >= 1; --m) {
    size_t base = m <= num_levels ? pops_[m - 1] : 0;
    size_t delta;
    if (m == 1) {
      // L_0 is all-ones, so the joining term is C itself. Words outside
      // the touched index have zero count, so the candidate lifts them
      // straight into level 1 and nowhere else.
      const uint32_t n1 = plan.CntAt(1);
      delta = plan.outside_pop;
      if (n1 > 0) {
        delta += simd::OrPopcountDelta(plan.Row(1, arena_, &scratch->arena),
                                       plan.cw, n1);
      }
      delta += simd::SpanPopcount(plan.cw + n1, plan.n - n1);
    } else {
      const uint32_t nm = plan.CntAt(m);
      const uint32_t nm1 = plan.CntAt(m - 1);
      delta = 0;
      if (nm1 > 0) {
        const uint64_t* below = plan.Row(m - 1, arena_, &scratch->arena);
        if (nm > 0) {
          delta += simd::OrAndPopcountDelta(
              plan.Row(m, arena_, &scratch->arena), below, plan.cw, nm);
        }
        delta += simd::AndPopcount(below + nm, plan.cw + nm, nm1 - nm);
      }
    }
    size_t at_least = base + delta;
    scratch->pops[m - 1] = at_least;
    if (incumbent != nullptr && winner == 0) {
      size_t exact = at_least - above;
      size_t inc_m = m <= incumbent->size() ? (*incumbent)[m - 1] : 0;
      size_t inc_m1 = m < incumbent->size() ? (*incumbent)[m] : 0;
      size_t inc_exact = inc_m - inc_m1;
      if (exact < inc_exact) {
        winner = -1;  // already won; keep filling pops for the caller
      } else if (exact > inc_exact) {
        return 1;  // prune: lower levels can no longer matter
      }
    }
    above = at_least;
  }
  // Drop an empty would-be top level so MaxActive stays meaningful.
  if (scratch->pops.back() == 0) scratch->pops.pop_back();
  return winner;
}

void GroupLevelSet::EvaluateAddInto(const ActivityVector& v,
                                    EvalScratch* scratch) const {
  assert(v.num_epochs() == num_epochs_);
  EvalCore(v, nullptr, scratch);
}

int GroupLevelSet::EvaluateAddCompare(const ActivityVector& v,
                                      const std::vector<size_t>& incumbent,
                                      EvalScratch* scratch) const {
  assert(v.num_epochs() == num_epochs_);
  assert(!incumbent.empty());
  assert(incumbent.size() <= pops_.size() + 1);
  return EvalCore(v, &incumbent, scratch);
}

double GroupLevelSet::TtpFromPopcounts(
    const std::vector<size_t>& at_least_pops, int r) const {
  assert(r >= 0);
  if (num_epochs_ == 0) return 1.0;
  size_t above = static_cast<size_t>(r) < at_least_pops.size()
                     ? at_least_pops[static_cast<size_t>(r)]
                     : 0;
  return static_cast<double>(num_epochs_ - above) /
         static_cast<double>(num_epochs_);
}

size_t GroupLevelSet::MemoryBytes() const {
  return touched_.size() * sizeof(uint32_t) +
         col_start_.size() * sizeof(uint32_t) +
         arena_.size() * sizeof(uint64_t) + pops_.size() * sizeof(size_t);
}

size_t GroupLevelSet::DenseEquivalentBytes() const {
  size_t words = (num_epochs_ + 63) / 64;
  return pops_.size() * words * sizeof(uint64_t) +
         pops_.size() * sizeof(size_t);
}

}  // namespace thrifty
