#include "activity/level_set.h"

#include <bit>
#include <cassert>

namespace thrifty {

GroupLevelSet::GroupLevelSet(size_t num_epochs) : num_epochs_(num_epochs) {}

void GroupLevelSet::Add(const ActivityVector& v) {
  assert(v.num_epochs() == num_epochs_);
  ++num_tenants_;
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = levels_.size();

  if (num_levels == 0) {
    // A tenant with no activity contributes no level.
    if (v.ActiveEpochs() > 0) {
      levels_.push_back(v.ToBitmap());
      pops_.push_back(v.ActiveEpochs());
    }
    return;
  }

  // Possibly-new top level: epochs whose count was already num_levels and
  // where the candidate is active too. Computed first, from the old top.
  DynamicBitmap new_top(num_epochs_);
  size_t new_top_pop = 0;
  for (size_t i = 0; i < widx.size(); ++i) {
    uint64_t word = levels_[num_levels - 1].word(widx[i]) & wbits[i];
    if (word != 0) {
      new_top.mutable_word(widx[i]) = word;
      new_top_pop += static_cast<size_t>(std::popcount(word));
    }
  }

  // Update L_m descending so each step reads the *old* L_{m-1}.
  for (size_t m = num_levels; m >= 2; --m) {
    DynamicBitmap& lm = levels_[m - 1];
    const DynamicBitmap& lm1 = levels_[m - 2];
    size_t delta = 0;
    for (size_t i = 0; i < widx.size(); ++i) {
      uint64_t old_word = lm.word(widx[i]);
      uint64_t new_word = old_word | (lm1.word(widx[i]) & wbits[i]);
      if (new_word != old_word) {
        delta += static_cast<size_t>(std::popcount(new_word)) -
                 static_cast<size_t>(std::popcount(old_word));
        lm.mutable_word(widx[i]) = new_word;
      }
    }
    pops_[m - 1] += delta;
  }
  // L_1 |= C (L_0 is conceptually all-ones).
  {
    DynamicBitmap& l1 = levels_[0];
    size_t delta = 0;
    for (size_t i = 0; i < widx.size(); ++i) {
      uint64_t old_word = l1.word(widx[i]);
      uint64_t new_word = old_word | wbits[i];
      if (new_word != old_word) {
        delta += static_cast<size_t>(std::popcount(new_word)) -
                 static_cast<size_t>(std::popcount(old_word));
        l1.mutable_word(widx[i]) = new_word;
      }
    }
    pops_[0] += delta;
  }
  if (new_top_pop > 0) {
    levels_.push_back(std::move(new_top));
    pops_.push_back(new_top_pop);
  }
}

Status GroupLevelSet::Remove(const ActivityVector& v) {
  assert(v.num_epochs() == num_epochs_);
  if (num_tenants_ == 0) {
    return Status::FailedPrecondition("group is empty");
  }
  --num_tenants_;
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = levels_.size();
  // Ascending so each step reads the *old* L_{m+1}: an epoch leaves level m
  // iff its old count was exactly m (in L_m but not L_{m+1}) and the tenant
  // was active there.
  for (size_t m = 1; m <= num_levels; ++m) {
    DynamicBitmap& lm = levels_[m - 1];
    size_t delta = 0;
    for (size_t i = 0; i < widx.size(); ++i) {
      uint64_t above = m < num_levels ? levels_[m].word(widx[i]) : 0;
      uint64_t old_word = lm.word(widx[i]);
      uint64_t new_word = old_word & (~wbits[i] | above);
      if (new_word != old_word) {
        delta += static_cast<size_t>(std::popcount(old_word)) -
                 static_cast<size_t>(std::popcount(new_word));
        lm.mutable_word(widx[i]) = new_word;
      }
    }
    pops_[m - 1] -= delta;
  }
  while (!levels_.empty() && pops_.back() == 0) {
    levels_.pop_back();
    pops_.pop_back();
  }
  return Status::OK();
}

size_t GroupLevelSet::CountAtLeast(int m) const {
  assert(m >= 1);
  if (static_cast<size_t>(m) > levels_.size()) return 0;
  return pops_[static_cast<size_t>(m) - 1];
}

size_t GroupLevelSet::CountAtMost(int m) const {
  assert(m >= 0);
  if (static_cast<size_t>(m) >= levels_.size()) return num_epochs_;
  return num_epochs_ - pops_[static_cast<size_t>(m)];
}

double GroupLevelSet::Ttp(int r) const {
  if (num_epochs_ == 0) return 1.0;
  return static_cast<double>(CountAtMost(r)) /
         static_cast<double>(num_epochs_);
}

std::vector<double> GroupLevelSet::ExactLevelFractions() const {
  std::vector<double> fractions(levels_.size());
  for (size_t m = 1; m <= levels_.size(); ++m) {
    size_t at_least_m = pops_[m - 1];
    size_t at_least_m1 = m < levels_.size() ? pops_[m] : 0;
    fractions[m - 1] = static_cast<double>(at_least_m - at_least_m1) /
                       static_cast<double>(num_epochs_);
  }
  return fractions;
}

std::vector<size_t> GroupLevelSet::EvaluateAdd(const ActivityVector& v) const {
  assert(v.num_epochs() == num_epochs_);
  const auto& widx = v.word_indices();
  const auto& wbits = v.word_bits();
  size_t num_levels = levels_.size();
  std::vector<size_t> new_pops(num_levels + 1);
  for (size_t m = 1; m <= num_levels + 1; ++m) {
    size_t base = m <= num_levels ? pops_[m - 1] : 0;
    size_t delta = 0;
    for (size_t i = 0; i < widx.size(); ++i) {
      uint64_t old_word = m <= num_levels ? levels_[m - 1].word(widx[i]) : 0;
      // L_0 is all-ones, so at m == 1 the joining term is C itself.
      uint64_t below = m >= 2 ? levels_[m - 2].word(widx[i]) : ~uint64_t{0};
      uint64_t new_word = old_word | (below & wbits[i]);
      if (new_word != old_word) {
        delta += static_cast<size_t>(std::popcount(new_word)) -
                 static_cast<size_t>(std::popcount(old_word));
      }
    }
    new_pops[m - 1] = base + delta;
  }
  // Drop an empty would-be top level so MaxActive stays meaningful.
  if (new_pops.back() == 0) new_pops.pop_back();
  return new_pops;
}

double GroupLevelSet::TtpFromPopcounts(
    const std::vector<size_t>& at_least_pops, int r) const {
  assert(r >= 0);
  if (num_epochs_ == 0) return 1.0;
  size_t above = static_cast<size_t>(r) < at_least_pops.size()
                     ? at_least_pops[static_cast<size_t>(r)]
                     : 0;
  return static_cast<double>(num_epochs_ - above) /
         static_cast<double>(num_epochs_);
}

}  // namespace thrifty
