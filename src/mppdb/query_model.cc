#include "mppdb/query_model.h"

#include <cassert>
#include <cmath>

namespace thrifty {

SimDuration QueryTemplate::DedicatedLatency(double data_gb, int nodes) const {
  assert(nodes >= 1);
  assert(data_gb >= 0);
  double single_node_seconds = work_seconds_per_gb * data_gb;
  double seconds = single_node_seconds *
                   (serial_fraction + (1.0 - serial_fraction) / nodes);
  SimDuration d = SecondsToDuration(seconds);
  // Every query costs at least one tick so that completions are strictly
  // after submissions.
  return d > 0 ? d : 1;
}

SimDuration QueryTemplate::SharedJoinDelta(double data_gb, int nodes) const {
  double fraction = serial_fraction + shared_overhead_fraction;
  if (fraction > 1.0) fraction = 1.0;
  SimDuration dedicated = DedicatedLatency(data_gb, nodes);
  SimDuration delta = static_cast<SimDuration>(
      std::ceil(static_cast<double>(dedicated) * fraction));
  return delta > 0 ? delta : 1;
}

double QueryTemplate::Speedup(int nodes) const {
  assert(nodes >= 1);
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / nodes);
}

bool IsLinearScaleOut(const QueryTemplate& t, int nodes, double tolerance) {
  return t.Speedup(nodes) >= (1.0 - tolerance) * nodes;
}

}  // namespace thrifty
