#include "mppdb/query_model.h"

#include <cassert>

namespace thrifty {

SimDuration QueryTemplate::DedicatedLatency(double data_gb, int nodes) const {
  assert(nodes >= 1);
  assert(data_gb >= 0);
  double single_node_seconds = work_seconds_per_gb * data_gb;
  double seconds = single_node_seconds *
                   (serial_fraction + (1.0 - serial_fraction) / nodes);
  SimDuration d = SecondsToDuration(seconds);
  // Every query costs at least one tick so that completions are strictly
  // after submissions.
  return d > 0 ? d : 1;
}

double QueryTemplate::Speedup(int nodes) const {
  assert(nodes >= 1);
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / nodes);
}

bool IsLinearScaleOut(const QueryTemplate& t, int nodes, double tolerance) {
  return t.Speedup(nodes) >= (1.0 - tolerance) * nodes;
}

}  // namespace thrifty
