// Analytical query cost model.
//
// Thrifty never inspects SQL; what matters to consolidation is a query's
// latency as a function of (tenant data size, instance node count) and how
// latency degrades under concurrency. This model captures both:
//
//  * Scale-out: a query carries `work_seconds_per_gb` (single-node seconds of
//    work per GB of tenant data) and an Amdahl `serial_fraction` s. Its
//    latency on a dedicated n-node instance over D GB is
//        T(n) = work_seconds_per_gb * D * (s + (1 - s) / n).
//    s ~ 0 gives linear scale-out (TPC-H Q1 in Fig 1.1a); s >> 0 gives the
//    non-linear behaviour of TPC-H Q19 (Fig 1.1c).
//
//  * Concurrency: instances serve queries by egalitarian processor sharing
//    (mppdb/instance.h) — with k concurrent queries each progresses at 1/k
//    of its dedicated rate, reproducing the 2x / 4x slowdowns of Fig 1.1a
//    (lines 2T-CON / 4T-CON) for I/O-bound analytics.

#ifndef THRIFTY_MPPDB_QUERY_MODEL_H_
#define THRIFTY_MPPDB_QUERY_MODEL_H_

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace thrifty {

/// \brief Identifier of a query template in the catalog.
using TemplateId = int32_t;

/// \brief Cost profile of one query template (e.g. "TPCH-Q1").
struct QueryTemplate {
  TemplateId id = -1;
  std::string name;

  /// Single-node execution seconds per GB of tenant data.
  double work_seconds_per_gb = 1.0;

  /// Amdahl serial fraction in [0, 1): the portion of the work that does not
  /// speed up with more nodes.
  double serial_fraction = 0.0;

  /// Extra cost a same-template query adds when it joins an in-flight
  /// shared scan (SharedDB-style batching, mppdb/instance.h kSharedScan),
  /// as a fraction of its own dedicated latency *on top of* the serial
  /// fraction: the scan itself (the parallel portion) is paid once per
  /// batch, but per-query predicates, aggregation, and result construction
  /// (the serial portion) plus a small merge overhead are paid per joiner.
  double shared_overhead_fraction = 0.02;

  /// \brief Dedicated latency over `data_gb` of data on `nodes` nodes.
  SimDuration DedicatedLatency(double data_gb, int nodes) const;

  /// \brief Work a joiner adds to an in-flight shared batch of this
  /// template: (serial_fraction + shared_overhead_fraction) of the
  /// joiner's own dedicated latency, ceil'd to whole ticks, >= 1 so batch
  /// finish tags are strictly increasing. Templates that scale out
  /// linearly (Q1-like, tiny serial fraction) share almost the whole scan;
  /// serial-heavy templates (Q19-like) share far less.
  SimDuration SharedJoinDelta(double data_gb, int nodes) const;

  /// \brief Speedup of `nodes` nodes relative to a single node.
  double Speedup(int nodes) const;
};

/// \brief True if the template's speedup is within `tolerance` of ideal
/// linear speedup at `nodes` nodes (used to classify Q1-like vs Q19-like
/// templates).
bool IsLinearScaleOut(const QueryTemplate& t, int nodes,
                      double tolerance = 0.2);

}  // namespace thrifty

#endif  // THRIFTY_MPPDB_QUERY_MODEL_H_
