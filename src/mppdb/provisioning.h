// Provisioning-time model: node start + MPPDB initialization + bulk loading.
//
// Calibrated to Table 5.1 of the paper, which measured a commercial MPPDB on
// EC2: starting and initializing grows linearly with node count (~165 s/node)
// and bulk loading grows linearly with data volume (~50 s/GB, i.e. the paper's
// 1.2 GB/min rate). These two curves drive the economics of elastic scaling
// (§5.1): loading dominates, which is why Thrifty scales by loading only the
// over-active tenants' data instead of the whole group's.

#ifndef THRIFTY_MPPDB_PROVISIONING_H_
#define THRIFTY_MPPDB_PROVISIONING_H_

#include "common/sim_time.h"

namespace thrifty {

/// \brief Linear provisioning-time model, calibrated to Table 5.1.
struct ProvisioningModel {
  /// Fixed MPPDB-initialization overhead (seconds).
  double startup_base_seconds = 135.0;
  /// Per-node start cost (seconds).
  double startup_per_node_seconds = 170.0;
  /// Fixed bulk-load overhead (seconds).
  double load_base_seconds = 48.8;
  /// Per-GB load cost (seconds); 50.55 s/GB ~= the paper's 1.2 GB/min.
  double load_per_gb_seconds = 50.55;

  /// \brief Time to start `nodes` nodes and initialize the MPPDB on them.
  SimDuration NodeStartTime(int nodes) const;

  /// \brief Time to bulk load `data_gb` GB of tenant data.
  SimDuration BulkLoadTime(double data_gb) const;

  /// \brief Full preparation time: start + initialize + load.
  SimDuration TotalPrepTime(int nodes, double data_gb) const;
};

}  // namespace thrifty

#endif  // THRIFTY_MPPDB_PROVISIONING_H_
