// Physical cluster: the shared node pool MPPDB instances are carved from.
//
// The Deployment Master (core/deployment_master.h) uses this to start the
// MPPDBs of a deployment plan, hibernate unused nodes, provision new MPPDBs
// for elastic scaling, and replace failed nodes.

#ifndef THRIFTY_MPPDB_CLUSTER_H_
#define THRIFTY_MPPDB_CLUSTER_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mppdb/instance.h"
#include "mppdb/provisioning.h"
#include "sim/engine.h"

namespace thrifty {

/// \brief Tenant data to be bulk loaded onto a new instance.
struct TenantDataSpec {
  TenantId tenant_id = kInvalidTenantId;
  double data_gb = 0;
};

/// \brief Pool of identical machine nodes plus the MPPDB instances running
/// on them.
///
/// Thrifty assumes all nodes are identical in configuration (Chapter 3);
/// the pool is therefore just a counted resource. Nodes not allocated to any
/// instance are hibernated (switched off).
class Cluster {
 public:
  /// \param total_nodes size of the shared hardware pool.
  Cluster(int total_nodes, SimEngine* engine,
          ProvisioningModel provisioning = ProvisioningModel());

  int total_nodes() const { return total_nodes_; }
  int nodes_in_use() const { return nodes_in_use_; }
  int nodes_hibernated() const { return total_nodes_ - nodes_in_use_; }

  const ProvisioningModel& provisioning() const { return provisioning_; }

  /// \brief Completion callback installed on every instance this cluster
  /// creates from now on (the service's metrics/activity plumbing).
  void set_default_completion_callback(MppdbInstance::CompletionCallback cb) {
    default_completion_ = std::move(cb);
  }

  /// \brief Processor-sharing executor mode for instances created from now
  /// on (both modes emit byte-identical completion streams; the dense mode
  /// exists for audits and equivalence tests).
  void set_executor_mode(PsExecutorMode mode) { executor_mode_ = mode; }
  PsExecutorMode executor_mode() const { return executor_mode_; }

  /// \brief Allocates `nodes` nodes and creates an already-online instance.
  ///
  /// Used for the initial deployment, which completes before the service
  /// opens (the deployment "is supposed to be static for days", Chapter 3).
  Result<MppdbInstance*> CreateInstanceOnline(int nodes);

  /// \brief Allocates nodes and provisions an instance asynchronously:
  /// node start + MPPDB init, then bulk loading of `tenant_data`, then
  /// online. `on_ready` fires when the instance becomes online.
  ///
  /// This is the elastic-scaling path; per Table 5.1 it takes hours of
  /// simulated time.
  Result<MppdbInstance*> CreateInstanceAsync(
      int nodes, std::vector<TenantDataSpec> tenant_data,
      std::function<void(MppdbInstance*)> on_ready);

  /// \brief Stops an instance and returns its nodes to the hibernated pool.
  ///
  /// Fails if the instance is currently executing queries.
  Status DecommissionInstance(InstanceId id);

  /// \brief Looks up a live instance; fails after decommissioning.
  Result<MppdbInstance*> GetInstance(InstanceId id);

  /// \brief All live instances (stopped ones excluded).
  std::vector<MppdbInstance*> LiveInstances();

  /// \brief Fails one node of the given instance. The instance keeps serving
  /// at reduced rate; if `auto_replace`, a replacement node is started
  /// (taking ProvisioningModel::NodeStartTime(1)) and repairs the instance
  /// when it comes up — the §4.4 failure-handling flow.
  Status InjectNodeFailure(InstanceId id, bool auto_replace = true);

  /// \brief Number of node failures injected so far.
  int failures_injected() const { return failures_injected_; }

 private:
  int total_nodes_;
  int nodes_in_use_ = 0;
  SimEngine* engine_;
  ProvisioningModel provisioning_;
  std::vector<std::unique_ptr<MppdbInstance>> instances_;
  MppdbInstance::CompletionCallback default_completion_;
  PsExecutorMode executor_mode_ = PsExecutorMode::kVirtualTime;
  InstanceId next_instance_id_ = 0;
  int failures_injected_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_MPPDB_CLUSTER_H_
