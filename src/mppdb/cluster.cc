#include "mppdb/cluster.h"

#include <cassert>
#include <string>

namespace thrifty {

Cluster::Cluster(int total_nodes, SimEngine* engine,
                 ProvisioningModel provisioning)
    : total_nodes_(total_nodes),
      engine_(engine),
      provisioning_(provisioning) {
  assert(total_nodes >= 0);
  assert(engine != nullptr);
}

Result<MppdbInstance*> Cluster::CreateInstanceOnline(int nodes) {
  if (nodes < 1) return Status::InvalidArgument("instance needs >= 1 node");
  if (nodes_in_use_ + nodes > total_nodes_) {
    return Status::CapacityExceeded(
        "pool has " + std::to_string(total_nodes_ - nodes_in_use_) +
        " free nodes, need " + std::to_string(nodes));
  }
  nodes_in_use_ += nodes;
  instances_.push_back(std::make_unique<MppdbInstance>(
      next_instance_id_++, nodes, engine_, InstanceState::kOnline,
      executor_mode_));
  if (default_completion_) {
    instances_.back()->set_completion_callback(default_completion_);
  }
  return instances_.back().get();
}

Result<MppdbInstance*> Cluster::CreateInstanceAsync(
    int nodes, std::vector<TenantDataSpec> tenant_data,
    std::function<void(MppdbInstance*)> on_ready) {
  if (nodes < 1) return Status::InvalidArgument("instance needs >= 1 node");
  if (nodes_in_use_ + nodes > total_nodes_) {
    return Status::CapacityExceeded(
        "pool has " + std::to_string(total_nodes_ - nodes_in_use_) +
        " free nodes, need " + std::to_string(nodes));
  }
  nodes_in_use_ += nodes;
  instances_.push_back(std::make_unique<MppdbInstance>(
      next_instance_id_++, nodes, engine_, InstanceState::kProvisioning,
      executor_mode_));
  MppdbInstance* instance = instances_.back().get();
  if (default_completion_) {
    instance->set_completion_callback(default_completion_);
  }

  double total_gb = 0;
  for (const auto& spec : tenant_data) total_gb += spec.data_gb;

  SimDuration start = provisioning_.NodeStartTime(nodes);
  SimDuration load = provisioning_.BulkLoadTime(total_gb);
  engine_->ScheduleAfter(start, [instance](SimTime) {
    instance->SetState(InstanceState::kLoading);
  });
  engine_->ScheduleAfter(
      start + load, [instance, tenant_data = std::move(tenant_data),
                     on_ready = std::move(on_ready)](SimTime) {
        for (const auto& spec : tenant_data) {
          instance->AddTenant(spec.tenant_id, spec.data_gb);
        }
        instance->SetState(InstanceState::kOnline);
        if (on_ready) on_ready(instance);
      });
  return instance;
}

Status Cluster::DecommissionInstance(InstanceId id) {
  auto result = GetInstance(id);
  THRIFTY_RETURN_NOT_OK(result.status());
  MppdbInstance* instance = *result;
  if (!instance->IsFree()) {
    return Status::FailedPrecondition(
        "instance still has running queries");
  }
  instance->SetState(InstanceState::kStopped);
  nodes_in_use_ -= instance->nodes();
  return Status::OK();
}

Result<MppdbInstance*> Cluster::GetInstance(InstanceId id) {
  if (id < 0 || static_cast<size_t>(id) >= instances_.size()) {
    return Status::NotFound("no instance with id " + std::to_string(id));
  }
  MppdbInstance* instance = instances_[static_cast<size_t>(id)].get();
  if (instance->state() == InstanceState::kStopped) {
    return Status::NotFound("instance " + std::to_string(id) +
                            " is decommissioned");
  }
  return instance;
}

std::vector<MppdbInstance*> Cluster::LiveInstances() {
  std::vector<MppdbInstance*> out;
  for (const auto& instance : instances_) {
    if (instance->state() != InstanceState::kStopped) {
      out.push_back(instance.get());
    }
  }
  return out;
}

Status Cluster::InjectNodeFailure(InstanceId id, bool auto_replace) {
  auto result = GetInstance(id);
  THRIFTY_RETURN_NOT_OK(result.status());
  MppdbInstance* instance = *result;
  THRIFTY_RETURN_NOT_OK(instance->InjectNodeFailure());
  ++failures_injected_;
  if (auto_replace) {
    // Replacement nodes come from the hibernated pool if available;
    // otherwise the failed node is rebooted. Either way one node-start time
    // elapses before capacity is restored.
    engine_->ScheduleAfter(provisioning_.NodeStartTime(1),
                           [instance](SimTime) {
                             if (instance->state() != InstanceState::kStopped &&
                                 instance->failed_nodes() > 0) {
                               (void)instance->RepairNode();
                             }
                           });
  }
  return Status::OK();
}

}  // namespace thrifty
