// Simulated MPPDB instance: an egalitarian processor-sharing executor.
//
// A group of machine nodes runs one MPPDB instance (the paper's cluster
// design, §4.1). The instance hosts the data of many tenants (shared-process
// multi-tenancy) and executes their analytical queries. Because analytical
// workloads are I/O-bound, k concurrent queries each progress at 1/k of their
// dedicated rate — the behaviour measured in Fig 1.1a (2T-CON runs 2x slower,
// 4T-CON 4x slower, while xT-SEQ matches single-tenant latency).
//
// The executor is formulated in *virtual time*: a per-instance virtual clock
// V accumulates normalized service (milliseconds at dedicated rate), advancing
// at SpeedFactor()/k per wall millisecond — an O(1) update regardless of k.
// Each admitted query gets an immutable finish tag V_admit + dedicated_work;
// its remaining work at any instant is the single subtraction tag - V, and it
// completes when that drops to (an epsilon of) zero. Two interchangeable
// structures realize this:
//
//   kVirtualTime (production): a binary min-heap keyed (tag, admission_seq),
//     so Submit and completion handling are O(log k) and the next completion
//     falls out of the heap top in O(1).
//   kDenseReference (audit): the historical O(k) linear sweep over a flat
//     vector, kept as the reference the virtual-time path is audited against.
//   kSharedScan (shared-execution batching): the virtual-time heap plus
//     SharedDB-style scan sharing — co-resident queries of the same catalog
//     template form a *shared batch* that occupies ONE processor-sharing
//     slot. The batch leader pays its full dedicated work; each joiner pays
//     only QueryTemplate::SharedJoinDelta (per-query serial work + merge
//     overhead), appended as a catch-up tag past the batch's current last
//     tag. Tags are immutable once assigned (heap invariants untouched);
//     the share denominator is the number of open batches, not resident
//     queries, so k same-template queries cost one slot. With all-distinct
//     templates every batch has exactly one member, the slot count equals
//     the query count, and the arithmetic degenerates tag-for-tag to
//     kVirtualTime — the shared-off byte-identity gate in
//     bench/bench_shared_scan rests on that.
//
// Both paths run the *identical* floating-point arithmetic (same V updates,
// same tag construction, same tag - V subtraction, same ceil quantization of
// the next-event wall time). Since IEEE subtraction is monotone in the tag,
// min-by-tag equals min-by-remaining and the completion set is downward
// closed in tag order — so the two paths provably emit byte-identical
// (finish_time, query_id) completion streams; bench/fig1_1_multitenant_perf
// gates on exactly that before trusting the heap path.

#ifndef THRIFTY_MPPDB_INSTANCE_H_
#define THRIFTY_MPPDB_INSTANCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mppdb/query_model.h"
#include "sim/engine.h"

namespace thrifty {

using InstanceId = int32_t;
using TenantId = int32_t;
using QueryId = int64_t;

inline constexpr InstanceId kInvalidInstanceId = -1;
inline constexpr TenantId kInvalidTenantId = -1;

/// \brief Lifecycle state of an MPPDB instance.
enum class InstanceState {
  /// Nodes are starting and the MPPDB software is initializing.
  kProvisioning,
  /// Tenant data is being bulk loaded.
  kLoading,
  /// Serving queries.
  kOnline,
  /// Decommissioned (nodes hibernated/returned).
  kStopped,
};

const char* InstanceStateToString(InstanceState state);

/// \brief Which running-query structure the processor-sharing executor uses.
///
/// Both modes produce byte-identical completion streams (see the header
/// comment); kDenseReference exists so benches and property tests can audit
/// the O(log k) production path against the O(k) sweep it replaced.
enum class PsExecutorMode {
  /// Finish-tag min-heap: O(log k) per admission/completion (production).
  kVirtualTime,
  /// Flat vector with an O(k) sweep per event (audit reference).
  kDenseReference,
  /// Finish-tag min-heap with SharedDB-style same-template batching: one
  /// shared scan (one PS slot) serves every co-resident query of a
  /// template; joiners pay only a catch-up delta. Degenerates to
  /// kVirtualTime byte-for-byte when no templates repeat.
  kSharedScan,
};

const char* PsExecutorModeToString(PsExecutorMode mode);

/// \brief Record delivered when a query finishes.
struct QueryCompletion {
  QueryId query_id = -1;
  TenantId tenant_id = kInvalidTenantId;
  TemplateId template_id = -1;
  InstanceId instance_id = kInvalidInstanceId;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  /// Latency this query would have had alone on this instance.
  SimDuration dedicated_latency = 0;
  /// The tenant's SLA latency: alone on an instance of exactly the tenant's
  /// requested node count (0 if the submitter did not provide one).
  SimDuration reference_latency = 0;
  /// Highest number of queries sharing the instance during this query's life.
  int max_concurrency = 1;

  SimDuration MeasuredLatency() const { return finish_time - submit_time; }

  /// \brief Measured latency / reference latency; 1.0 means "as fast as on
  /// dedicated machines" (values <= 1 meet the SLA). Returns 0 if no
  /// reference was provided.
  double NormalizedPerformance() const;
};

/// \brief A query handed to an instance for execution.
struct QuerySubmission {
  QueryId query_id = -1;
  TenantId tenant_id = kInvalidTenantId;
  TemplateId template_id = -1;
  /// SLA reference latency (see QueryCompletion::reference_latency).
  SimDuration reference_latency = 0;
};

/// \brief One MPPDB running on a fixed group of nodes.
class MppdbInstance {
 public:
  using CompletionCallback = std::function<void(const QueryCompletion&)>;

  /// \brief Creates an instance over `nodes` machine nodes.
  ///
  /// The instance starts kOnline by default; provisioning flows (elastic
  /// scaling) create it in kProvisioning and drive the state machine via
  /// SetState.
  MppdbInstance(InstanceId id, int nodes, SimEngine* engine,
                InstanceState initial_state = InstanceState::kOnline,
                PsExecutorMode mode = PsExecutorMode::kVirtualTime);

  InstanceId id() const { return id_; }
  int nodes() const { return nodes_; }
  InstanceState state() const { return state_; }
  PsExecutorMode executor_mode() const { return mode_; }

  /// \brief Transitions the lifecycle state (provisioning flows only).
  void SetState(InstanceState state);

  /// \brief Registers a tenant's data (deployed/partitioned across all the
  /// instance's nodes). Re-adding a tenant updates its data size.
  void AddTenant(TenantId tenant, double data_gb);

  /// \brief Removes a tenant's data. Fails if the tenant has running queries.
  Status RemoveTenant(TenantId tenant);

  bool HostsTenant(TenantId tenant) const;
  double TenantDataGb(TenantId tenant) const;

  /// \brief Total data volume loaded on this instance.
  double TotalDataGb() const;

  /// \brief Sets the callback fired on every query completion.
  void set_completion_callback(CompletionCallback cb) {
    on_completion_ = std::move(cb);
  }

  /// \brief Admits a query for immediate (processor-shared) execution.
  ///
  /// Fails if the instance is not online or does not host the tenant's data.
  Status Submit(const QuerySubmission& submission, const QueryTemplate& tmpl);

  /// \brief True if no query is currently executing ("free" in Algorithm 1).
  bool IsFree() const { return RunningCount() == 0; }

  /// \brief True if any of `tenant`'s queries is currently executing. O(1).
  bool IsServingTenant(TenantId tenant) const;

  /// \brief Number of queries currently executing.
  int Concurrency() const { return static_cast<int>(RunningCount()); }

  /// \brief Number of processor-sharing slots currently occupied: shared
  /// batches in kSharedScan (each serving >= 1 queries), otherwise equal to
  /// Concurrency(). This is the denominator of the egalitarian share.
  int SlotConcurrency() const { return static_cast<int>(SlotCount()); }

  /// \brief Open shared batches (0 outside kSharedScan).
  size_t shared_batches_open() const { return batches_.size(); }

  /// \brief Number of distinct tenants with queries currently executing.
  /// O(1) via the per-tenant running-count map.
  int ActiveTenantCount() const {
    return static_cast<int>(running_per_tenant_.size());
  }

  /// \brief Marks one node as failed: the instance stays online but serves
  /// at reduced rate ((nodes - failed)/nodes), per "all major MPPDB products
  /// can still stay online even with (some) node failure" (§4.4).
  Status InjectNodeFailure();

  /// \brief Restores one failed node (replacement came online).
  Status RepairNode();

  int failed_nodes() const { return failed_nodes_; }

  /// \brief Queries completed over this instance's lifetime.
  size_t completed_queries() const { return completed_queries_; }

  /// \brief Total busy time (at least one query running).
  SimDuration busy_time() const;

 private:
  struct RunningQuery {
    QueryId query_id;
    TenantId tenant_id;
    TemplateId template_id;
    SimTime submit_time;
    SimDuration dedicated_latency;
    SimDuration reference_latency;
    /// Virtual time at which this query's work is fully served (immutable:
    /// V at admission + dedicated work in normalized ms).
    double finish_tag;
    /// Admission order, for deterministic equal-tag ties and for the
    /// concurrency high-water query at completion.
    uint64_t admission_seq;
    /// Concurrency right after this query's own admission (slot concurrency
    /// in kSharedScan — the denominator the query's service rate felt).
    int concurrency_at_admission;
    /// kSharedScan: key into batches_ (0 = not part of a shared batch).
    uint64_t batch_key = 0;
  };

  /// \brief One in-flight shared scan (kSharedScan): all co-resident
  /// queries of one template, occupying a single processor-sharing slot.
  /// Joinable until its last member completes, then closed for good (a
  /// later same-template query opens a fresh batch).
  struct SharedBatch {
    TemplateId template_id = -1;
    /// Pending (not yet completed) member queries.
    size_t members = 0;
    /// Highest finish tag assigned to a member so far. Strictly increasing
    /// within the batch: the next joiner's tag is last_tag + its delta, so
    /// every tag is immutable the moment it is assigned.
    double last_tag = 0;
  };

  /// One entry per admission that raised the concurrency profile: the
  /// suffix-max structure behind max_concurrency. Entries are strictly
  /// decreasing in concurrency front-to-back and increasing in seq, so the
  /// highest concurrency among admissions after seq r is the first entry
  /// with seq > r (binary search, size bounded by peak concurrency).
  struct ConcurrencyPeak {
    uint64_t seq;
    int concurrency;
  };

  size_t RunningCount() const {
    return mode_ == PsExecutorMode::kDenseReference ? running_.size()
                                                    : heap_.size();
  }

  /// \brief Share denominator: open batches in kSharedScan, else the
  /// running-query count (bit-identical arithmetic when they coincide).
  size_t SlotCount() const {
    return mode_ == PsExecutorMode::kSharedScan ? batches_.size()
                                                : RunningCount();
  }

  /// \brief Removes a completed member from its batch; closes the batch
  /// (freeing its slot) when the last member is gone.
  void CloseOutBatchMember(const RunningQuery& q);

  /// \brief Advances the virtual clock to wall time `now`: O(1) for any k.
  void AdvanceVirtualTime(SimTime now);

  /// \brief (Re)schedules the next-completion event. Returns the number of
  /// query records read to find the minimum (charged to the cost gauge by
  /// the caller).
  size_t RescheduleCompletion();

  /// \brief Fires completions whose work has been fully served.
  void OnCompletionEvent(SimTime now);

  /// \brief Current service rate factor (node failures slow the instance).
  double SpeedFactor() const;

  QueryCompletion MakeCompletion(const RunningQuery& q, SimTime now) const;

  /// \brief Highest concurrency the instance saw during `q`'s lifetime.
  int MaxConcurrencyDuring(const RunningQuery& q) const;

  /// \brief Records the post-admission concurrency in the peak deque.
  void RecordConcurrencyPeak(uint64_t seq, int concurrency);

  // Min-heap helpers over heap_ keyed (finish_tag, admission_seq); each
  // returns the number of records moved so the cost gauge counts real work.
  static bool TagLess(const RunningQuery& a, const RunningQuery& b) {
    return a.finish_tag < b.finish_tag ||
           (a.finish_tag == b.finish_tag && a.admission_seq < b.admission_seq);
  }
  size_t HeapSiftUp(size_t index);
  size_t HeapSiftDown(size_t index);

  InstanceId id_;
  int nodes_;
  SimEngine* engine_;
  InstanceState state_;
  PsExecutorMode mode_;
  int failed_nodes_ = 0;

  std::unordered_map<TenantId, double> tenant_data_gb_;

  /// Virtual clock: normalized service delivered per running query since the
  /// current busy period began (rebased to 0 whenever the instance goes
  /// idle, which bounds the magnitude and keeps tag - V well conditioned).
  double virtual_now_ = 0;
  SimTime last_progress_update_ = 0;
  uint64_t admission_counter_ = 0;

  /// kDenseReference: admission-ordered flat vector (O(k) sweep per event).
  std::vector<RunningQuery> running_;
  /// kVirtualTime/kSharedScan: binary min-heap by (finish_tag,
  /// admission_seq).
  std::vector<RunningQuery> heap_;

  /// kSharedScan: live batches by key, and the joinable (= live) batch of
  /// each template. batches_.size() is the slot count.
  std::unordered_map<uint64_t, SharedBatch> batches_;
  std::unordered_map<TemplateId, uint64_t> open_batch_by_template_;
  uint64_t batch_counter_ = 0;

  /// Count of running queries per tenant (entries erased at zero), making
  /// IsServingTenant O(1) and ActiveTenantCount O(1).
  std::unordered_map<TenantId, int> running_per_tenant_;

  /// Monotone deque of concurrency peaks (see ConcurrencyPeak); replaces
  /// the O(k) per-admission max_concurrency write-back.
  std::deque<ConcurrencyPeak> concurrency_peaks_;

  EventId completion_event_ = kInvalidEventId;
  CompletionCallback on_completion_;

  size_t completed_queries_ = 0;
  SimDuration busy_time_ = 0;
  SimTime busy_since_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_MPPDB_INSTANCE_H_
