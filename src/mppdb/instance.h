// Simulated MPPDB instance: an egalitarian processor-sharing executor.
//
// A group of machine nodes runs one MPPDB instance (the paper's cluster
// design, §4.1). The instance hosts the data of many tenants (shared-process
// multi-tenancy) and executes their analytical queries. Because analytical
// workloads are I/O-bound, k concurrent queries each progress at 1/k of their
// dedicated rate — the behaviour measured in Fig 1.1a (2T-CON runs 2x slower,
// 4T-CON 4x slower, while xT-SEQ matches single-tenant latency).

#ifndef THRIFTY_MPPDB_INSTANCE_H_
#define THRIFTY_MPPDB_INSTANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mppdb/query_model.h"
#include "sim/engine.h"

namespace thrifty {

using InstanceId = int32_t;
using TenantId = int32_t;
using QueryId = int64_t;

inline constexpr InstanceId kInvalidInstanceId = -1;
inline constexpr TenantId kInvalidTenantId = -1;

/// \brief Lifecycle state of an MPPDB instance.
enum class InstanceState {
  /// Nodes are starting and the MPPDB software is initializing.
  kProvisioning,
  /// Tenant data is being bulk loaded.
  kLoading,
  /// Serving queries.
  kOnline,
  /// Decommissioned (nodes hibernated/returned).
  kStopped,
};

const char* InstanceStateToString(InstanceState state);

/// \brief Record delivered when a query finishes.
struct QueryCompletion {
  QueryId query_id = -1;
  TenantId tenant_id = kInvalidTenantId;
  TemplateId template_id = -1;
  InstanceId instance_id = kInvalidInstanceId;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  /// Latency this query would have had alone on this instance.
  SimDuration dedicated_latency = 0;
  /// The tenant's SLA latency: alone on an instance of exactly the tenant's
  /// requested node count (0 if the submitter did not provide one).
  SimDuration reference_latency = 0;
  /// Highest number of queries sharing the instance during this query's life.
  int max_concurrency = 1;

  SimDuration MeasuredLatency() const { return finish_time - submit_time; }

  /// \brief Measured latency / reference latency; 1.0 means "as fast as on
  /// dedicated machines" (values <= 1 meet the SLA). Returns 0 if no
  /// reference was provided.
  double NormalizedPerformance() const;
};

/// \brief A query handed to an instance for execution.
struct QuerySubmission {
  QueryId query_id = -1;
  TenantId tenant_id = kInvalidTenantId;
  TemplateId template_id = -1;
  /// SLA reference latency (see QueryCompletion::reference_latency).
  SimDuration reference_latency = 0;
};

/// \brief One MPPDB running on a fixed group of nodes.
class MppdbInstance {
 public:
  using CompletionCallback = std::function<void(const QueryCompletion&)>;

  /// \brief Creates an instance over `nodes` machine nodes.
  ///
  /// The instance starts kOnline by default; provisioning flows (elastic
  /// scaling) create it in kProvisioning and drive the state machine via
  /// SetState.
  MppdbInstance(InstanceId id, int nodes, SimEngine* engine,
                InstanceState initial_state = InstanceState::kOnline);

  InstanceId id() const { return id_; }
  int nodes() const { return nodes_; }
  InstanceState state() const { return state_; }

  /// \brief Transitions the lifecycle state (provisioning flows only).
  void SetState(InstanceState state);

  /// \brief Registers a tenant's data (deployed/partitioned across all the
  /// instance's nodes). Re-adding a tenant updates its data size.
  void AddTenant(TenantId tenant, double data_gb);

  /// \brief Removes a tenant's data. Fails if the tenant has running queries.
  Status RemoveTenant(TenantId tenant);

  bool HostsTenant(TenantId tenant) const;
  double TenantDataGb(TenantId tenant) const;

  /// \brief Total data volume loaded on this instance.
  double TotalDataGb() const;

  /// \brief Sets the callback fired on every query completion.
  void set_completion_callback(CompletionCallback cb) {
    on_completion_ = std::move(cb);
  }

  /// \brief Admits a query for immediate (processor-shared) execution.
  ///
  /// Fails if the instance is not online or does not host the tenant's data.
  Status Submit(const QuerySubmission& submission, const QueryTemplate& tmpl);

  /// \brief True if no query is currently executing ("free" in Algorithm 1).
  bool IsFree() const { return running_.empty(); }

  /// \brief True if any of `tenant`'s queries is currently executing.
  bool IsServingTenant(TenantId tenant) const;

  /// \brief Number of queries currently executing.
  int Concurrency() const { return static_cast<int>(running_.size()); }

  /// \brief Number of distinct tenants with queries currently executing.
  int ActiveTenantCount() const;

  /// \brief Marks one node as failed: the instance stays online but serves
  /// at reduced rate ((nodes - failed)/nodes), per "all major MPPDB products
  /// can still stay online even with (some) node failure" (§4.4).
  Status InjectNodeFailure();

  /// \brief Restores one failed node (replacement came online).
  Status RepairNode();

  int failed_nodes() const { return failed_nodes_; }

  /// \brief Queries completed over this instance's lifetime.
  size_t completed_queries() const { return completed_queries_; }

  /// \brief Total busy time (at least one query running).
  SimDuration busy_time() const;

 private:
  struct RunningQuery {
    QueryId query_id;
    TenantId tenant_id;
    TemplateId template_id;
    SimTime submit_time;
    SimDuration dedicated_latency;
    SimDuration reference_latency;
    double remaining_ms;  // at dedicated (unshared, unfailed) rate
    int max_concurrency;
  };

  /// \brief Applies elapsed progress to all running queries.
  void AdvanceProgress(SimTime now);

  /// \brief (Re)schedules the next-completion event.
  void RescheduleCompletion();

  /// \brief Fires completions whose work has been fully served.
  void OnCompletionEvent(SimTime now);

  /// \brief Current service rate factor (node failures slow the instance).
  double SpeedFactor() const;

  InstanceId id_;
  int nodes_;
  SimEngine* engine_;
  InstanceState state_;
  int failed_nodes_ = 0;

  std::unordered_map<TenantId, double> tenant_data_gb_;
  std::vector<RunningQuery> running_;
  SimTime last_progress_update_ = 0;
  EventId completion_event_ = kInvalidEventId;
  CompletionCallback on_completion_;

  size_t completed_queries_ = 0;
  SimDuration busy_time_ = 0;
  SimTime busy_since_ = 0;
};

}  // namespace thrifty

#endif  // THRIFTY_MPPDB_INSTANCE_H_
