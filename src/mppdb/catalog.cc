#include "mppdb/catalog.h"

#include <cassert>
#include <cstdio>

namespace thrifty {

const char* QuerySuiteToString(QuerySuite suite) {
  switch (suite) {
    case QuerySuite::kTpch:
      return "TPCH";
    case QuerySuite::kTpcds:
      return "TPCDS";
  }
  return "Unknown";
}

namespace {

struct TpchProfile {
  const char* name;
  double work_seconds_per_gb;
  double serial_fraction;
};

// Absolute-latency calibration knob. The paper publishes no absolute query
// latencies, so the catalog's scale is calibrated against the consolidation
// behaviour its evaluation reports: with this scale, generated workloads
// yield tenant-group sizes (~14 tenants at R=3, P=99.9%) and consolidation
// effectiveness (~80%) matching §7.3-§7.4, and typical query latencies land
// in the seconds range a commercial column-store MPPDB achieves on TPC-H
// SF100 partitions.
constexpr double kWorkScale = 0.15;

// Relative costs loosely follow the published TPC-H query cost ordering
// (Q1/Q9/Q18/Q21 heavy; Q2/Q11/Q16/Q22 light). Q1 is near-fully parallel —
// the paper's linear-scale-out exemplar (Fig 1.1a) — while Q19's large serial
// fraction reproduces its non-linear behaviour (Fig 1.1c).
// Serial fractions are small for most templates — commercial MPPDBs
// partition TPC-H well, and the paper treats linear scale-out as the common
// case with Q19 as the notable exception (Fig 1.1c).
constexpr TpchProfile kTpchProfiles[] = {
    {"TPCH-Q1", 0.60, 0.010},  {"TPCH-Q2", 0.10, 0.030},
    {"TPCH-Q3", 0.30, 0.020},  {"TPCH-Q4", 0.20, 0.020},
    {"TPCH-Q5", 0.35, 0.030},  {"TPCH-Q6", 0.15, 0.005},
    {"TPCH-Q7", 0.30, 0.030},  {"TPCH-Q8", 0.30, 0.030},
    {"TPCH-Q9", 0.80, 0.040},  {"TPCH-Q10", 0.30, 0.020},
    {"TPCH-Q11", 0.08, 0.030}, {"TPCH-Q12", 0.20, 0.020},
    {"TPCH-Q13", 0.40, 0.050}, {"TPCH-Q14", 0.15, 0.010},
    {"TPCH-Q15", 0.20, 0.020}, {"TPCH-Q16", 0.10, 0.040},
    {"TPCH-Q17", 0.45, 0.030}, {"TPCH-Q18", 0.60, 0.030},
    {"TPCH-Q19", 0.35, 0.350}, {"TPCH-Q20", 0.30, 0.020},
    {"TPCH-Q21", 0.70, 0.050}, {"TPCH-Q22", 0.12, 0.030},
};

constexpr int kNumTpcdsTemplates = 24;
constexpr uint64_t kTpcdsSeed = 0x7c05d5u;  // fixed: catalog is deterministic

}  // namespace

QueryCatalog QueryCatalog::Default() {
  std::vector<QueryTemplate> templates;
  for (const auto& p : kTpchProfiles) {
    QueryTemplate t;
    t.name = p.name;
    t.work_seconds_per_gb = p.work_seconds_per_gb * kWorkScale;
    t.serial_fraction = p.serial_fraction;
    templates.push_back(std::move(t));
  }
  // TPC-DS-style templates: broader cost spread (DS has many short reporting
  // queries and a few very heavy ones), deterministic across builds.
  Rng rng(kTpcdsSeed);
  for (int k = 1; k <= kNumTpcdsTemplates; ++k) {
    QueryTemplate t;
    char name[32];
    snprintf(name, sizeof(name), "TPCDS-Q%d", k);
    t.name = name;
    // Log-uniform-ish work spread in [0.05, 0.85] s/GB before calibration.
    double u = rng.NextDouble();
    t.work_seconds_per_gb = (0.05 + 0.80 * u * u) * kWorkScale;
    // Most DS queries parallelize well; roughly a quarter have a noticeable
    // serial component.
    t.serial_fraction =
        rng.NextBool(0.25) ? 0.10 + 0.15 * rng.NextDouble()
                           : 0.005 + 0.035 * rng.NextDouble();
    templates.push_back(std::move(t));
  }
  return QueryCatalog(std::move(templates));
}

QueryCatalog::QueryCatalog(std::vector<QueryTemplate> templates)
    : templates_(std::move(templates)) {
  for (size_t i = 0; i < templates_.size(); ++i) {
    templates_[i].id = static_cast<TemplateId>(i);
    if (templates_[i].name.rfind("TPCH", 0) == 0) {
      tpch_ids_.push_back(templates_[i].id);
    } else {
      tpcds_ids_.push_back(templates_[i].id);
    }
  }
}

const QueryTemplate& QueryCatalog::Get(TemplateId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < templates_.size());
  return templates_[static_cast<size_t>(id)];
}

Result<TemplateId> QueryCatalog::FindByName(const std::string& name) const {
  for (const auto& t : templates_) {
    if (t.name == name) return t.id;
  }
  return Status::NotFound("no query template named " + name);
}

const std::vector<TemplateId>& QueryCatalog::SuiteTemplates(
    QuerySuite suite) const {
  return suite == QuerySuite::kTpch ? tpch_ids_ : tpcds_ids_;
}

TemplateId QueryCatalog::SampleFromSuite(QuerySuite suite, Rng* rng) const {
  const auto& ids = SuiteTemplates(suite);
  assert(!ids.empty());
  return ids[rng->NextBounded(ids.size())];
}

}  // namespace thrifty
