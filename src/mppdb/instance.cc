#include "mppdb/instance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace thrifty {

namespace {
// Remaining work at or below this (milliseconds at dedicated rate) counts as
// finished; covers floating-point residue from the share arithmetic.
constexpr double kDoneEpsilonMs = 1e-6;
}  // namespace

const char* InstanceStateToString(InstanceState state) {
  switch (state) {
    case InstanceState::kProvisioning:
      return "provisioning";
    case InstanceState::kLoading:
      return "loading";
    case InstanceState::kOnline:
      return "online";
    case InstanceState::kStopped:
      return "stopped";
  }
  return "unknown";
}

const char* PsExecutorModeToString(PsExecutorMode mode) {
  switch (mode) {
    case PsExecutorMode::kVirtualTime:
      return "virtual-time";
    case PsExecutorMode::kDenseReference:
      return "dense-reference";
    case PsExecutorMode::kSharedScan:
      return "shared-scan";
  }
  return "unknown";
}

double QueryCompletion::NormalizedPerformance() const {
  if (reference_latency <= 0) return 0;
  return static_cast<double>(MeasuredLatency()) /
         static_cast<double>(reference_latency);
}

MppdbInstance::MppdbInstance(InstanceId id, int nodes, SimEngine* engine,
                             InstanceState initial_state, PsExecutorMode mode)
    : id_(id), nodes_(nodes), engine_(engine), state_(initial_state),
      mode_(mode) {
  assert(nodes >= 1);
  assert(engine != nullptr);
  last_progress_update_ = engine->now();
}

void MppdbInstance::SetState(InstanceState state) { state_ = state; }

void MppdbInstance::AddTenant(TenantId tenant, double data_gb) {
  assert(data_gb >= 0);
  tenant_data_gb_[tenant] = data_gb;
}

Status MppdbInstance::RemoveTenant(TenantId tenant) {
  if (IsServingTenant(tenant)) {
    return Status::FailedPrecondition("tenant has running queries");
  }
  if (tenant_data_gb_.erase(tenant) == 0) {
    return Status::NotFound("tenant not hosted on this instance");
  }
  return Status::OK();
}

bool MppdbInstance::HostsTenant(TenantId tenant) const {
  return tenant_data_gb_.count(tenant) > 0;
}

double MppdbInstance::TenantDataGb(TenantId tenant) const {
  auto it = tenant_data_gb_.find(tenant);
  return it == tenant_data_gb_.end() ? 0 : it->second;
}

double MppdbInstance::TotalDataGb() const {
  double total = 0;
  for (const auto& [tenant, gb] : tenant_data_gb_) total += gb;
  return total;
}

double MppdbInstance::SpeedFactor() const {
  return static_cast<double>(nodes_ - failed_nodes_) /
         static_cast<double>(nodes_);
}

void MppdbInstance::AdvanceVirtualTime(SimTime now) {
  // The egalitarian share divides capacity among *slots*: shared batches in
  // kSharedScan, individual queries otherwise (identical values — and
  // identical FP arithmetic — whenever no batch has more than one member).
  size_t k = SlotCount();
  if (k > 0 && now > last_progress_update_) {
    double share = SpeedFactor() / static_cast<double>(k);
    virtual_now_ +=
        static_cast<double>(now - last_progress_update_) * share;
  }
  last_progress_update_ = now;
}

size_t MppdbInstance::HeapSiftUp(size_t index) {
  size_t moves = 0;
  while (index > 0) {
    size_t parent = (index - 1) / 2;
    if (!TagLess(heap_[index], heap_[parent])) break;
    std::swap(heap_[index], heap_[parent]);
    index = parent;
    ++moves;
  }
  return moves;
}

size_t MppdbInstance::HeapSiftDown(size_t index) {
  size_t moves = 0;
  const size_t n = heap_.size();
  while (true) {
    size_t smallest = 2 * index + 1;
    if (smallest >= n) break;
    size_t right = smallest + 1;
    if (right < n && TagLess(heap_[right], heap_[smallest])) smallest = right;
    if (!TagLess(heap_[smallest], heap_[index])) break;
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
    ++moves;
  }
  return moves;
}

void MppdbInstance::RecordConcurrencyPeak(uint64_t seq, int concurrency) {
  while (!concurrency_peaks_.empty() &&
         concurrency_peaks_.back().concurrency <= concurrency) {
    concurrency_peaks_.pop_back();
  }
  concurrency_peaks_.push_back({seq, concurrency});
}

int MppdbInstance::MaxConcurrencyDuring(const RunningQuery& q) const {
  int max_k = q.concurrency_at_admission;
  // First peak admitted after this query: the highest concurrency the
  // instance reached between the query's admission and now (entries are
  // increasing in seq and strictly decreasing in concurrency).
  auto it = std::upper_bound(
      concurrency_peaks_.begin(), concurrency_peaks_.end(), q.admission_seq,
      [](uint64_t seq, const ConcurrencyPeak& p) { return seq < p.seq; });
  if (it != concurrency_peaks_.end()) max_k = std::max(max_k, it->concurrency);
  return max_k;
}

QueryCompletion MppdbInstance::MakeCompletion(const RunningQuery& q,
                                              SimTime now) const {
  QueryCompletion c;
  c.query_id = q.query_id;
  c.tenant_id = q.tenant_id;
  c.template_id = q.template_id;
  c.instance_id = id_;
  c.submit_time = q.submit_time;
  c.finish_time = now;
  c.dedicated_latency = q.dedicated_latency;
  c.reference_latency = q.reference_latency;
  c.max_concurrency = MaxConcurrencyDuring(q);
  return c;
}

size_t MppdbInstance::RescheduleCompletion() {
  engine_->Cancel(completion_event_);
  completion_event_ = kInvalidEventId;
  const size_t k = RunningCount();
  if (k == 0) return 0;
  size_t touched;
  double min_remaining;
  if (mode_ == PsExecutorMode::kDenseReference) {
    min_remaining = running_[0].finish_tag - virtual_now_;
    for (const auto& q : running_) {
      min_remaining = std::min(min_remaining, q.finish_tag - virtual_now_);
    }
    touched = k;
  } else {
    // tag - V is monotone in the tag, so the heap top's remaining work is
    // exactly the minimum the dense sweep computes, bit for bit.
    min_remaining = heap_.front().finish_tag - virtual_now_;
    touched = 1;
  }
  double share = SpeedFactor() / static_cast<double>(SlotCount());
  // Wall time until the least-remaining query completes under the current
  // share. Ceil so the event never fires before the true completion.
  SimDuration wait = static_cast<SimDuration>(
      std::ceil(std::max(min_remaining, 0.0) / share));
  if (wait < 1 && min_remaining > kDoneEpsilonMs) wait = 1;
  completion_event_ = engine_->ScheduleAfter(
      wait, [this](SimTime t) { OnCompletionEvent(t); });
  return touched;
}

void MppdbInstance::OnCompletionEvent(SimTime now) {
  completion_event_ = kInvalidEventId;
  AdvanceVirtualTime(now);
  uint64_t touched = 0;
  std::vector<QueryCompletion> done;
  if (mode_ == PsExecutorMode::kDenseReference) {
    // Single stable-partition pass: completions are collected in admission
    // order and survivors slide down in place. (The historical per-hit
    // vector::erase was O(k^2) when many queries finish on one event.)
    touched += running_.size();
    size_t kept = 0;
    for (size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].finish_tag - virtual_now_ <= kDoneEpsilonMs) {
        done.push_back(MakeCompletion(running_[i], now));
      } else {
        if (kept != i) running_[kept] = running_[i];
        ++kept;
      }
    }
    running_.resize(kept);
  } else {
    // Pop every served query: the completion set is downward closed in tag
    // order, so popping stops at the first unserved top. The heap yields
    // tag order; callbacks must fire in admission order (the dense sweep's
    // deterministic order), hence the sort of the (usually tiny) batch.
    std::vector<RunningQuery> batch;
    while (!heap_.empty()) {
      ++touched;
      if (heap_.front().finish_tag - virtual_now_ > kDoneEpsilonMs) break;
      batch.push_back(heap_.front());
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) touched += HeapSiftDown(0);
    }
    std::sort(batch.begin(), batch.end(),
              [](const RunningQuery& a, const RunningQuery& b) {
                return a.admission_seq < b.admission_seq;
              });
    for (const RunningQuery& q : batch) done.push_back(MakeCompletion(q, now));
    if (mode_ == PsExecutorMode::kSharedScan) {
      // Free slots before rescheduling so the next event's share reflects
      // the post-completion batch count. A batch's largest tag belongs to a
      // still-pending member whenever the batch is open (completions are
      // downward closed in tag order), so closing here is never premature.
      for (const RunningQuery& q : batch) CloseOutBatchMember(q);
    }
  }
  for (const QueryCompletion& c : done) {
    auto it = running_per_tenant_.find(c.tenant_id);
    assert(it != running_per_tenant_.end());
    if (--it->second == 0) running_per_tenant_.erase(it);
  }
  completed_queries_ += done.size();
  if (RunningCount() == 0 && !done.empty()) {
    busy_time_ += now - busy_since_;
  }
  touched += RescheduleCompletion();
  if (SimCostGauge* gauge = engine_->cost_gauge()) {
    gauge->RecordCompletionEvent(touched);
  }
  // Callbacks fire after internal state is consistent: a callback may submit
  // follow-up queries to this very instance.
  if (on_completion_) {
    for (const auto& c : done) on_completion_(c);
  }
}

void MppdbInstance::CloseOutBatchMember(const RunningQuery& q) {
  auto it = batches_.find(q.batch_key);
  assert(it != batches_.end());
  assert(it->second.members > 0);
  if (--it->second.members == 0) {
    open_batch_by_template_.erase(it->second.template_id);
    batches_.erase(it);
  }
}

Status MppdbInstance::Submit(const QuerySubmission& submission,
                             const QueryTemplate& tmpl) {
  if (state_ != InstanceState::kOnline) {
    return Status::Unavailable(std::string("instance is ") +
                               InstanceStateToString(state_));
  }
  auto it = tenant_data_gb_.find(submission.tenant_id);
  if (it == tenant_data_gb_.end()) {
    return Status::NotFound("tenant data not deployed on this instance");
  }
  SimTime now = engine_->now();
  AdvanceVirtualTime(now);

  if (RunningCount() == 0) {
    busy_since_ = now;
    // Rebase the virtual clock at every busy-period start: no running query
    // holds a tag, and a small |V| keeps tag - V exact for the integer-ms
    // work the workloads are built from. The peak deque is unreachable from
    // any future admission (all have larger seq), so it is dropped too.
    virtual_now_ = 0;
    concurrency_peaks_.clear();
  }

  RunningQuery q;
  q.query_id = submission.query_id;
  q.tenant_id = submission.tenant_id;
  q.template_id = tmpl.id;
  q.submit_time = now;
  q.dedicated_latency = tmpl.DedicatedLatency(it->second, nodes_);
  q.reference_latency = submission.reference_latency;
  q.admission_seq = ++admission_counter_;

  bool joined_batch = false;
  SimDuration slot_work = q.dedicated_latency;
  auto open_it = mode_ == PsExecutorMode::kSharedScan
                     ? open_batch_by_template_.find(tmpl.id)
                     : open_batch_by_template_.end();
  if (open_it != open_batch_by_template_.end()) {
    // Merge into the in-flight batch for this template: the scan is already
    // paid for, so the joiner only appends its serial + merge delta past the
    // batch's last finish tag. Tags stay immutable and strictly increasing
    // within a batch, so the heap invariant is untouched.
    SharedBatch& batch = batches_.at(open_it->second);
    slot_work = tmpl.SharedJoinDelta(it->second, nodes_);
    q.finish_tag = batch.last_tag + static_cast<double>(slot_work);
    q.batch_key = open_it->second;
    batch.last_tag = q.finish_tag;
    ++batch.members;
    joined_batch = true;
  } else {
    // Identical tag arithmetic to kVirtualTime, so a shared-scan run whose
    // batches are all singletons is bit-for-bit the virtual-time run.
    q.finish_tag = virtual_now_ + static_cast<double>(q.dedicated_latency);
    if (mode_ == PsExecutorMode::kSharedScan) {
      uint64_t key = ++batch_counter_;
      q.batch_key = key;
      SharedBatch batch;
      batch.template_id = tmpl.id;
      batch.members = 1;
      batch.last_tag = q.finish_tag;
      batches_.emplace(key, batch);
      open_batch_by_template_.emplace(tmpl.id, key);
    }
  }

  // Concurrency is counted in slots: under shared scan a joiner does not
  // raise the pressure on anyone else's share. With all-singleton batches
  // SlotCount() (batch bookkeeping is already done, the query itself is not
  // yet pushed) equals the non-shared RunningCount() + 1, so the recorded
  // peaks (and thus max_concurrency in completions) match byte for byte.
  int k = mode_ == PsExecutorMode::kSharedScan
              ? static_cast<int>(SlotCount())
              : static_cast<int>(RunningCount()) + 1;
  q.concurrency_at_admission = k;

  uint64_t touched = 1;
  if (mode_ == PsExecutorMode::kDenseReference) {
    running_.push_back(q);
  } else {
    heap_.push_back(q);
    touched += HeapSiftUp(heap_.size() - 1);
  }
  ++running_per_tenant_[q.tenant_id];
  RecordConcurrencyPeak(q.admission_seq, k);
  touched += RescheduleCompletion();
  if (SimCostGauge* gauge = engine_->cost_gauge()) {
    gauge->RecordSubmit(touched);
    gauge->RecordRunningSetSize(RunningCount());
    gauge->RecordSlotWork(static_cast<uint64_t>(q.dedicated_latency),
                          static_cast<uint64_t>(slot_work));
    if (mode_ == PsExecutorMode::kSharedScan) {
      if (joined_batch) {
        gauge->RecordBatchJoin();
      } else {
        gauge->RecordBatchOpen();
      }
    }
  }
  return Status::OK();
}

bool MppdbInstance::IsServingTenant(TenantId tenant) const {
  return running_per_tenant_.count(tenant) > 0;
}

Status MppdbInstance::InjectNodeFailure() {
  if (failed_nodes_ >= nodes_ - 1) {
    return Status::FailedPrecondition(
        "instance would lose all serving capacity");
  }
  AdvanceVirtualTime(engine_->now());
  ++failed_nodes_;
  RescheduleCompletion();
  return Status::OK();
}

Status MppdbInstance::RepairNode() {
  if (failed_nodes_ == 0) {
    return Status::FailedPrecondition("no failed node to repair");
  }
  AdvanceVirtualTime(engine_->now());
  --failed_nodes_;
  RescheduleCompletion();
  return Status::OK();
}

SimDuration MppdbInstance::busy_time() const {
  if (RunningCount() == 0) return busy_time_;
  return busy_time_ + (engine_->now() - busy_since_);
}

}  // namespace thrifty
