#include "mppdb/instance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace thrifty {

namespace {
// Remaining work at or below this (milliseconds at dedicated rate) counts as
// finished; covers floating-point residue from the share arithmetic.
constexpr double kDoneEpsilonMs = 1e-6;
}  // namespace

const char* InstanceStateToString(InstanceState state) {
  switch (state) {
    case InstanceState::kProvisioning:
      return "provisioning";
    case InstanceState::kLoading:
      return "loading";
    case InstanceState::kOnline:
      return "online";
    case InstanceState::kStopped:
      return "stopped";
  }
  return "unknown";
}

double QueryCompletion::NormalizedPerformance() const {
  if (reference_latency <= 0) return 0;
  return static_cast<double>(MeasuredLatency()) /
         static_cast<double>(reference_latency);
}

MppdbInstance::MppdbInstance(InstanceId id, int nodes, SimEngine* engine,
                             InstanceState initial_state)
    : id_(id), nodes_(nodes), engine_(engine), state_(initial_state) {
  assert(nodes >= 1);
  assert(engine != nullptr);
  last_progress_update_ = engine->now();
}

void MppdbInstance::SetState(InstanceState state) { state_ = state; }

void MppdbInstance::AddTenant(TenantId tenant, double data_gb) {
  assert(data_gb >= 0);
  tenant_data_gb_[tenant] = data_gb;
}

Status MppdbInstance::RemoveTenant(TenantId tenant) {
  if (IsServingTenant(tenant)) {
    return Status::FailedPrecondition("tenant has running queries");
  }
  if (tenant_data_gb_.erase(tenant) == 0) {
    return Status::NotFound("tenant not hosted on this instance");
  }
  return Status::OK();
}

bool MppdbInstance::HostsTenant(TenantId tenant) const {
  return tenant_data_gb_.count(tenant) > 0;
}

double MppdbInstance::TenantDataGb(TenantId tenant) const {
  auto it = tenant_data_gb_.find(tenant);
  return it == tenant_data_gb_.end() ? 0 : it->second;
}

double MppdbInstance::TotalDataGb() const {
  double total = 0;
  for (const auto& [tenant, gb] : tenant_data_gb_) total += gb;
  return total;
}

double MppdbInstance::SpeedFactor() const {
  return static_cast<double>(nodes_ - failed_nodes_) /
         static_cast<double>(nodes_);
}

void MppdbInstance::AdvanceProgress(SimTime now) {
  if (!running_.empty() && now > last_progress_update_) {
    double share = SpeedFactor() / static_cast<double>(running_.size());
    double progressed =
        static_cast<double>(now - last_progress_update_) * share;
    for (auto& q : running_) q.remaining_ms -= progressed;
  }
  last_progress_update_ = now;
}

void MppdbInstance::RescheduleCompletion() {
  engine_->Cancel(completion_event_);
  completion_event_ = kInvalidEventId;
  if (running_.empty()) return;
  double min_remaining = running_[0].remaining_ms;
  for (const auto& q : running_) {
    min_remaining = std::min(min_remaining, q.remaining_ms);
  }
  double share = SpeedFactor() / static_cast<double>(running_.size());
  // Wall time until the least-remaining query completes under the current
  // share. Ceil so the event never fires before the true completion.
  SimDuration wait = static_cast<SimDuration>(
      std::ceil(std::max(min_remaining, 0.0) / share));
  if (wait < 1 && min_remaining > kDoneEpsilonMs) wait = 1;
  completion_event_ = engine_->ScheduleAfter(
      wait, [this](SimTime t) { OnCompletionEvent(t); });
}

void MppdbInstance::OnCompletionEvent(SimTime now) {
  completion_event_ = kInvalidEventId;
  AdvanceProgress(now);
  std::vector<QueryCompletion> done;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->remaining_ms <= kDoneEpsilonMs) {
      QueryCompletion c;
      c.query_id = it->query_id;
      c.tenant_id = it->tenant_id;
      c.template_id = it->template_id;
      c.instance_id = id_;
      c.submit_time = it->submit_time;
      c.finish_time = now;
      c.dedicated_latency = it->dedicated_latency;
      c.reference_latency = it->reference_latency;
      c.max_concurrency = it->max_concurrency;
      done.push_back(c);
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  completed_queries_ += done.size();
  if (running_.empty() && !done.empty()) {
    busy_time_ += now - busy_since_;
  }
  RescheduleCompletion();
  // Callbacks fire after internal state is consistent: a callback may submit
  // follow-up queries to this very instance.
  if (on_completion_) {
    for (const auto& c : done) on_completion_(c);
  }
}

Status MppdbInstance::Submit(const QuerySubmission& submission,
                             const QueryTemplate& tmpl) {
  if (state_ != InstanceState::kOnline) {
    return Status::Unavailable(std::string("instance is ") +
                               InstanceStateToString(state_));
  }
  auto it = tenant_data_gb_.find(submission.tenant_id);
  if (it == tenant_data_gb_.end()) {
    return Status::NotFound("tenant data not deployed on this instance");
  }
  SimTime now = engine_->now();
  AdvanceProgress(now);

  RunningQuery q;
  q.query_id = submission.query_id;
  q.tenant_id = submission.tenant_id;
  q.template_id = tmpl.id;
  q.submit_time = now;
  q.dedicated_latency = tmpl.DedicatedLatency(it->second, nodes_);
  q.reference_latency = submission.reference_latency;
  q.remaining_ms = static_cast<double>(q.dedicated_latency);
  q.max_concurrency = static_cast<int>(running_.size()) + 1;
  if (running_.empty()) busy_since_ = now;
  running_.push_back(q);
  int k = static_cast<int>(running_.size());
  for (auto& r : running_) r.max_concurrency = std::max(r.max_concurrency, k);
  RescheduleCompletion();
  return Status::OK();
}

bool MppdbInstance::IsServingTenant(TenantId tenant) const {
  for (const auto& q : running_) {
    if (q.tenant_id == tenant) return true;
  }
  return false;
}

int MppdbInstance::ActiveTenantCount() const {
  int count = 0;
  for (size_t i = 0; i < running_.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (running_[j].tenant_id == running_[i].tenant_id) {
        seen = true;
        break;
      }
    }
    if (!seen) ++count;
  }
  return count;
}

Status MppdbInstance::InjectNodeFailure() {
  if (failed_nodes_ >= nodes_ - 1) {
    return Status::FailedPrecondition(
        "instance would lose all serving capacity");
  }
  AdvanceProgress(engine_->now());
  ++failed_nodes_;
  RescheduleCompletion();
  return Status::OK();
}

Status MppdbInstance::RepairNode() {
  if (failed_nodes_ == 0) {
    return Status::FailedPrecondition("no failed node to repair");
  }
  AdvanceProgress(engine_->now());
  --failed_nodes_;
  RescheduleCompletion();
  return Status::OK();
}

SimDuration MppdbInstance::busy_time() const {
  if (running_.empty()) return busy_time_;
  return busy_time_ + (engine_->now() - busy_since_);
}

}  // namespace thrifty
