// Query template catalog (TPC-H + TPC-DS style workloads).
//
// The paper's tenants hold TPC-H or TPC-DS data with equal probability and
// submit uniformly random queries from the corresponding suite (§7.1 Step 1).
// This catalog provides the 22 TPC-H templates with hand-calibrated cost
// profiles — including Q1 as the linear-scale-out exemplar and Q19 as the
// non-linear exemplar of Fig 1.1 — plus 24 TPC-DS-style templates generated
// deterministically from a fixed seed.

#ifndef THRIFTY_MPPDB_CATALOG_H_
#define THRIFTY_MPPDB_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "mppdb/query_model.h"

namespace thrifty {

/// \brief Benchmark suite a tenant's schema/workload belongs to.
enum class QuerySuite {
  kTpch = 0,
  kTpcds = 1,
};

const char* QuerySuiteToString(QuerySuite suite);

/// \brief Immutable collection of query templates, indexed by TemplateId.
class QueryCatalog {
 public:
  /// \brief Builds the default TPC-H + TPC-DS catalog.
  static QueryCatalog Default();

  /// \brief Builds a catalog from explicit templates (ids are reassigned to
  /// positions).
  explicit QueryCatalog(std::vector<QueryTemplate> templates);

  const QueryTemplate& Get(TemplateId id) const;
  Result<TemplateId> FindByName(const std::string& name) const;

  /// \brief Ids of all templates in the given suite (by name prefix).
  const std::vector<TemplateId>& SuiteTemplates(QuerySuite suite) const;

  /// \brief Draws a uniformly random template id from the suite.
  TemplateId SampleFromSuite(QuerySuite suite, Rng* rng) const;

  size_t size() const { return templates_.size(); }
  const std::vector<QueryTemplate>& templates() const { return templates_; }

 private:
  std::vector<QueryTemplate> templates_;
  std::vector<TemplateId> tpch_ids_;
  std::vector<TemplateId> tpcds_ids_;
};

}  // namespace thrifty

#endif  // THRIFTY_MPPDB_CATALOG_H_
