#include "mppdb/provisioning.h"

#include <cassert>

namespace thrifty {

SimDuration ProvisioningModel::NodeStartTime(int nodes) const {
  assert(nodes >= 1);
  return SecondsToDuration(startup_base_seconds +
                           startup_per_node_seconds * nodes);
}

SimDuration ProvisioningModel::BulkLoadTime(double data_gb) const {
  assert(data_gb >= 0);
  if (data_gb == 0) return 0;
  return SecondsToDuration(load_base_seconds + load_per_gb_seconds * data_gb);
}

SimDuration ProvisioningModel::TotalPrepTime(int nodes,
                                             double data_gb) const {
  return NodeStartTime(nodes) + BulkLoadTime(data_gb);
}

}  // namespace thrifty
