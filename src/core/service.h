// ThriftyService: the running MPPDBaaS (Fig 3.1, all components wired).
//
// Deploys a plan onto a cluster, accepts tenant queries, routes them with
// Algorithm 1, feeds query lifecycle events into the Tenant Activity
// Monitor, watches per-group RT-TTP, and (optionally) reacts with
// lightweight elastic scaling.
//
// SLA accounting follows the paper's Fig 7.7 definition: a query's
// normalized performance is its measured latency divided by the latency it
// would have had "when measured in an isolated environment" — the tenant
// alone on a dedicated MPPDB of exactly its requested node count, *with the
// tenant's own concurrency included* (a batch of M queries processor-shares
// the dedicated instance too; that slowdown is the tenant's own node-choice,
// §4.4). The service computes this counterfactual exactly by mirroring every
// submission onto a per-tenant shadow instance of the requested size.

#ifndef THRIFTY_CORE_SERVICE_H_
#define THRIFTY_CORE_SERVICE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "core/deployment_master.h"
#include "core/tenant_activity_monitor.h"
#include "mppdb/catalog.h"
#include "mppdb/cluster.h"
#include "routing/query_router.h"
#include "scaling/elastic_scaler.h"
#include "workload/query_log.h"

namespace thrifty {

/// \brief Service configuration.
struct ServiceOptions {
  /// Replication factor R (must match the deployed plan).
  int replication_factor = 3;
  /// Performance SLA guarantee P.
  double sla_fraction = 0.999;
  /// Enable §5.1 lightweight elastic scaling.
  bool elastic_scaling = true;
  ElasticScalerOptions scaling;
  /// A query meets its SLA when normalized performance <= tolerance.
  /// Slightly above 1 to absorb millisecond event rounding.
  double sla_tolerance = 1.01;
  /// Executor mode for the per-tenant shadow instances. Cluster instances
  /// take their mode from Cluster::set_executor_mode; set both when running
  /// a dual-mode audit so the whole service is on one executor.
  PsExecutorMode executor_mode = PsExecutorMode::kVirtualTime;
};

/// \brief Outcome of one query: real execution + isolated counterfactual.
struct QueryOutcome {
  QueryCompletion real;
  /// Latency of the same submission on the tenant's dedicated shadow
  /// instance (isolated environment).
  SimDuration isolated_latency = 0;

  /// \brief Measured / isolated; 1.0 = "as quick as it should be".
  double NormalizedPerformance() const {
    return isolated_latency <= 0
               ? 0
               : static_cast<double>(real.MeasuredLatency()) /
                     static_cast<double>(isolated_latency);
  }
};

/// \brief Aggregated SLA statistics.
struct ServiceMetrics {
  size_t completed = 0;
  size_t sla_met = 0;
  /// Distribution of normalized performance (1.0 = dedicated speed).
  Histogram normalized_performance{0.01, 1.02};

  double SlaAttainment() const {
    return completed == 0 ? 1.0
                          : static_cast<double>(sla_met) /
                                static_cast<double>(completed);
  }
};

/// \brief The full consolidated MPPDB service.
class ThriftyService {
 public:
  using CompletionHook = std::function<void(const QueryOutcome&)>;

  /// \brief All pointers must outlive the service.
  ThriftyService(SimEngine* engine, Cluster* cluster,
                 const QueryCatalog* catalog,
                 ServiceOptions options = ServiceOptions());

  /// \brief Deploys a plan: starts MPPDBs, places tenants, registers
  /// routing and monitoring, and (if enabled) starts the elastic scaler.
  ///
  /// With elastic scaling enabled the scaler's periodic check keeps the
  /// event queue non-empty forever; drive the simulation with
  /// SimEngine::RunUntil rather than Run.
  Status Deploy(const DeploymentPlan& plan);

  /// \brief Accepts one query from a tenant at the current simulated time.
  ///
  /// Routes per Algorithm 1 and begins execution immediately.
  Result<InstanceId> SubmitQuery(TenantId tenant, TemplateId template_id);

  /// \brief Replays tenant logs through the service: each log entry's query
  /// is submitted at its logged time (entries before now are skipped).
  ///
  /// Replay is scheduled lazily (one pending event per tenant), so large
  /// logs do not bloat the event queue.
  Status ScheduleLogReplay(std::vector<TenantLog> logs);

  /// \brief Fired once per query when both the real execution and the
  /// isolated counterfactual have finished (after metrics are updated).
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  TenantActivityMonitor* activity_monitor() { return &monitor_; }
  QueryRouter* router() { return &router_; }
  ElasticScaler* scaler() { return scaler_.get(); }
  const ServiceMetrics& metrics() const { return metrics_; }
  const ServiceOptions& options() const { return options_; }

  /// \brief The deployed tenant specs (by id).
  Result<const TenantSpec*> TenantInfo(TenantId tenant) const;

  /// \brief The plan this service was deployed with (valid after Deploy).
  const DeploymentPlan& plan() const { return plan_; }

  SimEngine* engine() { return engine_; }
  Cluster* cluster() { return cluster_; }
  const QueryCatalog* catalog() const { return catalog_; }

 private:
  void OnRealCompletion(const QueryCompletion& completion);
  void OnShadowCompletion(const QueryCompletion& completion);
  void FinalizeOutcome(QueryId query_id);
  void ReplayNext(size_t log_index, size_t entry_index);

  SimEngine* engine_;
  Cluster* cluster_;
  const QueryCatalog* catalog_;
  ServiceOptions options_;
  QueryRouter router_;
  TenantActivityMonitor monitor_;
  std::unique_ptr<ElasticScaler> scaler_;
  DeploymentPlan plan_;
  std::unordered_map<TenantId, TenantSpec> tenants_;
  /// Per-tenant dedicated counterfactual executors (no cluster resources).
  std::unordered_map<TenantId, std::unique_ptr<MppdbInstance>> shadows_;
  struct PendingOutcome {
    QueryCompletion real;
    SimDuration isolated_latency = 0;
    bool real_done = false;
    bool shadow_done = false;
  };
  std::unordered_map<QueryId, PendingOutcome> pending_;
  std::vector<TenantLog> replay_logs_;
  ServiceMetrics metrics_;
  CompletionHook completion_hook_;
  QueryId next_query_id_ = 0;
  InstanceId next_shadow_id_ = 1'000'000;  // distinct from cluster ids
  bool deployed_ = false;
};

}  // namespace thrifty

#endif  // THRIFTY_CORE_SERVICE_H_
