#include "core/deployment_master.h"

#include <cassert>

namespace thrifty {

DeploymentMaster::DeploymentMaster(Cluster* cluster, QueryRouter* router)
    : cluster_(cluster), router_(router) {
  assert(cluster != nullptr && router != nullptr);
}

Result<std::vector<DeployedGroup>> DeploymentMaster::Deploy(
    const DeploymentPlan& plan) {
  std::vector<DeployedGroup> deployed;
  deployed.reserve(plan.groups.size());
  for (const auto& group : plan.groups) {
    THRIFTY_ASSIGN_OR_RETURN(DeployedGroup dg, DeployGroup(group));
    deployed.push_back(std::move(dg));
  }
  return deployed;
}

Result<DeployedGroup> DeploymentMaster::DeployGroup(
    const GroupDeployment& group) {
  DeployedGroup dg;
  dg.group_id = group.group_id;
  for (int nodes : group.cluster.mppdb_nodes) {
    THRIFTY_ASSIGN_OR_RETURN(MppdbInstance * instance,
                             cluster_->CreateInstanceOnline(nodes));
    // Tenant placement: every member's data goes on every MPPDB of the
    // group (replication factor A).
    for (const auto& tenant : group.tenants) {
      instance->AddTenant(tenant.id, tenant.data_gb);
    }
    dg.instances.push_back(instance);
  }
  std::vector<TenantId> tenant_ids;
  tenant_ids.reserve(group.tenants.size());
  for (const auto& tenant : group.tenants) tenant_ids.push_back(tenant.id);
  THRIFTY_RETURN_NOT_OK(
      router_->AddGroup(group.group_id, dg.instances, tenant_ids));
  return dg;
}

Status DeploymentMaster::UndeployGroup(
    GroupId group_id, const std::vector<InstanceId>& instances) {
  THRIFTY_RETURN_NOT_OK(router_->RemoveGroup(group_id));
  for (InstanceId id : instances) {
    THRIFTY_RETURN_NOT_OK(cluster_->DecommissionInstance(id));
  }
  return Status::OK();
}

}  // namespace thrifty
