// The (re)-consolidation cycle (Chapter 3, §5.1).
//
// "The deployment is supposed to be static for days. A (re)-consolidation
// process is expected to be executed periodically, because it is expected
// that there are new tenants register with and existing tenants de-register
// with the service." Additionally, any tenant-group that went through
// elastic scaling lands on the re-consolidation list.
//
// The planner keeps unaffected tenant-groups exactly as deployed (their
// MPPDBs and loaded data are untouched) and re-runs tenant grouping only
// over the affected tenants: members of scaled groups, members of groups
// that lost a de-registered tenant, and newly registered tenants.

#ifndef THRIFTY_CORE_RECONSOLIDATION_H_
#define THRIFTY_CORE_RECONSOLIDATION_H_

#include <unordered_set>
#include <vector>

#include "core/deployment_advisor.h"

namespace thrifty {

/// \brief Input state for one re-consolidation cycle.
struct ReconsolidationInput {
  /// The currently deployed plan.
  DeploymentPlan current_plan;
  /// Groups that went through elastic scaling since the last cycle.
  std::unordered_set<GroupId> scaled_groups;
  /// Tenants newly registered with the service.
  std::vector<TenantSpec> new_tenants;
  /// Tenants that de-registered (their groups are re-consolidated too).
  std::unordered_set<TenantId> deregistered;
};

/// \brief Output of one cycle.
struct ReconsolidationOutput {
  /// The updated plan: untouched groups keep their ids; regrouped tenants
  /// get fresh group ids appended after them.
  DeploymentPlan plan;
  /// Tenants that were regrouped this cycle (excluding de-registered).
  std::vector<TenantSpec> regrouped_tenants;
  /// Group ids carried over untouched.
  std::vector<GroupId> untouched_groups;
};

/// \brief Plans re-consolidation cycles.
class ReconsolidationPlanner {
 public:
  explicit ReconsolidationPlanner(AdvisorOptions options = AdvisorOptions());

  /// \brief Computes the next deployment plan.
  ///
  /// `history` must contain logs for every affected tenant (new tenants and
  /// members of affected groups); logs of untouched tenants are not needed.
  Result<ReconsolidationOutput> Plan(const ReconsolidationInput& input,
                                     const std::vector<TenantLog>& history,
                                     SimTime history_begin,
                                     SimTime history_end) const;

 private:
  AdvisorOptions options_;
};

}  // namespace thrifty

#endif  // THRIFTY_CORE_RECONSOLIDATION_H_
