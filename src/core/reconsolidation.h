// The (re)-consolidation cycle (Chapter 3, §5.1).
//
// "The deployment is supposed to be static for days. A (re)-consolidation
// process is expected to be executed periodically, because it is expected
// that there are new tenants register with and existing tenants de-register
// with the service." Additionally, any tenant-group that went through
// elastic scaling lands on the re-consolidation list.
//
// The planner is a *delta* solver: it keeps unaffected tenant-groups
// byte-identically as deployed (same group ids, same MPPDBs, loaded data
// untouched) and re-runs tenant grouping only over the affected tenants —
// members of scaled groups, members of groups that lost a de-registered
// tenant, members of groups whose activity fingerprint drifted beyond
// ReconsolidationOptions::activity_delta_threshold, and newly registered
// tenants. The re-solve tries both a warm start from the previous grouping
// of the affected tenants — the two-step solver's group repair (evict only
// the members that break the SLA, keep the rest grouped) carries most of
// the old structure over — and a cold re-grow of the same subset, keeping
// whichever plan consumes fewer nodes (ties prefer the warm one's stable
// memberships).

#ifndef THRIFTY_CORE_RECONSOLIDATION_H_
#define THRIFTY_CORE_RECONSOLIDATION_H_

#include <unordered_set>
#include <vector>

#include "core/deployment_advisor.h"

namespace thrifty {

/// \brief Re-consolidation knobs on top of the advisor configuration.
struct ReconsolidationOptions {
  AdvisorOptions advisor;
  /// Activity-drift screening: a group none of whose explicit triggers
  /// fired (not scaled, no de-registration) is still re-solved when some
  /// member's current activity fingerprint (TenantLog::ActiveRatio over
  /// the cycle's history window) moved more than this from the baseline
  /// recorded in GroupDeployment::member_activity_baseline. Members with
  /// no log in `history` or groups without a recorded baseline never
  /// trigger. Negative disables drift screening (the pre-delta behavior:
  /// only explicit triggers re-solve).
  double activity_delta_threshold = -1.0;
  /// Warm-start the re-solve with the affected groups' previous
  /// memberships, letting group repair keep feasible structure. The warm
  /// result is kept only when it consumes no more nodes than a cold
  /// re-solve of the same subset (seed-kept groups can only grow, so a
  /// sticky seed can occasionally pack worse; ties keep the warm plan's
  /// stable memberships). Disable to re-solve the affected tenants cold
  /// only.
  bool warm_start_from_plan = true;
  /// For each size class holding an affected tenant, additionally re-solve
  /// this many of the class's least-populated unaffected groups (the
  /// greedy tail), so hard-to-pack affected tenants can merge into their
  /// spare capacity instead of founding fragment groups — this is what
  /// keeps the delta plan's effectiveness at the cold solve's level.
  /// 0 disables (affected tenants are re-solved strictly alone).
  int absorbers_per_class = 3;
};

/// \brief Input state for one re-consolidation cycle.
struct ReconsolidationInput {
  /// The currently deployed plan.
  DeploymentPlan current_plan;
  /// Groups that went through elastic scaling since the last cycle.
  std::unordered_set<GroupId> scaled_groups;
  /// Tenants newly registered with the service.
  std::vector<TenantSpec> new_tenants;
  /// Tenants that de-registered (their groups are re-consolidated too).
  std::unordered_set<TenantId> deregistered;
};

/// \brief Output of one cycle.
struct ReconsolidationOutput {
  /// The updated plan. Untouched groups keep their group ids and are
  /// copied byte-identically; regrouped tenants get fresh group ids
  /// assigned densely starting one past the input plan's highest id, so a
  /// dissolved group's id is never reused within the cycle.
  DeploymentPlan plan;
  /// Tenants that were regrouped this cycle (excluding de-registered).
  std::vector<TenantSpec> regrouped_tenants;
  /// Group ids carried over untouched.
  std::vector<GroupId> untouched_groups;
  /// Input-plan group ids that were re-solved this cycle.
  std::vector<GroupId> resolved_groups;
  /// How many of `resolved_groups` were triggered purely by activity
  /// drift (fingerprint moved beyond activity_delta_threshold).
  size_t drifted_groups = 0;
  /// How many of `resolved_groups` were opened as absorbers (the
  /// `absorbers_per_class` least-populated unaffected groups of each size
  /// class holding an affected tenant).
  size_t absorber_groups = 0;
  /// Solver accounting of the delta re-solve (warm kept/repaired/evicted,
  /// solve wall time). Default-initialized when nothing was affected.
  GroupingSolution grouping;
};

/// \brief Plans re-consolidation cycles.
class ReconsolidationPlanner {
 public:
  explicit ReconsolidationPlanner(ReconsolidationOptions options);
  /// Advisor-options-only form: drift screening disabled, warm start on.
  explicit ReconsolidationPlanner(AdvisorOptions options = AdvisorOptions());

  /// \brief Computes the next deployment plan.
  ///
  /// `history` must contain logs for every affected tenant (new tenants and
  /// members of affected groups); logs of untouched tenants are only needed
  /// for drift screening (absent logs simply are not screened).
  Result<ReconsolidationOutput> Plan(const ReconsolidationInput& input,
                                     const std::vector<TenantLog>& history,
                                     SimTime history_begin,
                                     SimTime history_end) const;

 private:
  ReconsolidationOptions options_;
};

}  // namespace thrifty

#endif  // THRIFTY_CORE_RECONSOLIDATION_H_
