#include "core/reconsolidation.h"

#include <algorithm>
#include <string>

namespace thrifty {

ReconsolidationPlanner::ReconsolidationPlanner(AdvisorOptions options)
    : options_(options) {}

Result<ReconsolidationOutput> ReconsolidationPlanner::Plan(
    const ReconsolidationInput& input, const std::vector<TenantLog>& history,
    SimTime history_begin, SimTime history_end) const {
  ReconsolidationOutput output;
  output.plan.replication_factor = options_.replication_factor;
  output.plan.sla_fraction = options_.sla_fraction;

  // Partition current groups into untouched and affected.
  std::vector<TenantSpec> affected = input.new_tenants;
  for (const auto& group : input.current_plan.groups) {
    bool scaled = input.scaled_groups.count(group.group_id) > 0;
    bool lost_member = std::any_of(
        group.tenants.begin(), group.tenants.end(),
        [&](const TenantSpec& t) { return input.deregistered.count(t.id); });
    if (!scaled && !lost_member) {
      GroupDeployment copy = group;
      copy.group_id = static_cast<GroupId>(output.plan.groups.size());
      output.untouched_groups.push_back(group.group_id);
      output.plan.groups.push_back(std::move(copy));
      continue;
    }
    for (const auto& tenant : group.tenants) {
      if (!input.deregistered.count(tenant.id)) {
        affected.push_back(tenant);
      }
    }
  }
  for (const auto& tenant : input.new_tenants) {
    if (input.deregistered.count(tenant.id)) {
      return Status::InvalidArgument(
          "tenant " + std::to_string(tenant.id) +
          " is both newly registered and de-registered");
    }
  }

  output.regrouped_tenants = affected;
  if (affected.empty()) {
    return output;
  }

  // Regroup the affected tenants from their recent history.
  DeploymentAdvisor advisor(options_);
  THRIFTY_ASSIGN_OR_RETURN(
      AdvisorOutput advised,
      advisor.Advise(affected, history, history_begin, history_end));
  for (auto& group : advised.plan.groups) {
    group.group_id = static_cast<GroupId>(output.plan.groups.size());
    output.plan.groups.push_back(std::move(group));
  }
  // Always-active tenants the advisor excluded are regrouped as singleton
  // dedicated groups so no tenant is dropped from the plan.
  for (const auto& excluded : advised.excluded_tenants) {
    GroupDeployment dedicated;
    dedicated.group_id = static_cast<GroupId>(output.plan.groups.size());
    dedicated.tenants.push_back(excluded);
    THRIFTY_ASSIGN_OR_RETURN(
        dedicated.cluster,
        DesignGroupCluster(excluded.requested_nodes, excluded.requested_nodes,
                           options_.replication_factor));
    output.plan.groups.push_back(std::move(dedicated));
  }
  return output;
}

}  // namespace thrifty
