#include "core/reconsolidation.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

namespace thrifty {

ReconsolidationPlanner::ReconsolidationPlanner(ReconsolidationOptions options)
    : options_(std::move(options)) {}

ReconsolidationPlanner::ReconsolidationPlanner(AdvisorOptions options) {
  options_.advisor = std::move(options);
}

Result<ReconsolidationOutput> ReconsolidationPlanner::Plan(
    const ReconsolidationInput& input, const std::vector<TenantLog>& history,
    SimTime history_begin, SimTime history_end) const {
  for (const auto& tenant : input.new_tenants) {
    if (input.deregistered.count(tenant.id)) {
      return Status::InvalidArgument(
          "tenant " + std::to_string(tenant.id) +
          " is both newly registered and de-registered");
    }
  }

  ReconsolidationOutput output;
  output.plan.replication_factor = options_.advisor.replication_factor;
  output.plan.sla_fraction = options_.advisor.sla_fraction;

  std::unordered_map<TenantId, const TenantLog*> logs_by_id;
  for (const auto& log : history) logs_by_id[log.tenant_id] = &log;

  // Fresh group ids start one past the input plan's highest id: untouched
  // groups keep their ids verbatim, and a dissolved group's id (even the
  // highest one) is never handed to a regrouped successor in this cycle.
  GroupId next_id = 0;
  for (const auto& group : input.current_plan.groups) {
    next_id = std::max(next_id, group.group_id + 1);
  }

  // Partition current groups into untouched and affected. A group is
  // affected when it was elastically scaled, lost a de-registered member,
  // or — with drift screening enabled — some member's activity fingerprint
  // over this cycle's window moved beyond the threshold recorded at plan
  // time.
  const double threshold = options_.activity_delta_threshold;
  const auto& groups = input.current_plan.groups;
  std::vector<bool> is_affected(groups.size(), false);
  for (size_t g = 0; g < groups.size(); ++g) {
    const GroupDeployment& group = groups[g];
    bool scaled = input.scaled_groups.count(group.group_id) > 0;
    bool lost_member = std::any_of(
        group.tenants.begin(), group.tenants.end(),
        [&](const TenantSpec& t) { return input.deregistered.count(t.id); });
    bool drifted = false;
    if (!scaled && !lost_member && threshold >= 0 &&
        group.member_activity_baseline.size() == group.tenants.size()) {
      for (size_t m = 0; m < group.tenants.size() && !drifted; ++m) {
        auto it = logs_by_id.find(group.tenants[m].id);
        if (it == logs_by_id.end()) continue;  // no signal, not screened
        double ratio = it->second->ActiveRatio(history_begin, history_end);
        drifted = std::abs(ratio - group.member_activity_baseline[m]) >
                  threshold;
      }
    }
    is_affected[g] = scaled || lost_member || drifted;
    if (drifted) ++output.drifted_groups;
  }

  // Absorbers: an affected tenant can only be re-placed into a group the
  // re-solve sees, so solving the affected tenants strictly alone packs
  // them worse than the full cold solve would (its hard-to-pack tenants
  // land in other groups' spare capacity). For every size class (requested
  // nodes; step 1 partitions by it) holding an affected tenant, open the
  // class's `absorbers_per_class` least-populated unaffected groups (ties:
  // lowest group id) to the re-solve. Those are the greedy tail groups —
  // exactly where a cold solve parks leftovers — and opening them also
  // re-merges any fragments a previous cycle left behind. Groups whose
  // members all carry an always-active baseline are skipped (the advisor
  // would only re-exclude them, churning their group id for nothing).
  if (options_.absorbers_per_class > 0) {
    std::unordered_set<int> affected_classes;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (is_affected[g]) {
        affected_classes.insert(groups[g].LargestTenantNodes());
      }
    }
    for (const auto& tenant : input.new_tenants) {
      affected_classes.insert(tenant.requested_nodes);
    }
    for (int size_class : affected_classes) {
      std::vector<size_t> candidates;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (is_affected[g]) continue;
        if (groups[g].LargestTenantNodes() != size_class) continue;
        bool all_always_active =
            !groups[g].member_activity_baseline.empty() &&
            std::all_of(groups[g].member_activity_baseline.begin(),
                        groups[g].member_activity_baseline.end(),
                        [&](double ratio) {
                          return ratio >
                                 options_.advisor.always_active_threshold;
                        });
        if (!all_always_active) candidates.push_back(g);
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](size_t a, size_t b) {
                  if (groups[a].tenants.size() != groups[b].tenants.size()) {
                    return groups[a].tenants.size() <
                           groups[b].tenants.size();
                  }
                  return groups[a].group_id < groups[b].group_id;
                });
      size_t take = std::min(
          candidates.size(),
          static_cast<size_t>(options_.absorbers_per_class));
      for (size_t a = 0; a < take; ++a) {
        is_affected[candidates[a]] = true;
        ++output.absorber_groups;
      }
    }
  }

  std::vector<TenantSpec> affected = input.new_tenants;
  std::vector<const GroupDeployment*> affected_groups;
  for (size_t g = 0; g < groups.size(); ++g) {
    const GroupDeployment& group = groups[g];
    if (!is_affected[g]) {
      output.untouched_groups.push_back(group.group_id);
      output.plan.groups.push_back(group);  // byte-identical, id kept
      continue;
    }
    output.resolved_groups.push_back(group.group_id);
    affected_groups.push_back(&group);
    for (const auto& tenant : group.tenants) {
      if (!input.deregistered.count(tenant.id)) {
        affected.push_back(tenant);
      }
    }
  }

  output.regrouped_tenants = affected;
  if (affected.empty()) {
    return output;
  }

  // Regroup the affected tenants from their recent history. The warm
  // attempt seeds the solver with the affected groups' previous
  // memberships, so group repair keeps whatever structure still meets the
  // SLA (de-registered members are filtered by the solver and show up in
  // grouping.warm_members_missing). Seed-kept groups can only grow,
  // though — they can never restructure *around* a hard-to-pack tenant —
  // so a cold attempt over the same (small) subset runs as well and the
  // planner keeps whichever plan consumes fewer nodes, ties going to the
  // warm one for membership stability.
  AdvisorOptions advisor_options = options_.advisor;
  DeploymentAdvisor advisor(advisor_options);
  THRIFTY_ASSIGN_OR_RETURN(
      AdvisorOutput advised,
      advisor.Advise(affected, history, history_begin, history_end));
  if (options_.warm_start_from_plan && !affected_groups.empty()) {
    GroupingSolution seed;
    seed.groups.reserve(affected_groups.size());
    for (const GroupDeployment* group : affected_groups) {
      TenantGroupResult seed_group;
      seed_group.max_nodes = group->LargestTenantNodes();
      for (const auto& tenant : group->tenants) {
        seed_group.tenant_ids.push_back(tenant.id);
      }
      seed.groups.push_back(std::move(seed_group));
    }
    AdvisorOptions warm_options = advisor_options;
    warm_options.warm_start = &seed;
    DeploymentAdvisor warm_advisor(warm_options);
    THRIFTY_ASSIGN_OR_RETURN(
        AdvisorOutput warm,
        warm_advisor.Advise(affected, history, history_begin, history_end));
    if (warm.plan.TotalNodesUsed() <= advised.plan.TotalNodesUsed()) {
      advised = std::move(warm);
    }
  }
  output.grouping = std::move(advised.grouping);
  for (auto& group : advised.plan.groups) {
    group.group_id = next_id++;
    output.plan.groups.push_back(std::move(group));
  }
  // Always-active tenants the advisor excluded are regrouped as singleton
  // dedicated groups so no tenant is dropped from the plan.
  for (size_t e = 0; e < advised.excluded_tenants.size(); ++e) {
    const TenantSpec& excluded = advised.excluded_tenants[e];
    GroupDeployment dedicated;
    dedicated.group_id = next_id++;
    dedicated.tenants.push_back(excluded);
    dedicated.member_activity_baseline.push_back(
        advised.excluded_active_ratios[e]);
    THRIFTY_ASSIGN_OR_RETURN(
        dedicated.cluster,
        DesignGroupCluster(excluded.requested_nodes, excluded.requested_nodes,
                           options_.advisor.replication_factor));
    output.plan.groups.push_back(std::move(dedicated));
  }
  return output;
}

}  // namespace thrifty
