#include "core/service.h"

#include <cassert>
#include <string>

namespace thrifty {

ThriftyService::ThriftyService(SimEngine* engine, Cluster* cluster,
                               const QueryCatalog* catalog,
                               ServiceOptions options)
    : engine_(engine),
      cluster_(cluster),
      catalog_(catalog),
      options_(options),
      monitor_(options.replication_factor, options.scaling.window) {
  assert(engine != nullptr && cluster != nullptr && catalog != nullptr);
  cluster_->set_default_completion_callback(
      [this](const QueryCompletion& c) { OnRealCompletion(c); });
}

Status ThriftyService::Deploy(const DeploymentPlan& plan) {
  if (deployed_) {
    return Status::FailedPrecondition("service already deployed");
  }
  if (plan.replication_factor != options_.replication_factor) {
    return Status::InvalidArgument(
        "plan replication factor does not match service options");
  }
  DeploymentMaster master(cluster_, &router_);
  THRIFTY_ASSIGN_OR_RETURN(std::vector<DeployedGroup> deployed,
                           master.Deploy(plan));
  (void)deployed;

  if (options_.elastic_scaling) {
    scaler_ = std::make_unique<ElasticScaler>(
        engine_, cluster_, monitor_.tracker(), options_.replication_factor,
        options_.sla_fraction, options_.scaling);
    scaler_->set_exclusion_callback(
        [this](GroupId group, const std::vector<TenantId>& tenants,
               SimTime now) {
          Status st = monitor_.ExcludeTenants(group, tenants, now);
          assert(st.ok());
          (void)st;
        });
  }

  for (const GroupDeployment& group : plan.groups) {
    std::vector<TenantId> ids;
    for (const auto& tenant : group.tenants) {
      tenants_[tenant.id] = tenant;
      ids.push_back(tenant.id);
      // The isolated-environment counterfactual: a dedicated instance of
      // exactly the requested size, mirroring this tenant's submissions.
      auto shadow = std::make_unique<MppdbInstance>(
          next_shadow_id_++, tenant.requested_nodes, engine_,
          InstanceState::kOnline, options_.executor_mode);
      shadow->AddTenant(tenant.id, tenant.data_gb);
      shadow->set_completion_callback(
          [this](const QueryCompletion& c) { OnShadowCompletion(c); });
      shadows_[tenant.id] = std::move(shadow);
    }
    THRIFTY_RETURN_NOT_OK(monitor_.RegisterGroup(group.group_id, ids));
    if (scaler_) {
      THRIFTY_ASSIGN_OR_RETURN(GroupRouter * group_router,
                               router_.RouterForGroup(group.group_id));
      THRIFTY_ASSIGN_OR_RETURN(RtTtpMonitor * rt_monitor,
                               monitor_.GroupMonitor(group.group_id));
      scaler_->AddGroup(group.group_id, group.tenants, group_router,
                        rt_monitor);
    }
  }
  if (scaler_) scaler_->Start();
  plan_ = plan;
  deployed_ = true;
  return Status::OK();
}

Result<InstanceId> ThriftyService::SubmitQuery(TenantId tenant,
                                               TemplateId template_id) {
  if (!deployed_) {
    return Status::FailedPrecondition("service not deployed");
  }
  auto spec_it = tenants_.find(tenant);
  if (spec_it == tenants_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant) +
                            " not deployed");
  }
  const TenantSpec& spec = spec_it->second;
  const QueryTemplate& tmpl = catalog_->Get(template_id);

  THRIFTY_ASSIGN_OR_RETURN(RouteDecision decision, router_.Route(tenant));

  QuerySubmission submission;
  submission.query_id = next_query_id_++;
  submission.tenant_id = tenant;
  submission.template_id = template_id;
  submission.reference_latency =
      tmpl.DedicatedLatency(spec.data_gb, spec.requested_nodes);
  THRIFTY_RETURN_NOT_OK(decision.instance->Submit(submission, tmpl));
  // Mirror onto the shadow instance (same query id, same submit time).
  Status shadow_st = shadows_.at(tenant)->Submit(submission, tmpl);
  assert(shadow_st.ok());
  (void)shadow_st;
  router_.RecordTemplateSubmit(template_id);
  monitor_.OnQueryStart(tenant, engine_->now());
  return decision.instance->id();
}

void ThriftyService::OnRealCompletion(const QueryCompletion& completion) {
  Status st = monitor_.OnQueryFinish(completion.tenant_id,
                                     completion.finish_time);
  assert(st.ok());
  (void)st;
  router_.RecordTemplateComplete(completion.template_id);
  PendingOutcome& pending = pending_[completion.query_id];
  pending.real = completion;
  pending.real_done = true;
  FinalizeOutcome(completion.query_id);
}

void ThriftyService::OnShadowCompletion(const QueryCompletion& completion) {
  PendingOutcome& pending = pending_[completion.query_id];
  pending.isolated_latency = completion.MeasuredLatency();
  pending.shadow_done = true;
  FinalizeOutcome(completion.query_id);
}

void ThriftyService::FinalizeOutcome(QueryId query_id) {
  auto it = pending_.find(query_id);
  if (it == pending_.end() || !it->second.real_done ||
      !it->second.shadow_done) {
    return;
  }
  QueryOutcome outcome;
  outcome.real = it->second.real;
  outcome.isolated_latency = it->second.isolated_latency;
  pending_.erase(it);

  ++metrics_.completed;
  double normalized = outcome.NormalizedPerformance();
  metrics_.normalized_performance.Add(normalized);
  if (normalized <= options_.sla_tolerance + 1e-9) {
    ++metrics_.sla_met;
  }
  if (completion_hook_) completion_hook_(outcome);
}

Status ThriftyService::ScheduleLogReplay(std::vector<TenantLog> logs) {
  if (!deployed_) {
    return Status::FailedPrecondition("service not deployed");
  }
  size_t base = replay_logs_.size();
  for (auto& log : logs) {
    if (!tenants_.count(log.tenant_id)) {
      return Status::NotFound("tenant " + std::to_string(log.tenant_id) +
                              " not deployed");
    }
    replay_logs_.push_back(std::move(log));
  }
  for (size_t i = base; i < replay_logs_.size(); ++i) {
    ReplayNext(i, 0);
  }
  return Status::OK();
}

void ThriftyService::ReplayNext(size_t log_index, size_t entry_index) {
  const TenantLog& log = replay_logs_[log_index];
  // Skip entries already in the past (e.g. history that predates deploy).
  while (entry_index < log.entries.size() &&
         log.entries[entry_index].submit_time < engine_->now()) {
    ++entry_index;
  }
  if (entry_index >= log.entries.size()) return;
  const QueryLogEntry& entry = log.entries[entry_index];
  engine_->ScheduleAt(
      entry.submit_time, [this, log_index, entry_index](SimTime) {
        const TenantLog& l = replay_logs_[log_index];
        auto result =
            SubmitQuery(l.tenant_id, l.entries[entry_index].template_id);
        assert(result.ok());
        (void)result;
        ReplayNext(log_index, entry_index + 1);
      });
}

Result<const TenantSpec*> ThriftyService::TenantInfo(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant) +
                            " not deployed");
  }
  return &it->second;
}

}  // namespace thrifty
