#include "core/deployment_advisor.h"

#include <string>
#include <unordered_map>

#include "activity/activity_vector.h"
#include "placement/two_step.h"

namespace thrifty {

int64_t AdvisorOutput::ExcludedNodes() const {
  int64_t total = 0;
  for (const auto& t : excluded_tenants) total += t.requested_nodes;
  return total;
}

DeploymentAdvisor::DeploymentAdvisor(AdvisorOptions options)
    : options_(options) {}

Result<AdvisorOutput> DeploymentAdvisor::Advise(
    const std::vector<TenantSpec>& tenants,
    const std::vector<TenantLog>& history, SimTime history_begin,
    SimTime history_end) const {
  if (history_end <= history_begin) {
    return Status::InvalidArgument("empty history window");
  }
  EpochConfig epochs;
  epochs.epoch_size = options_.epoch_size;
  epochs.begin = history_begin;
  epochs.end = history_end;

  std::unordered_map<TenantId, const TenantLog*> logs_by_id;
  for (const auto& log : history) logs_by_id[log.tenant_id] = &log;

  AdvisorOutput output;
  std::vector<TenantSpec> consolidated;
  std::vector<ActivityVector> activities;
  activities.reserve(tenants.size());
  for (const auto& spec : tenants) {
    auto it = logs_by_id.find(spec.id);
    if (it == logs_by_id.end()) {
      return Status::InvalidArgument("no history for tenant " +
                                     std::to_string(spec.id));
    }
    ActivityVector activity = MakeActivityVector(*it->second, epochs);
    if (activity.ActiveRatio() > options_.always_active_threshold) {
      output.excluded_tenants.push_back(spec);
      output.excluded_active_ratios.push_back(
          it->second->ActiveRatio(history_begin, history_end));
      continue;
    }
    if (options_.burst_exclusion_horizon > 0) {
      // §5.1: tenants with a regular burst about to arrive are excluded
      // from consolidation ahead of time. Insufficient history is not an
      // error — the tenant simply is not screened.
      auto report = DetectRegularBursts(it->second->ActivityIntervals(),
                                        history_begin, history_end,
                                        options_.burst_detector);
      if (report.ok() && report->HasRegularBursts()) {
        bool imminent = false;
        for (const auto& window : report->windows) {
          TimeInterval next = window.NextOccurrence(
              history_end, options_.burst_detector.period);
          if (next.begin <
              history_end + options_.burst_exclusion_horizon) {
            imminent = true;
            break;
          }
        }
        if (imminent) {
          output.excluded_tenants.push_back(spec);
          output.excluded_active_ratios.push_back(
              it->second->ActiveRatio(history_begin, history_end));
          continue;
        }
      }
    }
    consolidated.push_back(spec);
    activities.push_back(std::move(activity));
  }
  if (consolidated.empty()) {
    output.plan.replication_factor = options_.replication_factor;
    output.plan.sla_fraction = options_.sla_fraction;
    return output;
  }

  THRIFTY_ASSIGN_OR_RETURN(
      PackingProblem problem,
      MakePackingProblem(consolidated, activities, options_.replication_factor,
                         options_.sla_fraction));
  TwoStepOptions two_step;
  two_step.solver_jobs = options_.solver_jobs;
  two_step.warm_start = options_.warm_start;
  two_step.warm_repair = options_.warm_repair;
  Result<GroupingSolution> solved =
      options_.solver == GroupingSolver::kTwoStep
          ? SolveTwoStep(problem, two_step)
          : SolveFfd(problem);
  THRIFTY_RETURN_NOT_OK(solved.status());
  output.grouping = std::move(solved).value();

  THRIFTY_ASSIGN_OR_RETURN(
      output.plan,
      BuildDeploymentPlan(consolidated, output.grouping,
                          options_.replication_factor, options_.sla_fraction));
  // Record each member's activity fingerprint over the advised window, so
  // later re-consolidation cycles can detect groups whose activity drifted
  // without re-solving everything.
  for (auto& group : output.plan.groups) {
    group.member_activity_baseline.reserve(group.tenants.size());
    for (const auto& tenant : group.tenants) {
      group.member_activity_baseline.push_back(
          logs_by_id.at(tenant.id)->ActiveRatio(history_begin, history_end));
    }
  }
  return output;
}

}  // namespace thrifty
