// The Deployment Master (Fig 3.1 component (c)).
//
// Follows the deployment plan: starts one MPPDB per (group, replica),
// deploys every group member's data on each of the group's MPPDBs
// (tenant placement = full replication within the group, Property 1),
// registers the groups with the Query Router, and leaves unused nodes
// hibernated in the cluster pool.

#ifndef THRIFTY_CORE_DEPLOYMENT_MASTER_H_
#define THRIFTY_CORE_DEPLOYMENT_MASTER_H_

#include <vector>

#include "common/result.h"
#include "mppdb/cluster.h"
#include "placement/deployment_plan.h"
#include "routing/query_router.h"

namespace thrifty {

/// \brief Instances deployed for one tenant-group (index 0 = MPPDB_0).
struct DeployedGroup {
  GroupId group_id = -1;
  std::vector<MppdbInstance*> instances;
};

/// \brief Applies deployment plans to a cluster.
class DeploymentMaster {
 public:
  DeploymentMaster(Cluster* cluster, QueryRouter* router);

  /// \brief Starts all MPPDBs of the plan (synchronously online — the
  /// initial deployment completes before the service opens) and registers
  /// routing. Fails without side-effect rollback if the pool is too small,
  /// so size the cluster from DeploymentPlan::TotalNodesUsed() first.
  Result<std::vector<DeployedGroup>> Deploy(const DeploymentPlan& plan);

  /// \brief Deploys a single tenant-group: one instance per cluster-design
  /// MPPDB, every member's data on each, routing registered. The unit the
  /// streaming service applies re-consolidation deltas with.
  Result<DeployedGroup> DeployGroup(const GroupDeployment& group);

  /// \brief Tears a group down: unregisters routing and decommissions the
  /// given instances (they must be idle). The inverse of DeployGroup for
  /// groups a re-consolidation cycle dissolved.
  Status UndeployGroup(GroupId group_id,
                       const std::vector<InstanceId>& instances);

  Cluster* cluster() const { return cluster_; }
  QueryRouter* router() const { return router_; }

 private:
  Cluster* cluster_;
  QueryRouter* router_;
};

}  // namespace thrifty

#endif  // THRIFTY_CORE_DEPLOYMENT_MASTER_H_
