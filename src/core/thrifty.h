// Umbrella header: the Thrifty public API.
//
// Typical flow (see examples/quickstart.cc):
//   1. Generate or collect tenant logs        (workload/)
//   2. DeploymentAdvisor::Advise              (core/deployment_advisor.h)
//   3. Size a Cluster, ThriftyService::Deploy (core/service.h)
//   4. Submit queries / replay logs           (core/service.h)
//   5. Watch RT-TTP + elastic scaling         (scaling/)

#ifndef THRIFTY_CORE_THRIFTY_H_
#define THRIFTY_CORE_THRIFTY_H_

#include "activity/activity_monitor.h"
#include "activity/burst_detection.h"
#include "activity/activity_vector.h"
#include "activity/epoch.h"
#include "activity/level_set.h"
#include "activity/streamed_epochizer.h"
#include "common/distributions.h"
#include "common/histogram.h"
#include "common/interval.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/admin_report.h"
#include "core/deployment_advisor.h"
#include "core/deployment_master.h"
#include "core/reconsolidation.h"
#include "core/service.h"
#include "core/tenant_activity_monitor.h"
#include "exp/sweep_runner.h"
#include "mppdb/catalog.h"
#include "mppdb/cluster.h"
#include "mppdb/instance.h"
#include "mppdb/provisioning.h"
#include "mppdb/query_model.h"
#include "placement/cluster_design.h"
#include "placement/deployment_plan.h"
#include "placement/divergent.h"
#include "placement/exact.h"
#include "placement/heterogeneous.h"
#include "placement/ffd.h"
#include "placement/minlp.h"
#include "placement/plan_io.h"
#include "placement/problem.h"
#include "placement/two_step.h"
#include "routing/query_router.h"
#include "scaling/elastic_scaler.h"
#include "scaling/manual_tuning.h"
#include "scaling/overactive.h"
#include "scaling/proactive.h"
#include "scaling/rt_ttp_monitor.h"
#include "sim/engine.h"
#include "workload/log_generator.h"
#include "workload/query_log.h"
#include "workload/session.h"
#include "workload/statistics.h"
#include "workload/tenant.h"
#include "workload/tenant_population.h"

#endif  // THRIFTY_CORE_THRIFTY_H_
