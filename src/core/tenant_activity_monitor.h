// The Tenant Activity Monitor (Fig 3.1 component (a)).
//
// Collects query lifecycle events from the deployed MPPDBs, derives tenant
// activities (per-tenant active intervals via TenantActivityTracker), and
// maintains per-tenant-group RT-TTP monitors for the Deployment Advisor and
// the elastic scaler. Tenants moved to dedicated MPPDBs by elastic scaling
// are excluded from their group's active-count bookkeeping.

#ifndef THRIFTY_CORE_TENANT_ACTIVITY_MONITOR_H_
#define THRIFTY_CORE_TENANT_ACTIVITY_MONITOR_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "activity/activity_monitor.h"
#include "common/result.h"
#include "placement/deployment_plan.h"
#include "scaling/rt_ttp_monitor.h"

namespace thrifty {

/// \brief Service-wide activity monitoring: tracker + per-group RT-TTP.
class TenantActivityMonitor {
 public:
  /// \param replication_factor R (the RT-TTP threshold).
  /// \param window RT-TTP sliding window.
  TenantActivityMonitor(int replication_factor,
                        SimDuration window = 24 * kHour);

  /// \brief Registers a tenant-group and its members.
  Status RegisterGroup(GroupId group_id, const std::vector<TenantId>& tenants);

  /// \brief Excludes tenants from their group's active-count bookkeeping
  /// (they moved to a dedicated MPPDB). Adjusts the live count if an
  /// excluded tenant is active right now.
  Status ExcludeTenants(GroupId group_id, const std::vector<TenantId>& tenants,
                        SimTime now);

  /// \brief Query lifecycle hooks (called by the service on routing and on
  /// completion).
  void OnQueryStart(TenantId tenant, SimTime now);
  Status OnQueryFinish(TenantId tenant, SimTime now);

  /// \brief The per-tenant tracker (activity history, active ratios).
  TenantActivityTracker* tracker() { return &tracker_; }

  /// \brief The RT-TTP monitor of one group.
  Result<RtTtpMonitor*> GroupMonitor(GroupId group_id);

  /// \brief Current number of non-excluded active tenants in a group.
  Result<int> ActiveTenantsInGroup(GroupId group_id) const;

 private:
  struct GroupState {
    std::unordered_set<TenantId> members;
    std::unordered_set<TenantId> excluded;
    int active_count = 0;
    std::unique_ptr<RtTtpMonitor> monitor;
  };

  void OnTransition(TenantId tenant, bool active, SimTime now);

  int replication_factor_;
  SimDuration window_;
  TenantActivityTracker tracker_;
  std::unordered_map<GroupId, GroupState> groups_;
  std::unordered_map<TenantId, GroupId> tenant_group_;
};

}  // namespace thrifty

#endif  // THRIFTY_CORE_TENANT_ACTIVITY_MONITOR_H_
