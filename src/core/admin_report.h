// Administrator status report (Fig 3.1: the Tenant Activity Monitor's
// information "is available to the system administrator for advanced system
// tuning", Chapter 6).
//
// Snapshots a running ThriftyService: cluster utilization, per-group
// RT-TTP / live active counts / manual-tuning advice, SLA attainment, and
// the elastic-scaling history.

#ifndef THRIFTY_CORE_ADMIN_REPORT_H_
#define THRIFTY_CORE_ADMIN_REPORT_H_

#include <ostream>
#include <vector>

#include "common/result.h"
#include "core/service.h"
#include "scaling/manual_tuning.h"

namespace thrifty {

/// \brief One tenant-group's operator view.
struct GroupStatus {
  GroupId group_id = -1;
  size_t num_tenants = 0;
  int num_mppdbs = 0;
  /// Node count of MPPDB_0 (U) and of the replicas (n_1).
  int tuning_nodes = 0;
  int replica_nodes = 0;
  /// 24h RT-TTP at snapshot time.
  double rt_ttp = 1.0;
  /// Tenants with queries running right now (excluded tenants not counted).
  int active_tenants = 0;
  /// Chapter 6 advice for this group at its current RT-TTP.
  TuningAction tuning_action = TuningAction::kNone;
  int recommended_tuning_nodes = 0;
  /// Whether the group already went through elastic scaling.
  bool scaled = false;
};

/// \brief One query template's traffic through the router (sorted by
/// template id; only templates that saw traffic appear).
struct TemplateUsage {
  TemplateId template_id = -1;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t InFlight() const { return submitted - completed; }
};

/// \brief Whole-service snapshot.
struct ServiceStatusReport {
  SimTime generated_at = 0;
  int nodes_total = 0;
  int nodes_in_use = 0;
  ServiceMetrics metrics;
  std::vector<GroupStatus> groups;
  std::vector<ScalingEvent> scaling_events;
  /// Per-template submit/complete counters — the operator's view of which
  /// templates are hot enough for shared-scan batching to pay off.
  std::vector<TemplateUsage> template_usage;
};

/// \brief Builds a snapshot of a deployed service.
Result<ServiceStatusReport> BuildStatusReport(ThriftyService* service);

/// \brief Renders the report as operator-readable tables.
void PrintStatusReport(const ServiceStatusReport& report, std::ostream& os);

}  // namespace thrifty

#endif  // THRIFTY_CORE_ADMIN_REPORT_H_
