// The Deployment Advisor (Fig 3.1 component (b)).
//
// Takes tenant activity history, tenant information, a replication factor R
// and a performance SLA guarantee P, and produces a deployment plan
// (cluster design + tenant placement). Always-active tenants offer no room
// for consolidation and are excluded (served by dedicated nodes under
// another service plan; Chapter 3 footnote).

#ifndef THRIFTY_CORE_DEPLOYMENT_ADVISOR_H_
#define THRIFTY_CORE_DEPLOYMENT_ADVISOR_H_

#include <vector>

#include "activity/burst_detection.h"
#include "common/result.h"
#include "placement/deployment_plan.h"
#include "placement/ffd.h"
#include "workload/query_log.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Which LIVBPwFC solver the advisor uses.
enum class GroupingSolver {
  kTwoStep,  // Algorithm 2 (default)
  kFfd,      // First-Fit-Decreasing baseline
};

/// \brief Advisor configuration.
struct AdvisorOptions {
  /// Replication factor R (also the number of MPPDBs A per group).
  int replication_factor = 3;
  /// Performance SLA guarantee P (fraction of time tenants meet their SLA).
  double sla_fraction = 0.999;
  /// Epoch size E for activity discretization (10-30 s is empirically best).
  SimDuration epoch_size = 10 * kSecond;
  GroupingSolver solver = GroupingSolver::kTwoStep;
  /// Tenants with an active ratio above this are excluded from
  /// consolidation.
  double always_active_threshold = 0.5;
  /// §5.1: exclude tenants whose regularly recurring burst window (detected
  /// over the history with `burst_detector`) starts within this horizon
  /// after deployment — "before the bursts arrive". 0 disables burst
  /// screening.
  SimDuration burst_exclusion_horizon = 0;
  BurstDetectorOptions burst_detector;
  /// Worker threads inside the grouping solve (TwoStepOptions::solver_jobs;
  /// bit-identical output for any value).
  int solver_jobs = 1;
  /// Optional warm-start seed for the two-step solver (non-owning; must
  /// outlive the Advise call). Infeasible seed groups are repaired by
  /// eviction per `warm_repair`. Ignored by the FFD solver.
  const GroupingSolution* warm_start = nullptr;
  /// See TwoStepOptions::warm_repair.
  bool warm_repair = true;
};

/// \brief The advisor's output.
struct AdvisorOutput {
  DeploymentPlan plan;
  /// The raw grouping (per-group TTP, max-active, solver wall time, warm
  /// kept/repaired/evicted accounting).
  GroupingSolution grouping;
  /// Tenants excluded from consolidation (dedicated service plan).
  std::vector<TenantSpec> excluded_tenants;
  /// Activity fingerprints of the excluded tenants over the advised
  /// window, parallel to `excluded_tenants` (the plan's groups carry their
  /// members' fingerprints in GroupDeployment::member_activity_baseline).
  std::vector<double> excluded_active_ratios;

  /// \brief Nodes consumed by excluded tenants' dedicated MPPDBs.
  int64_t ExcludedNodes() const;
};

/// \brief Computes deployment plans from tenant history.
class DeploymentAdvisor {
 public:
  explicit DeploymentAdvisor(AdvisorOptions options = AdvisorOptions());

  const AdvisorOptions& options() const { return options_; }

  /// \brief Produces a deployment plan from the given history window.
  ///
  /// `history` must contain one log per tenant in `tenants` (matched by id).
  Result<AdvisorOutput> Advise(const std::vector<TenantSpec>& tenants,
                               const std::vector<TenantLog>& history,
                               SimTime history_begin,
                               SimTime history_end) const;

 private:
  AdvisorOptions options_;
};

}  // namespace thrifty

#endif  // THRIFTY_CORE_DEPLOYMENT_ADVISOR_H_
