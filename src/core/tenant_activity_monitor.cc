#include "core/tenant_activity_monitor.h"

#include <string>

namespace thrifty {

TenantActivityMonitor::TenantActivityMonitor(int replication_factor,
                                             SimDuration window)
    : replication_factor_(replication_factor), window_(window) {
  tracker_.set_transition_callback(
      [this](TenantId tenant, bool active, SimTime now) {
        OnTransition(tenant, active, now);
      });
}

Status TenantActivityMonitor::RegisterGroup(
    GroupId group_id, const std::vector<TenantId>& tenants) {
  if (groups_.count(group_id)) {
    return Status::AlreadyExists("group " + std::to_string(group_id) +
                                 " already registered");
  }
  GroupState state;
  state.monitor = std::make_unique<RtTtpMonitor>(replication_factor_, window_);
  for (TenantId t : tenants) {
    auto [it, inserted] = tenant_group_.emplace(t, group_id);
    if (!inserted) {
      return Status::AlreadyExists("tenant " + std::to_string(t) +
                                   " already in group " +
                                   std::to_string(it->second));
    }
    state.members.insert(t);
  }
  groups_.emplace(group_id, std::move(state));
  return Status::OK();
}

Status TenantActivityMonitor::ExcludeTenants(
    GroupId group_id, const std::vector<TenantId>& tenants, SimTime now) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound("group " + std::to_string(group_id));
  }
  GroupState& state = it->second;
  bool changed = false;
  for (TenantId t : tenants) {
    if (!state.members.count(t)) {
      return Status::InvalidArgument("tenant " + std::to_string(t) +
                                     " is not a member of group " +
                                     std::to_string(group_id));
    }
    if (state.excluded.insert(t).second && tracker_.IsActive(t)) {
      --state.active_count;
      changed = true;
    }
  }
  if (changed) {
    state.monitor->OnActiveCountChange(now, state.active_count);
  }
  return Status::OK();
}

void TenantActivityMonitor::OnQueryStart(TenantId tenant, SimTime now) {
  tracker_.OnQueryStart(tenant, now);
}

Status TenantActivityMonitor::OnQueryFinish(TenantId tenant, SimTime now) {
  return tracker_.OnQueryFinish(tenant, now);
}

Result<RtTtpMonitor*> TenantActivityMonitor::GroupMonitor(GroupId group_id) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound("group " + std::to_string(group_id));
  }
  return it->second.monitor.get();
}

Result<int> TenantActivityMonitor::ActiveTenantsInGroup(
    GroupId group_id) const {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) {
    return Status::NotFound("group " + std::to_string(group_id));
  }
  return it->second.active_count;
}

void TenantActivityMonitor::OnTransition(TenantId tenant, bool active,
                                         SimTime now) {
  auto git = tenant_group_.find(tenant);
  if (git == tenant_group_.end()) return;  // unconsolidated tenant
  GroupState& state = groups_.at(git->second);
  if (state.excluded.count(tenant)) return;
  state.active_count += active ? 1 : -1;
  state.monitor->OnActiveCountChange(now, state.active_count);
}

}  // namespace thrifty
