#include "core/admin_report.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/table_printer.h"

namespace thrifty {

Result<ServiceStatusReport> BuildStatusReport(ThriftyService* service) {
  if (service == nullptr) {
    return Status::InvalidArgument("null service");
  }
  ServiceStatusReport report;
  report.generated_at = service->engine()->now();
  report.nodes_total = service->cluster()->total_nodes();
  report.nodes_in_use = service->cluster()->nodes_in_use();
  report.metrics = service->metrics();
  std::unordered_set<GroupId> scaled_groups;
  if (service->scaler() != nullptr) {
    report.scaling_events = service->scaler()->events();
    scaled_groups = service->scaler()->reconsolidation_list();
  }

  for (const GroupDeployment& group : service->plan().groups) {
    GroupStatus status;
    status.group_id = group.group_id;
    status.num_tenants = group.tenants.size();
    status.num_mppdbs = group.cluster.NumMppdbs();
    status.tuning_nodes = group.cluster.tuning_nodes();
    status.replica_nodes = group.cluster.mppdb_nodes.size() > 1
                               ? group.cluster.mppdb_nodes[1]
                               : group.cluster.tuning_nodes();
    status.scaled = scaled_groups.count(group.group_id) > 0;

    THRIFTY_ASSIGN_OR_RETURN(
        RtTtpMonitor * monitor,
        service->activity_monitor()->GroupMonitor(group.group_id));
    status.rt_ttp = monitor->RtTtp(report.generated_at);
    THRIFTY_ASSIGN_OR_RETURN(status.active_tenants,
                             service->activity_monitor()->ActiveTenantsInGroup(
                                 group.group_id));

    int n1 = group.LargestTenantNodes();
    int64_t u_max = group.RequestedNodes() -
                    static_cast<int64_t>(status.num_mppdbs - 1) * n1;
    u_max = std::max<int64_t>(u_max, n1);
    auto advice = AdviseTuning(
        status.rt_ttp, /*rt_ttp_trending_down=*/false,
        service->options().sla_fraction, n1, status.tuning_nodes,
        static_cast<int>(u_max),
        /*observed_overflow_concurrency=*/std::max(
            1, status.active_tenants - status.num_mppdbs + 1));
    if (advice.ok()) {
      status.tuning_action = advice->action;
      status.recommended_tuning_nodes = advice->recommended_tuning_nodes;
    }
    report.groups.push_back(status);
  }
  for (const auto& [tmpl, traffic] : service->router()->template_traffic()) {
    TemplateUsage usage;
    usage.template_id = tmpl;
    usage.submitted = traffic.submitted;
    usage.completed = traffic.completed;
    report.template_usage.push_back(usage);
  }
  return report;
}

void PrintStatusReport(const ServiceStatusReport& report, std::ostream& os) {
  os << "Thrifty status at " << FormatSimTime(report.generated_at) << "\n"
     << "  nodes: " << report.nodes_in_use << " in use / "
     << report.nodes_total << " total; queries completed: "
     << report.metrics.completed << "; SLA attainment: "
     << FormatPercent(report.metrics.SlaAttainment(), 2) << "\n";
  TablePrinter table({"group", "tenants", "MPPDBs", "U/replica nodes",
                      "RT-TTP", "active now", "advice", "scaled?"});
  for (const auto& group : report.groups) {
    std::string advice = TuningActionToString(group.tuning_action);
    if (group.tuning_action == TuningAction::kRaiseTuningNodes) {
      advice += " -> U=" + std::to_string(group.recommended_tuning_nodes);
    }
    table.AddRow({std::to_string(group.group_id),
                  std::to_string(group.num_tenants),
                  std::to_string(group.num_mppdbs),
                  std::to_string(group.tuning_nodes) + "/" +
                      std::to_string(group.replica_nodes),
                  FormatPercent(group.rt_ttp, 2),
                  std::to_string(group.active_tenants), advice,
                  group.scaled ? "yes" : "no"});
  }
  table.Print(os);
  if (!report.template_usage.empty()) {
    os << "Template traffic:\n";
    TablePrinter templates({"template", "submitted", "completed",
                            "in flight"});
    for (const auto& usage : report.template_usage) {
      templates.AddRow({std::to_string(usage.template_id),
                        std::to_string(usage.submitted),
                        std::to_string(usage.completed),
                        std::to_string(usage.InFlight())});
    }
    templates.Print(os);
  }
  if (!report.scaling_events.empty()) {
    os << "Elastic scaling history:\n";
    for (const auto& event : report.scaling_events) {
      os << "  group " << event.group_id << ": "
         << (event.proactive ? "proactive" : "reactive") << " at "
         << FormatSimTime(event.detected_time) << ", "
         << event.tenants.size() << " tenant(s) -> new "
         << event.new_mppdb_nodes << "-node MPPDB"
         << (event.ready_time > 0
                 ? " (online at " + FormatSimTime(event.ready_time) + ")"
                 : " (still loading)")
         << "\n";
    }
  }
}

}  // namespace thrifty
