#include "placement/two_step.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "activity/level_set.h"

namespace thrifty {

int CompareCandidateLevels(const std::vector<size_t>& a,
                           const std::vector<size_t>& b) {
  // Entry m-1 counts epochs with >= m active tenants; epochs with exactly m
  // is the difference of adjacent entries. Compare exact counts from the
  // top level down: fewer epochs at the highest activity level wins.
  size_t levels = std::max(a.size(), b.size());
  for (size_t m = levels; m >= 1; --m) {
    size_t am = m <= a.size() ? a[m - 1] : 0;
    size_t am1 = m < a.size() ? a[m] : 0;
    size_t bm = m <= b.size() ? b[m - 1] : 0;
    size_t bm1 = m < b.size() ? b[m] : 0;
    size_t ea = am - am1;
    size_t eb = bm - bm1;
    if (ea != eb) return ea < eb ? -1 : 1;
  }
  return 0;
}

Result<GroupingSolution> SolveTwoStep(const PackingProblem& problem) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  auto start = std::chrono::steady_clock::now();
  const int r = problem.replication_factor;

  // Step 1: initial groups by requested node count. Descending size so the
  // output lists big tenants first (cosmetic; groups are independent).
  std::map<int, std::vector<const PackingItem*>, std::greater<int>> initial;
  for (const auto& item : problem.items) {
    initial[item.nodes].push_back(&item);
  }

  GroupingSolution solution;
  for (auto& [nodes, members] : initial) {
    // Seeding picks the least active tenant first; sorting the whole list by
    // activity makes that the front element at every iteration.
    std::vector<const PackingItem*>& remaining = members;
    std::sort(remaining.begin(), remaining.end(),
              [](const PackingItem* a, const PackingItem* b) {
                size_t aa = a->activity->ActiveEpochs();
                size_t bb = b->activity->ActiveEpochs();
                if (aa != bb) return aa < bb;
                return a->tenant_id < b->tenant_id;
              });

    while (!remaining.empty()) {
      GroupLevelSet levels(problem.num_epochs);
      TenantGroupResult group;
      group.max_nodes = nodes;

      // Seed with the least active remaining tenant.
      const PackingItem* seed = remaining.front();
      remaining.erase(remaining.begin());
      levels.Add(*seed->activity);
      group.tenant_ids.push_back(seed->tenant_id);

      // Grow: per Algorithm 2, pick T_best by the max-active criterion and
      // close the group if adding T_best would violate the SLA guarantee.
      while (!remaining.empty()) {
        size_t best_index = 0;
        std::vector<size_t> best_pops;
        for (size_t i = 0; i < remaining.size(); ++i) {
          std::vector<size_t> pops =
              levels.EvaluateAdd(*remaining[i]->activity);
          if (best_pops.empty()) {
            best_pops = std::move(pops);
            best_index = i;
            continue;
          }
          int cmp = CompareCandidateLevels(pops, best_pops);
          bool better =
              cmp < 0 || (cmp == 0 && remaining[i]->tenant_id >
                                          remaining[best_index]->tenant_id);
          if (better) {
            best_pops = std::move(pops);
            best_index = i;
          }
        }
        if (levels.TtpFromPopcounts(best_pops, r) + 1e-12 <
            problem.sla_fraction) {
          break;  // adding T_best would violate P; start a new tenant-group
        }
        const PackingItem* best = remaining[best_index];
        remaining.erase(remaining.begin() +
                        static_cast<ptrdiff_t>(best_index));
        levels.Add(*best->activity);
        group.tenant_ids.push_back(best->tenant_id);
      }

      group.ttp = levels.Ttp(r);
      group.max_active = levels.MaxActive();
      solution.groups.push_back(std::move(group));
    }
  }

  solution.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return solution;
}

}  // namespace thrifty
