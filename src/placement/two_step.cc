#include "placement/two_step.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "activity/level_set.h"
#include "common/thread_pool.h"

namespace thrifty {

int CompareCandidateLevels(const std::vector<size_t>& a,
                           const std::vector<size_t>& b) {
  // Entry m-1 counts epochs with >= m active tenants; epochs with exactly m
  // is the difference of adjacent entries. Compare exact counts from the
  // top level down: fewer epochs at the highest activity level wins.
  size_t levels = std::max(a.size(), b.size());
  for (size_t m = levels; m >= 1; --m) {
    size_t am = m <= a.size() ? a[m - 1] : 0;
    size_t am1 = m < a.size() ? a[m] : 0;
    size_t bm = m <= b.size() ? b[m - 1] : 0;
    size_t bm1 = m < b.size() ? b[m] : 0;
    size_t ea = am - am1;
    size_t eb = bm - bm1;
    if (ea != eb) return ea < eb ? -1 : 1;
  }
  return 0;
}

namespace {

/// The argmin's update rule: whether a candidate with outcome `pops`
/// replaces the current best. An empty `best_pops` (no best yet, or a best
/// whose EvaluateAdd outcome was empty — an all-zero tenant joining an
/// all-zero group) is replaced unconditionally; members sorted by
/// (activity, id) make that equivalent to the Fig 5.3 total order, so the
/// rule commutes with sharding.
bool TakesOver(const std::vector<size_t>& best_pops, TenantId best_id,
               const std::vector<size_t>& pops, TenantId id) {
  if (best_pops.empty()) return true;
  int cmp = CompareCandidateLevels(pops, best_pops);
  return cmp < 0 || (cmp == 0 && id > best_id);
}

/// The remaining-candidate list of one initial group. Removal tombstones
/// the slot and the array is compacted once dead slots outnumber live
/// ones, so a whole solve costs amortized O(1) per removal instead of the
/// former quadratic mid-vector erase — while live slots keep their original
/// sorted order, which the Fig 5.3 tie-breaks depend on.
class CandidateList {
 public:
  explicit CandidateList(std::vector<const PackingItem*> members)
      : slots_(std::move(members)), live_(slots_.size()) {}

  bool Empty() const { return live_ == 0; }

  /// Raw slot array; tombstoned entries are nullptr.
  const std::vector<const PackingItem*>& slots() const { return slots_; }
  /// First possibly-live raw slot.
  size_t head() const { return head_; }

  /// Removes and returns the least active remaining tenant.
  const PackingItem* PopFront() {
    const PackingItem* item = slots_[head_];
    RemoveSlot(head_);
    return item;
  }

  void RemoveSlot(size_t s) {
    slots_[s] = nullptr;
    --live_;
    while (head_ < slots_.size() && slots_[head_] == nullptr) ++head_;
    if (slots_.size() - head_ > 2 * live_) Compact();
  }

 private:
  void Compact() {
    slots_.erase(slots_.begin(), slots_.begin() + static_cast<ptrdiff_t>(head_));
    slots_.erase(std::remove(slots_.begin(), slots_.end(), nullptr),
                 slots_.end());
    head_ = 0;
  }

  std::vector<const PackingItem*> slots_;
  size_t head_ = 0;
  size_t live_ = 0;
};

struct BestCandidate {
  std::vector<size_t> pops;
  const PackingItem* item = nullptr;
  size_t slot = 0;
};

/// Left-to-right scan of raw slots [lo, hi), skipping tombstones — the
/// serial argmin, reused verbatim as the per-shard scan. The scratch
/// buffers are reused across every candidate in the shard (no per-candidate
/// heap allocation), and a candidate is abandoned as soon as its top-down
/// partial exact-level counts fall behind the shard incumbent — both
/// outcome-invisible: the winner and its popcounts equal the plain
/// EvaluateAdd + TakesOver scan's.
void ScanShard(const GroupLevelSet& levels,
               const std::vector<const PackingItem*>& slots, size_t lo,
               size_t hi, BestCandidate* best,
               GroupLevelSet::EvalScratch* scratch) {
  for (size_t s = lo; s < hi; ++s) {
    const PackingItem* item = slots[s];
    if (item == nullptr) continue;
    bool take;
    if (best->item == nullptr || best->pops.empty()) {
      // No incumbent (or an empty-outcome one): replaced unconditionally,
      // so the candidate needs a full evaluation, not a comparison.
      levels.EvaluateAddInto(*item->activity, scratch);
      take = true;
    } else {
      int cmp = levels.EvaluateAddCompare(*item->activity, best->pops,
                                          scratch);
      take = cmp < 0 || (cmp == 0 && item->tenant_id > best->item->tenant_id);
    }
    if (take) {
      best->pops.swap(scratch->pops);
      best->item = item;
      best->slot = s;
    }
  }
}

/// Below this many raw slots per shard the fan-out costs more than the
/// scan. Shard count is a function of the (deterministic) slot range only,
/// and the merged winner is shard-independent anyway.
constexpr size_t kMinShardSlots = 192;

BestCandidate FindBestCandidate(const GroupLevelSet& levels,
                                const CandidateList& remaining,
                                ThreadPool* pool,
                                std::vector<GroupLevelSet::EvalScratch>*
                                    scratch) {
  const auto& slots = remaining.slots();
  const size_t lo = remaining.head();
  const size_t span = slots.size() - lo;
  size_t shards = pool == nullptr ? 1 : pool->size() + 1;
  if (shards > span / kMinShardSlots) shards = span / kMinShardSlots;
  if (shards <= 1) {
    BestCandidate best;
    ScanShard(levels, slots, lo, slots.size(), &best, &(*scratch)[0]);
    return best;
  }
  std::vector<BestCandidate> bests(shards);
  ParallelFor(pool, shards, [&](size_t k) {
    ScanShard(levels, slots, lo + span * k / shards,
              lo + span * (k + 1) / shards, &bests[k], &(*scratch)[k]);
  });
  // Reduce shard winners in ascending shard order with the same update
  // rule, so the merged winner equals the serial left-to-right scan's.
  BestCandidate best;
  for (BestCandidate& shard_best : bests) {
    if (shard_best.item == nullptr) continue;
    if (best.item == nullptr ||
        TakesOver(best.pops, best.item->tenant_id, shard_best.pops,
                  shard_best.item->tenant_id)) {
      best = std::move(shard_best);
    }
  }
  return best;
}

/// Per-size-class solve output: the closed groups plus warm-start
/// accounting, merged across classes by the caller.
struct InitialGroupResult {
  std::vector<TenantGroupResult> groups;
  size_t warm_kept = 0;
  size_t warm_dissolved = 0;
  size_t warm_repaired = 0;
  size_t warm_evicted = 0;
};

/// Group repair: evicts members from an infeasible seed group until its
/// fuzzy capacity holds again, removing as few members as the greedy rule
/// allows. Each round evicts the member whose removal leaves the best
/// remaining group under the Fig 5.3 total order (fewest epochs at the
/// highest activity levels — the member contributing most to the SLA
/// damage), full ties evicting the higher tenant id. The loop always
/// terminates feasible: a single tenant can never exceed R >= 1 concurrent
/// actives. `levels` must hold exactly the members of `kept`; on return it
/// holds the repaired group. Evicted members are erased from `kept` (their
/// slots in the caller's candidate pool stay live, so they re-enter the
/// cold loop). Returns the eviction count.
size_t RepairSeedGroup(const PackingProblem& problem, GroupLevelSet* levels,
                       std::vector<const PackingItem*>* kept) {
  const int r = problem.replication_factor;
  size_t evicted = 0;
  std::vector<size_t> best_pops;
  while (kept->size() > 1 &&
         levels->Ttp(r) + 1e-12 < problem.sla_fraction) {
    size_t victim = kept->size();
    best_pops.clear();
    for (size_t i = 0; i < kept->size(); ++i) {
      const ActivityVector& activity = *(*kept)[i]->activity;
      levels->Remove(activity);
      const std::vector<size_t>& pops = levels->level_popcounts();
      bool better;
      if (victim == kept->size()) {
        better = true;
      } else {
        int cmp = CompareCandidateLevels(pops, best_pops);
        better = cmp < 0 || (cmp == 0 && (*kept)[i]->tenant_id >
                                            (*kept)[victim]->tenant_id);
      }
      if (better) {
        victim = i;
        best_pops = pops;
      }
      levels->Add(activity);
    }
    levels->Remove(*(*kept)[victim]->activity);
    kept->erase(kept->begin() + static_cast<ptrdiff_t>(victim));
    ++evicted;
  }
  return evicted;
}

/// Algorithm 2's growth loop: keeps adding the Fig 5.3-best remaining
/// candidate until the next addition would violate the SLA guarantee, then
/// closes the group (TTP, max-active, storage gauges).
void GrowAndClose(const PackingProblem& problem, GroupLevelSet* levels,
                  TenantGroupResult* group, CandidateList* remaining,
                  ThreadPool* pool,
                  std::vector<GroupLevelSet::EvalScratch>* scratch) {
  const int r = problem.replication_factor;
  while (!remaining->Empty()) {
    BestCandidate best = FindBestCandidate(*levels, *remaining, pool, scratch);
    if (levels->TtpFromPopcounts(best.pops, r) + 1e-12 <
        problem.sla_fraction) {
      break;  // adding T_best would violate P; start a new tenant-group
    }
    remaining->RemoveSlot(best.slot);
    levels->Add(*best.item->activity);
    group->tenant_ids.push_back(best.item->tenant_id);
  }
  group->ttp = levels->Ttp(r);
  group->max_active = levels->MaxActive();
  group->level_set_bytes = levels->MemoryBytes();
  group->level_set_dense_bytes = levels->DenseEquivalentBytes();
}

/// Step 2 over one initial group (all members request `nodes` nodes).
/// `seeds`, when non-null, holds this size class's warm-start groups.
InitialGroupResult SolveInitialGroup(
    const PackingProblem& problem, int nodes,
    std::vector<const PackingItem*> members,
    const std::vector<std::vector<const PackingItem*>>* seeds,
    bool warm_repair, ThreadPool* pool) {
  const int r = problem.replication_factor;
  // Seeding picks the least active tenant first; sorting the whole list by
  // activity makes that the front element at every iteration.
  std::sort(members.begin(), members.end(),
            [](const PackingItem* a, const PackingItem* b) {
              size_t aa = a->activity->ActiveEpochs();
              size_t bb = b->activity->ActiveEpochs();
              if (aa != bb) return aa < bb;
              return a->tenant_id < b->tenant_id;
            });

  InitialGroupResult result;

  // Warm start: revalidate each seed group against *this* problem's
  // activity and SLA, computing the seed's level set and Ttp exactly once.
  // Feasible groups are pulled out of the candidate pool and kept open;
  // infeasible ones are repaired in place (the already-built level set is
  // reused — only the evictees fall back into the pool), or, with repair
  // disabled, dissolved whole back into the pool as singletons.
  std::vector<std::pair<GroupLevelSet, TenantGroupResult>> seeded;
  if (seeds != nullptr && !seeds->empty()) {
    std::unordered_set<const PackingItem*> taken;
    std::vector<const PackingItem*> kept;
    for (const auto& seed_members : *seeds) {
      if (seed_members.empty()) continue;
      GroupLevelSet levels(problem.num_epochs);
      for (const PackingItem* item : seed_members) {
        levels.Add(*item->activity);
      }
      kept = seed_members;
      if (levels.Ttp(r) + 1e-12 < problem.sla_fraction) {
        if (!warm_repair) {
          ++result.warm_dissolved;
          continue;
        }
        result.warm_evicted += RepairSeedGroup(problem, &levels, &kept);
        ++result.warm_repaired;
      } else {
        ++result.warm_kept;
      }
      TenantGroupResult group;
      group.max_nodes = nodes;
      for (const PackingItem* item : kept) {
        group.tenant_ids.push_back(item->tenant_id);
        taken.insert(item);
      }
      seeded.emplace_back(std::move(levels), std::move(group));
    }
    if (!taken.empty()) {
      members.erase(std::remove_if(members.begin(), members.end(),
                                   [&](const PackingItem* item) {
                                     return taken.count(item) > 0;
                                   }),
                    members.end());
    }
  }

  CandidateList remaining(std::move(members));
  std::vector<GroupLevelSet::EvalScratch> scratch(
      pool == nullptr ? 1 : pool->size() + 1);

  // Resume the growth loop on every kept seed group first (in seed order),
  // so a tightened instance can absorb dissolved singletons...
  for (auto& [levels, group] : seeded) {
    GrowAndClose(problem, &levels, &group, &remaining, pool, &scratch);
    result.groups.push_back(std::move(group));
  }

  // ...then run the cold seed-and-grow loop over what is left.
  while (!remaining.Empty()) {
    GroupLevelSet levels(problem.num_epochs);
    TenantGroupResult group;
    group.max_nodes = nodes;

    // Seed with the least active remaining tenant.
    const PackingItem* seed = remaining.PopFront();
    levels.Add(*seed->activity);
    group.tenant_ids.push_back(seed->tenant_id);

    GrowAndClose(problem, &levels, &group, &remaining, pool, &scratch);
    result.groups.push_back(std::move(group));
  }
  return result;
}

}  // namespace

Result<GroupingSolution> SolveTwoStep(const PackingProblem& problem,
                                      const TwoStepOptions& options) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  auto start = std::chrono::steady_clock::now();

  // Step 1: initial groups by requested node count. Descending size so the
  // output lists big tenants first (cosmetic; groups are independent).
  std::map<int, std::vector<const PackingItem*>, std::greater<int>> initial;
  for (const auto& item : problem.items) {
    initial[item.nodes].push_back(&item);
  }
  std::vector<std::pair<int, std::vector<const PackingItem*>>> sized;
  sized.reserve(initial.size());
  for (auto& [nodes, members] : initial) {
    sized.emplace_back(nodes, std::move(members));
  }

  // Split the optional warm-start grouping per size class (step 1 is a
  // pure partition by requested nodes, so a seed group can only survive
  // within one class; spanning groups are split). Stale seed members whose
  // tenant id is absent from this problem (e.g. de-registered tenants) are
  // filtered out explicitly and counted, and duplicated ids count only
  // once, so a stale seed stays safe. A warm start with no seed groups
  // short-circuits the whole pass — it must not cost more than a cold
  // solve.
  size_t warm_members_missing = 0;
  std::map<int, std::vector<std::vector<const PackingItem*>>> seeds_by_size;
  if (options.warm_start != nullptr && !options.warm_start->groups.empty()) {
    std::unordered_map<TenantId, const PackingItem*> by_id;
    for (const auto& item : problem.items) by_id[item.tenant_id] = &item;
    std::unordered_set<TenantId> seen;
    for (const auto& seed_group : options.warm_start->groups) {
      std::map<int, std::vector<const PackingItem*>> split;
      for (TenantId id : seed_group.tenant_ids) {
        auto it = by_id.find(id);
        if (it == by_id.end()) {
          ++warm_members_missing;
          continue;
        }
        if (!seen.insert(id).second) continue;
        split[it->second->nodes].push_back(it->second);
      }
      for (auto& [nodes, seed_members] : split) {
        seeds_by_size[nodes].push_back(std::move(seed_members));
      }
    }
  }
  std::vector<const std::vector<std::vector<const PackingItem*>>*> seeds(
      sized.size(), nullptr);
  for (size_t g = 0; g < sized.size(); ++g) {
    auto it = seeds_by_size.find(sized[g].first);
    if (it != seeds_by_size.end()) seeds[g] = &it->second;
  }

  // Documented clamp: solver_jobs < 1 is the serial path, same as 1, so
  // callers deriving job counts never need their own validation.
  std::unique_ptr<ThreadPool> pool;
  const int solver_jobs = std::max(1, options.solver_jobs);
  if (solver_jobs > 1) {
    pool = std::make_unique<ThreadPool>(solver_jobs - 1);
  }

  // Node-size initial groups are independent: solve them as parallel tasks
  // (each of which also shards its candidate argmin over the same pool) and
  // splice the per-size results back in descending-size order.
  std::vector<InitialGroupResult> per_size(sized.size());
  ParallelFor(pool.get(), sized.size(), [&](size_t g) {
    per_size[g] = SolveInitialGroup(problem, sized[g].first,
                                    std::move(sized[g].second), seeds[g],
                                    options.warm_repair, pool.get());
  });

  GroupingSolution solution;
  solution.warm_members_missing = warm_members_missing;
  for (auto& result : per_size) {
    solution.warm_groups_kept += result.warm_kept;
    solution.warm_groups_dissolved += result.warm_dissolved;
    solution.warm_groups_repaired += result.warm_repaired;
    solution.warm_members_evicted += result.warm_evicted;
    for (auto& group : result.groups) {
      solution.groups.push_back(std::move(group));
    }
  }
  solution.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return solution;
}

}  // namespace thrifty
