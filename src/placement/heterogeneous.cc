#include "placement/heterogeneous.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace thrifty {

double NodeInventory::TotalCapability() const {
  double total = 0;
  for (const auto& c : classes) total += c.count * c.speed;
  return total;
}

int NodeInventory::TotalNodes() const {
  int total = 0;
  for (const auto& c : classes) total += c.count;
  return total;
}

int HeterogeneousMppdb::TotalNodes() const {
  int total = 0;
  for (const auto& [cls, count] : allocation) total += count;
  return total;
}

namespace {

// Effective capability of an allocation under the straggler discount.
double EffectiveCapability(const NodeInventory& inventory,
                           const std::vector<std::pair<size_t, int>>& alloc,
                           double mixing_penalty) {
  double raw = 0;
  double min_speed = std::numeric_limits<double>::infinity();
  double max_speed = 0;
  for (const auto& [cls, count] : alloc) {
    const NodeClass& c = inventory.classes[cls];
    raw += count * c.speed;
    min_speed = std::min(min_speed, c.speed);
    max_speed = std::max(max_speed, c.speed);
  }
  if (raw <= 0) return 0;
  double discount =
      1.0 - mixing_penalty * (1.0 - min_speed / max_speed);
  return raw * discount;
}

}  // namespace

Result<HeterogeneousMppdb> AllocateMppdb(
    NodeInventory* inventory, double required_capability,
    const HeterogeneousDesignOptions& options) {
  if (inventory == nullptr) {
    return Status::InvalidArgument("null inventory");
  }
  if (required_capability <= 0) {
    return Status::InvalidArgument("required capability must be positive");
  }
  for (const auto& c : inventory->classes) {
    if (c.speed <= 0 || c.count < 0) {
      return Status::InvalidArgument("node class " + c.name +
                                     " has invalid speed or count");
    }
  }

  // Candidate 1: the best homogeneous build.
  const size_t num_classes = inventory->classes.size();
  size_t best_class = num_classes;
  double best_waste = std::numeric_limits<double>::infinity();
  int best_nodes = 0;
  for (size_t cls = 0; cls < num_classes; ++cls) {
    const NodeClass& c = inventory->classes[cls];
    if (c.count == 0) continue;
    int needed =
        static_cast<int>(std::ceil(required_capability / c.speed - 1e-12));
    if (needed > c.count) continue;
    double waste = needed * c.speed - required_capability;
    if (waste < best_waste - 1e-12 ||
        (std::abs(waste - best_waste) <= 1e-12 && needed < best_nodes)) {
      best_waste = waste;
      best_class = cls;
      best_nodes = needed;
    }
  }
  if (best_class < num_classes) {
    HeterogeneousMppdb mppdb;
    mppdb.allocation = {{best_class, best_nodes}};
    mppdb.effective_capability = EffectiveCapability(
        *inventory, mppdb.allocation, options.mixing_penalty);
    inventory->classes[best_class].count -= best_nodes;
    return mppdb;
  }

  // Candidate 2: mix greedily from fastest to slowest until the effective
  // (discounted) capability reaches the requirement.
  std::vector<size_t> order(num_classes);
  for (size_t i = 0; i < num_classes; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return inventory->classes[a].speed > inventory->classes[b].speed;
  });
  std::vector<std::pair<size_t, int>> alloc;
  for (size_t cls : order) {
    int available = inventory->classes[cls].count;
    if (available == 0) continue;
    // Add nodes of this class one by one until satisfied or exhausted.
    int used = 0;
    while (used < available) {
      ++used;
      std::vector<std::pair<size_t, int>> trial = alloc;
      trial.push_back({cls, used});
      if (EffectiveCapability(*inventory, trial, options.mixing_penalty) +
              1e-12 >=
          required_capability) {
        alloc = std::move(trial);
        HeterogeneousMppdb mppdb;
        mppdb.allocation = alloc;
        mppdb.effective_capability = EffectiveCapability(
            *inventory, alloc, options.mixing_penalty);
        for (const auto& [c, n] : alloc) inventory->classes[c].count -= n;
        return mppdb;
      }
    }
    alloc.push_back({cls, available});
  }
  return Status::CapacityExceeded(
      "inventory cannot assemble an MPPDB of capability " +
      std::to_string(required_capability));
}

Result<std::vector<HeterogeneousMppdb>> DesignHeterogeneousGroupCluster(
    NodeInventory* inventory, double largest_tenant_nodes, int num_mppdbs,
    const HeterogeneousDesignOptions& options) {
  if (num_mppdbs < 1) {
    return Status::InvalidArgument("a group needs at least one MPPDB");
  }
  // Fail atomically: work on a copy, commit on success.
  NodeInventory scratch = *inventory;
  std::vector<HeterogeneousMppdb> mppdbs;
  for (int g = 0; g < num_mppdbs; ++g) {
    THRIFTY_ASSIGN_OR_RETURN(
        HeterogeneousMppdb mppdb,
        AllocateMppdb(&scratch, largest_tenant_nodes, options));
    mppdbs.push_back(std::move(mppdb));
  }
  *inventory = std::move(scratch);
  return mppdbs;
}

}  // namespace thrifty
