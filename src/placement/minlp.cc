#include "placement/minlp.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <string>

namespace thrifty {

AssignmentMatrix::AssignmentMatrix(size_t num_items, size_t num_groups)
    : num_items_(num_items),
      num_groups_(num_groups),
      cells_(num_items * num_groups, 0) {}

bool AssignmentMatrix::Get(size_t item, size_t group) const {
  return cells_[item * num_groups_ + group] != 0;
}

void AssignmentMatrix::Set(size_t item, size_t group, bool value) {
  cells_[item * num_groups_ + group] = value ? 1 : 0;
}

bool AssignmentMatrix::EachItemAssignedOnce() const {
  for (size_t i = 0; i < num_items_; ++i) {
    int assigned = 0;
    for (size_t j = 0; j < num_groups_; ++j) assigned += Get(i, j) ? 1 : 0;
    if (assigned != 1) return false;
  }
  return true;
}

namespace {

Status CheckShape(const PackingProblem& problem, const AssignmentMatrix& x) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  if (x.num_items() != problem.items.size()) {
    return Status::InvalidArgument("assignment rows != number of tenants");
  }
  if (x.num_groups() == 0) {
    return Status::InvalidArgument("assignment has no groups");
  }
  return Status::OK();
}

}  // namespace

Result<int64_t> MinlpObjective(const PackingProblem& problem,
                               const AssignmentMatrix& x) {
  THRIFTY_RETURN_NOT_OK(CheckShape(problem, x));
  int64_t total = 0;
  for (size_t j = 0; j < x.num_groups(); ++j) {
    int64_t largest = 0;
    for (size_t i = 0; i < x.num_items(); ++i) {
      if (x.Get(i, j)) {
        largest = std::max<int64_t>(
            largest, static_cast<int64_t>(problem.replication_factor) *
                         problem.items[i].nodes);
      }
    }
    total += largest;  // empty groups contribute 0
  }
  return total;
}

Result<size_t> MinlpGroupFeasibleEpochs(const PackingProblem& problem,
                                        const AssignmentMatrix& x,
                                        size_t group) {
  THRIFTY_RETURN_NOT_OK(CheckShape(problem, x));
  if (group >= x.num_groups()) {
    return Status::InvalidArgument("group index out of range");
  }
  // sum_i A_i[k] x_ij per epoch, then count epochs with H[R - count] = 1.
  std::vector<int64_t> counts(problem.num_epochs, 0);
  for (size_t i = 0; i < x.num_items(); ++i) {
    if (!x.Get(i, group)) continue;
    const ActivityVector& a = *problem.items[i].activity;
    const auto& widx = a.word_indices();
    const auto& wbits = a.word_bits();
    for (size_t w = 0; w < widx.size(); ++w) {
      uint64_t word = wbits[w];
      size_t base = static_cast<size_t>(widx[w]) * 64;
      while (word != 0) {
        int bit = std::countr_zero(word);
        ++counts[base + static_cast<size_t>(bit)];
        word &= word - 1;
      }
    }
  }
  size_t feasible = 0;
  for (int64_t c : counts) {
    feasible += static_cast<size_t>(
        HeavisideStep(problem.replication_factor - c));
  }
  return feasible;
}

Result<bool> MinlpFeasible(const PackingProblem& problem,
                           const AssignmentMatrix& x) {
  THRIFTY_RETURN_NOT_OK(CheckShape(problem, x));
  if (!x.EachItemAssignedOnce()) return false;  // (9.3)/(9.4)
  double required =
      problem.sla_fraction * static_cast<double>(problem.num_epochs);
  for (size_t j = 0; j < x.num_groups(); ++j) {
    bool empty = true;
    for (size_t i = 0; i < x.num_items() && empty; ++i) {
      empty = !x.Get(i, j);
    }
    if (empty) continue;
    THRIFTY_ASSIGN_OR_RETURN(size_t feasible,
                             MinlpGroupFeasibleEpochs(problem, x, j));
    if (static_cast<double>(feasible) + 1e-9 < required) return false;
  }
  return true;
}

Result<AssignmentMatrix> EncodeSolution(const PackingProblem& problem,
                                        const GroupingSolution& solution) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  size_t max_groups = static_cast<size_t>(
      std::ceil(static_cast<double>(problem.items.size()) /
                problem.replication_factor));
  size_t num_groups = std::max(solution.groups.size(), std::max<size_t>(
      max_groups, 1));
  AssignmentMatrix x(problem.items.size(), num_groups);
  for (size_t j = 0; j < solution.groups.size(); ++j) {
    for (TenantId tid : solution.groups[j].tenant_ids) {
      bool found = false;
      for (size_t i = 0; i < problem.items.size(); ++i) {
        if (problem.items[i].tenant_id == tid) {
          x.Set(i, j, true);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("solution references unknown tenant " +
                                       std::to_string(tid));
      }
    }
  }
  return x;
}

Result<GroupingSolution> DecodeSolution(const PackingProblem& problem,
                                        const AssignmentMatrix& x) {
  THRIFTY_RETURN_NOT_OK(CheckShape(problem, x));
  if (!x.EachItemAssignedOnce()) {
    return Status::InvalidArgument("assignment violates constraint (9.3)");
  }
  GroupingSolution solution;
  for (size_t j = 0; j < x.num_groups(); ++j) {
    TenantGroupResult group;
    for (size_t i = 0; i < x.num_items(); ++i) {
      if (x.Get(i, j)) group.tenant_ids.push_back(problem.items[i].tenant_id);
    }
    if (!group.tenant_ids.empty()) solution.groups.push_back(std::move(group));
  }
  THRIFTY_RETURN_NOT_OK(AnnotateSolution(problem, &solution));
  return solution;
}

Result<GroupingSolution> SolveMinlpExhaustive(const PackingProblem& problem,
                                              size_t max_items) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  size_t n = problem.items.size();
  if (n == 0) return GroupingSolution{};
  if (n > max_items) {
    return Status::CapacityExceeded(
        "exhaustive MINLP limited to " + std::to_string(max_items) +
        " tenants");
  }
  // Enumerate set partitions via restricted growth strings.
  std::vector<size_t> assignment(n, 0);
  std::vector<size_t> best_assignment;
  int64_t best_cost = INT64_MAX;

  // Recursive enumeration: item i may join any group used so far or open
  // the next one.
  auto evaluate = [&]() {
    size_t num_groups = 0;
    for (size_t g : assignment) num_groups = std::max(num_groups, g + 1);
    AssignmentMatrix x(n, num_groups);
    for (size_t i = 0; i < n; ++i) x.Set(i, assignment[i], true);
    auto feasible = MinlpFeasible(problem, x);
    if (!feasible.ok() || !*feasible) return;
    auto cost = MinlpObjective(problem, x);
    if (cost.ok() && *cost < best_cost) {
      best_cost = *cost;
      best_assignment = assignment;
    }
  };
  std::function<void(size_t, size_t)> recurse = [&](size_t i,
                                                    size_t used) {
    if (i == n) {
      evaluate();
      return;
    }
    for (size_t g = 0; g <= used && g < n; ++g) {
      assignment[i] = g;
      recurse(i + 1, std::max(used, g + 1));
    }
  };
  recurse(0, 0);

  if (best_assignment.empty()) {
    // Even all-singletons should be feasible (single tenant <= R active
    // whenever R >= 1); reaching here means R == 0 style degeneracy.
    return Status::Internal("no feasible partition found");
  }
  size_t num_groups = 0;
  for (size_t g : best_assignment) num_groups = std::max(num_groups, g + 1);
  AssignmentMatrix x(n, num_groups);
  for (size_t i = 0; i < n; ++i) x.Set(i, best_assignment[i], true);
  return DecodeSolution(problem, x);
}

}  // namespace thrifty
