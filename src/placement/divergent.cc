#include "placement/divergent.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace thrifty {

double PartitionLayout::SpeedupFor(TemplateId id) const {
  auto it = speedups.find(id);
  return it == speedups.end() ? 1.0 : it->second;
}

namespace {

// Quality of a layout assignment: the worst template's best speedup across
// the chosen layouts (higher = every template has some fast replica).
double WorstTemplateBestSpeedup(
    const std::vector<TemplateId>& templates,
    const std::vector<PartitionLayout>& layouts,
    const std::vector<size_t>& chosen) {
  double worst = std::numeric_limits<double>::infinity();
  for (TemplateId t : templates) {
    double best = 0;
    for (size_t layout : chosen) {
      best = std::max(best, layouts[layout].SpeedupFor(t));
    }
    worst = std::min(worst, best);
  }
  return worst;
}

}  // namespace

Result<DivergentGroupDesign> PlanDivergentGroup(
    int largest_tenant_nodes, int64_t total_requested_nodes, int num_mppdbs,
    const std::vector<TemplateId>& workload_templates,
    const std::vector<PartitionLayout>& layouts,
    const DivergentDesignOptions& options) {
  if (workload_templates.empty()) {
    return Status::InvalidArgument(
        "divergent design needs the extracted query templates");
  }
  if (layouts.empty()) {
    return Status::InvalidArgument("no candidate partition layouts");
  }
  if (options.expected_mpl < 1) {
    return Status::InvalidArgument("expected MPL must be >= 1");
  }
  if (num_mppdbs < 1) {
    return Status::InvalidArgument("a group needs at least one MPPDB");
  }

  // Greedy max-coverage layout assignment: each replica picks the layout
  // that most improves the worst template's best speedup; ties prefer the
  // layout with the larger average speedup over the workload.
  std::vector<size_t> chosen;
  for (int replica = 0; replica < num_mppdbs; ++replica) {
    size_t best_layout = 0;
    double best_worst = -1;
    double best_avg = -1;
    for (size_t candidate = 0; candidate < layouts.size(); ++candidate) {
      std::vector<size_t> trial = chosen;
      trial.push_back(candidate);
      double worst =
          WorstTemplateBestSpeedup(workload_templates, layouts, trial);
      double avg = 0;
      for (TemplateId t : workload_templates) {
        avg += layouts[candidate].SpeedupFor(t);
      }
      avg /= static_cast<double>(workload_templates.size());
      if (worst > best_worst + 1e-12 ||
          (std::abs(worst - best_worst) <= 1e-12 && avg > best_avg)) {
        best_worst = worst;
        best_avg = avg;
        best_layout = candidate;
      }
    }
    chosen.push_back(best_layout);
  }

  // Size U: MPPDB_0 must run `expected_mpl` concurrent report queries each
  // at >= n_1-equivalent rate under processor sharing. Its layout's worst
  // workload speedup s_0 counts as extra parallelism, so
  //   U >= ceil(expected_mpl * n_1 / s_0).
  double s0 = std::numeric_limits<double>::infinity();
  for (TemplateId t : workload_templates) {
    s0 = std::min(s0, layouts[chosen[0]].SpeedupFor(t));
  }
  int u = static_cast<int>(std::ceil(
      static_cast<double>(options.expected_mpl) * largest_tenant_nodes / s0 -
      1e-12));
  u = std::max(u, largest_tenant_nodes);

  int64_t u_max = total_requested_nodes -
                  static_cast<int64_t>(num_mppdbs - 1) * largest_tenant_nodes;
  if (u_max < largest_tenant_nodes) u_max = largest_tenant_nodes;
  if (u > u_max) {
    return Status::CapacityExceeded(
        "expected MPL " + std::to_string(options.expected_mpl) +
        " needs U = " + std::to_string(u) + " > bound " +
        std::to_string(u_max) +
        "; keep this group on the general reactive plan");
  }

  DivergentGroupDesign design;
  THRIFTY_ASSIGN_OR_RETURN(
      design.cluster,
      DesignGroupCluster(largest_tenant_nodes, total_requested_nodes,
                         num_mppdbs, u));
  design.replica_layouts = std::move(chosen);
  design.worst_template_best_speedup = WorstTemplateBestSpeedup(
      workload_templates, layouts, design.replica_layouts);
  return design;
}

}  // namespace thrifty
