// Deployment plans: the Deployment Advisor's output (Chapter 3).
//
// A plan = cluster design (how nodes form MPPDBs, per tenant-group) +
// tenant placement (each tenant of a group is deployed on all of its
// group's MPPDBs, giving replication factor A = R; Property 1).

#ifndef THRIFTY_PLACEMENT_DEPLOYMENT_PLAN_H_
#define THRIFTY_PLACEMENT_DEPLOYMENT_PLAN_H_

#include <ostream>
#include <vector>

#include "common/result.h"
#include "placement/cluster_design.h"
#include "placement/problem.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Index of a tenant-group within a deployment plan.
using GroupId = int32_t;

/// \brief Everything needed to deploy one tenant-group.
struct GroupDeployment {
  GroupId group_id = -1;
  /// Member tenants (full specs, so the master knows data sizes).
  std::vector<TenantSpec> tenants;
  /// Node arrangement; size A = R MPPDBs, [0] is the tuning MPPDB.
  GroupClusterDesign cluster;
  /// Grouping quality stats carried over from the solver.
  double ttp = 1.0;
  int max_active = 0;
  /// Activity fingerprint baseline, parallel to `tenants`: each member's
  /// active-time fraction over the history window the plan was advised
  /// from (TenantLog::ActiveRatio). The re-consolidation planner compares
  /// fresh history against it to detect groups whose activity drifted
  /// (ReconsolidationOptions::activity_delta_threshold). Empty when the
  /// plan was built without history (e.g. hand-assembled in tests) — such
  /// groups are never flagged by drift screening.
  std::vector<double> member_activity_baseline;

  /// \brief Largest member's node count (the parallelism every MPPDB of the
  /// group must offer).
  int LargestTenantNodes() const;

  /// \brief Sum of members' requested nodes.
  int64_t RequestedNodes() const;
};

/// \brief A full deployment plan for the service.
struct DeploymentPlan {
  std::vector<GroupDeployment> groups;
  int replication_factor = 3;
  double sla_fraction = 0.999;

  /// \brief Total nodes the plan consumes.
  int64_t TotalNodesUsed() const;

  /// \brief Total nodes the tenants requested.
  int64_t TotalNodesRequested() const;

  /// \brief 1 - used / requested.
  double ConsolidationEffectiveness() const;

  /// \brief Group hosting the given tenant, or NotFound.
  Result<GroupId> GroupOf(TenantId tenant) const;

  /// \brief Human-readable summary (group count, nodes, effectiveness).
  void PrintSummary(std::ostream& os) const;
};

/// \brief Assembles a deployment plan from a grouping solution.
///
/// Uses A = R MPPDBs per group and the default tuning size U = n_1.
Result<DeploymentPlan> BuildDeploymentPlan(
    const std::vector<TenantSpec>& tenants, const GroupingSolution& grouping,
    int replication_factor, double sla_fraction);

/// \brief Canonical membership stream of one group:
/// "g<id>[<sorted tenant ids>,]n<total nodes>;". Pure function of the
/// group's id, member set, and cluster size — instance placement, ttp, and
/// activity baselines are excluded, so the stream is stable across replays
/// and re-deployments that keep the same logical grouping.
std::string GroupMembershipStream(const GroupDeployment& group);

/// \brief Canonical membership stream of a whole plan: the groups'
/// streams concatenated in ascending group-id order.
std::string CanonicalMembershipStream(const DeploymentPlan& plan);

/// \brief FNV-1a fingerprint of GroupMembershipStream(group).
uint64_t GroupFingerprint(const GroupDeployment& group);

/// \brief FNV-1a fingerprint of CanonicalMembershipStream(plan) — the
/// byte-identity surface of the churn / streaming determinism gates.
uint64_t PlanFingerprint(const DeploymentPlan& plan);

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_DEPLOYMENT_PLAN_H_
