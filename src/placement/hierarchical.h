// Hierarchical shard -> solve -> merge placement: the two-step solver at
// 10^5-10^6 tenants.
//
// The flat two-step heuristic (placement/two_step.h) scans every remaining
// candidate per group-grow step, so one solve is ~quadratic in the tenants
// of a size class — fine at the paper's thousands of tenants, hopeless at a
// million. SolveHierarchical restores near-linear scaling with the standard
// partition-then-central-merge shape:
//
//   1. *Shard*: tenants are clustered by a coarse, deterministic activity
//      fingerprint — per-band popcounts of the ActivityVector's epoch words
//      (computed with the simd:: span-popcount kernels), quantized to a
//      128-bit signature — so tenants with overlapping active phases land
//      in the same shard, then the signature-sorted order is chopped into
//      logical shards of ~shard_tenant_target tenants.
//   2. *Solve*: each shard is an independent LIVBPwFC sub-instance solved
//      with the existing SolveTwoStep core; shards fan across workers via
//      ParallelFor (shard_jobs), each composing with the intra-shard
//      candidate-argmin sharding (solver_jobs).
//   3. *Merge*: sharding leaves each shard's last group per size class
//      under-filled (the boundary waste the flat solver would not have). A
//      central pass re-opens exactly the groups whose fill is below
//      merge_fill_threshold of their class's fullest group, pools their
//      members together with a few least-populated *absorber* groups, and
//      re-solves those small deltas with SolveTwoStep warm-seeded on the
//      absorbers (the repair machinery keeps the absorber seeds open so
//      pooled tenants merge into spare capacity instead of fragmenting).
//      Merge solves are chunked at ~shard_tenant_target pooled tenants and
//      fanned over the same workers, so the pass never re-creates the
//      quadratic central solve it exists to avoid.
//
// Determinism contract: the logical shard partition is a pure function of
// the tenant set (ids + activity + shard_tenant_target/signature_bands) —
// never of num_shards, shard_jobs, or solver_jobs, which only change how
// the same per-shard solves are batched across threads. Group output order
// is canonical (size class descending, then shard-major, then the merge
// pass's groups), and the merge pass is a function of the per-shard plans
// alone, so the returned plan is byte-identical at any
// num_shards x shard_jobs x solver_jobs. tests/hierarchical_test.cc locks
// this, and bench_scale_sweep records the fingerprints.

#ifndef THRIFTY_PLACEMENT_HIERARCHICAL_H_
#define THRIFTY_PLACEMENT_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "placement/problem.h"

namespace thrifty {

/// \brief Execution knobs of the hierarchical solver. All parallelism
/// knobs are output-invariant; only shard_tenant_target / signature_bands /
/// merge_* change the plan (they define the logical partition and the merge
/// rule, both pure functions of the tenant set).
struct HierarchicalOptions {
  /// Execution-batching hint: the logical shards are processed as
  /// min(num_shards, #logical shards) parallel tasks, each draining a
  /// contiguous run of shards in shard order. 0 (and any value >= the
  /// logical shard count) = one task per shard. The *logical* partition is
  /// computed from the tenant set alone, so this knob can never change the
  /// plan — it exists to bound task-queue pressure and per-task scratch
  /// residency when a million-tenant solve produces hundreds of shards.
  int num_shards = 0;
  /// Worker threads fanning the shard solves (values < 1 clamp to 1, the
  /// serial path). Composes multiplicatively with solver_jobs.
  int shard_jobs = 1;
  /// TwoStepOptions::solver_jobs for every per-shard solve and the merge
  /// solve (values < 1 clamp to 1; see the TwoStepOptions contract).
  int solver_jobs = 1;
  /// Target tenants per logical shard; the tenant count is chopped into
  /// ceil(n / shard_tenant_target) equal shards (values < 1 clamp to 1).
  /// Larger shards approach flat-solve effectiveness at flat-solve cost;
  /// the default keeps a shard solve in the low seconds while the merge
  /// pass recovers the boundary waste.
  size_t shard_tenant_target = 2048;
  /// A group re-opens for the merge pass when its tenant count is below
  /// this fraction of its size class's fullest group (0 disables merging;
  /// values > 1 re-open everything up to the fullest group). Re-opened
  /// groups are re-solved in merge *chunks* of ~shard_tenant_target pooled
  /// tenants, so the central pass stays near-linear at any shard count.
  double merge_fill_threshold = 0.7;
  /// Least-populated kept groups dealt to *each* merge chunk as
  /// warm-seeded absorbers, so pooled boundary tenants can join groups with
  /// spare fuzzy capacity (each absorber is consumed by exactly one chunk).
  int merge_absorbers_per_class = 4;
  /// Bands of the activity signature (values < 1 clamp to 1; capped at 32
  /// so the signature stays a 128-bit sort key of 4-bit band quantiles).
  size_t signature_bands = 32;
};

/// \brief Phase accounting of one hierarchical solve.
struct HierarchicalStats {
  size_t num_logical_shards = 0;
  size_t min_shard_tenants = 0;
  size_t max_shard_tenants = 0;
  /// Groups produced by the per-shard solves, before merging.
  size_t groups_before_merge = 0;
  /// Under-filled groups dissolved into the merge pool.
  size_t groups_reopened = 0;
  /// Kept groups re-opened as warm absorber seeds.
  size_t absorbers_opened = 0;
  /// Tenants pooled into the central merge solve (re-opened + absorbers).
  size_t merge_pool_tenants = 0;
  double signature_seconds = 0;
  double shard_solve_seconds = 0;
  double merge_seconds = 0;
};

/// \brief Coarse 128-bit activity signature: the horizon is split into up
/// to 32 bands and each band's active-epoch popcount is quantized to 4 bits
/// against the tenant's fullest band. Tenants with the same active phase
/// (e.g. the same office-hour time zone) share a signature prefix, so
/// sorting by signature clusters overlapping tenants.
struct ActivitySignature {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const ActivitySignature& a,
                         const ActivitySignature& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator<(const ActivitySignature& a,
                        const ActivitySignature& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo < b.lo;
  }
};

/// \brief Computes the banded signature of one activity vector. Pure and
/// deterministic; an all-zero vector maps to the all-zero signature.
ActivitySignature ComputeActivitySignature(const ActivityVector& v,
                                           size_t bands);

/// \brief The logical shard partition: item indices of `problem`, grouped
/// by shard in solve order. A pure function of the tenant set and the two
/// partition knobs (shard_tenant_target, signature_bands) — permuting
/// problem.items or changing any parallelism knob yields the same tenant
/// partition. Exposed for tests and diagnostics.
std::vector<std::vector<size_t>> ComputeShardPartition(
    const PackingProblem& problem, const HierarchicalOptions& options);

/// \brief Solves the problem hierarchically (shard -> solve -> merge).
///
/// The returned solution passes VerifySolution and is byte-identical for
/// any num_shards/shard_jobs/solver_jobs. `stats`, when non-null, receives
/// phase accounting.
Result<GroupingSolution> SolveHierarchical(
    const PackingProblem& problem,
    const HierarchicalOptions& options = HierarchicalOptions(),
    HierarchicalStats* stats = nullptr);

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_HIERARCHICAL_H_
