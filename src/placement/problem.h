// LIVBPwFC: Largest Item Vector Bin Packing with Fuzzy Capacity (§5,
// Appendix 9.1).
//
// Item i = tenant (A_i, n_i): activity vector over d epochs plus requested
// node count. A set S of items fits into a bin (tenant-group) iff
// COUNT^{<=R}(sum of A_i) / d >= P — i.e. for at least P% of the epochs at
// most R tenants of the group are active (the fuzzy capacity). The objective
// minimizes sum over bins of R * (largest n_i in the bin): under the
// tenant-driven design each tenant-group is served by R MPPDBs of
// max-tenant-size nodes each.

#ifndef THRIFTY_PLACEMENT_PROBLEM_H_
#define THRIFTY_PLACEMENT_PROBLEM_H_

#include <vector>

#include "activity/activity_vector.h"
#include "common/result.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief One packing item: a tenant with its activity vector.
struct PackingItem {
  TenantId tenant_id = kInvalidTenantId;
  /// Requested node count n_i.
  int nodes = 0;
  /// Activity vector A_i; non-owning, must outlive the problem.
  const ActivityVector* activity = nullptr;
};

/// \brief A LIVBPwFC instance.
struct PackingProblem {
  std::vector<PackingItem> items;
  /// Replication factor R: each group is served by R MPPDBs, so at most R
  /// tenants of a group can be concurrently active without sharing.
  int replication_factor = 3;
  /// Performance SLA guarantee P as a fraction (0.999 for the paper's
  /// default 99.9%).
  double sla_fraction = 0.999;
  /// Epoch count d (all activity vectors must match).
  size_t num_epochs = 0;

  /// \brief Total nodes requested by all items (N).
  int64_t TotalRequestedNodes() const;

  /// \brief Validates invariants (vector sizes, parameter ranges).
  Status Validate() const;
};

/// \brief Builds a problem from tenant specs and their activity vectors
/// (matched by tenant id; every tenant must have a vector).
Result<PackingProblem> MakePackingProblem(
    const std::vector<TenantSpec>& tenants,
    const std::vector<ActivityVector>& activities, int replication_factor,
    double sla_fraction);

/// \brief One tenant-group of a solution.
struct TenantGroupResult {
  std::vector<TenantId> tenant_ids;
  /// Node count of the largest member: each of the R MPPDBs serving this
  /// group gets this many nodes.
  int max_nodes = 0;
  /// Achieved TTP at R.
  double ttp = 1.0;
  /// Maximum concurrently active tenants over the history.
  int max_active = 0;
  /// Bytes of the group's sparse level-set storage when the solver closed
  /// it (0 for solvers that do not report it).
  size_t level_set_bytes = 0;
  /// Bytes the same levels would occupy as dense full-horizon bitmaps.
  size_t level_set_dense_bytes = 0;
};

/// \brief A grouping (packing) solution.
struct GroupingSolution {
  std::vector<TenantGroupResult> groups;
  /// Wall-clock seconds the solver spent.
  double solve_seconds = 0;
  /// Warm-start accounting (two-step only); all 0 on a cold solve.
  /// Seed groups feasible as-is and kept open unchanged.
  size_t warm_groups_kept = 0;
  /// Seed groups dissolved whole into singletons (repair-disabled mode
  /// only; with repair enabled a seed group never fully dissolves).
  size_t warm_groups_dissolved = 0;
  /// Seed groups made feasible by evicting members (repair mode).
  size_t warm_groups_repaired = 0;
  /// Members evicted from repaired seed groups back into the cold pool.
  size_t warm_members_evicted = 0;
  /// Seed members dropped because their tenant id is absent from this
  /// problem (e.g. de-registered tenants in a stale seed).
  size_t warm_members_missing = 0;

  /// \brief Total nodes used: sum over groups of R * max_nodes.
  int64_t NodesUsed(int replication_factor) const;

  /// \brief Sum of the groups' sparse level-set bytes at close time.
  size_t LevelSetBytes() const;

  /// \brief Sum of the groups' dense-equivalent level-set bytes.
  size_t LevelSetDenseBytes() const;

  /// \brief Fraction of requested nodes saved: 1 - used / requested.
  double ConsolidationEffectiveness(int replication_factor,
                                    int64_t requested_nodes) const;

  /// \brief Mean tenants per group.
  double AverageGroupSize() const;
};

/// \brief Checks a solution: every item packed exactly once, every group's
/// fuzzy capacity holds (TTP >= P), max_nodes consistent.
Status VerifySolution(const PackingProblem& problem,
                      const GroupingSolution& solution);

/// \brief Recomputes per-group ttp/max_active/max_nodes from scratch.
Status AnnotateSolution(const PackingProblem& problem,
                        GroupingSolution* solution);

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_PROBLEM_H_
