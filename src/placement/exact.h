// Exact branch-and-bound solver for the LIVBPwFC.
//
// The paper's MINLP formulation (Appendix 9.1) is only solvable by
// general-purpose global optimizers — DIRECT took ~12 days for 20 tenants —
// so exact solving exists purely to validate the heuristics on tiny
// instances. This branch-and-bound enumerates assignments of items to groups
// (with first-item symmetry breaking) and prunes on the monotone cost.

#ifndef THRIFTY_PLACEMENT_EXACT_H_
#define THRIFTY_PLACEMENT_EXACT_H_

#include <cstdint>

#include "common/result.h"
#include "placement/problem.h"

namespace thrifty {

struct ExactSolverOptions {
  /// Search-node budget; the solver fails with CapacityExceeded beyond it
  /// (the status message reports the visited count and the budget). Under
  /// solver_jobs > 1 the count is a shared atomic, so the exact node total
  /// at exhaustion may vary across runs; the returned solution, when the
  /// budget suffices, never does.
  int64_t max_search_nodes = 20'000'000;
  /// Worker threads: independent branch-and-bound subtrees (a canonical
  /// breadth-first frontier of assignment prefixes) are searched in
  /// parallel against a shared incumbent bound. The returned solution is
  /// identical for every value: equal-cost incumbents are resolved by
  /// canonical subtree order, not completion order. Values < 1 clamp to 1,
  /// the serial search, matching the TwoStepOptions contract.
  int solver_jobs = 1;
};

/// \brief Finds a provably optimal grouping.
///
/// Intended for instances up to roughly a dozen tenants; fails cleanly when
/// the node budget is exhausted.
Result<GroupingSolution> SolveExact(
    const PackingProblem& problem,
    const ExactSolverOptions& options = ExactSolverOptions());

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_EXACT_H_
