// Exact branch-and-bound solver for the LIVBPwFC.
//
// The paper's MINLP formulation (Appendix 9.1) is only solvable by
// general-purpose global optimizers — DIRECT took ~12 days for 20 tenants —
// so exact solving exists purely to validate the heuristics on tiny
// instances. This branch-and-bound enumerates assignments of items to groups
// (with first-item symmetry breaking) and prunes on the monotone cost.

#ifndef THRIFTY_PLACEMENT_EXACT_H_
#define THRIFTY_PLACEMENT_EXACT_H_

#include <cstdint>

#include "common/result.h"
#include "placement/problem.h"

namespace thrifty {

struct ExactSolverOptions {
  /// Search-node budget; the solver fails with CapacityExceeded beyond it.
  int64_t max_search_nodes = 20'000'000;
};

/// \brief Finds a provably optimal grouping.
///
/// Intended for instances up to roughly a dozen tenants; fails cleanly when
/// the node budget is exhausted.
Result<GroupingSolution> SolveExact(
    const PackingProblem& problem,
    const ExactSolverOptions& options = ExactSolverOptions());

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_EXACT_H_
