// Heterogeneous cluster design (Chapter 8 future work #1).
//
// Thrifty proper assumes identical nodes; the paper calls extending it to
// heterogeneous machines "an important yet challenging task". This module
// provides that extension for the cluster-design step: the pool is an
// inventory of node classes with relative speeds, an MPPDB's capability is
// the sum of its nodes' speeds, and a tenant requesting n reference nodes
// needs an MPPDB of capability >= n. The designer packs each MPPDB from the
// inventory minimizing wasted capability (and, on ties, node count),
// preferring homogeneous MPPDBs — mixed-speed MPPDBs are as slow as their
// stragglers during repartitioned scans, so a mixing penalty discounts a
// heterogeneous MPPDB's effective capability.

#ifndef THRIFTY_PLACEMENT_HETEROGENEOUS_H_
#define THRIFTY_PLACEMENT_HETEROGENEOUS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace thrifty {

/// \brief One class of identical machines in the pool.
struct NodeClass {
  std::string name;
  /// Available machines of this class.
  int count = 0;
  /// Speed relative to the reference node (1.0 = the homogeneous node the
  /// tenants' requests are denominated in).
  double speed = 1.0;
};

/// \brief The heterogeneous pool.
struct NodeInventory {
  std::vector<NodeClass> classes;

  /// \brief Total capability (sum of count x speed).
  double TotalCapability() const;
  int TotalNodes() const;
};

/// \brief Designer knobs.
struct HeterogeneousDesignOptions {
  /// Effective capability of a mixed MPPDB is scaled by
  /// 1 - mixing_penalty x (1 - min_speed/max_speed): a straggler-bound
  /// discount. 0 disables the penalty, 1 makes capability min-speed-bound.
  double mixing_penalty = 0.5;
};

/// \brief One MPPDB assembled from the inventory.
struct HeterogeneousMppdb {
  /// (class index, node count) pairs, only non-zero entries.
  std::vector<std::pair<size_t, int>> allocation;
  /// Effective capability after the mixing penalty.
  double effective_capability = 0;
  int TotalNodes() const;
};

/// \brief Assembles one MPPDB of effective capability >= `required` from
/// the (mutable) inventory, consuming the nodes it uses.
///
/// Strategy: try each single class (cheapest feasible homogeneous build
/// wins by wasted capability, then node count); if no single class
/// suffices, greedily mix from fastest to slowest. Fails with
/// CapacityExceeded when the remaining inventory cannot reach `required`.
Result<HeterogeneousMppdb> AllocateMppdb(
    NodeInventory* inventory, double required_capability,
    const HeterogeneousDesignOptions& options = HeterogeneousDesignOptions());

/// \brief Designs a tenant-group's A MPPDBs (each of capability >= n_1)
/// from the inventory, consuming nodes.
Result<std::vector<HeterogeneousMppdb>> DesignHeterogeneousGroupCluster(
    NodeInventory* inventory, double largest_tenant_nodes, int num_mppdbs,
    const HeterogeneousDesignOptions& options = HeterogeneousDesignOptions());

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_HETEROGENEOUS_H_
