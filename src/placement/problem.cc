#include "placement/problem.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "activity/level_set.h"

namespace thrifty {

int64_t PackingProblem::TotalRequestedNodes() const {
  int64_t total = 0;
  for (const auto& item : items) total += item.nodes;
  return total;
}

Status PackingProblem::Validate() const {
  if (replication_factor < 1) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (sla_fraction <= 0 || sla_fraction > 1) {
    return Status::InvalidArgument("SLA fraction must be in (0, 1]");
  }
  std::unordered_set<TenantId> seen;
  for (const auto& item : items) {
    if (item.nodes < 1) {
      return Status::InvalidArgument("tenant " + std::to_string(item.tenant_id) +
                                     " requests < 1 node");
    }
    if (item.activity == nullptr) {
      return Status::InvalidArgument("tenant " + std::to_string(item.tenant_id) +
                                     " has no activity vector");
    }
    if (item.activity->num_epochs() != num_epochs) {
      return Status::InvalidArgument("activity vector of tenant " +
                                     std::to_string(item.tenant_id) +
                                     " has mismatched epoch count");
    }
    if (!seen.insert(item.tenant_id).second) {
      return Status::InvalidArgument("duplicate tenant id " +
                                     std::to_string(item.tenant_id));
    }
  }
  return Status::OK();
}

Result<PackingProblem> MakePackingProblem(
    const std::vector<TenantSpec>& tenants,
    const std::vector<ActivityVector>& activities, int replication_factor,
    double sla_fraction) {
  PackingProblem problem;
  problem.replication_factor = replication_factor;
  problem.sla_fraction = sla_fraction;
  std::unordered_map<TenantId, const ActivityVector*> by_tenant;
  for (const auto& a : activities) by_tenant[a.tenant_id()] = &a;
  for (const auto& spec : tenants) {
    auto it = by_tenant.find(spec.id);
    if (it == by_tenant.end()) {
      return Status::InvalidArgument("no activity vector for tenant " +
                                     std::to_string(spec.id));
    }
    PackingItem item;
    item.tenant_id = spec.id;
    item.nodes = spec.requested_nodes;
    item.activity = it->second;
    problem.items.push_back(item);
  }
  if (!problem.items.empty()) {
    problem.num_epochs = problem.items[0].activity->num_epochs();
  }
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  return problem;
}

int64_t GroupingSolution::NodesUsed(int replication_factor) const {
  int64_t total = 0;
  for (const auto& g : groups) {
    total += static_cast<int64_t>(replication_factor) * g.max_nodes;
  }
  return total;
}

double GroupingSolution::ConsolidationEffectiveness(
    int replication_factor, int64_t requested_nodes) const {
  if (requested_nodes <= 0) return 0;
  return 1.0 - static_cast<double>(NodesUsed(replication_factor)) /
                   static_cast<double>(requested_nodes);
}

size_t GroupingSolution::LevelSetBytes() const {
  size_t total = 0;
  for (const auto& g : groups) total += g.level_set_bytes;
  return total;
}

size_t GroupingSolution::LevelSetDenseBytes() const {
  size_t total = 0;
  for (const auto& g : groups) total += g.level_set_dense_bytes;
  return total;
}

double GroupingSolution::AverageGroupSize() const {
  if (groups.empty()) return 0;
  size_t total = 0;
  for (const auto& g : groups) total += g.tenant_ids.size();
  return static_cast<double>(total) / static_cast<double>(groups.size());
}

namespace {

Status CheckAndAnnotate(const PackingProblem& problem,
                        GroupingSolution* solution, bool annotate) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  std::unordered_map<TenantId, const PackingItem*> items;
  for (const auto& item : problem.items) items[item.tenant_id] = &item;

  std::unordered_set<TenantId> packed;
  for (auto& group : solution->groups) {
    if (group.tenant_ids.empty()) {
      return Status::InvalidArgument("solution contains an empty group");
    }
    GroupLevelSet levels(problem.num_epochs);
    int max_nodes = 0;
    for (TenantId tid : group.tenant_ids) {
      auto it = items.find(tid);
      if (it == items.end()) {
        return Status::InvalidArgument("group references unknown tenant " +
                                       std::to_string(tid));
      }
      if (!packed.insert(tid).second) {
        return Status::InvalidArgument("tenant " + std::to_string(tid) +
                                       " packed more than once");
      }
      levels.Add(*it->second->activity);
      max_nodes = std::max(max_nodes, it->second->nodes);
    }
    double ttp = levels.Ttp(problem.replication_factor);
    if (annotate) {
      group.max_nodes = max_nodes;
      group.ttp = ttp;
      group.max_active = levels.MaxActive();
    } else {
      if (group.max_nodes != max_nodes) {
        return Status::InvalidArgument("group max_nodes mismatch");
      }
      if (ttp + 1e-12 < problem.sla_fraction) {
        return Status::InvalidArgument(
            "group violates fuzzy capacity: TTP " + std::to_string(ttp) +
            " < P " + std::to_string(problem.sla_fraction));
      }
    }
  }
  if (packed.size() != problem.items.size()) {
    return Status::InvalidArgument("not all tenants packed: " +
                                   std::to_string(packed.size()) + " of " +
                                   std::to_string(problem.items.size()));
  }
  return Status::OK();
}

}  // namespace

Status VerifySolution(const PackingProblem& problem,
                      const GroupingSolution& solution) {
  GroupingSolution copy = solution;
  return CheckAndAnnotate(problem, &copy, /*annotate=*/false);
}

Status AnnotateSolution(const PackingProblem& problem,
                        GroupingSolution* solution) {
  return CheckAndAnnotate(problem, solution, /*annotate=*/true);
}

}  // namespace thrifty
