// Deployment-plan serialization.
//
// Plans are computed offline by the Deployment Advisor and applied later by
// the Deployment Master (the deployment "is supposed to be static for
// days"), so they need a durable representation. The format is a simple
// line-oriented text format:
//
//   thrifty-plan v1
//   replication <R>
//   sla <P>
//   group <id> mppdbs <n0> <n1> ... <nA-1>
//   tenant <id> nodes <n> data_gb <gb> suite <TPCH|TPCDS> tz <hours> users <s>
//   ...
//   end
//
// Tenants listed after a `group` line belong to that group; `end` closes
// the plan.

#ifndef THRIFTY_PLACEMENT_PLAN_IO_H_
#define THRIFTY_PLACEMENT_PLAN_IO_H_

#include <iosfwd>

#include "common/result.h"
#include "placement/deployment_plan.h"

namespace thrifty {

/// \brief Serializes a plan.
Status WriteDeploymentPlan(const DeploymentPlan& plan, std::ostream& os);

/// \brief Parses a plan written by WriteDeploymentPlan.
Result<DeploymentPlan> ReadDeploymentPlan(std::istream& is);

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_PLAN_IO_H_
