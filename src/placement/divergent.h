// Tenant-driven divergent design (Chapter 8 future work #3).
//
// For the special tenant class that never submits ad-hoc queries (report
// generation only, templates extractable upfront), the paper plans "a
// specialized tenant-driven divergent design that uses U > n_1 nodes for
// MPPDB_0 upfront and different partition schemes for different MPPDBs
// [Consens et al., Divergent physical design tuning] in order to deal with
// the non-linear scale-out problem".
//
// This module implements that design: each replica of a tenant-group may
// use a different partition layout; a layout speeds up the templates it
// favours (equivalent to extra parallelism for them); layouts are assigned
// to replicas to maximize the worst workload template's best speedup, and
// MPPDB_0's size U is derived so that the expected report MPL can be
// processed concurrently on MPPDB_0 at dedicated speed.

#ifndef THRIFTY_PLACEMENT_DIVERGENT_H_
#define THRIFTY_PLACEMENT_DIVERGENT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mppdb/query_model.h"
#include "placement/cluster_design.h"

namespace thrifty {

/// \brief One physical partition layout and the templates it accelerates.
struct PartitionLayout {
  std::string name;
  /// Per-template speedup factor (> 1 = runs that much faster under this
  /// layout); templates not listed run at factor 1.
  std::unordered_map<TemplateId, double> speedups;

  double SpeedupFor(TemplateId id) const;
};

/// \brief Divergent-design knobs.
struct DivergentDesignOptions {
  /// Report queries MPPDB_0 must absorb concurrently at dedicated speed.
  int expected_mpl = 2;
};

/// \brief The resulting design for one report-only tenant-group.
struct DivergentGroupDesign {
  /// Cluster design with U (> n_1) in slot 0.
  GroupClusterDesign cluster;
  /// Layout index per MPPDB (parallel to cluster.mppdb_nodes).
  std::vector<size_t> replica_layouts;
  /// min over workload templates of the best speedup available on any
  /// replica (the divergence payoff; 1.0 means some template gains nothing
  /// anywhere).
  double worst_template_best_speedup = 1.0;
};

/// \brief Plans a divergent design for one tenant-group.
///
/// \param largest_tenant_nodes n_1.
/// \param total_requested_nodes N (bounds U <= N - (A-1) n_1).
/// \param num_mppdbs A (= R).
/// \param workload_templates the tenants' extracted report templates
///        (must be non-empty).
/// \param layouts candidate partition layouts (must be non-empty; the same
///        layout may serve several replicas).
///
/// Fails with CapacityExceeded when the U the expected MPL needs does not
/// fit under the N - (A-1) n_1 bound — such a group should stay on the
/// general (reactive) plan instead.
Result<DivergentGroupDesign> PlanDivergentGroup(
    int largest_tenant_nodes, int64_t total_requested_nodes, int num_mppdbs,
    const std::vector<TemplateId>& workload_templates,
    const std::vector<PartitionLayout>& layouts,
    const DivergentDesignOptions& options = DivergentDesignOptions());

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_DIVERGENT_H_
