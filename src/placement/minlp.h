// The MINLP formulation of the LIVBPwFC (Appendix 9.1).
//
// Variables x_ij in {0,1}: tenant i packed into tenant-group j, with at
// most ceil(T/R) groups. Objective (9.1): minimize
//     sum_j max_i (R * n_i * x_ij).
// Constraint (9.2): for every group j, at least P% of the d epochs have at
// most R active members:
//     sum_k H[R - sum_i A_i[k] x_ij] >= P% * d,
// with H the (discretized) Heaviside step. Constraint (9.3): every tenant
// in exactly one group.
//
// The paper notes this program has non-linear constraints and many local
// minima, so only general-purpose global optimizers apply (DIRECT took ~12
// days for 20 tenants). This module implements the formulation itself —
// assignment matrices, objective and constraint evaluation — plus an
// exhaustive optimizer for tiny instances. It exists to cross-validate the
// solvers: a GroupingSolution and its assignment-matrix encoding must agree
// on cost and feasibility, and the exhaustive MINLP optimum must match
// SolveExact.

#ifndef THRIFTY_PLACEMENT_MINLP_H_
#define THRIFTY_PLACEMENT_MINLP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "placement/problem.h"

namespace thrifty {

/// \brief A 0/1 assignment matrix x_ij (row-major, T x num_groups).
class AssignmentMatrix {
 public:
  AssignmentMatrix(size_t num_items, size_t num_groups);

  size_t num_items() const { return num_items_; }
  size_t num_groups() const { return num_groups_; }

  bool Get(size_t item, size_t group) const;
  void Set(size_t item, size_t group, bool value);

  /// \brief Constraint (9.3): every item assigned to exactly one group.
  bool EachItemAssignedOnce() const;

 private:
  size_t num_items_;
  size_t num_groups_;
  std::vector<uint8_t> cells_;
};

/// \brief Discretized Heaviside step function H[n] of Appendix 9.1.
inline int HeavisideStep(int64_t n) { return n >= 0 ? 1 : 0; }

/// \brief Evaluates objective (9.1) on an assignment.
///
/// Items are indexed by their position in problem.items.
Result<int64_t> MinlpObjective(const PackingProblem& problem,
                               const AssignmentMatrix& x);

/// \brief Evaluates constraint (9.2) for one group: the count
/// sum_k H[R - sum_i A_i[k] x_ij].
Result<size_t> MinlpGroupFeasibleEpochs(const PackingProblem& problem,
                                        const AssignmentMatrix& x,
                                        size_t group);

/// \brief True iff constraints (9.2)-(9.4) all hold.
Result<bool> MinlpFeasible(const PackingProblem& problem,
                           const AssignmentMatrix& x);

/// \brief Encodes a GroupingSolution as an assignment matrix (groups in
/// solution order; requires solution.groups.size() <= ceil(T/R) columns or
/// uses exactly solution.groups.size() columns if larger).
Result<AssignmentMatrix> EncodeSolution(const PackingProblem& problem,
                                        const GroupingSolution& solution);

/// \brief Decodes an assignment matrix back into a GroupingSolution
/// (annotated with per-group stats).
Result<GroupingSolution> DecodeSolution(const PackingProblem& problem,
                                        const AssignmentMatrix& x);

/// \brief Exhaustively optimizes the MINLP (set-partition enumeration).
///
/// Only for cross-validation on tiny instances (T <= ~8; Bell(8) = 4140
/// partitions). Returns CapacityExceeded beyond `max_items`.
Result<GroupingSolution> SolveMinlpExhaustive(const PackingProblem& problem,
                                              size_t max_items = 9);

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_MINLP_H_
