// TDD cluster design (§4.1): arranging a tenant-group's nodes into MPPDBs.
//
// A tenant-group with largest member n_1 is served by A MPPDBs: groups
// G_1..G_{A-1} get exactly n_1 nodes, and the special group G_0 — the
// "tuning MPPDB" used for overflow/concurrent processing — gets U nodes,
// n_1 <= U <= N - (A-1) n_1. By default U = n_1; Chapter 6's manual tuning
// raises U to absorb concurrency spikes on MPPDB_0.

#ifndef THRIFTY_PLACEMENT_CLUSTER_DESIGN_H_
#define THRIFTY_PLACEMENT_CLUSTER_DESIGN_H_

#include <vector>

#include "common/result.h"
#include "workload/tenant.h"

namespace thrifty {

/// \brief Node arrangement of one tenant-group.
struct GroupClusterDesign {
  /// Node count per MPPDB; index 0 is the tuning MPPDB (G_0 / MPPDB_0).
  std::vector<int> mppdb_nodes;

  int NumMppdbs() const { return static_cast<int>(mppdb_nodes.size()); }
  int TotalNodes() const;
  int tuning_nodes() const {
    return mppdb_nodes.empty() ? 0 : mppdb_nodes[0];
  }
};

/// \brief Designs the cluster for a tenant-group.
///
/// \param largest_tenant_nodes n_1, the node count of the group's largest
///        tenant (every MPPDB must offer at least this parallelism so any
///        single active tenant gets exact-or-higher degree of parallelism).
/// \param total_requested_nodes N, the sum of the group's requests (upper
///        bounds U).
/// \param num_mppdbs A; under TDD A equals the replication factor R.
/// \param tuning_nodes_u U for G_0; 0 selects the default U = n_1.
Result<GroupClusterDesign> DesignGroupCluster(int largest_tenant_nodes,
                                              int64_t total_requested_nodes,
                                              int num_mppdbs,
                                              int tuning_nodes_u = 0);

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_CLUSTER_DESIGN_H_
