#include "placement/deployment_plan.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/fnv.h"
#include "common/table_printer.h"

namespace thrifty {

int GroupDeployment::LargestTenantNodes() const {
  int largest = 0;
  for (const auto& t : tenants) largest = std::max(largest, t.requested_nodes);
  return largest;
}

int64_t GroupDeployment::RequestedNodes() const {
  int64_t total = 0;
  for (const auto& t : tenants) total += t.requested_nodes;
  return total;
}

int64_t DeploymentPlan::TotalNodesUsed() const {
  int64_t total = 0;
  for (const auto& g : groups) total += g.cluster.TotalNodes();
  return total;
}

int64_t DeploymentPlan::TotalNodesRequested() const {
  int64_t total = 0;
  for (const auto& g : groups) total += g.RequestedNodes();
  return total;
}

double DeploymentPlan::ConsolidationEffectiveness() const {
  int64_t requested = TotalNodesRequested();
  if (requested <= 0) return 0;
  return 1.0 - static_cast<double>(TotalNodesUsed()) /
                   static_cast<double>(requested);
}

Result<GroupId> DeploymentPlan::GroupOf(TenantId tenant) const {
  for (const auto& g : groups) {
    for (const auto& t : g.tenants) {
      if (t.id == tenant) return g.group_id;
    }
  }
  return Status::NotFound("tenant " + std::to_string(tenant) +
                          " not in deployment plan");
}

void DeploymentPlan::PrintSummary(std::ostream& os) const {
  size_t num_tenants = 0;
  for (const auto& g : groups) num_tenants += g.tenants.size();
  os << "Deployment plan: " << num_tenants << " tenants in " << groups.size()
     << " tenant-groups, R=" << replication_factor
     << ", P=" << FormatPercent(sla_fraction, 2) << "\n"
     << "  nodes requested: " << TotalNodesRequested()
     << ", nodes used: " << TotalNodesUsed() << " ("
     << FormatPercent(static_cast<double>(TotalNodesUsed()) /
                          static_cast<double>(
                              std::max<int64_t>(1, TotalNodesRequested())),
                      1)
     << " of requested)\n"
     << "  consolidation effectiveness: "
     << FormatPercent(ConsolidationEffectiveness(), 1) << "\n";
}

Result<DeploymentPlan> BuildDeploymentPlan(
    const std::vector<TenantSpec>& tenants, const GroupingSolution& grouping,
    int replication_factor, double sla_fraction) {
  std::unordered_map<TenantId, const TenantSpec*> by_id;
  for (const auto& t : tenants) by_id[t.id] = &t;

  DeploymentPlan plan;
  plan.replication_factor = replication_factor;
  plan.sla_fraction = sla_fraction;
  for (const auto& group : grouping.groups) {
    GroupDeployment deployment;
    deployment.group_id = static_cast<GroupId>(plan.groups.size());
    deployment.ttp = group.ttp;
    deployment.max_active = group.max_active;
    for (TenantId tid : group.tenant_ids) {
      auto it = by_id.find(tid);
      if (it == by_id.end()) {
        return Status::InvalidArgument("grouping references unknown tenant " +
                                       std::to_string(tid));
      }
      deployment.tenants.push_back(*it->second);
    }
    THRIFTY_ASSIGN_OR_RETURN(
        deployment.cluster,
        DesignGroupCluster(deployment.LargestTenantNodes(),
                           deployment.RequestedNodes(), replication_factor));
    plan.groups.push_back(std::move(deployment));
  }
  return plan;
}

std::string GroupMembershipStream(const GroupDeployment& group) {
  std::string stream = "g" + std::to_string(group.group_id) + "[";
  std::vector<TenantId> ids;
  ids.reserve(group.tenants.size());
  for (const auto& tenant : group.tenants) ids.push_back(tenant.id);
  std::sort(ids.begin(), ids.end());
  for (TenantId id : ids) stream += std::to_string(id) + ",";
  stream += "]n" + std::to_string(group.cluster.TotalNodes()) + ";";
  return stream;
}

std::string CanonicalMembershipStream(const DeploymentPlan& plan) {
  std::vector<const GroupDeployment*> groups;
  groups.reserve(plan.groups.size());
  for (const auto& group : plan.groups) groups.push_back(&group);
  std::sort(groups.begin(), groups.end(),
            [](const GroupDeployment* a, const GroupDeployment* b) {
              return a->group_id < b->group_id;
            });
  std::string stream;
  for (const GroupDeployment* group : groups) {
    stream += GroupMembershipStream(*group);
  }
  return stream;
}

uint64_t GroupFingerprint(const GroupDeployment& group) {
  return Fnv1a64(GroupMembershipStream(group));
}

uint64_t PlanFingerprint(const DeploymentPlan& plan) {
  return Fnv1a64(CanonicalMembershipStream(plan));
}

}  // namespace thrifty
