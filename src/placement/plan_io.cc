#include "placement/plan_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace thrifty {

Status WriteDeploymentPlan(const DeploymentPlan& plan, std::ostream& os) {
  os << "thrifty-plan v1\n";
  os << "replication " << plan.replication_factor << "\n";
  os << "sla " << plan.sla_fraction << "\n";
  for (const auto& group : plan.groups) {
    os << "group " << group.group_id << " mppdbs";
    for (int nodes : group.cluster.mppdb_nodes) os << ' ' << nodes;
    os << "\n";
    for (const auto& tenant : group.tenants) {
      os << "tenant " << tenant.id << " nodes " << tenant.requested_nodes
         << " data_gb " << tenant.data_gb << " suite "
         << QuerySuiteToString(tenant.suite) << " tz "
         << tenant.time_zone_offset_hours << " users " << tenant.max_users
         << "\n";
    }
  }
  os << "end\n";
  if (!os) return Status::Internal("stream write failure");
  return Status::OK();
}

namespace {

Status Malformed(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("plan line " + std::to_string(line_no) +
                                 ": " + why);
}

}  // namespace

Result<DeploymentPlan> ReadDeploymentPlan(std::istream& is) {
  std::string line;
  size_t line_no = 0;
  if (!std::getline(is, line) || line != "thrifty-plan v1") {
    return Status::InvalidArgument("missing 'thrifty-plan v1' header");
  }
  ++line_no;

  DeploymentPlan plan;
  bool have_replication = false;
  bool have_sla = false;
  bool ended = false;
  GroupDeployment* current = nullptr;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "replication") {
      if (!(ss >> plan.replication_factor) || plan.replication_factor < 1) {
        return Malformed(line_no, "bad replication factor");
      }
      have_replication = true;
    } else if (keyword == "sla") {
      if (!(ss >> plan.sla_fraction) || plan.sla_fraction <= 0 ||
          plan.sla_fraction > 1) {
        return Malformed(line_no, "bad SLA fraction");
      }
      have_sla = true;
    } else if (keyword == "group") {
      GroupDeployment group;
      std::string mppdbs_keyword;
      if (!(ss >> group.group_id >> mppdbs_keyword) ||
          mppdbs_keyword != "mppdbs") {
        return Malformed(line_no, "expected 'group <id> mppdbs <nodes>...'");
      }
      int nodes;
      while (ss >> nodes) {
        if (nodes < 1) return Malformed(line_no, "MPPDB with < 1 node");
        group.cluster.mppdb_nodes.push_back(nodes);
      }
      if (group.cluster.mppdb_nodes.empty()) {
        return Malformed(line_no, "group with no MPPDBs");
      }
      plan.groups.push_back(std::move(group));
      current = &plan.groups.back();
    } else if (keyword == "tenant") {
      if (current == nullptr) {
        return Malformed(line_no, "tenant before any group");
      }
      TenantSpec tenant;
      std::string kw_nodes, kw_data, kw_suite, kw_tz, kw_users, suite;
      if (!(ss >> tenant.id >> kw_nodes >> tenant.requested_nodes >>
            kw_data >> tenant.data_gb >> kw_suite >> suite >> kw_tz >>
            tenant.time_zone_offset_hours >> kw_users >> tenant.max_users) ||
          kw_nodes != "nodes" || kw_data != "data_gb" ||
          kw_suite != "suite" || kw_tz != "tz" || kw_users != "users") {
        return Malformed(line_no, "bad tenant line");
      }
      if (suite == "TPCH") {
        tenant.suite = QuerySuite::kTpch;
      } else if (suite == "TPCDS") {
        tenant.suite = QuerySuite::kTpcds;
      } else {
        return Malformed(line_no, "unknown suite " + suite);
      }
      if (tenant.requested_nodes < 1 || tenant.data_gb < 0) {
        return Malformed(line_no, "bad tenant parameters");
      }
      current->tenants.push_back(tenant);
    } else if (keyword == "end") {
      ended = true;
      break;
    } else {
      return Malformed(line_no, "unknown keyword " + keyword);
    }
  }
  if (!ended) return Status::InvalidArgument("plan missing 'end'");
  if (!have_replication || !have_sla) {
    return Status::InvalidArgument("plan missing replication/sla header");
  }
  for (const auto& group : plan.groups) {
    if (group.tenants.empty()) {
      return Status::InvalidArgument("group " +
                                     std::to_string(group.group_id) +
                                     " has no tenants");
    }
  }
  return plan;
}

}  // namespace thrifty
