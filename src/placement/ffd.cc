#include "placement/ffd.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "activity/level_set.h"

namespace thrifty {

namespace {

double SortScalar(const PackingItem& item, FfdSortKey key) {
  switch (key) {
    case FfdSortKey::kNodesTimesActivity:
      return static_cast<double>(item.nodes) *
             static_cast<double>(item.activity->ActiveEpochs() + 1);
    case FfdSortKey::kActivity:
      return static_cast<double>(item.activity->ActiveEpochs());
    case FfdSortKey::kNodes:
      return static_cast<double>(item.nodes);
  }
  return 0;
}

struct OpenBin {
  std::unique_ptr<GroupLevelSet> levels;
  TenantGroupResult group;
};

}  // namespace

Result<GroupingSolution> SolveFfd(const PackingProblem& problem,
                                  const FfdOptions& options) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  auto start = std::chrono::steady_clock::now();

  std::vector<const PackingItem*> order;
  order.reserve(problem.items.size());
  for (const auto& item : problem.items) order.push_back(&item);
  std::sort(order.begin(), order.end(),
            [&](const PackingItem* a, const PackingItem* b) {
              double ka = SortScalar(*a, options.sort_key);
              double kb = SortScalar(*b, options.sort_key);
              if (ka != kb) return ka > kb;  // decreasing
              return a->tenant_id < b->tenant_id;
            });

  const int r = problem.replication_factor;
  std::vector<OpenBin> bins;
  for (const PackingItem* item : order) {
    bool placed = false;
    for (auto& bin : bins) {
      std::vector<size_t> pops = bin.levels->EvaluateAdd(*item->activity);
      if (bin.levels->TtpFromPopcounts(pops, r) + 1e-12 >=
          problem.sla_fraction) {
        bin.levels->Add(*item->activity);
        bin.group.tenant_ids.push_back(item->tenant_id);
        bin.group.max_nodes = std::max(bin.group.max_nodes, item->nodes);
        placed = true;
        break;
      }
    }
    if (!placed) {
      OpenBin bin;
      bin.levels = std::make_unique<GroupLevelSet>(problem.num_epochs);
      bin.levels->Add(*item->activity);
      bin.group.tenant_ids.push_back(item->tenant_id);
      bin.group.max_nodes = item->nodes;
      bins.push_back(std::move(bin));
    }
  }

  GroupingSolution solution;
  for (auto& bin : bins) {
    bin.group.ttp = bin.levels->Ttp(r);
    bin.group.max_active = bin.levels->MaxActive();
    bin.group.level_set_bytes = bin.levels->MemoryBytes();
    bin.group.level_set_dense_bytes = bin.levels->DenseEquivalentBytes();
    solution.groups.push_back(std::move(bin.group));
  }
  solution.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return solution;
}

}  // namespace thrifty
