#include "placement/cluster_design.h"

#include <string>

namespace thrifty {

int GroupClusterDesign::TotalNodes() const {
  int total = 0;
  for (int n : mppdb_nodes) total += n;
  return total;
}

Result<GroupClusterDesign> DesignGroupCluster(int largest_tenant_nodes,
                                              int64_t total_requested_nodes,
                                              int num_mppdbs,
                                              int tuning_nodes_u) {
  if (largest_tenant_nodes < 1) {
    return Status::InvalidArgument("largest tenant must request >= 1 node");
  }
  if (num_mppdbs < 1) {
    return Status::InvalidArgument("a group needs at least one MPPDB");
  }
  if (tuning_nodes_u == 0) tuning_nodes_u = largest_tenant_nodes;
  if (tuning_nodes_u < largest_tenant_nodes) {
    return Status::InvalidArgument(
        "tuning MPPDB must have at least n_1 = " +
        std::to_string(largest_tenant_nodes) + " nodes");
  }
  // U may not exceed N - (A-1) n_1: consolidation must still save vs the
  // tenants' aggregate request. A single-tenant group (N == n_1) is exempt
  // from the upper bound beyond U = n_1 being the only valid choice there.
  int64_t u_max = total_requested_nodes -
                  static_cast<int64_t>(num_mppdbs - 1) * largest_tenant_nodes;
  if (u_max < largest_tenant_nodes) u_max = largest_tenant_nodes;
  if (tuning_nodes_u > u_max) {
    return Status::InvalidArgument(
        "tuning MPPDB of " + std::to_string(tuning_nodes_u) +
        " nodes exceeds the limit U <= N - (A-1) n_1 = " +
        std::to_string(u_max));
  }
  GroupClusterDesign design;
  design.mppdb_nodes.push_back(tuning_nodes_u);
  for (int g = 1; g < num_mppdbs; ++g) {
    design.mppdb_nodes.push_back(largest_tenant_nodes);
  }
  return design;
}

}  // namespace thrifty
