// The two-step tenant-grouping heuristic (Algorithm 2, §5) — Thrifty's
// solver for the LIVBPwFC.
//
// Step 1 puts tenants requesting the same number of nodes into the same
// *initial group* (tenants of equal size share bins so the largest-item
// objective wastes nothing).
//
// Step 2 splits each initial group into tenant-groups: seed a group with the
// least active tenant, then repeatedly add the tenant T_best that minimizes
// the increase in the time percentage of the maximum number of active
// tenants (ties cascade to lower activity levels, exactly as in the paper's
// Fig 5.3 walkthrough; full ties resolve to the higher tenant id, matching
// Fig 5.3d). The group closes when adding T_best would drop its TTP at R
// below the SLA guarantee P.

#ifndef THRIFTY_PLACEMENT_TWO_STEP_H_
#define THRIFTY_PLACEMENT_TWO_STEP_H_

#include <vector>

#include "common/result.h"
#include "placement/problem.h"

namespace thrifty {

/// \brief Compares two candidate outcomes by the Fig 5.3 criterion.
///
/// `a` and `b` are EvaluateAdd popcount vectors (epochs with >= m active).
/// Returns negative if a is the better (smaller) outcome, positive if b is,
/// 0 on a full tie. Comparison runs over exact-level fractions from the
/// highest level downward.
int CompareCandidateLevels(const std::vector<size_t>& a,
                           const std::vector<size_t>& b);

/// \brief Execution knobs of the two-step heuristic.
struct TwoStepOptions {
  /// Worker threads inside one solve: the group-grow candidate argmin is
  /// sharded across workers and independent node-size initial groups run as
  /// parallel tasks. The grouping is bit-identical for every value — the
  /// Fig 5.3 criterion plus the tenant-id tie-break is a strict total
  /// order, and shard winners are merged in canonical shard order — so
  /// solver_jobs only changes wall-clock time. Values < 1 (0, negatives)
  /// clamp to 1, the serial code path, so wrappers deriving a job count
  /// (HierarchicalOptions, sweep configs) can pass it through unchecked.
  int solver_jobs = 1;
  /// Optional seed grouping from a neighbouring sweep point (non-owning;
  /// must outlive the solve). Each seed group is re-validated against
  /// *this* problem's activity vectors and SLA: a feasible group is kept as
  /// an already-open group and the growth loop resumes on it; an infeasible
  /// one is *repaired* (see `warm_repair`) or, with repair disabled,
  /// dissolved back into singletons that re-enter the normal seed-and-grow
  /// loop. Tenant ids unknown to this problem are skipped (counted in
  /// `GroupingSolution::warm_members_missing`), a tenant seeded twice
  /// counts only in its first group, and a seed group spanning several
  /// requested-node sizes is split per size class (step 1 partitions by
  /// size first). The warm result is a valid solution but not necessarily
  /// bit-identical to the cold one — see fig7_1/fig7_5 --warm-start for the
  /// measured effectiveness deltas.
  const GroupingSolution* warm_start = nullptr;
  /// How an infeasible seed group is handled. true (default): *group
  /// repair* — evict the fewest, most-SLA-damaging members one at a time
  /// (greedy by the marginal Fig 5.3 outcome of their removal, full ties
  /// evicting the higher tenant id, so the eviction sequence is a
  /// deterministic function of the group alone and identical at every
  /// solver_jobs), keep the repaired group open for the growth loop, and
  /// return only the evictees to the cold pool. false: the historical
  /// all-or-nothing behavior — one infeasible member dissolves the whole
  /// seed group back into singletons.
  bool warm_repair = true;
};

/// \brief Solves the problem with the two-step heuristic.
Result<GroupingSolution> SolveTwoStep(const PackingProblem& problem,
                                      const TwoStepOptions& options =
                                          TwoStepOptions());

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_TWO_STEP_H_
