#include "placement/hierarchical.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "placement/two_step.h"

namespace thrifty {

namespace {

constexpr size_t kMaxSignatureBands = 32;

double SecondsSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

ActivitySignature ComputeActivitySignature(const ActivityVector& v,
                                           size_t bands) {
  bands = std::clamp<size_t>(bands, 1, kMaxSignatureBands);
  ActivitySignature sig;
  const size_t horizon_words = (v.num_epochs() + 63) / 64;
  const auto& indices = v.word_indices();
  const auto& bits = v.word_bits();
  if (horizon_words == 0 || indices.empty()) return sig;

  // Band b covers words [b*W/bands, (b+1)*W/bands). The nonzero words are
  // stored ascending, so each band's members are one contiguous run of the
  // parallel bits array — exactly the shape the span-popcount kernel wants.
  size_t band_pops[kMaxSignatureBands] = {};
  size_t max_pop = 0;
  size_t i = 0;
  for (size_t b = 0; b < bands && i < indices.size(); ++b) {
    const uint32_t band_end =
        static_cast<uint32_t>((b + 1) * horizon_words / bands);
    size_t first = i;
    while (i < indices.size() && indices[i] < band_end) ++i;
    band_pops[b] = simd::SpanPopcount(bits.data() + first, i - first);
    max_pop = std::max(max_pop, band_pops[b]);
  }
  if (max_pop == 0) return sig;

  // Quantize each band against the fullest one: 4 bits per band, any
  // activity at all maps to at least 1. Band 0 lands in the most
  // significant nibble so signature order == band-lexicographic order.
  for (size_t b = 0; b < bands; ++b) {
    uint64_t q = 0;
    if (band_pops[b] > 0) {
      q = std::max<uint64_t>(1, band_pops[b] * 15 / max_pop);
    }
    if (b < 16) {
      sig.hi |= q << (4 * (15 - b));
    } else {
      sig.lo |= q << (4 * (31 - b));
    }
  }
  return sig;
}

std::vector<std::vector<size_t>> ComputeShardPartition(
    const PackingProblem& problem, const HierarchicalOptions& options) {
  const size_t n = problem.items.size();
  if (n == 0) return {};
  const size_t target = std::max<size_t>(1, options.shard_tenant_target);

  struct Keyed {
    ActivitySignature sig;
    size_t active_epochs;
    TenantId tenant_id;
    size_t item_index;
  };
  std::vector<Keyed> keyed(n);
  for (size_t i = 0; i < n; ++i) {
    const PackingItem& item = problem.items[i];
    keyed[i] = {ComputeActivitySignature(*item.activity,
                                         options.signature_bands),
                item.activity->ActiveEpochs(), item.tenant_id, i};
  }
  // (signature, activity, id) is a strict total order over distinct tenant
  // ids, so the sorted sequence — and hence the partition — is invariant
  // under any permutation of problem.items.
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (!(a.sig == b.sig)) return a.sig < b.sig;
    if (a.active_epochs != b.active_epochs) {
      return a.active_epochs < b.active_epochs;
    }
    return a.tenant_id < b.tenant_id;
  });

  // Stripe the signature-sorted order round-robin across the shards. The
  // fuzzy capacity COUNT^{<=R} rewards groups whose members are active in
  // *different* epochs, so every shard must see the full spectrum of
  // activity phases to pack as well as the flat solve does; dealing
  // consecutive signature-neighbours to different shards gives each shard a
  // stratified sample of every phase (and of every node-size class) instead
  // of the sampling noise of hash sharding.
  const size_t num_shards = (n + target - 1) / target;
  std::vector<std::vector<size_t>> partition(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    partition[s].reserve(n / num_shards + 1);
  }
  for (size_t k = 0; k < n; ++k) {
    partition[k % num_shards].push_back(keyed[k].item_index);
  }
  return partition;
}

namespace {

/// A group produced by a shard solve, addressable in canonical
/// (shard, within-shard index) order.
struct GroupRef {
  size_t shard = 0;
  size_t index = 0;
  const TenantGroupResult* group = nullptr;

  size_t Count() const { return group->tenant_ids.size(); }
};

/// One bounded merge solve: a canonical run of re-opened groups plus its
/// warm absorber seeds. Chunking keeps every merge solve ~shard-sized, so
/// the central pass stays near-linear even when hundreds of shards pool
/// thousands of boundary tenants.
struct MergeChunk {
  int nodes = 0;
  std::vector<GroupRef> reopened;
  std::vector<GroupRef> absorbers;

  size_t GroupsConsumed() const { return reopened.size() + absorbers.size(); }
};

/// One size class's merge plan: which groups stay untouched and which merge
/// chunks (indices into the global chunk list) rebuild the rest.
struct ClassMergePlan {
  int nodes = 0;
  std::vector<GroupRef> kept;
  std::vector<size_t> chunk_ids;
};

/// Plans one size class: re-opens the groups whose fill is below
/// merge_fill_threshold of the class's fullest group, packs them into
/// chunks of ~shard_tenant_target tenants in canonical order, and deals the
/// least-populated kept groups to the chunks as absorbers (each absorber
/// used by exactly one chunk; ties resolve in canonical (count, shard,
/// index) order). Pure planning — no solving — so the plan is a function of
/// the per-shard solutions alone.
ClassMergePlan PlanClassMerge(int nodes, std::vector<GroupRef> refs,
                              const HierarchicalOptions& options,
                              std::vector<MergeChunk>* chunks,
                              HierarchicalStats* stats) {
  ClassMergePlan plan;
  plan.nodes = nodes;
  size_t max_count = 0;
  for (const GroupRef& ref : refs) max_count = std::max(max_count, ref.Count());

  std::vector<GroupRef> reopened;
  const double fill_floor =
      options.merge_fill_threshold * static_cast<double>(max_count);
  for (const GroupRef& ref : refs) {
    if (refs.size() > 1 && static_cast<double>(ref.Count()) < fill_floor) {
      reopened.push_back(ref);
    } else {
      plan.kept.push_back(ref);
    }
  }
  if (reopened.empty()) return plan;

  const size_t budget = std::max<size_t>(1, options.shard_tenant_target);
  std::vector<MergeChunk> class_chunks;
  size_t pooled = 0;
  for (const GroupRef& ref : reopened) {
    if (class_chunks.empty() || pooled + ref.Count() > budget) {
      class_chunks.push_back(MergeChunk{nodes, {}, {}});
      pooled = 0;
    }
    class_chunks.back().reopened.push_back(ref);
    pooled += ref.Count();
  }

  // Absorbers: the least-populated kept groups, re-opened as feasible warm
  // seeds so pooled tenants can join their spare fuzzy capacity; dealt to
  // the chunks in order, merge_absorbers_per_class each. Ties resolve in
  // canonical (count, shard, index) order.
  const size_t per_chunk =
      static_cast<size_t>(std::max(0, options.merge_absorbers_per_class));
  const size_t wanted =
      std::min(plan.kept.size(), per_chunk * class_chunks.size());
  if (wanted > 0) {
    std::vector<GroupRef> by_fill = plan.kept;
    std::sort(by_fill.begin(), by_fill.end(),
              [](const GroupRef& a, const GroupRef& b) {
                if (a.Count() != b.Count()) return a.Count() < b.Count();
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.index < b.index;
              });
    by_fill.resize(wanted);
    for (size_t i = 0; i < by_fill.size(); ++i) {
      class_chunks[i / per_chunk].absorbers.push_back(by_fill[i]);
    }
    // Remove the absorbers from the kept list, preserving canonical order.
    plan.kept.erase(
        std::remove_if(plan.kept.begin(), plan.kept.end(),
                       [&](const GroupRef& ref) {
                         for (const GroupRef& a : by_fill) {
                           if (a.shard == ref.shard && a.index == ref.index) {
                             return true;
                           }
                         }
                         return false;
                       }),
        plan.kept.end());
  }

  for (auto& chunk : class_chunks) {
    stats->groups_reopened += chunk.reopened.size();
    stats->absorbers_opened += chunk.absorbers.size();
    for (const GroupRef& ref : chunk.reopened) {
      stats->merge_pool_tenants += ref.Count();
    }
    for (const GroupRef& ref : chunk.absorbers) {
      stats->merge_pool_tenants += ref.Count();
    }
    plan.chunk_ids.push_back(chunks->size());
    chunks->push_back(std::move(chunk));
  }
  return plan;
}

/// Solves one merge chunk: the pooled members re-solved with the absorber
/// groups as warm seeds. Falls back to the chunk's unmerged groups when the
/// merge cannot save a bin (better-of-both — every group of the class costs
/// the same R * nodes — so the pass never loses nodes; ties keep the
/// merged plan, which leaves fewer under-filled remnants behind).
Result<std::vector<TenantGroupResult>> SolveMergeChunk(
    const PackingProblem& problem, const MergeChunk& chunk,
    const std::unordered_map<TenantId, const PackingItem*>& items_by_id,
    const HierarchicalOptions& options) {
  PackingProblem merge_problem;
  merge_problem.replication_factor = problem.replication_factor;
  merge_problem.sla_fraction = problem.sla_fraction;
  merge_problem.num_epochs = problem.num_epochs;
  GroupingSolution warm;
  for (const GroupRef& ref : chunk.reopened) {
    for (TenantId id : ref.group->tenant_ids) {
      merge_problem.items.push_back(*items_by_id.at(id));
    }
  }
  for (const GroupRef& ref : chunk.absorbers) {
    TenantGroupResult seed;
    seed.max_nodes = chunk.nodes;
    for (TenantId id : ref.group->tenant_ids) {
      merge_problem.items.push_back(*items_by_id.at(id));
      seed.tenant_ids.push_back(id);
    }
    warm.groups.push_back(std::move(seed));
  }

  TwoStepOptions merge_options;
  merge_options.solver_jobs = options.solver_jobs;
  merge_options.warm_start = warm.groups.empty() ? nullptr : &warm;
  merge_options.warm_repair = true;
  THRIFTY_ASSIGN_OR_RETURN(GroupingSolution merged,
                           SolveTwoStep(merge_problem, merge_options));

  std::vector<TenantGroupResult> out;
  if (merged.groups.size() > chunk.GroupsConsumed()) {
    for (const GroupRef& ref : chunk.reopened) out.push_back(*ref.group);
    for (const GroupRef& ref : chunk.absorbers) out.push_back(*ref.group);
    return out;
  }
  for (auto& group : merged.groups) out.push_back(std::move(group));
  return out;
}

}  // namespace

Result<GroupingSolution> SolveHierarchical(const PackingProblem& problem,
                                           const HierarchicalOptions& options,
                                           HierarchicalStats* stats) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  const auto start = std::chrono::steady_clock::now();
  HierarchicalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = HierarchicalStats();

  const auto partition = ComputeShardPartition(problem, options);
  const size_t num_shards = partition.size();
  stats->num_logical_shards = num_shards;
  for (const auto& shard : partition) {
    stats->min_shard_tenants =
        stats->min_shard_tenants == 0
            ? shard.size()
            : std::min(stats->min_shard_tenants, shard.size());
    stats->max_shard_tenants = std::max(stats->max_shard_tenants,
                                        shard.size());
  }
  stats->signature_seconds = SecondsSince(start);

  GroupingSolution solution;
  if (num_shards == 0) {
    solution.solve_seconds = SecondsSince(start);
    return solution;
  }

  // Per-shard solves, fanned as min(num_shards option, #shards) contiguous
  // batches. Results land in per-shard slots and are merged in shard order,
  // so batching and scheduling never reach the output.
  const auto solve_start = std::chrono::steady_clock::now();
  const int shard_jobs = std::max(1, options.shard_jobs);
  size_t num_batches =
      options.num_shards <= 0
          ? num_shards
          : std::min<size_t>(static_cast<size_t>(options.num_shards),
                             num_shards);
  std::unique_ptr<ThreadPool> pool;
  if (shard_jobs > 1) {
    pool = std::make_unique<ThreadPool>(shard_jobs - 1);
  }
  std::vector<GroupingSolution> shard_solutions(num_shards);
  std::vector<Status> shard_statuses(num_shards, Status::OK());
  ParallelFor(pool.get(), num_batches, [&](size_t batch) {
    const size_t lo = batch * num_shards / num_batches;
    const size_t hi = (batch + 1) * num_shards / num_batches;
    for (size_t s = lo; s < hi; ++s) {
      PackingProblem shard_problem;
      shard_problem.replication_factor = problem.replication_factor;
      shard_problem.sla_fraction = problem.sla_fraction;
      shard_problem.num_epochs = problem.num_epochs;
      shard_problem.items.reserve(partition[s].size());
      for (size_t item_index : partition[s]) {
        shard_problem.items.push_back(problem.items[item_index]);
      }
      TwoStepOptions shard_options;
      shard_options.solver_jobs = options.solver_jobs;
      auto solved = SolveTwoStep(shard_problem, shard_options);
      if (solved.ok()) {
        shard_solutions[s] = *std::move(solved);
      } else {
        shard_statuses[s] = solved.status();
      }
    }
  });
  for (const Status& status : shard_statuses) {
    THRIFTY_RETURN_NOT_OK(status);
  }
  stats->shard_solve_seconds = SecondsSince(solve_start);

  // Central merge. Classes are processed in descending node size (the
  // two-step output convention) over groups addressed in shard-major
  // order, so the merge input — and therefore the plan — is a function of
  // the per-shard solutions alone.
  const auto merge_start = std::chrono::steady_clock::now();
  std::map<int, std::vector<GroupRef>, std::greater<int>> classes;
  for (size_t s = 0; s < num_shards; ++s) {
    const auto& groups = shard_solutions[s].groups;
    for (size_t g = 0; g < groups.size(); ++g) {
      classes[groups[g].max_nodes].push_back(GroupRef{s, g, &groups[g]});
      ++stats->groups_before_merge;
    }
  }
  std::unordered_map<TenantId, const PackingItem*> items_by_id;
  items_by_id.reserve(problem.items.size());
  for (const auto& item : problem.items) {
    items_by_id.emplace(item.tenant_id, &item);
  }
  // Plan first (pure, serial), then fan the bounded merge chunks over the
  // same worker pool as the shard solves; each chunk's result lands in its
  // own slot, so the output order is the plan's order, not the schedule's.
  std::vector<MergeChunk> chunks;
  std::vector<ClassMergePlan> plans;
  for (auto& [nodes, refs] : classes) {
    plans.push_back(
        PlanClassMerge(nodes, std::move(refs), options, &chunks, stats));
  }
  std::vector<std::vector<TenantGroupResult>> chunk_groups(chunks.size());
  std::vector<Status> chunk_statuses(chunks.size(), Status::OK());
  ParallelFor(pool.get(), chunks.size(), [&](size_t c) {
    auto merged = SolveMergeChunk(problem, chunks[c], items_by_id, options);
    if (merged.ok()) {
      chunk_groups[c] = *std::move(merged);
    } else {
      chunk_statuses[c] = merged.status();
    }
  });
  for (const Status& status : chunk_statuses) {
    THRIFTY_RETURN_NOT_OK(status);
  }
  for (const ClassMergePlan& plan : plans) {
    for (const GroupRef& ref : plan.kept) {
      solution.groups.push_back(*ref.group);
    }
    for (size_t c : plan.chunk_ids) {
      for (auto& group : chunk_groups[c]) {
        solution.groups.push_back(std::move(group));
      }
    }
  }
  stats->merge_seconds = SecondsSince(merge_start);
  solution.solve_seconds = SecondsSince(start);
  return solution;
}

}  // namespace thrifty
