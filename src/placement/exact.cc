#include "placement/exact.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "activity/level_set.h"

namespace thrifty {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const PackingProblem& problem,
                 const ExactSolverOptions& options)
      : problem_(problem), options_(options) {
    // Order items by decreasing node count so group max_nodes is fixed by
    // the first member, which tightens the incremental cost.
    for (const auto& item : problem.items) order_.push_back(&item);
    std::sort(order_.begin(), order_.end(),
              [](const PackingItem* a, const PackingItem* b) {
                if (a->nodes != b->nodes) return a->nodes > b->nodes;
                return a->tenant_id < b->tenant_id;
              });
  }

  Result<GroupingSolution> Solve() {
    best_cost_ = INT64_MAX;
    Recurse(0, 0);
    if (nodes_exhausted_) {
      return Status::CapacityExceeded("exact solver search budget exhausted");
    }
    GroupingSolution solution;
    solution.groups = best_groups_;
    return solution;
  }

 private:
  struct OpenGroup {
    std::unique_ptr<GroupLevelSet> levels;
    TenantGroupResult group;
  };

  void Recurse(size_t index, int64_t cost) {
    if (nodes_exhausted_) return;
    if (++visited_ > options_.max_search_nodes) {
      nodes_exhausted_ = true;
      return;
    }
    if (cost >= best_cost_) return;  // cost is monotone in assignments
    if (index == order_.size()) {
      best_cost_ = cost;
      best_groups_.clear();
      for (const auto& g : open_) {
        TenantGroupResult result = g.group;
        result.ttp = g.levels->Ttp(problem_.replication_factor);
        result.max_active = g.levels->MaxActive();
        best_groups_.push_back(std::move(result));
      }
      return;
    }
    const PackingItem* item = order_[index];
    const int r = problem_.replication_factor;

    // Try each open group. Deeper recursion pushes (and pops) new groups on
    // open_, so index-based access is required: references into the vector
    // do not survive reallocation.
    const size_t num_open = open_.size();
    for (size_t gi = 0; gi < num_open; ++gi) {
      std::vector<size_t> pops =
          open_[gi].levels->EvaluateAdd(*item->activity);
      if (open_[gi].levels->TtpFromPopcounts(pops, r) + 1e-12 <
          problem_.sla_fraction) {
        continue;
      }
      // Items arrive in decreasing node order, so max_nodes cannot grow.
      open_[gi].levels->Add(*item->activity);
      open_[gi].group.tenant_ids.push_back(item->tenant_id);
      Recurse(index + 1, cost);
      open_[gi].group.tenant_ids.pop_back();
      Status st = open_[gi].levels->Remove(*item->activity);
      (void)st;
    }

    // Open a new group (symmetry-safe: a new group is interchangeable with
    // any other new group, and this is the only way this item starts one).
    OpenGroup g;
    g.levels = std::make_unique<GroupLevelSet>(problem_.num_epochs);
    g.levels->Add(*item->activity);
    g.group.tenant_ids.push_back(item->tenant_id);
    g.group.max_nodes = item->nodes;
    int64_t new_cost =
        cost + static_cast<int64_t>(problem_.replication_factor) * item->nodes;
    open_.push_back(std::move(g));
    Recurse(index + 1, new_cost);
    open_.pop_back();
  }

  const PackingProblem& problem_;
  const ExactSolverOptions& options_;
  std::vector<const PackingItem*> order_;
  std::vector<OpenGroup> open_;
  std::vector<TenantGroupResult> best_groups_;
  int64_t best_cost_ = INT64_MAX;
  int64_t visited_ = 0;
  bool nodes_exhausted_ = false;
};

}  // namespace

Result<GroupingSolution> SolveExact(const PackingProblem& problem,
                                    const ExactSolverOptions& options) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  auto start = std::chrono::steady_clock::now();
  BranchAndBound solver(problem, options);
  auto result = solver.Solve();
  THRIFTY_RETURN_NOT_OK(result.status());
  GroupingSolution solution = std::move(result).value();
  solution.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return solution;
}

}  // namespace thrifty
