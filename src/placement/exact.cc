#include "placement/exact.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "activity/level_set.h"
#include "common/thread_pool.h"

namespace thrifty {

namespace {

struct OpenGroup {
  std::unique_ptr<GroupLevelSet> levels;
  TenantGroupResult group;
};

/// Coordination state shared by every subtree of one solve.
///
/// The incumbent is the pair (best_cost, holder): holder is the index of
/// the canonically earliest subtree that found a best_cost solution, and
/// the winning grouping lives in that subtree's slot. `cost_snapshot`
/// mirrors best_cost for the lock-free fast path of the prune check.
struct SharedSearch {
  explicit SharedSearch(size_t num_subtrees) : slots(num_subtrees) {}

  std::atomic<int64_t> visited{0};
  std::atomic<bool> exhausted{false};
  std::atomic<int64_t> cost_snapshot{INT64_MAX};

  std::mutex mu;
  int64_t best_cost = INT64_MAX;  // guarded by mu
  size_t holder = SIZE_MAX;       // guarded by mu
  std::vector<std::vector<TenantGroupResult>> slots;  // slots[s]: subtree s
};

/// Canonical item order: decreasing node count so group max_nodes is fixed
/// by the first member, which tightens the incremental cost.
std::vector<const PackingItem*> CanonicalOrder(const PackingProblem& problem) {
  std::vector<const PackingItem*> order;
  order.reserve(problem.items.size());
  for (const auto& item : problem.items) order.push_back(&item);
  std::sort(order.begin(), order.end(),
            [](const PackingItem* a, const PackingItem* b) {
              if (a->nodes != b->nodes) return a->nodes > b->nodes;
              return a->tenant_id < b->tenant_id;
            });
  return order;
}

/// Depth-first search over one subtree: the items below a fixed prefix of
/// assignment choices. `choices[t]` assigns item t to open group
/// `choices[t]`, or opens a new group when it equals the open-group count.
class SubtreeSearch {
 public:
  SubtreeSearch(const PackingProblem& problem,
                const std::vector<const PackingItem*>& order, int64_t budget,
                size_t subtree, SharedSearch* shared)
      : problem_(problem),
        order_(order),
        budget_(budget),
        subtree_(subtree),
        shared_(shared) {}

  void Run(const std::vector<int>& prefix) {
    int64_t cost = 0;
    for (size_t t = 0; t < prefix.size(); ++t) {
      cost += Apply(order_[t], prefix[t]);
    }
    Recurse(prefix.size(), cost);
  }

 private:
  /// Applies one assignment choice; returns the cost increment. The caller
  /// guarantees feasibility (frontier prefixes are feasibility-checked).
  int64_t Apply(const PackingItem* item, int choice) {
    if (static_cast<size_t>(choice) < open_.size()) {
      open_[static_cast<size_t>(choice)].levels->Add(*item->activity);
      open_[static_cast<size_t>(choice)].group.tenant_ids.push_back(
          item->tenant_id);
      return 0;
    }
    OpenGroup g;
    g.levels = std::make_unique<GroupLevelSet>(problem_.num_epochs);
    g.levels->Add(*item->activity);
    g.group.tenant_ids.push_back(item->tenant_id);
    g.group.max_nodes = item->nodes;
    open_.push_back(std::move(g));
    return static_cast<int64_t>(problem_.replication_factor) * item->nodes;
  }

  /// Whether a node of monotone cost `cost` cannot beat the incumbent.
  ///
  /// Equal cost is pruned only for subtrees at or after the holder: a
  /// lower-indexed subtree may still contain an equal-cost solution that
  /// precedes the incumbent in canonical order, and exploring it is what
  /// keeps the returned solution identical to the serial DFS for every
  /// solver_jobs value.
  bool Pruned(int64_t cost) {
    int64_t snapshot = shared_->cost_snapshot.load(std::memory_order_acquire);
    if (cost > snapshot) return true;
    if (cost < snapshot) return false;
    std::lock_guard<std::mutex> lock(shared_->mu);
    return cost > shared_->best_cost ||
           (cost == shared_->best_cost && subtree_ >= shared_->holder);
  }

  /// Offers a complete assignment to the incumbent.
  void Offer(int64_t cost) {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (cost > shared_->best_cost ||
        (cost == shared_->best_cost && subtree_ >= shared_->holder)) {
      return;
    }
    shared_->best_cost = cost;
    shared_->holder = subtree_;
    shared_->cost_snapshot.store(cost, std::memory_order_release);
    auto& slot = shared_->slots[subtree_];
    slot.clear();
    for (const auto& g : open_) {
      TenantGroupResult result = g.group;
      result.ttp = g.levels->Ttp(problem_.replication_factor);
      result.max_active = g.levels->MaxActive();
      slot.push_back(std::move(result));
    }
  }

  void Recurse(size_t index, int64_t cost) {
    if (shared_->exhausted.load(std::memory_order_relaxed)) return;
    if (shared_->visited.fetch_add(1, std::memory_order_relaxed) + 1 >
        budget_) {
      shared_->exhausted.store(true, std::memory_order_relaxed);
      return;
    }
    if (Pruned(cost)) return;  // cost is monotone in assignments
    if (index == order_.size()) {
      Offer(cost);
      return;
    }
    const PackingItem* item = order_[index];
    const int r = problem_.replication_factor;

    // Try each open group. Deeper recursion pushes (and pops) new groups on
    // open_, so index-based access is required: references into the vector
    // do not survive reallocation.
    const size_t num_open = open_.size();
    for (size_t gi = 0; gi < num_open; ++gi) {
      std::vector<size_t> pops =
          open_[gi].levels->EvaluateAdd(*item->activity);
      if (open_[gi].levels->TtpFromPopcounts(pops, r) + 1e-12 <
          problem_.sla_fraction) {
        continue;
      }
      // Items arrive in decreasing node order, so max_nodes cannot grow.
      open_[gi].levels->Add(*item->activity);
      open_[gi].group.tenant_ids.push_back(item->tenant_id);
      Recurse(index + 1, cost);
      open_[gi].group.tenant_ids.pop_back();
      Status st = open_[gi].levels->Remove(*item->activity);
      (void)st;
    }

    // Open a new group (symmetry-safe: a new group is interchangeable with
    // any other new group, and this is the only way this item starts one).
    OpenGroup g;
    g.levels = std::make_unique<GroupLevelSet>(problem_.num_epochs);
    g.levels->Add(*item->activity);
    g.group.tenant_ids.push_back(item->tenant_id);
    g.group.max_nodes = item->nodes;
    int64_t new_cost =
        cost + static_cast<int64_t>(problem_.replication_factor) * item->nodes;
    open_.push_back(std::move(g));
    Recurse(index + 1, new_cost);
    open_.pop_back();
  }

  const PackingProblem& problem_;
  const std::vector<const PackingItem*>& order_;
  const int64_t budget_;
  const size_t subtree_;
  SharedSearch* shared_;
  std::vector<OpenGroup> open_;
};

/// Expands the branch-and-bound tree breadth-first — children enumerated in
/// exactly the DFS order (open groups in creation order, then a fresh
/// group) — until at least `target` feasible prefixes exist or every item
/// is assigned. The returned prefixes are therefore in canonical DFS
/// order, which is what the subtree-index tie-break keys on.
std::vector<std::vector<int>> BuildFrontier(
    const PackingProblem& problem,
    const std::vector<const PackingItem*>& order, size_t target,
    int64_t budget, std::atomic<int64_t>* visited, bool* exhausted) {
  const int r = problem.replication_factor;
  std::vector<std::vector<int>> frontier(1);
  size_t depth = 0;
  while (frontier.size() < target && depth < order.size()) {
    const PackingItem* item = order[depth];
    std::vector<std::vector<int>> next;
    next.reserve(frontier.size() * 2);
    for (const auto& prefix : frontier) {
      if (visited->fetch_add(1, std::memory_order_relaxed) + 1 > budget) {
        *exhausted = true;
        return {};
      }
      // Replay the prefix to recover the open groups.
      std::vector<OpenGroup> open;
      for (size_t t = 0; t < depth; ++t) {
        size_t choice = static_cast<size_t>(prefix[t]);
        if (choice < open.size()) {
          open[choice].levels->Add(*order[t]->activity);
        } else {
          OpenGroup g;
          g.levels = std::make_unique<GroupLevelSet>(problem.num_epochs);
          g.levels->Add(*order[t]->activity);
          open.push_back(std::move(g));
        }
      }
      for (size_t gi = 0; gi < open.size(); ++gi) {
        std::vector<size_t> pops =
            open[gi].levels->EvaluateAdd(*item->activity);
        if (open[gi].levels->TtpFromPopcounts(pops, r) + 1e-12 <
            problem.sla_fraction) {
          continue;
        }
        std::vector<int> child = prefix;
        child.push_back(static_cast<int>(gi));
        next.push_back(std::move(child));
      }
      std::vector<int> fresh = prefix;
      fresh.push_back(static_cast<int>(open.size()));
      next.push_back(std::move(fresh));
    }
    frontier = std::move(next);
    ++depth;
  }
  return frontier;
}

}  // namespace

Result<GroupingSolution> SolveExact(const PackingProblem& problem,
                                    const ExactSolverOptions& options) {
  THRIFTY_RETURN_NOT_OK(problem.Validate());
  auto start = std::chrono::steady_clock::now();
  std::vector<const PackingItem*> order = CanonicalOrder(problem);

  const int jobs = options.solver_jobs < 1 ? 1 : options.solver_jobs;
  // Enough subtrees per worker to balance wildly uneven subtree sizes,
  // capped so frontier replay stays negligible. jobs=1 keeps the whole
  // tree as one subtree — the exact serial search.
  const size_t target =
      jobs <= 1 ? 1 : std::min<size_t>(static_cast<size_t>(jobs) * 8, 256);

  std::atomic<int64_t> frontier_visited{0};
  bool frontier_exhausted = false;
  std::vector<std::vector<int>> frontier =
      BuildFrontier(problem, order, target, options.max_search_nodes,
                    &frontier_visited, &frontier_exhausted);

  SharedSearch shared(frontier.size());
  shared.visited.store(frontier_visited.load());
  if (frontier_exhausted) shared.exhausted.store(true);

  if (!shared.exhausted.load()) {
    std::unique_ptr<ThreadPool> pool;
    if (jobs > 1 && frontier.size() > 1) {
      pool = std::make_unique<ThreadPool>(jobs - 1);
    }
    ParallelFor(pool.get(), frontier.size(), [&](size_t s) {
      SubtreeSearch search(problem, order, options.max_search_nodes, s,
                           &shared);
      search.Run(frontier[s]);
    });
  }

  if (shared.exhausted.load()) {
    return Status::CapacityExceeded(
        "exact solver search budget exhausted after visiting " +
        std::to_string(shared.visited.load()) + " of " +
        std::to_string(options.max_search_nodes) + " search nodes");
  }

  GroupingSolution solution;
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    solution.groups = std::move(shared.slots[shared.holder]);
  }
  solution.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return solution;
}

}  // namespace thrifty
