// First-Fit-Decreasing baseline for the LIVBPwFC (§5, §7).
//
// The standard vector-bin-packing heuristic the paper compares against:
// items are sorted by a scalar key and inserted into the first bin whose
// fuzzy capacity still holds; a new bin opens when none fits. FFD is fast
// (sort + first-fit) but is not aware of the largest-item objective, so the
// two-step heuristic consistently saves 3.6-11.1% more nodes (§7.3).

#ifndef THRIFTY_PLACEMENT_FFD_H_
#define THRIFTY_PLACEMENT_FFD_H_

#include "common/result.h"
#include "placement/problem.h"

namespace thrifty {

/// \brief Scalar sort key used by FFD.
///
/// The default scalarizes both the activity dimensions and the node demand
/// (n_i x active epochs), the strongest of the classic single-key variants
/// on MPPDBaaS workloads: it keeps sizes roughly sorted so the
/// largest-item inflation (a big tenant joining a small-tenant bin raises
/// that bin's R x max(n_i) cost for everyone) is limited, yet it is still
/// consistently beaten by the two-step heuristic, which is explicitly
/// largest-item-aware (§5, §7.3). Sorting by activity alone (kActivity)
/// suffers that inflation badly and loses by tens of points.
enum class FfdSortKey {
  /// n_i x active-epoch count (default; see above).
  kNodesTimesActivity,
  /// Active-epoch count only.
  kActivity,
  /// Requested node count only.
  kNodes,
};

struct FfdOptions {
  FfdSortKey sort_key = FfdSortKey::kNodesTimesActivity;
};

/// \brief Solves the problem with First-Fit-Decreasing.
Result<GroupingSolution> SolveFfd(const PackingProblem& problem,
                                  const FfdOptions& options = FfdOptions());

}  // namespace thrifty

#endif  // THRIFTY_PLACEMENT_FFD_H_
