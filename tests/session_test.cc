#include "workload/session.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace thrifty {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  QueryCatalog catalog_ = QueryCatalog::Default();
};

TEST_F(SessionTest, ProducesSortedNonEmptyLog) {
  SessionSimulator sim(&catalog_);
  Rng rng(1);
  TenantLog log = sim.Run(4, 400, QuerySuite::kTpch, 3, &rng);
  ASSERT_FALSE(log.entries.empty());
  for (size_t i = 1; i < log.entries.size(); ++i) {
    EXPECT_LE(log.entries[i - 1].submit_time, log.entries[i].submit_time);
  }
}

TEST_F(SessionTest, AllLatenciesPositiveAndTemplatesFromSuite) {
  SessionSimulator sim(&catalog_);
  Rng rng(2);
  TenantLog log = sim.Run(2, 200, QuerySuite::kTpcds, 2, &rng);
  for (const auto& e : log.entries) {
    EXPECT_GT(e.observed_latency, 0);
    EXPECT_EQ(catalog_.Get(e.template_id).name.rfind("TPCDS", 0), 0u);
  }
}

TEST_F(SessionTest, SubmissionsStayWithinSessionDuration) {
  SessionOptions options;
  SessionSimulator sim(&catalog_, options);
  Rng rng(3);
  TenantLog log = sim.Run(4, 400, QuerySuite::kTpch, 5, &rng);
  for (const auto& e : log.entries) {
    EXPECT_LT(e.submit_time, options.duration);
    EXPECT_GE(e.submit_time, 0);
  }
}

TEST_F(SessionTest, DeterministicFromSeed) {
  SessionSimulator sim(&catalog_);
  Rng rng1(42), rng2(42);
  TenantLog a = sim.Run(8, 800, QuerySuite::kTpch, 3, &rng1);
  TenantLog b = sim.Run(8, 800, QuerySuite::kTpch, 3, &rng2);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].submit_time, b.entries[i].submit_time);
    EXPECT_EQ(a.entries[i].template_id, b.entries[i].template_id);
    EXPECT_EQ(a.entries[i].observed_latency, b.entries[i].observed_latency);
  }
}

TEST_F(SessionTest, BatchEntriesShareSubmitTimeAndBatchId) {
  SessionOptions options;
  options.batch_probability = 1.0;  // force batches
  options.min_batch_queries = 3;
  options.max_batch_queries = 3;
  SessionSimulator sim(&catalog_, options);
  Rng rng(5);
  TenantLog log = sim.Run(2, 200, QuerySuite::kTpch, 1, &rng);
  ASSERT_GE(log.entries.size(), 3u);
  std::map<int32_t, std::vector<const QueryLogEntry*>> batches;
  for (const auto& e : log.entries) {
    ASSERT_NE(e.batch_id, -1);  // everything is a batch
    batches[e.batch_id].push_back(&e);
  }
  for (const auto& [id, entries] : batches) {
    EXPECT_EQ(entries.size(), 3u) << "batch " << id;
    for (const auto* e : entries) {
      EXPECT_EQ(e->submit_time, entries[0]->submit_time);
    }
  }
}

TEST_F(SessionTest, SingleQueriesHaveNoBatchId) {
  SessionOptions options;
  options.batch_probability = 0.0;  // force singles
  SessionSimulator sim(&catalog_, options);
  Rng rng(6);
  TenantLog log = sim.Run(2, 200, QuerySuite::kTpch, 1, &rng);
  for (const auto& e : log.entries) EXPECT_EQ(e.batch_id, -1);
}

TEST_F(SessionTest, SingleUserActionsAreSerializedWithThinkTime) {
  SessionOptions options;
  options.batch_probability = 0.0;
  SessionSimulator sim(&catalog_, options);
  Rng rng(7);
  TenantLog log = sim.Run(2, 200, QuerySuite::kTpch, 1, &rng);
  ASSERT_GE(log.entries.size(), 2u);
  for (size_t i = 1; i < log.entries.size(); ++i) {
    const auto& prev = log.entries[i - 1];
    const auto& cur = log.entries[i];
    // Next action starts only after the previous query finished plus at
    // least the minimum think time (3 s).
    EXPECT_GE(cur.submit_time,
              prev.submit_time + prev.observed_latency +
                  options.min_think_seconds * kSecond);
  }
}

TEST_F(SessionTest, MoreUsersProduceMoreQueries) {
  SessionSimulator sim(&catalog_);
  RunningStats one, five;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng r1(seed * 2 + 1), r5(seed * 2 + 2);
    one.Add(static_cast<double>(
        sim.Run(4, 400, QuerySuite::kTpch, 1, &r1).entries.size()));
    five.Add(static_cast<double>(
        sim.Run(4, 400, QuerySuite::kTpch, 5, &r5).entries.size()));
  }
  EXPECT_GT(five.Mean(), one.Mean() * 2);
}

TEST_F(SessionTest, ParticipationIsAtMostS) {
  // "Each tenant has at most S autonomous users": with participation 0 the
  // session degenerates to exactly one user; with participation 1 all S
  // show up (query volume scales accordingly).
  SessionOptions solo;
  solo.user_participation = 0.0;
  SessionOptions full;
  full.user_participation = 1.0;
  RunningStats solo_queries, full_queries;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng r1(seed + 100), r2(seed + 100);
    solo_queries.Add(static_cast<double>(
        SessionSimulator(&catalog_, solo)
            .Run(4, 400, QuerySuite::kTpch, 5, &r1)
            .entries.size()));
    full_queries.Add(static_cast<double>(
        SessionSimulator(&catalog_, full)
            .Run(4, 400, QuerySuite::kTpch, 5, &r2)
            .entries.size()));
  }
  EXPECT_GT(full_queries.Mean(), solo_queries.Mean() * 3);
  EXPECT_GT(solo_queries.Mean(), 0);
}

TEST_F(SessionTest, ActivityIntervalsCoverageIsPlausible) {
  SessionSimulator sim(&catalog_);
  Rng rng(8);
  TenantLog log = sim.Run(4, 400, QuerySuite::kTpch, 3, &rng);
  double ratio = log.ActiveRatio(0, 3 * kHour);
  // In-session duty cycle should be substantial but far from saturated.
  EXPECT_GT(ratio, 0.10);
  EXPECT_LT(ratio, 0.95);
}

}  // namespace
}  // namespace thrifty
