#include "activity/epoch.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(EpochTest, NumEpochsExactDivision) {
  EpochConfig e{10 * kSecond, 0, 100 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 10u);
}

TEST(EpochTest, NumEpochsRoundsUp) {
  EpochConfig e{10 * kSecond, 0, 101 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 11u);
}

TEST(EpochTest, EpochOfBoundaries) {
  EpochConfig e{10 * kSecond, 0, 100 * kSecond};
  EXPECT_EQ(e.EpochOf(0), 0u);
  EXPECT_EQ(e.EpochOf(9999), 0u);
  EXPECT_EQ(e.EpochOf(10000), 1u);
  EXPECT_EQ(e.EpochOf(99999), 9u);
}

TEST(EpochTest, NonZeroBegin) {
  EpochConfig e{5 * kSecond, 100 * kSecond, 150 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 10u);
  EXPECT_EQ(e.EpochOf(100 * kSecond), 0u);
  EXPECT_EQ(e.EpochOf(149 * kSecond), 9u);
  EXPECT_EQ(e.EpochBegin(2), 110 * kSecond);
  EXPECT_EQ(e.EpochEnd(2), 115 * kSecond);
}

TEST(EpochTest, LastEpochEndClamped) {
  EpochConfig e{10 * kSecond, 0, 95 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 10u);
  EXPECT_EQ(e.EpochEnd(9), 95 * kSecond);
}

TEST(EpochTest, Validity) {
  EXPECT_TRUE((EpochConfig{1, 0, 10}.Valid()));
  EXPECT_FALSE((EpochConfig{0, 0, 10}.Valid()));
  EXPECT_FALSE((EpochConfig{1, 10, 10}.Valid()));
}

TEST(EpochTest, NumEpochsOnDegenerateConfigs) {
  // Invalid or empty grids must report zero epochs (not assert or divide
  // by zero): the streamed epochizer and gauge paths treat d == 0 as "no
  // grid" rather than UB.
  EXPECT_EQ((EpochConfig{0, 0, 10}.NumEpochs()), 0u);       // zero width
  EXPECT_EQ((EpochConfig{-5, 0, 10}.NumEpochs()), 0u);      // negative width
  EXPECT_EQ((EpochConfig{1, 10, 10}.NumEpochs()), 0u);      // empty window
  EXPECT_EQ((EpochConfig{1, 10, 5}.NumEpochs()), 0u);       // inverted window
  EXPECT_EQ((EpochConfig{0, 0, 0}.NumEpochs()), 0u);        // default-ish
}

TEST(EpochTest, NumEpochsSingleEpochGrids) {
  EXPECT_EQ((EpochConfig{10 * kSecond, 0, 10 * kSecond}.NumEpochs()), 1u);
  // Non-divisible: a window shorter than one epoch is still one epoch.
  EXPECT_EQ((EpochConfig{10 * kSecond, 0, 7 * kSecond}.NumEpochs()), 1u);
  EXPECT_EQ((EpochConfig{10 * kSecond, 3, 4}.NumEpochs()), 1u);
}

TEST(EpochTest, EpochOfExactBoundariesNonDivisible) {
  // [0, 95s) at E=10s: 10 epochs, the last one truncated to [90s, 95s).
  EpochConfig e{10 * kSecond, 0, 95 * kSecond};
  EXPECT_EQ(e.EpochOf(e.begin), 0u);
  EXPECT_EQ(e.EpochOf(10 * kSecond - 1), 0u);
  EXPECT_EQ(e.EpochOf(10 * kSecond), 1u);
  EXPECT_EQ(e.EpochOf(90 * kSecond), 9u);
  // end - 1 lands in the truncated final epoch.
  EXPECT_EQ(e.EpochOf(e.end - 1), e.NumEpochs() - 1);
}

TEST(EpochTest, EpochOfEndMinusOneDivisible) {
  EpochConfig e{10 * kSecond, 50 * kSecond, 150 * kSecond};
  EXPECT_EQ(e.EpochOf(e.end - 1), e.NumEpochs() - 1);
  EXPECT_EQ(e.EpochOf(e.begin), 0u);
}

TEST(EpochTest, EpochEndClampingNonDivisible) {
  EpochConfig e{10 * kSecond, 0, 95 * kSecond};
  // Interior epochs end on the grid; the last is clamped to `end`.
  EXPECT_EQ(e.EpochEnd(0), 10 * kSecond);
  EXPECT_EQ(e.EpochEnd(8), 90 * kSecond);
  EXPECT_EQ(e.EpochEnd(9), 95 * kSecond);
  // Indices past the last epoch stay clamped rather than overshooting.
  EXPECT_EQ(e.EpochEnd(10), 95 * kSecond);
  EXPECT_EQ(e.EpochEnd(1000), 95 * kSecond);
}

TEST(EpochTest, EpochBeginEndRoundTrip) {
  EpochConfig e{7, 3, 45};  // deliberately awkward: 7ms epochs over 42ms
  ASSERT_EQ(e.NumEpochs(), 6u);
  for (size_t k = 0; k < e.NumEpochs(); ++k) {
    EXPECT_EQ(e.EpochOf(e.EpochBegin(k)), k) << "k=" << k;
    EXPECT_EQ(e.EpochOf(e.EpochEnd(k) - 1), k) << "k=" << k;
  }
}

}  // namespace
}  // namespace thrifty
