#include "activity/epoch.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(EpochTest, NumEpochsExactDivision) {
  EpochConfig e{10 * kSecond, 0, 100 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 10u);
}

TEST(EpochTest, NumEpochsRoundsUp) {
  EpochConfig e{10 * kSecond, 0, 101 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 11u);
}

TEST(EpochTest, EpochOfBoundaries) {
  EpochConfig e{10 * kSecond, 0, 100 * kSecond};
  EXPECT_EQ(e.EpochOf(0), 0u);
  EXPECT_EQ(e.EpochOf(9999), 0u);
  EXPECT_EQ(e.EpochOf(10000), 1u);
  EXPECT_EQ(e.EpochOf(99999), 9u);
}

TEST(EpochTest, NonZeroBegin) {
  EpochConfig e{5 * kSecond, 100 * kSecond, 150 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 10u);
  EXPECT_EQ(e.EpochOf(100 * kSecond), 0u);
  EXPECT_EQ(e.EpochOf(149 * kSecond), 9u);
  EXPECT_EQ(e.EpochBegin(2), 110 * kSecond);
  EXPECT_EQ(e.EpochEnd(2), 115 * kSecond);
}

TEST(EpochTest, LastEpochEndClamped) {
  EpochConfig e{10 * kSecond, 0, 95 * kSecond};
  EXPECT_EQ(e.NumEpochs(), 10u);
  EXPECT_EQ(e.EpochEnd(9), 95 * kSecond);
}

TEST(EpochTest, Validity) {
  EXPECT_TRUE((EpochConfig{1, 0, 10}.Valid()));
  EXPECT_FALSE((EpochConfig{0, 0, 10}.Valid()));
  EXPECT_FALSE((EpochConfig{1, 10, 10}.Valid()));
}

}  // namespace
}  // namespace thrifty
