// Reproducibility properties: every layer of the stack must be bit-exact
// across repeated runs with the same seeds — experiments in EXPERIMENTS.md
// are single runs, so this is what makes them meaningful.

#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

TEST(DeterminismTest, EndToEndServiceRunIsBitExact) {
  auto run_once = [](uint64_t seed) {
    QueryCatalog catalog = QueryCatalog::Default();
    Rng rng(seed);
    SessionLibrary library(&catalog, {2}, 4, rng.Fork(1));
    PopulationOptions pop;
    pop.node_sizes = {2};
    Rng pop_rng = rng.Fork(2);
    auto tenants = *GenerateTenantPopulation(8, pop, &pop_rng);
    LogComposerOptions composer_options;
    composer_options.horizon_days = 3;
    LogComposer composer(&library, composer_options);
    Rng compose_rng = rng.Fork(3);
    auto logs = *composer.Compose(&tenants, &compose_rng);
    AdvisorOptions advisor_options;
    advisor_options.replication_factor = 2;
    advisor_options.sla_fraction = 0.99;
    DeploymentAdvisor advisor(advisor_options);
    auto advice = *advisor.Advise(tenants, logs, 0, composer.horizon_end());

    SimEngine engine;
    Cluster cluster(static_cast<int>(advice.plan.TotalNodesUsed()), &engine);
    ServiceOptions service_options;
    service_options.replication_factor = 2;
    service_options.sla_fraction = 0.99;
    service_options.elastic_scaling = false;
    ThriftyService service(&engine, &cluster, &catalog, service_options);
    EXPECT_TRUE(service.Deploy(advice.plan).ok());
    EXPECT_TRUE(service.ScheduleLogReplay(logs).ok());
    engine.Run();
    return std::tuple<size_t, size_t, double, size_t>(
        service.metrics().completed, service.metrics().sla_met,
        service.metrics().normalized_performance.sum(),
        engine.events_processed());
  };
  auto a = run_once(777);
  auto b = run_once(777);
  EXPECT_EQ(a, b);
  auto c = run_once(778);
  EXPECT_NE(std::get<3>(a), 0u);
  // A different seed almost surely changes the event count.
  EXPECT_NE(a, c);
}

TEST(DeterminismTest, SolversAreDeterministic) {
  QueryCatalog catalog = QueryCatalog::Default();
  Rng rng(31337);
  SessionLibrary library(&catalog, {2, 4}, 4, rng.Fork(1));
  PopulationOptions pop;
  pop.node_sizes = {2, 4};
  Rng pop_rng = rng.Fork(2);
  auto tenants = *GenerateTenantPopulation(30, pop, &pop_rng);
  LogComposerOptions composer_options;
  composer_options.horizon_days = 4;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  auto activity = *composer.ComposeActivity(&tenants, &compose_rng);
  EpochConfig epochs{30 * kSecond, 0, composer.horizon_end()};
  std::vector<ActivityVector> vectors;
  for (size_t i = 0; i < tenants.size(); ++i) {
    vectors.push_back(ActivityVector::FromBitmap(
        tenants[i].id, IntervalsToBitmap(activity[i], epochs)));
  }
  auto problem = *MakePackingProblem(tenants, vectors, 3, 0.999);
  auto two_step_a = *SolveTwoStep(problem);
  auto two_step_b = *SolveTwoStep(problem);
  ASSERT_EQ(two_step_a.groups.size(), two_step_b.groups.size());
  for (size_t g = 0; g < two_step_a.groups.size(); ++g) {
    EXPECT_EQ(two_step_a.groups[g].tenant_ids,
              two_step_b.groups[g].tenant_ids);
  }
  auto ffd_a = *SolveFfd(problem);
  auto ffd_b = *SolveFfd(problem);
  ASSERT_EQ(ffd_a.groups.size(), ffd_b.groups.size());
  for (size_t g = 0; g < ffd_a.groups.size(); ++g) {
    EXPECT_EQ(ffd_a.groups[g].tenant_ids, ffd_b.groups[g].tenant_ids);
  }
}

// Randomized model check: the cancellable event queue agrees with a
// reference implementation under arbitrary schedule/cancel/pop interleaving.
TEST(DeterminismTest, EventQueueMatchesReferenceModel) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue queue;
    // Reference: map id -> (time, alive), fired order by (time, id).
    struct Ref {
      SimTime time;
      bool alive;
    };
    std::map<EventId, Ref> reference;
    for (int op = 0; op < 200; ++op) {
      double u = rng.NextDouble();
      if (u < 0.55) {
        SimTime t = rng.NextInt(0, 50);
        EventId id = queue.Schedule(t, [](SimTime) {});
        reference[id] = {t, true};
      } else if (u < 0.75 && !reference.empty()) {
        // Cancel a random known id (possibly already fired/cancelled).
        auto it = reference.begin();
        std::advance(it, static_cast<long>(
                             rng.NextBounded(reference.size())));
        queue.Cancel(it->first);
        it->second.alive = false;
      } else if (!queue.Empty()) {
        SimTime t;
        queue.Pop(&t);
        // Reference pop: earliest alive by (time, id).
        EventId best = 0;
        for (const auto& [id, ref] : reference) {
          if (!ref.alive) continue;
          if (best == 0 || ref.time < reference[best].time ||
              (ref.time == reference[best].time && id < best)) {
            best = id;
          }
        }
        ASSERT_NE(best, 0u);
        ASSERT_EQ(t, reference[best].time) << "trial " << trial;
        reference[best].alive = false;
      }
    }
    // Drain and compare live counts.
    size_t live = 0;
    for (const auto& [id, ref] : reference) live += ref.alive ? 1 : 0;
    EXPECT_EQ(queue.LiveCount(), live);
  }
}

}  // namespace
}  // namespace thrifty
