#include "common/distributions.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(10, 0.8);
  double sum = 0;
  for (size_t k = 0; k < z.n(); ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution z(20, 0.8);
  for (size_t k = 1; k < z.n(); ++k) {
    EXPECT_LE(z.Pmf(k), z.Pmf(k - 1) + 1e-15);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution z(5, 0.0);
  for (size_t k = 0; k < 5; ++k) EXPECT_NEAR(z.Pmf(k), 0.2, 1e-12);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfDistribution flat(5, 0.1);
  ZipfDistribution skew(5, 0.99);
  EXPECT_GT(skew.Pmf(0), flat.Pmf(0));
  EXPECT_LT(skew.Pmf(4), flat.Pmf(4));
}

TEST(ZipfTest, SingleRankAlwaysSampled) {
  ZipfDistribution z(1, 0.8);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(z.Sample(&rng), 0u);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution z(6, 0.8);
  Rng rng(123);
  std::vector<int> counts(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), z.Pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(DiscreteTest, RespectsWeights) {
  DiscreteDistribution d({1.0, 0.0, 3.0});
  Rng rng(5);
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[d.Sample(&rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(DiscreteTest, PmfNormalizes) {
  DiscreteDistribution d({2.0, 2.0, 4.0, 8.0});
  EXPECT_NEAR(d.Pmf(0), 0.125, 1e-12);
  EXPECT_NEAR(d.Pmf(3), 0.5, 1e-12);
}

class ZipfThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaSweep, SamplingMeanMatchesPmfMean) {
  double theta = GetParam();
  ZipfDistribution z(9, theta);
  double expected = 0;
  for (size_t k = 0; k < z.n(); ++k) {
    expected += static_cast<double>(k) * z.Pmf(k);
  }
  Rng rng(static_cast<uint64_t>(theta * 1000) + 7);
  double sum = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(z.Sample(&rng));
  EXPECT_NEAR(sum / n, expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaSweep,
                         ::testing::Values(0.1, 0.2, 0.5, 0.8, 0.99));

}  // namespace
}  // namespace thrifty
