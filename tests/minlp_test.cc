#include "placement/minlp.h"

#include <gtest/gtest.h>

#include "fig51_fixture.h"
#include "placement/exact.h"
#include "placement/two_step.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;

std::vector<TenantSpec> UniformTenants(size_t count, int nodes) {
  std::vector<TenantSpec> tenants(count);
  for (size_t i = 0; i < count; ++i) {
    tenants[i].id = static_cast<TenantId>(i + 1);
    tenants[i].requested_nodes = nodes;
  }
  return tenants;
}

class MinlpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    activities_ = Fig51Activities();
    tenants_ = UniformTenants(6, 4);
    auto problem = MakePackingProblem(tenants_, activities_, 3, 0.999);
    ASSERT_TRUE(problem.ok());
    problem_ = *problem;
  }

  std::vector<ActivityVector> activities_;
  std::vector<TenantSpec> tenants_;
  PackingProblem problem_;
};

TEST_F(MinlpTest, HeavisideStep) {
  EXPECT_EQ(HeavisideStep(-1), 0);
  EXPECT_EQ(HeavisideStep(0), 1);
  EXPECT_EQ(HeavisideStep(5), 1);
}

TEST_F(MinlpTest, AssignmentMatrixBasics) {
  AssignmentMatrix x(3, 2);
  EXPECT_FALSE(x.EachItemAssignedOnce());
  x.Set(0, 0, true);
  x.Set(1, 1, true);
  x.Set(2, 0, true);
  EXPECT_TRUE(x.EachItemAssignedOnce());
  x.Set(2, 1, true);  // doubly assigned
  EXPECT_FALSE(x.EachItemAssignedOnce());
  x.Set(2, 1, false);
  EXPECT_TRUE(x.Get(2, 0));
  EXPECT_FALSE(x.Get(2, 1));
}

TEST_F(MinlpTest, ObjectiveIsLargestItemPerGroupTimesR) {
  // {T1..T5} in group 0, {T6} in group 1: each group costs R * 4 = 12.
  AssignmentMatrix x(6, 2);
  for (size_t i = 0; i < 5; ++i) x.Set(i, 0, true);
  x.Set(5, 1, true);
  auto cost = MinlpObjective(problem_, x);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 24);
}

TEST_F(MinlpTest, Constraint92MatchesPaperExample) {
  // Group {T1, T4, T5, T6}: sum vector <2,2,2,2,4,3,2,1,2,1>,
  // COUNT^{<=3} = 9 (§5).
  AssignmentMatrix x(6, 2);
  x.Set(0, 0, true);  // T1
  x.Set(3, 0, true);  // T4
  x.Set(4, 0, true);  // T5
  x.Set(5, 0, true);  // T6
  x.Set(1, 1, true);
  x.Set(2, 1, true);
  auto feasible_epochs = MinlpGroupFeasibleEpochs(problem_, x, 0);
  ASSERT_TRUE(feasible_epochs.ok());
  EXPECT_EQ(*feasible_epochs, 9u);
}

TEST_F(MinlpTest, FeasibilityAgreesWithVerifySolution) {
  // The feasible Fig 5.3 grouping.
  GroupingSolution good;
  good.groups.resize(2);
  good.groups[0].tenant_ids = {3, 2, 5, 4, 6};
  good.groups[0].max_nodes = 4;
  good.groups[1].tenant_ids = {1};
  good.groups[1].max_nodes = 4;
  auto x_good = EncodeSolution(problem_, good);
  ASSERT_TRUE(x_good.ok());
  EXPECT_TRUE(*MinlpFeasible(problem_, *x_good));
  EXPECT_TRUE(VerifySolution(problem_, good).ok());

  // The infeasible all-in-one grouping (TTP(3) = 0.9 < 0.999).
  GroupingSolution bad;
  bad.groups.resize(1);
  bad.groups[0].tenant_ids = {1, 2, 3, 4, 5, 6};
  bad.groups[0].max_nodes = 4;
  auto x_bad = EncodeSolution(problem_, bad);
  ASSERT_TRUE(x_bad.ok());
  EXPECT_FALSE(*MinlpFeasible(problem_, *x_bad));
  EXPECT_FALSE(VerifySolution(problem_, bad).ok());
}

TEST_F(MinlpTest, EncodeDecodeRoundTrip) {
  auto solution = SolveTwoStep(problem_);
  ASSERT_TRUE(solution.ok());
  auto x = EncodeSolution(problem_, *solution);
  ASSERT_TRUE(x.ok());
  auto decoded = DecodeSolution(problem_, *x);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->groups.size(), solution->groups.size());
  EXPECT_EQ(decoded->NodesUsed(3), solution->NodesUsed(3));
  auto objective = MinlpObjective(problem_, *x);
  ASSERT_TRUE(objective.ok());
  EXPECT_EQ(*objective, solution->NodesUsed(3));
}

TEST_F(MinlpTest, ExhaustiveOptimumMatchesBranchAndBound) {
  auto minlp = SolveMinlpExhaustive(problem_);
  ASSERT_TRUE(minlp.ok()) << minlp.status();
  auto bnb = SolveExact(problem_);
  ASSERT_TRUE(bnb.ok());
  EXPECT_EQ(minlp->NodesUsed(3), bnb->NodesUsed(3));
  EXPECT_EQ(minlp->NodesUsed(3), 24);
}

TEST_F(MinlpTest, ExhaustiveRefusesLargeInstances) {
  auto result = SolveMinlpExhaustive(problem_, /*max_items=*/3);
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST_F(MinlpTest, DecodeRejectsPartialAssignments) {
  AssignmentMatrix x(6, 2);
  x.Set(0, 0, true);  // five tenants unassigned
  EXPECT_EQ(DecodeSolution(problem_, x).status().code(),
            StatusCode::kInvalidArgument);
  AssignmentMatrix wrong_rows(5, 2);
  EXPECT_EQ(MinlpObjective(problem_, wrong_rows).status().code(),
            StatusCode::kInvalidArgument);
  AssignmentMatrix full(6, 2);
  for (size_t i = 0; i < 6; ++i) full.Set(i, 0, true);
  EXPECT_EQ(MinlpGroupFeasibleEpochs(problem_, full, 5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MinlpTest, EmptyGroupsContributeNothing) {
  // Only column 1 is populated; column 0 stays empty and costs 0 while the
  // feasibility check skips it.
  AssignmentMatrix x(6, 2);
  for (size_t i = 0; i < 6; ++i) x.Set(i, 1, true);
  auto cost = MinlpObjective(problem_, x);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 12);  // one group of max 4 nodes x R=3
  auto feasible = MinlpFeasible(problem_, x);
  ASSERT_TRUE(feasible.ok());
  EXPECT_FALSE(*feasible);  // all six together violate (9.2)
}

TEST_F(MinlpTest, RandomCrossValidationWithBranchAndBound) {
  Rng rng(2027);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t num_epochs = 40;
    std::vector<ActivityVector> activities;
    std::vector<TenantSpec> tenants = UniformTenants(7, 2);
    for (TenantId id = 1; id <= 7; ++id) {
      DynamicBitmap bits(num_epochs);
      size_t begin = rng.NextBounded(num_epochs);
      bits.SetRange(begin, begin + 4 + rng.NextBounded(12));
      activities.push_back(
          ActivityVector::FromBitmap(id, bits));
    }
    auto problem = MakePackingProblem(tenants, activities, 2, 0.9);
    ASSERT_TRUE(problem.ok());
    auto minlp = SolveMinlpExhaustive(*problem);
    auto bnb = SolveExact(*problem);
    ASSERT_TRUE(minlp.ok() && bnb.ok());
    EXPECT_EQ(minlp->NodesUsed(2), bnb->NodesUsed(2)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace thrifty
