#include "mppdb/cluster.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  SimEngine engine_;
};

TEST_F(ClusterTest, NodeAccounting) {
  Cluster cluster(10, &engine_);
  EXPECT_EQ(cluster.total_nodes(), 10);
  EXPECT_EQ(cluster.nodes_in_use(), 0);
  EXPECT_EQ(cluster.nodes_hibernated(), 10);
  auto a = cluster.CreateInstanceOnline(4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(cluster.nodes_in_use(), 4);
  auto b = cluster.CreateInstanceOnline(6);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cluster.nodes_hibernated(), 0);
}

TEST_F(ClusterTest, RejectsOverAllocation) {
  Cluster cluster(5, &engine_);
  ASSERT_TRUE(cluster.CreateInstanceOnline(4).ok());
  EXPECT_EQ(cluster.CreateInstanceOnline(2).status().code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(cluster.CreateInstanceOnline(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClusterTest, OnlineInstanceIsImmediatelyUsable) {
  Cluster cluster(4, &engine_);
  auto result = cluster.CreateInstanceOnline(4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->state(), InstanceState::kOnline);
  EXPECT_EQ((*result)->nodes(), 4);
}

TEST_F(ClusterTest, AsyncProvisioningFollowsTable51Timing) {
  Cluster cluster(4, &engine_);
  MppdbInstance* ready_instance = nullptr;
  SimTime ready_at = -1;
  auto result = cluster.CreateInstanceAsync(
      4, {{1, 100.0}, {2, 50.0}}, [&](MppdbInstance* instance) {
        ready_instance = instance;
        ready_at = engine_.now();
      });
  ASSERT_TRUE(result.ok());
  MppdbInstance* instance = *result;
  EXPECT_EQ(instance->state(), InstanceState::kProvisioning);
  EXPECT_EQ(cluster.nodes_in_use(), 4);  // nodes committed up front

  const ProvisioningModel& model = cluster.provisioning();
  SimDuration start = model.NodeStartTime(4);
  SimDuration load = model.BulkLoadTime(150.0);

  engine_.RunUntil(start);
  EXPECT_EQ(instance->state(), InstanceState::kLoading);
  engine_.Run();
  EXPECT_EQ(instance->state(), InstanceState::kOnline);
  EXPECT_EQ(ready_instance, instance);
  EXPECT_EQ(ready_at, start + load);
  EXPECT_TRUE(instance->HostsTenant(1));
  EXPECT_TRUE(instance->HostsTenant(2));
  EXPECT_DOUBLE_EQ(instance->TotalDataGb(), 150.0);
}

TEST_F(ClusterTest, DecommissionReturnsNodes) {
  Cluster cluster(8, &engine_);
  auto result = cluster.CreateInstanceOnline(8);
  ASSERT_TRUE(result.ok());
  InstanceId id = (*result)->id();
  ASSERT_TRUE(cluster.DecommissionInstance(id).ok());
  EXPECT_EQ(cluster.nodes_in_use(), 0);
  EXPECT_EQ(cluster.GetInstance(id).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(cluster.LiveInstances().empty());
}

TEST_F(ClusterTest, DecommissionBlockedWhileBusy) {
  Cluster cluster(4, &engine_);
  auto result = cluster.CreateInstanceOnline(4);
  ASSERT_TRUE(result.ok());
  MppdbInstance* instance = *result;
  instance->AddTenant(1, 100);
  QueryTemplate t;
  t.id = 0;
  t.work_seconds_per_gb = 1.0;
  QuerySubmission s;
  s.query_id = 1;
  s.tenant_id = 1;
  ASSERT_TRUE(instance->Submit(s, t).ok());
  EXPECT_EQ(cluster.DecommissionInstance(instance->id()).code(),
            StatusCode::kFailedPrecondition);
  engine_.Run();
  EXPECT_TRUE(cluster.DecommissionInstance(instance->id()).ok());
}

TEST_F(ClusterTest, NodeFailureAutoReplacement) {
  Cluster cluster(4, &engine_);
  auto result = cluster.CreateInstanceOnline(4);
  ASSERT_TRUE(result.ok());
  MppdbInstance* instance = *result;
  ASSERT_TRUE(cluster.InjectNodeFailure(instance->id()).ok());
  EXPECT_EQ(instance->failed_nodes(), 1);
  EXPECT_EQ(cluster.failures_injected(), 1);
  // Replacement arrives after one single-node start time.
  engine_.RunUntil(cluster.provisioning().NodeStartTime(1) - 1);
  EXPECT_EQ(instance->failed_nodes(), 1);
  engine_.Run();
  EXPECT_EQ(instance->failed_nodes(), 0);
}

TEST_F(ClusterTest, GetInstanceUnknownId) {
  Cluster cluster(4, &engine_);
  EXPECT_EQ(cluster.GetInstance(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cluster.GetInstance(-1).status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterTest, DefaultCompletionCallbackInstalledOnNewInstances) {
  Cluster cluster(8, &engine_);
  int completions = 0;
  cluster.set_default_completion_callback(
      [&](const QueryCompletion&) { ++completions; });
  auto result = cluster.CreateInstanceOnline(4);
  ASSERT_TRUE(result.ok());
  MppdbInstance* instance = *result;
  instance->AddTenant(1, 10);
  QueryTemplate t;
  t.id = 0;
  t.work_seconds_per_gb = 1.0;
  QuerySubmission s;
  s.query_id = 1;
  s.tenant_id = 1;
  ASSERT_TRUE(instance->Submit(s, t).ok());
  engine_.Run();
  EXPECT_EQ(completions, 1);
}

}  // namespace
}  // namespace thrifty
