#include "placement/deployment_plan.h"

#include <sstream>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

std::vector<TenantSpec> Fig41Tenants() {
  // The paper's toy example: 10 tenants requesting 6,6,5,5,5,4,4,3,2,2.
  const int sizes[] = {6, 6, 5, 5, 5, 4, 4, 3, 2, 2};
  std::vector<TenantSpec> tenants;
  for (int i = 0; i < 10; ++i) {
    TenantSpec spec;
    spec.id = i + 1;
    spec.requested_nodes = sizes[i];
    spec.data_gb = 100.0 * sizes[i];
    tenants.push_back(spec);
  }
  return tenants;
}

GroupingSolution OneGroupSolution() {
  GroupingSolution solution;
  TenantGroupResult group;
  for (TenantId id = 1; id <= 10; ++id) group.tenant_ids.push_back(id);
  group.max_nodes = 6;
  group.ttp = 1.0;
  group.max_active = 2;
  solution.groups.push_back(group);
  return solution;
}

TEST(DeploymentPlanTest, Fig41PlanUses18Nodes) {
  auto plan = BuildDeploymentPlan(Fig41Tenants(), OneGroupSolution(), 3,
                                  0.999);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->groups.size(), 1u);
  EXPECT_EQ(plan->TotalNodesRequested(), 42);
  EXPECT_EQ(plan->TotalNodesUsed(), 18);
  EXPECT_NEAR(plan->ConsolidationEffectiveness(), 1.0 - 18.0 / 42, 1e-12);
  EXPECT_EQ(plan->groups[0].cluster.mppdb_nodes,
            (std::vector<int>{6, 6, 6}));
  EXPECT_EQ(plan->groups[0].LargestTenantNodes(), 6);
  EXPECT_EQ(plan->groups[0].RequestedNodes(), 42);
}

TEST(DeploymentPlanTest, GroupOfFindsTenants) {
  auto plan = BuildDeploymentPlan(Fig41Tenants(), OneGroupSolution(), 3,
                                  0.999);
  ASSERT_TRUE(plan.ok());
  auto group = plan->GroupOf(7);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(*group, 0);
  EXPECT_EQ(plan->GroupOf(77).status().code(), StatusCode::kNotFound);
}

TEST(DeploymentPlanTest, MultipleGroups) {
  GroupingSolution solution;
  TenantGroupResult g1, g2;
  g1.tenant_ids = {1, 2};  // max 6 nodes
  g1.max_nodes = 6;
  g2.tenant_ids = {9, 10};  // max 2 nodes
  g2.max_nodes = 2;
  solution.groups = {g1, g2};
  std::vector<TenantSpec> tenants = Fig41Tenants();
  tenants.resize(2);
  TenantSpec t9, t10;
  t9.id = 9;
  t9.requested_nodes = 2;
  t10.id = 10;
  t10.requested_nodes = 2;
  tenants.push_back(t9);
  tenants.push_back(t10);
  auto plan = BuildDeploymentPlan(tenants, solution, 2, 0.99);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->groups.size(), 2u);
  EXPECT_EQ(plan->TotalNodesUsed(), 2 * 6 + 2 * 2);
  EXPECT_EQ(plan->groups[0].group_id, 0);
  EXPECT_EQ(plan->groups[1].group_id, 1);
}

TEST(DeploymentPlanTest, UnknownTenantInGroupingFails) {
  GroupingSolution solution;
  TenantGroupResult g;
  g.tenant_ids = {999};
  g.max_nodes = 2;
  solution.groups = {g};
  auto plan = BuildDeploymentPlan(Fig41Tenants(), solution, 3, 0.999);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeploymentPlanTest, SummaryMentionsKeyNumbers) {
  auto plan = BuildDeploymentPlan(Fig41Tenants(), OneGroupSolution(), 3,
                                  0.999);
  ASSERT_TRUE(plan.ok());
  std::ostringstream os;
  plan->PrintSummary(os);
  std::string summary = os.str();
  EXPECT_NE(summary.find("10 tenants"), std::string::npos);
  EXPECT_NE(summary.find("42"), std::string::npos);
  EXPECT_NE(summary.find("18"), std::string::npos);
}

TEST(DeploymentPlanTest, EmptyPlan) {
  DeploymentPlan plan;
  EXPECT_EQ(plan.TotalNodesUsed(), 0);
  EXPECT_EQ(plan.TotalNodesRequested(), 0);
  EXPECT_EQ(plan.ConsolidationEffectiveness(), 0);
}

}  // namespace
}  // namespace thrifty
