#include "workload/tenant_population.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(PopulationTest, GeneratesRequestedCount) {
  PopulationOptions options;
  Rng rng(1);
  auto result = GenerateTenantPopulation(100, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 100u);
  for (size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*result)[i].id, static_cast<TenantId>(i));
  }
}

TEST(PopulationTest, SizesComeFromAllowedSet) {
  PopulationOptions options;
  Rng rng(2);
  auto result = GenerateTenantPopulation(500, options, &rng);
  ASSERT_TRUE(result.ok());
  for (const auto& t : *result) {
    bool allowed = false;
    for (int s : options.node_sizes) allowed |= (t.requested_nodes == s);
    EXPECT_TRUE(allowed) << t.requested_nodes;
    EXPECT_DOUBLE_EQ(t.data_gb, 100.0 * t.requested_nodes);
    EXPECT_GE(t.max_users, 1);
    EXPECT_LE(t.max_users, 5);
  }
}

TEST(PopulationTest, ZipfSkewsTowardSmallTenants) {
  PopulationOptions options;
  options.zipf_theta = 0.8;
  Rng rng(3);
  auto result = GenerateTenantPopulation(5000, options, &rng);
  ASSERT_TRUE(result.ok());
  auto histogram = TenantSizeHistogram(*result);
  // Fig 5.2-style: counts decrease with size.
  EXPECT_GT(histogram[2], histogram[4]);
  EXPECT_GT(histogram[4], histogram[8]);
  EXPECT_GT(histogram[8], histogram[16]);
  EXPECT_GT(histogram[16], histogram[32]);
}

TEST(PopulationTest, LowThetaIsFlatterThanHighTheta) {
  PopulationOptions flat_options, skew_options;
  flat_options.zipf_theta = 0.1;
  skew_options.zipf_theta = 0.99;
  Rng rng1(4), rng2(4);
  auto flat = GenerateTenantPopulation(5000, flat_options, &rng1);
  auto skew = GenerateTenantPopulation(5000, skew_options, &rng2);
  ASSERT_TRUE(flat.ok() && skew.ok());
  auto hflat = TenantSizeHistogram(*flat);
  auto hskew = TenantSizeHistogram(*skew);
  EXPECT_GT(hskew[2], hflat[2]);
  EXPECT_LT(hskew[32], hflat[32]);
}

TEST(PopulationTest, SuitesRoughlyBalanced) {
  PopulationOptions options;
  Rng rng(5);
  auto result = GenerateTenantPopulation(2000, options, &rng);
  ASSERT_TRUE(result.ok());
  int tpch = 0;
  for (const auto& t : *result) tpch += t.suite == QuerySuite::kTpch ? 1 : 0;
  EXPECT_NEAR(tpch / 2000.0, 0.5, 0.05);
}

TEST(PopulationTest, TotalRequestedNodes) {
  std::vector<TenantSpec> tenants(3);
  tenants[0].requested_nodes = 2;
  tenants[1].requested_nodes = 4;
  tenants[2].requested_nodes = 32;
  EXPECT_EQ(TotalRequestedNodes(tenants), 38);
}

TEST(PopulationTest, RejectsBadOptions) {
  Rng rng(6);
  PopulationOptions no_sizes;
  no_sizes.node_sizes.clear();
  EXPECT_EQ(GenerateTenantPopulation(5, no_sizes, &rng).status().code(),
            StatusCode::kInvalidArgument);
  PopulationOptions bad_users;
  bad_users.min_users = 3;
  bad_users.max_users = 1;
  EXPECT_EQ(GenerateTenantPopulation(5, bad_users, &rng).status().code(),
            StatusCode::kInvalidArgument);
  PopulationOptions ok;
  EXPECT_EQ(GenerateTenantPopulation(-1, ok, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PopulationTest, DeterministicFromSeed) {
  PopulationOptions options;
  Rng a(7), b(7);
  auto ra = GenerateTenantPopulation(50, options, &a);
  auto rb = GenerateTenantPopulation(50, options, &b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].requested_nodes, (*rb)[i].requested_nodes);
    EXPECT_EQ((*ra)[i].suite, (*rb)[i].suite);
    EXPECT_EQ((*ra)[i].max_users, (*rb)[i].max_users);
  }
}

}  // namespace
}  // namespace thrifty
