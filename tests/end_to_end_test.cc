// Integration tests: the full Thrifty pipeline — log generation, advising,
// deployment, replay with SLA accounting, and lightweight elastic scaling.

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

TEST(EndToEndTest, GenerateAdviseDeployReplay) {
  QueryCatalog catalog = QueryCatalog::Default();
  // Step 1 + 2: a small §7.1 population over two node sizes, 5-day logs.
  SessionLibrary library(&catalog, {2, 4}, /*sessions_per_class=*/5,
                         Rng(2001));
  PopulationOptions pop_options;
  pop_options.node_sizes = {2, 4};
  Rng rng(2002);
  auto tenants_result = GenerateTenantPopulation(12, pop_options, &rng);
  ASSERT_TRUE(tenants_result.ok());
  std::vector<TenantSpec> tenants = *tenants_result;
  LogComposerOptions composer_options;
  composer_options.horizon_days = 5;
  LogComposer composer(&library, composer_options);
  Rng compose_rng(2003);
  auto logs_result = composer.Compose(&tenants, &compose_rng);
  ASSERT_TRUE(logs_result.ok());
  const std::vector<TenantLog>& logs = *logs_result;

  // Advise on the full history.
  AdvisorOptions advisor_options;
  advisor_options.replication_factor = 2;
  advisor_options.sla_fraction = 0.99;
  advisor_options.epoch_size = 30 * kSecond;
  DeploymentAdvisor advisor(advisor_options);
  auto output = advisor.Advise(tenants, logs, 0, composer.horizon_end());
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_TRUE(output->excluded_tenants.empty());
  ASSERT_GT(output->plan.groups.size(), 0u);
  EXPECT_GT(output->plan.ConsolidationEffectiveness(), 0.0);

  // Deploy on a cluster sized exactly to the plan and replay the history
  // ("the tenant history repeats itself").
  SimEngine engine;
  Cluster cluster(static_cast<int>(output->plan.TotalNodesUsed()), &engine);
  ServiceOptions service_options;
  service_options.replication_factor = 2;
  service_options.sla_fraction = 0.99;
  service_options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, service_options);
  ASSERT_TRUE(service.Deploy(output->plan).ok());
  ASSERT_TRUE(service.ScheduleLogReplay(logs).ok());
  engine.Run();

  // Every query completed, and the SLA attainment is at least P (the
  // grouping was computed on exactly this history, so breaches can only
  // come from epoch-granularity effects).
  size_t total_queries = 0;
  for (const auto& log : logs) total_queries += log.entries.size();
  EXPECT_EQ(service.metrics().completed, total_queries);
  EXPECT_GE(service.metrics().SlaAttainment(), 0.99);
}

TEST(EndToEndTest, ElasticScalingRescuesOveractiveGroup) {
  QueryCatalog catalog = QueryCatalog::Default();
  SimEngine engine;
  Cluster cluster(8, &engine);

  // One group of four 2-node tenants served by a single MPPDB (R = 1).
  DeploymentPlan plan;
  plan.replication_factor = 1;
  plan.sla_fraction = 0.95;
  GroupDeployment group;
  group.group_id = 0;
  for (TenantId id = 0; id < 4; ++id) {
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 2;
    spec.data_gb = 200;
    group.tenants.push_back(spec);
  }
  group.cluster.mppdb_nodes = {2};
  plan.groups.push_back(group);

  ServiceOptions options;
  options.replication_factor = 1;
  options.sla_fraction = 0.95;
  options.elastic_scaling = true;
  options.scaling.window = 2 * kHour;
  options.scaling.warmup = 2 * kHour;
  options.scaling.check_interval = 5 * kMinute;
  ThriftyService service(&engine, &cluster, &catalog, options);
  ASSERT_TRUE(service.Deploy(plan).ok());

  // Tenants 1 and 2 go rogue: a 50-second query every minute, far beyond
  // any history. Tenant 0 stays sparse.
  TemplateId q6 = *catalog.FindByName("TPCH-Q6");  // ~15 s on 2 nodes/200 GB
  const SimTime horizon = 10 * kHour;
  for (SimTime t = 0; t < horizon; t += 60 * kSecond) {
    for (TenantId hog : {1, 2}) {
      engine.ScheduleAt(t, [&service, hog, q6](SimTime) {
        (void)service.SubmitQuery(hog, q6);
      });
    }
  }
  for (SimTime t = 0; t < horizon; t += 30 * kMinute) {
    engine.ScheduleAt(t, [&service, q6](SimTime) {
      (void)service.SubmitQuery(0, q6);
    });
  }
  engine.RunUntil(horizon);

  // A scaling event fired, identified at least one of the hogs, created a
  // new MPPDB (nodes came from the hibernated pool), and the router now
  // sends the victim to its dedicated instance.
  ASSERT_TRUE(service.scaler() != nullptr);
  const auto& events = service.scaler()->events();
  ASSERT_GE(events.size(), 1u);
  const ScalingEvent& event = events[0];
  EXPECT_GT(event.detected_time, 0);
  ASSERT_FALSE(event.tenants.empty());
  for (TenantId victim : event.tenants) {
    EXPECT_TRUE(victim == 1 || victim == 2) << victim;
  }
  EXPECT_EQ(event.new_mppdb_nodes, 2);
  ASSERT_GT(event.ready_time, event.detected_time);
  // Table 5.1 economics: loading 200 GB dominates; the new MPPDB took
  // roughly 2.8 simulated hours to prepare.
  double prep_hours =
      DurationToSeconds(event.ready_time - event.detected_time) / 3600;
  EXPECT_NEAR(prep_hours, 2.9, 0.5);

  auto group_router = service.router()->RouterForGroup(0);
  ASSERT_TRUE(group_router.ok());
  for (TenantId victim : event.tenants) {
    EXPECT_TRUE((*group_router)->HasDedicated(victim));
  }
  EXPECT_GT(cluster.nodes_in_use(), 2);
  // The group landed on the re-consolidation list.
  EXPECT_TRUE(service.scaler()->reconsolidation_list().count(0) > 0);

  // RT-TTP recovers once the victims are excluded from the group's
  // bookkeeping (the scaling event itself is evidence that RT-TTP was
  // below P at detection time — the scaler only fires on a breach).
  auto monitor = service.activity_monitor()->GroupMonitor(0);
  ASSERT_TRUE(monitor.ok());
  EXPECT_GE((*monitor)->RtTtp(horizon), 0.95);
}

TEST(EndToEndTest, NodeFailureDegradesThenRecovers) {
  QueryCatalog catalog = QueryCatalog::Default();
  SimEngine engine;
  Cluster cluster(8, &engine);
  DeploymentPlan plan;
  plan.replication_factor = 2;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  TenantSpec spec;
  spec.id = 0;
  spec.requested_nodes = 4;
  spec.data_gb = 400;
  group.tenants.push_back(spec);
  group.cluster.mppdb_nodes = {4, 4};
  plan.groups.push_back(group);

  ServiceOptions options;
  options.replication_factor = 2;
  options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, options);
  ASSERT_TRUE(service.Deploy(plan).ok());

  // Fail one node of MPPDB_0, then submit: the query still completes
  // (degraded), and after auto-replacement full speed returns.
  ASSERT_TRUE(cluster.InjectNodeFailure(0).ok());
  size_t violations = 0;
  service.set_completion_hook([&](const QueryOutcome& o) {
    if (o.NormalizedPerformance() > 1.01) ++violations;
  });
  TemplateId q1 = *catalog.FindByName("TPCH-Q1");
  ASSERT_TRUE(service.SubmitQuery(0, q1).ok());
  engine.Run();
  EXPECT_EQ(service.metrics().completed, 1u);
  EXPECT_EQ(violations, 1u);  // degraded instance missed the SLA

  // Replacement has arrived by now; the next query is full speed.
  ASSERT_TRUE(service.SubmitQuery(0, q1).ok());
  engine.Run();
  EXPECT_EQ(service.metrics().completed, 2u);
  EXPECT_EQ(violations, 1u);
}

}  // namespace
}  // namespace thrifty
