#include "mppdb/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(CatalogTest, DefaultHasBothSuites) {
  QueryCatalog catalog = QueryCatalog::Default();
  EXPECT_EQ(catalog.SuiteTemplates(QuerySuite::kTpch).size(), 22u);
  EXPECT_EQ(catalog.SuiteTemplates(QuerySuite::kTpcds).size(), 24u);
  EXPECT_EQ(catalog.size(), 46u);
}

TEST(CatalogTest, IdsMatchPositions) {
  QueryCatalog catalog = QueryCatalog::Default();
  for (size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.Get(static_cast<TemplateId>(i)).id,
              static_cast<TemplateId>(i));
  }
}

TEST(CatalogTest, FindByName) {
  QueryCatalog catalog = QueryCatalog::Default();
  auto q1 = catalog.FindByName("TPCH-Q1");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(catalog.Get(*q1).name, "TPCH-Q1");
  EXPECT_EQ(catalog.FindByName("NOPE").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DeterministicAcrossConstructions) {
  QueryCatalog a = QueryCatalog::Default();
  QueryCatalog b = QueryCatalog::Default();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    TemplateId id = static_cast<TemplateId>(i);
    EXPECT_EQ(a.Get(id).name, b.Get(id).name);
    EXPECT_EQ(a.Get(id).work_seconds_per_gb, b.Get(id).work_seconds_per_gb);
    EXPECT_EQ(a.Get(id).serial_fraction, b.Get(id).serial_fraction);
  }
}

TEST(CatalogTest, Q1LinearQ19NonLinear) {
  QueryCatalog catalog = QueryCatalog::Default();
  const QueryTemplate& q1 = catalog.Get(*catalog.FindByName("TPCH-Q1"));
  const QueryTemplate& q19 = catalog.Get(*catalog.FindByName("TPCH-Q19"));
  EXPECT_TRUE(IsLinearScaleOut(q1, 8));
  EXPECT_FALSE(IsLinearScaleOut(q19, 8));
}

TEST(CatalogTest, AllTemplatesHaveSaneCosts) {
  QueryCatalog catalog = QueryCatalog::Default();
  for (const auto& t : catalog.templates()) {
    EXPECT_GT(t.work_seconds_per_gb, 0) << t.name;
    EXPECT_GE(t.serial_fraction, 0) << t.name;
    EXPECT_LT(t.serial_fraction, 1) << t.name;
  }
}

TEST(CatalogTest, SampleFromSuiteCoversSuite) {
  QueryCatalog catalog = QueryCatalog::Default();
  Rng rng(7);
  std::set<TemplateId> seen;
  for (int i = 0; i < 2000; ++i) {
    TemplateId id = catalog.SampleFromSuite(QuerySuite::kTpch, &rng);
    EXPECT_EQ(catalog.Get(id).name.rfind("TPCH", 0), 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 22u);  // uniform sampling hits all 22
}

TEST(CatalogTest, SuiteNames) {
  EXPECT_STREQ(QuerySuiteToString(QuerySuite::kTpch), "TPCH");
  EXPECT_STREQ(QuerySuiteToString(QuerySuite::kTpcds), "TPCDS");
}

}  // namespace
}  // namespace thrifty
