#include "placement/plan_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/deployment_master.h"

namespace thrifty {
namespace {

DeploymentPlan MakePlan() {
  DeploymentPlan plan;
  plan.replication_factor = 3;
  plan.sla_fraction = 0.999;
  GroupDeployment g0;
  g0.group_id = 0;
  g0.cluster.mppdb_nodes = {6, 4, 4};
  TenantSpec t0{10, 4, 400, QuerySuite::kTpch, 3, 2};
  TenantSpec t1{11, 4, 400, QuerySuite::kTpcds, 16, 5};
  g0.tenants = {t0, t1};
  plan.groups.push_back(g0);
  GroupDeployment g1;
  g1.group_id = 1;
  g1.cluster.mppdb_nodes = {2, 2, 2};
  TenantSpec t2{12, 2, 200, QuerySuite::kTpch, 0, 1};
  g1.tenants = {t2};
  plan.groups.push_back(g1);
  return plan;
}

TEST(PlanIoTest, RoundTrip) {
  DeploymentPlan plan = MakePlan();
  std::ostringstream os;
  ASSERT_TRUE(WriteDeploymentPlan(plan, os).ok());
  std::istringstream is(os.str());
  auto parsed = ReadDeploymentPlan(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->replication_factor, 3);
  EXPECT_DOUBLE_EQ(parsed->sla_fraction, 0.999);
  ASSERT_EQ(parsed->groups.size(), 2u);
  EXPECT_EQ(parsed->groups[0].cluster.mppdb_nodes,
            (std::vector<int>{6, 4, 4}));
  ASSERT_EQ(parsed->groups[0].tenants.size(), 2u);
  const TenantSpec& t = parsed->groups[0].tenants[1];
  EXPECT_EQ(t.id, 11);
  EXPECT_EQ(t.requested_nodes, 4);
  EXPECT_DOUBLE_EQ(t.data_gb, 400);
  EXPECT_EQ(t.suite, QuerySuite::kTpcds);
  EXPECT_EQ(t.time_zone_offset_hours, 16);
  EXPECT_EQ(t.max_users, 5);
  EXPECT_EQ(parsed->TotalNodesUsed(), plan.TotalNodesUsed());
  EXPECT_EQ(parsed->TotalNodesRequested(), plan.TotalNodesRequested());
}

TEST(PlanIoTest, RejectsMissingHeader) {
  std::istringstream is("replication 3\nsla 0.999\nend\n");
  EXPECT_EQ(ReadDeploymentPlan(is).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanIoTest, RejectsMissingEnd) {
  std::istringstream is("thrifty-plan v1\nreplication 3\nsla 0.999\n");
  EXPECT_EQ(ReadDeploymentPlan(is).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanIoTest, RejectsTenantBeforeGroup) {
  std::istringstream is(
      "thrifty-plan v1\nreplication 3\nsla 0.999\n"
      "tenant 1 nodes 2 data_gb 200 suite TPCH tz 0 users 1\nend\n");
  EXPECT_EQ(ReadDeploymentPlan(is).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanIoTest, RejectsBadValues) {
  const char* cases[] = {
      "thrifty-plan v1\nreplication 0\nsla 0.999\nend\n",
      "thrifty-plan v1\nreplication 3\nsla 1.5\nend\n",
      "thrifty-plan v1\nreplication 3\nsla 0.999\ngroup 0 mppdbs\nend\n",
      "thrifty-plan v1\nreplication 3\nsla 0.999\ngroup 0 mppdbs 4\n"
      "tenant 1 nodes 2 data_gb 200 suite NOPE tz 0 users 1\nend\n",
      "thrifty-plan v1\nreplication 3\nsla 0.999\nbogus\nend\n",
      // group with no tenants
      "thrifty-plan v1\nreplication 3\nsla 0.999\ngroup 0 mppdbs 4\nend\n",
  };
  for (const char* text : cases) {
    std::istringstream is(text);
    EXPECT_EQ(ReadDeploymentPlan(is).status().code(),
              StatusCode::kInvalidArgument)
        << text;
  }
}

TEST(PlanIoTest, LoadedPlanDeploysIdentically) {
  // A plan surviving serialization must deploy to the same cluster shape.
  DeploymentPlan plan = MakePlan();
  std::ostringstream os;
  ASSERT_TRUE(WriteDeploymentPlan(plan, os).ok());
  std::istringstream is(os.str());
  auto loaded = ReadDeploymentPlan(is);
  ASSERT_TRUE(loaded.ok());

  SimEngine engine;
  Cluster cluster(static_cast<int>(loaded->TotalNodesUsed()), &engine);
  QueryRouter router;
  DeploymentMaster master(&cluster, &router);
  auto deployed = master.Deploy(*loaded);
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  EXPECT_EQ(cluster.nodes_in_use(), plan.TotalNodesUsed());
  // Tenant 11's data landed on all of its group's MPPDBs.
  for (MppdbInstance* instance : (*deployed)[0].instances) {
    EXPECT_TRUE(instance->HostsTenant(11));
  }
  EXPECT_TRUE(router.Route(12).ok());
}

TEST(PlanIoTest, EmptyPlanRoundTrips) {
  DeploymentPlan plan;
  plan.replication_factor = 2;
  plan.sla_fraction = 0.99;
  std::ostringstream os;
  ASSERT_TRUE(WriteDeploymentPlan(plan, os).ok());
  std::istringstream is(os.str());
  auto parsed = ReadDeploymentPlan(is);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->groups.empty());
}

}  // namespace
}  // namespace thrifty
