// Randomized and directed tests for the shared-scan executor mode
// (PsExecutorMode::kSharedScan).
//
// Contract under test:
//  * Degeneracy: with all-distinct template ids every batch is a singleton,
//    so kSharedScan is byte-identical to kVirtualTime — same completion
//    stream, same max_concurrency, same busy time, same event count.
//  * Determinism: with heavy template collisions two kSharedScan runs of
//    the same script are byte-identical.
//  * Batching: co-resident same-template queries occupy one PS slot; the
//    leader pays the dedicated work, each joiner only its SharedJoinDelta,
//    appended past the batch's last finish tag (tags immutable, strictly
//    increasing). Batches close when their last member completes.
//  * Accounting: SimCostGauge's query-work vs slot-work split and the
//    batch-open/batch-join counters line up with the admissions made.
//
// Every randomized case derives its script from an id-keyed Rng fork, so a
// failure names the case id and replays deterministically.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mppdb/instance.h"
#include "mppdb/query_model.h"
#include "sim/engine.h"

namespace thrifty {
namespace {

QueryTemplate MakeTemplate(TemplateId id, double work_seconds_per_gb,
                           double serial = 0.0) {
  QueryTemplate t;
  t.id = id;
  t.name = "q" + std::to_string(id);
  t.work_seconds_per_gb = work_seconds_per_gb;
  t.serial_fraction = serial;
  return t;
}

enum class OpKind { kSubmit, kFail, kRepair };

struct Op {
  SimTime time = 0;
  OpKind kind = OpKind::kSubmit;
  TenantId tenant = 1;
  QueryTemplate tmpl;
};

struct Script {
  int nodes = 4;
  std::vector<std::pair<TenantId, double>> tenants;  // (id, data_gb)
  std::vector<Op> ops;
};

struct RunResult {
  std::vector<std::string> trace;
  uint64_t query_work = 0;
  uint64_t slot_work = 0;
  uint64_t batches = 0;
  uint64_t joins = 0;
  size_t completed = 0;
};

// Replays `script` against one instance and returns its observable trace
// plus the gauge's shared-work accounting. Post-op samples include the slot
// concurrency and the open-batch count, so the trace also pins the batch
// lifecycle, not just the completion stream.
RunResult RunScript(const Script& script, PsExecutorMode mode) {
  SimEngine engine;
  SimCostGauge gauge;
  engine.set_cost_gauge(&gauge);
  MppdbInstance instance(0, script.nodes, &engine, InstanceState::kOnline,
                         mode);
  for (const auto& [tenant, gb] : script.tenants) {
    instance.AddTenant(tenant, gb);
  }

  RunResult result;
  instance.set_completion_callback([&](const QueryCompletion& c) {
    std::ostringstream line;
    line << "done t=" << c.finish_time << " q=" << c.query_id
         << " tenant=" << c.tenant_id << " lat=" << c.MeasuredLatency()
         << " maxk=" << c.max_concurrency;
    result.trace.push_back(line.str());
  });

  QueryId next_query_id = 100;
  for (const Op& op : script.ops) {
    engine.ScheduleAt(op.time, [&, op](SimTime now) {
      switch (op.kind) {
        case OpKind::kSubmit: {
          QuerySubmission s;
          s.query_id = next_query_id++;
          s.tenant_id = op.tenant;
          s.template_id = op.tmpl.id;
          (void)instance.Submit(s, op.tmpl);
          break;
        }
        case OpKind::kFail:
          (void)instance.InjectNodeFailure();
          break;
        case OpKind::kRepair:
          (void)instance.RepairNode();
          break;
      }
      // The trace is the parity surface shared-off runs must match
      // byte-for-byte against kVirtualTime, so it records only
      // mode-portable state: open-batch counts (always zero under
      // kVirtualTime) are asserted through the gauge instead.
      std::ostringstream line;
      line << "op t=" << now << " k=" << instance.Concurrency()
           << " slots=" << instance.SlotConcurrency()
           << " failed=" << instance.failed_nodes();
      result.trace.push_back(line.str());
    });
  }
  engine.Run();

  std::ostringstream tail;
  tail << "end t=" << engine.now()
       << " completed=" << instance.completed_queries()
       << " busy=" << instance.busy_time()
       << " events=" << engine.events_processed();
  result.trace.push_back(tail.str());
  // Drained executors must have closed every batch — the busy-period rebase
  // in Submit depends on it.
  EXPECT_EQ(instance.shared_batches_open(), 0u);
  result.query_work = gauge.query_work_ms();
  result.slot_work = gauge.slot_work_ms();
  result.batches = gauge.shared_batches();
  result.joins = gauge.shared_joins();
  result.completed = instance.completed_queries();
  return result;
}

// Random script generator. `template_pool` = 0 gives every submission a
// unique template id (the degenerate all-singleton case); a small pool
// forces collisions and thus real batches.
Script RandomScript(Rng* rng, int template_pool) {
  Script script;
  script.nodes = static_cast<int>(rng->NextInt(1, 8));
  int num_tenants = static_cast<int>(rng->NextInt(1, 4));
  for (TenantId t = 1; t <= num_tenants; ++t) {
    script.tenants.push_back({t, 20.0 + 10.0 * rng->NextDouble() * t});
  }

  // Pooled templates must agree on the work profile wherever they collide
  // (one template id = one template), so pre-generate the pool.
  std::vector<QueryTemplate> pool;
  for (int i = 0; i < template_pool; ++i) {
    double work = 0.05 + 0.1 * static_cast<double>(rng->NextInt(1, 8));
    pool.push_back(MakeTemplate(i + 1, work, rng->NextBool(0.3) ? 0.1 : 0.0));
  }

  int num_ops = static_cast<int>(rng->NextInt(1, 40));
  SimTime t = 0;
  for (int i = 0; i < num_ops; ++i) {
    Op op;
    t += rng->NextInt(0, 3000);
    op.time = t;
    double roll = rng->NextDouble();
    if (roll < 0.8) {
      op.kind = OpKind::kSubmit;
      op.tenant = static_cast<TenantId>(rng->NextInt(1, num_tenants));
      if (template_pool > 0) {
        op.tmpl = pool[rng->NextBounded(pool.size())];
      } else {
        double work = rng->NextBool(0.5)
                          ? static_cast<double>(rng->NextInt(1, 10)) * 0.1
                          : 0.01 + rng->NextDouble() * 0.5;
        op.tmpl = MakeTemplate(static_cast<TemplateId>(i + 1), work,
                               rng->NextBool(0.3) ? 0.1 : 0.0);
      }
    } else if (roll < 0.92) {
      op.kind = OpKind::kFail;
    } else {
      op.kind = OpKind::kRepair;
    }
    script.ops.push_back(op);
  }
  return script;
}

TEST(SharedScanTest, AllDistinctTemplatesMatchVirtualTimeByteForByte) {
  constexpr uint64_t kCases = 250;
  for (uint64_t case_id = 0; case_id < kCases; ++case_id) {
    SCOPED_TRACE("case_id=" + std::to_string(case_id) +
                 " (replay: Rng(0x5CA1).Fork(case_id))");
    Rng rng = Rng(0x5CA1).Fork(case_id);
    Script script = RandomScript(&rng, /*template_pool=*/0);
    RunResult shared = RunScript(script, PsExecutorMode::kSharedScan);
    RunResult virt = RunScript(script, PsExecutorMode::kVirtualTime);
    EXPECT_EQ(shared.trace, virt.trace);
    // All-singleton batches: every admission opens a batch, none joins, and
    // every slot carries its query's full dedicated work.
    EXPECT_EQ(shared.joins, 0u);
    EXPECT_EQ(shared.query_work, shared.slot_work);
    EXPECT_EQ(virt.query_work, virt.slot_work);
    if (::testing::Test::HasFailure()) break;  // first failing case replays
  }
}

TEST(SharedScanTest, CollidingTemplatesReplayDeterministically) {
  constexpr uint64_t kCases = 250;
  uint64_t cases_with_joins = 0;
  for (uint64_t case_id = 0; case_id < kCases; ++case_id) {
    SCOPED_TRACE("case_id=" + std::to_string(case_id) +
                 " (replay: Rng(0xBA7C).Fork(case_id))");
    Rng rng = Rng(0xBA7C).Fork(case_id);
    Script script = RandomScript(&rng, /*template_pool=*/3);
    RunResult first = RunScript(script, PsExecutorMode::kSharedScan);
    RunResult second = RunScript(script, PsExecutorMode::kSharedScan);
    EXPECT_EQ(first.trace, second.trace);
    EXPECT_EQ(first.query_work, second.query_work);
    EXPECT_EQ(first.slot_work, second.slot_work);
    EXPECT_EQ(first.batches, second.batches);
    EXPECT_EQ(first.joins, second.joins);
    // A join never admits more slot work than the query's dedicated work.
    EXPECT_LE(first.slot_work, first.query_work);
    if (first.joins > 0) ++cases_with_joins;
    if (::testing::Test::HasFailure()) break;
  }
  // The pool is small enough that real batching must have happened.
  EXPECT_GT(cases_with_joins, kCases / 4);
}

TEST(SharedScanTest, IdenticalTemplateBatchCollapsesToOneSlot) {
  // k identical queries admitted at once: one batch, one slot, so the whole
  // batch finishes in roughly the dedicated latency plus the joiner deltas —
  // not k times the dedicated latency as under kVirtualTime.
  constexpr int kQueries = 8;
  const QueryTemplate tmpl = MakeTemplate(7, 1.0);  // 100 GB / 4n -> 25 s
  auto run = [&](PsExecutorMode mode, SimTime* makespan, int* peak_slots) {
    SimEngine engine;
    SimCostGauge gauge;
    engine.set_cost_gauge(&gauge);
    MppdbInstance instance(0, 4, &engine, InstanceState::kOnline, mode);
    instance.AddTenant(1, 100.0);
    *peak_slots = 0;
    for (int i = 0; i < kQueries; ++i) {
      QuerySubmission s;
      s.query_id = i;
      s.tenant_id = 1;
      s.template_id = tmpl.id;
      ASSERT_TRUE(instance.Submit(s, tmpl).ok());
      *peak_slots = std::max(*peak_slots, instance.SlotConcurrency());
    }
    if (mode == PsExecutorMode::kSharedScan) {
      EXPECT_EQ(gauge.shared_batches(), 1u);
      EXPECT_EQ(gauge.shared_joins(), static_cast<uint64_t>(kQueries - 1));
      EXPECT_GT(gauge.SharedWorkRatio(), 4.0);
      EXPECT_DOUBLE_EQ(gauge.SharedHitRate(),
                       static_cast<double>(kQueries - 1) / kQueries);
    }
    engine.Run();
    EXPECT_EQ(instance.completed_queries(),
              static_cast<size_t>(kQueries));
    *makespan = engine.now();
  };
  SimTime shared_makespan = 0, virtual_makespan = 0;
  int shared_peak = 0, virtual_peak = 0;
  run(PsExecutorMode::kSharedScan, &shared_makespan, &shared_peak);
  run(PsExecutorMode::kVirtualTime, &virtual_makespan, &virtual_peak);
  EXPECT_EQ(shared_peak, 1);
  EXPECT_EQ(virtual_peak, kQueries);
  // 8 x 25 s dedicated: virtual-time serves 200 s of work; the shared batch
  // serves 25 s + 7 small deltas. Require at least a 4x makespan win.
  EXPECT_LT(shared_makespan * 4, virtual_makespan);
}

TEST(SharedScanTest, MidFlightJoinerCatchesUpBehindBatchTail) {
  // Leader admitted alone; a joiner arrives mid-flight. The joiner must
  // finish after the leader by its catch-up delta served at the batch's
  // share — and an unrelated template claims a second slot, halving the
  // batch's service rate but never touching its tags.
  SimEngine engine;
  MppdbInstance instance(0, 4, &engine, InstanceState::kOnline,
                         PsExecutorMode::kSharedScan);
  instance.AddTenant(1, 100.0);
  const QueryTemplate shared_tmpl = MakeTemplate(1, 1.0);  // 25 s dedicated
  const QueryTemplate other_tmpl = MakeTemplate(2, 0.4);   // 10 s dedicated

  std::vector<QueryCompletion> done;
  instance.set_completion_callback(
      [&](const QueryCompletion& c) { done.push_back(c); });
  auto submit = [&](QueryId qid, const QueryTemplate& tmpl) {
    QuerySubmission s;
    s.query_id = qid;
    s.tenant_id = 1;
    s.template_id = tmpl.id;
    ASSERT_TRUE(instance.Submit(s, tmpl).ok());
  };

  engine.ScheduleAt(0, [&](SimTime) { submit(1, shared_tmpl); });
  engine.ScheduleAt(5'000, [&](SimTime) {
    submit(2, shared_tmpl);  // joins query 1's batch
    EXPECT_EQ(instance.Concurrency(), 2);
    EXPECT_EQ(instance.SlotConcurrency(), 1);
    EXPECT_EQ(instance.shared_batches_open(), 1u);
  });
  engine.ScheduleAt(10'000, [&](SimTime) {
    submit(3, other_tmpl);  // distinct template -> second slot
    EXPECT_EQ(instance.SlotConcurrency(), 2);
    EXPECT_EQ(instance.shared_batches_open(), 2u);
  });
  engine.Run();

  ASSERT_EQ(done.size(), 3u);
  SimTime leader_finish = 0, joiner_finish = 0;
  for (const auto& c : done) {
    if (c.query_id == 1) leader_finish = c.finish_time;
    if (c.query_id == 2) joiner_finish = c.finish_time;
  }
  // Joiner strictly trails its leader; the catch-up delta for Q1-like work
  // (serial 0 + 2% overhead on 25 s) is 500 ms of slot work, so at a <= 2
  // slot share the tail is bounded by ~1 s + rounding.
  EXPECT_GT(joiner_finish, leader_finish);
  EXPECT_LE(joiner_finish - leader_finish, 1'100);
  EXPECT_EQ(instance.shared_batches_open(), 0u);
}

TEST(SharedScanTest, LateArrivalAfterBatchCloseOpensFreshBatch) {
  // Same template, but the second query arrives after the first completed:
  // no in-flight batch to join, so it leads its own.
  SimEngine engine;
  SimCostGauge gauge;
  engine.set_cost_gauge(&gauge);
  MppdbInstance instance(0, 4, &engine, InstanceState::kOnline,
                         PsExecutorMode::kSharedScan);
  instance.AddTenant(1, 100.0);
  const QueryTemplate tmpl = MakeTemplate(1, 0.2);  // 5 s dedicated
  auto submit = [&](QueryId qid) {
    QuerySubmission s;
    s.query_id = qid;
    s.tenant_id = 1;
    s.template_id = tmpl.id;
    ASSERT_TRUE(instance.Submit(s, tmpl).ok());
  };
  engine.ScheduleAt(0, [&](SimTime) { submit(1); });
  engine.ScheduleAt(60'000, [&](SimTime) { submit(2); });
  engine.Run();
  EXPECT_EQ(instance.completed_queries(), 2u);
  EXPECT_EQ(gauge.shared_batches(), 2u);
  EXPECT_EQ(gauge.shared_joins(), 0u);
  EXPECT_EQ(gauge.query_work_ms(), gauge.slot_work_ms());
}

TEST(SharedScanTest, FailureMidBatchKeepsBatchConsistent) {
  // A node failure halves the speed factor while a 4-member batch is in
  // flight: tags are untouched, service just slows, the batch still drains
  // completely, and the run replays byte-identically.
  Script script;
  script.nodes = 2;
  script.tenants = {{1, 100.0}};
  const QueryTemplate tmpl = MakeTemplate(1, 1.0, 0.1);
  for (int i = 0; i < 4; ++i) {
    Op op;
    op.time = 1000 * i;
    op.tmpl = tmpl;
    script.ops.push_back(op);
  }
  Op fail;
  fail.time = 10'000;
  fail.kind = OpKind::kFail;
  script.ops.push_back(fail);
  Op repair;
  repair.time = 40'000;
  repair.kind = OpKind::kRepair;
  script.ops.push_back(repair);

  RunResult first = RunScript(script, PsExecutorMode::kSharedScan);
  RunResult second = RunScript(script, PsExecutorMode::kSharedScan);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.completed, 4u);
  EXPECT_EQ(first.batches, 1u);
  EXPECT_EQ(first.joins, 3u);
}

TEST(SharedScanTest, SharedJoinDeltaCostModel) {
  QueryTemplate tmpl = MakeTemplate(1, 1.0, 0.2);
  // Dedicated: 100 GB * 1 s/GB * (0.2 + 0.8/4) = 40 s on 4 nodes.
  EXPECT_EQ(tmpl.DedicatedLatency(100.0, 4), 40 * kSecond);
  // Join delta: dedicated * (serial 0.2 + overhead 0.02) = 8.8 s.
  EXPECT_EQ(tmpl.SharedJoinDelta(100.0, 4), 8'800);
  // The fraction clamps at 1: a fully serial template gains nothing.
  tmpl.serial_fraction = 1.0;
  EXPECT_EQ(tmpl.SharedJoinDelta(100.0, 4),
            tmpl.DedicatedLatency(100.0, 4));
  // Never below one tick.
  tmpl.serial_fraction = 0.0;
  tmpl.shared_overhead_fraction = 0.0;
  EXPECT_EQ(tmpl.SharedJoinDelta(0.0, 4), 1);
}

}  // namespace
}  // namespace thrifty
