// Sparse/dense equivalence for GroupLevelSet: a randomized property test
// driving Add/Remove/EvaluateAdd/Ttp/ExactLevelFractions against a dense
// per-epoch-count reference, including all-zero vectors, single-epoch
// horizons, and word-boundary (bit 63/64) activity — plus the pruned
// EvaluateAddCompare against the canonical CompareCandidateLevels order.

#include "activity/level_set.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "placement/two_step.h"

namespace thrifty {
namespace {

/// Dense reference: the group as a plain per-epoch active-tenant count
/// array, with every query recomputed by brute force.
class DenseReference {
 public:
  explicit DenseReference(size_t num_epochs) : counts_(num_epochs, 0) {}

  void Add(const ActivityVector& v) {
    for (size_t k = 0; k < counts_.size(); ++k) counts_[k] += v.Get(k) ? 1 : 0;
  }

  void Remove(const ActivityVector& v) {
    for (size_t k = 0; k < counts_.size(); ++k) counts_[k] -= v.Get(k) ? 1 : 0;
  }

  int MaxActive() const {
    int max_count = 0;
    for (int c : counts_) max_count = std::max(max_count, c);
    return max_count;
  }

  size_t CountAtLeast(int m) const {
    size_t total = 0;
    for (int c : counts_) total += c >= m ? 1 : 0;
    return total;
  }

  size_t CountAtMost(int m) const {
    size_t total = 0;
    for (int c : counts_) total += c <= m ? 1 : 0;
    return total;
  }

  double Ttp(int r) const {
    if (counts_.empty()) return 1.0;
    return static_cast<double>(CountAtMost(r)) /
           static_cast<double>(counts_.size());
  }

  std::vector<double> ExactLevelFractions() const {
    std::vector<double> fractions(static_cast<size_t>(MaxActive()));
    for (size_t m = 1; m <= fractions.size(); ++m) {
      size_t exact = 0;
      for (int c : counts_) exact += c == static_cast<int>(m) ? 1 : 0;
      fractions[m - 1] =
          static_cast<double>(exact) / static_cast<double>(counts_.size());
    }
    return fractions;
  }

  /// The would-be EvaluateAdd popcounts of adding `v`.
  std::vector<size_t> EvaluateAdd(const ActivityVector& v) const {
    std::vector<int> would_be(counts_);
    int max_count = 0;
    for (size_t k = 0; k < counts_.size(); ++k) {
      would_be[k] += v.Get(k) ? 1 : 0;
      max_count = std::max(max_count, would_be[k]);
    }
    std::vector<size_t> pops(static_cast<size_t>(max_count), 0);
    for (int c : would_be) {
      for (int m = 1; m <= c; ++m) ++pops[static_cast<size_t>(m) - 1];
    }
    return pops;
  }

 private:
  std::vector<int> counts_;
};

/// A pool of bursty vectors, always including an all-zero vector and a
/// word-boundary vector with activity exactly at bits 63 and 64.
std::vector<ActivityVector> MakePool(size_t num_epochs, Rng* rng) {
  std::vector<ActivityVector> pool;
  for (TenantId id = 0; id < 10; ++id) {
    DynamicBitmap bits(num_epochs);
    int runs = static_cast<int>(rng->NextInt(0, 4));
    for (int r = 0; r < runs; ++r) {
      size_t begin = rng->NextBounded(num_epochs);
      bits.SetRange(begin, begin + 1 + rng->NextBounded(num_epochs / 3 + 1));
    }
    pool.push_back(ActivityVector::FromBitmap(id, bits));
  }
  DynamicBitmap zero(num_epochs);
  pool.push_back(ActivityVector::FromBitmap(100, zero));
  if (num_epochs > 64) {
    DynamicBitmap boundary(num_epochs);
    boundary.Set(63);
    boundary.Set(64);
    pool.push_back(ActivityVector::FromBitmap(101, boundary));
  }
  return pool;
}

void ExpectMatchesReference(const GroupLevelSet& g, const DenseReference& ref,
                            size_t num_epochs) {
  int max_active = ref.MaxActive();
  ASSERT_EQ(g.MaxActive(), max_active);
  for (int m = 1; m <= max_active + 1; ++m) {
    ASSERT_EQ(g.CountAtLeast(m), ref.CountAtLeast(m)) << "level " << m;
  }
  for (int r = 0; r <= max_active; ++r) {
    ASSERT_EQ(g.CountAtMost(r), ref.CountAtMost(r)) << "r " << r;
    ASSERT_DOUBLE_EQ(g.Ttp(r), ref.Ttp(r)) << "r " << r;
  }
  ASSERT_EQ(g.ExactLevelFractions(), ref.ExactLevelFractions());
  // The sparse storage never exceeds its own dense-bitmap equivalent.
  ASSERT_LE(g.touched_words(), (num_epochs + 63) / 64);
}

class SparseDenseEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(SparseDenseEquivalence, RandomAddsRemovesAndEvaluations) {
  const size_t num_epochs = GetParam();
  Rng rng(num_epochs * 6151 + 3);
  for (int trial = 0; trial < 8; ++trial) {
    auto pool = MakePool(num_epochs, &rng);
    GroupLevelSet g(num_epochs);
    DenseReference ref(num_epochs);
    std::vector<bool> in_group(pool.size(), false);
    GroupLevelSet::EvalScratch scratch;

    for (int op = 0; op < 50; ++op) {
      size_t pick = rng.NextBounded(pool.size());
      if (!in_group[pick]) {
        // EvaluateAdd (allocating and scratch-reusing forms) must agree
        // with the dense reference *before* the mutation...
        std::vector<size_t> expected = ref.EvaluateAdd(pool[pick]);
        ASSERT_EQ(g.EvaluateAdd(pool[pick]), expected);
        g.EvaluateAddInto(pool[pick], &scratch);
        ASSERT_EQ(scratch.pops, expected);
        // ...and match the actual post-add state.
        g.Add(pool[pick]);
        ref.Add(pool[pick]);
        ASSERT_EQ(g.level_popcounts(), expected);
        in_group[pick] = true;
      } else {
        ASSERT_TRUE(g.Remove(pool[pick]).ok());
        ref.Remove(pool[pick]);
        in_group[pick] = false;
      }
      ExpectMatchesReference(g, ref, num_epochs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EpochCounts, SparseDenseEquivalence,
                         ::testing::Values(1, 10, 63, 64, 65, 128, 1000));

// The pruned compare must agree with EvaluateAdd + CompareCandidateLevels
// for every candidate/incumbent pair, and fill the identical popcount
// vector whenever it reports a win or tie.
TEST(SparseLevelSetTest, EvaluateAddCompareMatchesCanonicalOrder) {
  for (size_t num_epochs : {10u, 64u, 200u, 1000u}) {
    Rng rng(num_epochs * 31337 + 11);
    for (int trial = 0; trial < 6; ++trial) {
      auto pool = MakePool(num_epochs, &rng);
      GroupLevelSet g(num_epochs);
      int members = static_cast<int>(rng.NextInt(1, 6));
      for (int t = 0; t < members; ++t) {
        g.Add(pool[rng.NextBounded(pool.size())]);
      }
      GroupLevelSet::EvalScratch scratch;
      for (const auto& incumbent_v : pool) {
        std::vector<size_t> incumbent = g.EvaluateAdd(incumbent_v);
        if (incumbent.empty()) continue;  // caller handles empty incumbents
        for (const auto& cand : pool) {
          std::vector<size_t> full = g.EvaluateAdd(cand);
          int expected = CompareCandidateLevels(full, incumbent);
          int got = g.EvaluateAddCompare(cand, incumbent, &scratch);
          ASSERT_EQ(got < 0, expected < 0);
          ASSERT_EQ(got > 0, expected > 0);
          if (got <= 0) {
            ASSERT_EQ(scratch.pops, full);
          }
        }
      }
    }
  }
}

TEST(SparseLevelSetTest, MemoryBytesShrinkForSparseActivity) {
  // 10 bursty tenants over a wide horizon: the touched index covers a small
  // fraction of the words, so the sparse footprint must undercut the dense
  // equivalent by a wide margin.
  const size_t num_epochs = 1 << 16;
  GroupLevelSet g(num_epochs);
  for (TenantId id = 0; id < 10; ++id) {
    DynamicBitmap bits(num_epochs);
    bits.SetRange(1000 + 64 * static_cast<size_t>(id), 1200);
    g.Add(ActivityVector::FromBitmap(id, bits));
  }
  EXPECT_GT(g.MaxActive(), 1);
  EXPECT_LT(g.MemoryBytes() * 4, g.DenseEquivalentBytes());
  EXPECT_EQ(g.DenseEquivalentBytes(),
            static_cast<size_t>(g.MaxActive()) * (num_epochs / 64) * 8 +
                static_cast<size_t>(g.MaxActive()) * sizeof(size_t));
}

TEST(SparseLevelSetTest, TouchedIndexRebuildsAfterDrain) {
  GroupLevelSet g(256);
  DynamicBitmap wide(256);
  wide.SetRange(0, 200);
  ActivityVector v = ActivityVector::FromBitmap(1, wide);
  g.Add(v);
  EXPECT_EQ(g.touched_words(), 4u);
  ASSERT_TRUE(g.Remove(v).ok());
  EXPECT_EQ(g.touched_words(), 0u);
  DynamicBitmap narrow(256);
  narrow.Set(255);
  g.Add(ActivityVector::FromBitmap(2, narrow));
  EXPECT_EQ(g.touched_words(), 1u);
  EXPECT_EQ(g.CountAtLeast(1), 1u);
}

}  // namespace
}  // namespace thrifty
