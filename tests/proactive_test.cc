#include "scaling/proactive.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(TrendPredictorTest, NeedsMinimumSamples) {
  RtTtpTrendPredictor predictor;
  predictor.AddSample(0, 1.0);
  predictor.AddSample(kHour, 0.99);
  EXPECT_EQ(predictor.SlopePerHour().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(predictor.PredictsBreach(0.999, kHour, 2 * kHour).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TrendPredictorTest, FitsLinearDeclineExactly) {
  RtTtpTrendPredictor predictor;
  // RT-TTP drops 0.002 per hour.
  for (int h = 0; h < 8; ++h) {
    predictor.AddSample(h * kHour, 1.0 - 0.002 * h);
  }
  auto slope = predictor.SlopePerHour();
  ASSERT_TRUE(slope.ok());
  EXPECT_NEAR(*slope, -0.002, 1e-9);
  auto at_10h = predictor.PredictAt(10 * kHour);
  ASSERT_TRUE(at_10h.ok());
  EXPECT_NEAR(*at_10h, 1.0 - 0.02, 1e-9);
}

TEST(TrendPredictorTest, PredictsBreachWithinLead) {
  RtTtpTrendPredictor predictor;
  // 0.9995 falling by 0.0005/h crosses P = 0.999 quickly.
  for (int h = 0; h < 8; ++h) {
    predictor.AddSample(h * kHour, 0.9999 - 0.0005 * h);
  }
  auto soon = predictor.PredictsBreach(0.999, 4 * kHour, 7 * kHour);
  ASSERT_TRUE(soon.ok());
  EXPECT_TRUE(*soon);
  // A flat/improving series never predicts a breach.
  RtTtpTrendPredictor flat;
  for (int h = 0; h < 8; ++h) flat.AddSample(h * kHour, 0.9995);
  auto never = flat.PredictsBreach(0.999, 100 * kHour, 7 * kHour);
  ASSERT_TRUE(never.ok());
  EXPECT_FALSE(*never);
}

TEST(TrendPredictorTest, SpikeGuardRejectsSingleDip) {
  // §5.1's caveat: a sharp drop followed by a sharp rise must not trigger.
  RtTtpTrendPredictor predictor;
  predictor.AddSample(0 * kHour, 1.0);
  predictor.AddSample(1 * kHour, 1.0);
  predictor.AddSample(2 * kHour, 0.95);  // spike
  predictor.AddSample(3 * kHour, 1.0);   // recovered
  predictor.AddSample(4 * kHour, 1.0);
  predictor.AddSample(5 * kHour, 1.0);
  predictor.AddSample(6 * kHour, 0.9993);
  auto breach = predictor.PredictsBreach(0.999, 24 * kHour, 6 * kHour);
  ASSERT_TRUE(breach.ok());
  EXPECT_FALSE(*breach);
}

TEST(TrendPredictorTest, SustainedDeclinePassesGuard) {
  RtTtpTrendPredictor predictor;
  double value = 1.0;
  for (int h = 0; h < 10; ++h) {
    predictor.AddSample(h * kHour, value);
    value -= 0.0004;
  }
  auto breach = predictor.PredictsBreach(0.999, 12 * kHour, 9 * kHour);
  ASSERT_TRUE(breach.ok());
  EXPECT_TRUE(*breach);
}

TEST(TrendPredictorTest, WindowSlidesOldSamplesOut) {
  TrendPredictorOptions options;
  options.window_samples = 4;
  options.min_samples = 3;
  RtTtpTrendPredictor predictor(options);
  // Old rising samples age out; recent decline dominates.
  for (int h = 0; h < 10; ++h) predictor.AddSample(h * kHour, 0.5);
  for (int h = 10; h < 14; ++h) {
    predictor.AddSample(h * kHour, 1.0 - 0.001 * (h - 10));
  }
  EXPECT_EQ(predictor.sample_count(), 4u);
  auto slope = predictor.SlopePerHour();
  ASSERT_TRUE(slope.ok());
  EXPECT_NEAR(*slope, -0.001, 1e-9);
}

TEST(TrendPredictorTest, PredictionClampedToUnitInterval) {
  RtTtpTrendPredictor predictor;
  for (int h = 0; h < 8; ++h) {
    predictor.AddSample(h * kHour, 1.0 - 0.1 * h);
  }
  auto far = predictor.PredictAt(100 * kHour);
  ASSERT_TRUE(far.ok());
  EXPECT_EQ(*far, 0.0);
}

}  // namespace
}  // namespace thrifty
