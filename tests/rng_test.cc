#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextExponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 5.0, 0.25);
}

TEST(RngTest, ForkIsDeterministicAndIndependentOfParentUse) {
  Rng parent1(42);
  Rng parent2(42);
  // Consuming the parent must not change what a fork produces.
  parent2.Next();
  parent2.Next();
  Rng child1 = parent1.Fork(5);
  Rng child2 = parent2.Fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(RngTest, ForksWithDifferentStreamsDiverge) {
  Rng parent(42);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

class RngBoundedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundedSweep, MeanIsCentered) {
  uint64_t bound = GetParam();
  Rng rng(bound * 31 + 1);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextBounded(bound));
  }
  double expected = (static_cast<double>(bound) - 1) / 2;
  EXPECT_NEAR(sum / n, expected, static_cast<double>(bound) * 0.02 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedSweep,
                         ::testing::Values(2, 3, 7, 10, 64, 100, 1000,
                                           123456));

}  // namespace
}  // namespace thrifty
