#include "sim/engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace thrifty {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&](SimTime) { fired.push_back(3); });
  q.Schedule(10, [&](SimTime) { fired.push_back(1); });
  q.Schedule(20, [&](SimTime) { fired.push_back(2); });
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)(t);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFifoByScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&fired, i](SimTime) { fired.push_back(i); });
  }
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)(t);
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(10, [&](SimTime) { fired.push_back(1); });
  EventId id = q.Schedule(20, [&](SimTime) { fired.push_back(2); });
  q.Schedule(30, [&](SimTime) { fired.push_back(3); });
  q.Cancel(id);
  EXPECT_EQ(q.LiveCount(), 2u);
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)(t);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelInvalidIsNoop) {
  EventQueue q;
  q.Cancel(kInvalidEventId);
  q.Cancel(12345);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, StaleCancelsLeaveNoTombstones) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(q.Schedule(10 * (i + 1), [](SimTime) {}));
  }
  // Fire everything, then cancel each fired id repeatedly: every stale
  // cancel must be a no-op, leaving cancelled_ empty and LiveCount() exact.
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)(t);
  }
  EXPECT_EQ(q.LiveCount(), 0u);
  for (int round = 0; round < 3; ++round) {
    for (EventId id : ids) q.Cancel(id);
  }
  EXPECT_EQ(q.CancelledCount(), 0u);
  EXPECT_EQ(q.LiveCount(), 0u);

  // Mixed case: one live event plus stale cancels; the live count and the
  // tombstone count track only real state.
  EventId live = q.Schedule(1000, [](SimTime) {});
  for (EventId id : ids) q.Cancel(id);
  EXPECT_EQ(q.LiveCount(), 1u);
  EXPECT_EQ(q.CancelledCount(), 0u);
  q.Cancel(live);
  EXPECT_EQ(q.LiveCount(), 0u);
  q.Cancel(live);  // double cancel: no second tombstone
  EXPECT_LE(q.CancelledCount(), 1u);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.CancelledCount(), 0u);  // Empty() reclaimed the head tombstone
}

TEST(EventQueueTest, CancelHeavyRunsStayCompact) {
  // Schedule far-future events and cancel them long before they surface:
  // lazy head-skipping alone would never reclaim these, so the amortized
  // compaction must keep tombstones bounded by the live count + slack.
  EventQueue q;
  for (int wave = 0; wave < 100; ++wave) {
    std::vector<EventId> wave_ids;
    for (int i = 0; i < 100; ++i) {
      wave_ids.push_back(q.Schedule(1'000'000 + wave * 100 + i,
                                    [](SimTime) {}));
    }
    for (EventId id : wave_ids) q.Cancel(id);
    EXPECT_EQ(q.LiveCount(), 0u);
    EXPECT_LE(q.CancelledCount(), 128u) << "wave " << wave;
  }
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CompactionPreservesOrderAndLiveEvents) {
  EventQueue q;
  std::vector<EventId> doomed;
  std::vector<int> fired;
  // Interleave keepers with a tombstone-heavy cancel wave that forces at
  // least one compaction, then verify firing order of the survivors.
  for (int i = 0; i < 10; ++i) {
    int tag = 9 - i;
    q.Schedule(100 + 10 * tag, [&fired, tag](SimTime) { fired.push_back(tag); });
  }
  for (int i = 0; i < 500; ++i) {
    doomed.push_back(q.Schedule(10'000 + i, [](SimTime) {}));
  }
  for (EventId id : doomed) q.Cancel(id);
  EXPECT_EQ(q.LiveCount(), 10u);
  EXPECT_LE(q.CancelledCount(), 128u);
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)(t);
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueueTest, ConstQueriesWorkOnConstQueue) {
  EventQueue q;
  q.Schedule(42, [](SimTime) {});
  const EventQueue& const_q = q;
  EXPECT_FALSE(const_q.Empty());
  EXPECT_EQ(const_q.NextTime(), 42);
  EXPECT_EQ(const_q.LiveCount(), 1u);
}

TEST(EventQueueTest, NextTimeReflectsHead) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), kNeverTime);
  EventId id = q.Schedule(50, [](SimTime) {});
  q.Schedule(70, [](SimTime) {});
  EXPECT_EQ(q.NextTime(), 50);
  q.Cancel(id);
  EXPECT_EQ(q.NextTime(), 70);
}

TEST(SimEngineTest, ClockAdvancesToEventTimes) {
  SimEngine engine;
  std::vector<SimTime> seen;
  engine.ScheduleAt(100, [&](SimTime t) { seen.push_back(t); });
  engine.ScheduleAt(50, [&](SimTime t) { seen.push_back(t); });
  EXPECT_EQ(engine.now(), 0);
  engine.Run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(engine.now(), 100);
  EXPECT_EQ(engine.events_processed(), 2u);
}

TEST(SimEngineTest, ScheduleAfterIsRelative) {
  SimEngine engine;
  SimTime fired_at = -1;
  engine.ScheduleAt(10, [&](SimTime) {
    engine.ScheduleAfter(5, [&](SimTime t) { fired_at = t; });
  });
  engine.Run();
  EXPECT_EQ(fired_at, 15);
}

TEST(SimEngineTest, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime) {
    if (++count < 10) engine.ScheduleAfter(1, chain);
  };
  engine.ScheduleAt(0, chain);
  engine.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(engine.now(), 9);
}

TEST(SimEngineTest, RunUntilStopsAtDeadline) {
  SimEngine engine;
  std::vector<SimTime> seen;
  for (SimTime t : {10, 20, 30, 40}) {
    engine.ScheduleAt(t, [&](SimTime now) { seen.push_back(now); });
  }
  engine.RunUntil(25);
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(engine.now(), 25);  // clock advances to the deadline exactly
  EXPECT_EQ(engine.events_pending(), 2u);
  engine.RunUntil(100);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(engine.now(), 100);
}

TEST(SimEngineTest, RunUntilIncludesDeadlineEvents) {
  SimEngine engine;
  bool fired = false;
  engine.ScheduleAt(25, [&](SimTime) { fired = true; });
  engine.RunUntil(25);
  EXPECT_TRUE(fired);
}

TEST(SimEngineTest, CancelPreventsFiring) {
  SimEngine engine;
  bool fired = false;
  EventId id = engine.ScheduleAt(10, [&](SimTime) { fired = true; });
  engine.Cancel(id);
  engine.Run();
  EXPECT_FALSE(fired);
}

TEST(SimEngineTest, StepReturnsFalseWhenEmpty) {
  SimEngine engine;
  EXPECT_FALSE(engine.Step());
  engine.ScheduleAt(5, [](SimTime) {});
  EXPECT_TRUE(engine.Step());
  EXPECT_FALSE(engine.Step());
}

}  // namespace
}  // namespace thrifty
