#include "placement/two_step.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "fig51_fixture.h"
#include "placement/ffd.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;
using testing_fixtures::kFig51Epochs;

std::vector<TenantSpec> UniformTenants(size_t count, int nodes) {
  std::vector<TenantSpec> tenants(count);
  for (size_t i = 0; i < count; ++i) {
    tenants[i].id = static_cast<TenantId>(i + 1);
    tenants[i].requested_nodes = nodes;
    tenants[i].data_gb = 100.0 * nodes;
  }
  return tenants;
}

TEST(CompareCandidateLevelsTest, LowerTopLevelWins) {
  // a: exactly-1 = 5; b: exactly-1 = 3, exactly-2 = 1.
  std::vector<size_t> a = {5};
  std::vector<size_t> b = {4, 1};
  EXPECT_LT(CompareCandidateLevels(a, b), 0);
  EXPECT_GT(CompareCandidateLevels(b, a), 0);
}

TEST(CompareCandidateLevelsTest, TieCascadesDownward) {
  // Same top level; fewer exactly-1 epochs wins (Fig 5.3a: T2 over T4).
  std::vector<size_t> t2 = {7};  // 1-active 70%
  std::vector<size_t> t4 = {8};  // 1-active 80%
  EXPECT_LT(CompareCandidateLevels(t2, t4), 0);
}

TEST(CompareCandidateLevelsTest, FullTieReturnsZero) {
  std::vector<size_t> a = {6, 2};
  std::vector<size_t> b = {6, 2};
  EXPECT_EQ(CompareCandidateLevels(a, b), 0);
}

TEST(CompareCandidateLevelsTest, DifferentLengthsPadWithZero) {
  std::vector<size_t> shallow = {6};
  std::vector<size_t> deep = {6, 1};
  EXPECT_LT(CompareCandidateLevels(shallow, deep), 0);
}

// The golden test: the full Fig 5.3 walkthrough. With R=3 and P=99.9%, the
// heuristic must build TG1 = {T3, T2, T5, T4, T6} (in that insertion order)
// and reject T1 into its own group.
TEST(TwoStepTest, Fig53Walkthrough) {
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->groups.size(), 2u);
  // Insertion order is preserved in tenant_ids.
  EXPECT_EQ(solution->groups[0].tenant_ids,
            (std::vector<TenantId>{3, 2, 5, 4, 6}));
  EXPECT_EQ(solution->groups[1].tenant_ids, (std::vector<TenantId>{1}));
  EXPECT_DOUBLE_EQ(solution->groups[0].ttp, 1.0);
  EXPECT_EQ(solution->groups[0].max_active, 3);
  EXPECT_TRUE(VerifySolution(*problem, *solution).ok());
}

TEST(TwoStepTest, LooserSlaAdmitsT1) {
  // At P = 90% the TTP(3) = 0.9 group of all six tenants is admissible.
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.90);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->groups.size(), 1u);
  EXPECT_EQ(solution->groups[0].tenant_ids.size(), 6u);
}

TEST(TwoStepTest, Step1SeparatesNodeSizes) {
  // Tenants of different sizes never share a group.
  auto activities = Fig51Activities();
  std::vector<TenantSpec> tenants = UniformTenants(6, 4);
  tenants[0].requested_nodes = 8;
  tenants[3].requested_nodes = 8;
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  for (const auto& group : solution->groups) {
    std::set<int> sizes;
    for (TenantId id : group.tenant_ids) {
      sizes.insert(tenants[static_cast<size_t>(id - 1)].requested_nodes);
    }
    EXPECT_EQ(sizes.size(), 1u);
  }
  EXPECT_TRUE(VerifySolution(*problem, *solution).ok());
}

TEST(TwoStepTest, ReplicationFactorOneStillGroups) {
  // With R = 1, tenants whose activities never overlap can share a group.
  std::vector<ActivityVector> activities;
  DynamicBitmap a(10), b(10);
  a.SetRange(0, 3);
  b.SetRange(5, 8);
  activities.push_back(ActivityVector::FromBitmap(1, a));
  activities.push_back(ActivityVector::FromBitmap(2, b));
  auto tenants = UniformTenants(2, 2);
  auto problem = MakePackingProblem(tenants, activities, 1, 1.0);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->groups.size(), 1u);
  EXPECT_EQ(solution->groups[0].tenant_ids.size(), 2u);
}

TEST(TwoStepTest, AlwaysOverlappingTenantsGetOwnGroups) {
  // Two tenants active in every epoch: with R = 1 they cannot share.
  std::vector<ActivityVector> activities;
  for (TenantId id = 1; id <= 2; ++id) {
    DynamicBitmap bits(10);
    bits.SetRange(0, 10);
    activities.push_back(ActivityVector::FromBitmap(id, bits));
  }
  auto tenants = UniformTenants(2, 2);
  auto problem = MakePackingProblem(tenants, activities, 1, 0.999);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->groups.size(), 2u);
}

TEST(TwoStepTest, SeedIsLeastActiveTenant) {
  // The first member of the first group is the tenant with fewest active
  // epochs (T3 in the Fig 5.1 data).
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->groups[0].tenant_ids[0], 3);
}

// Property test over random instances: solutions are always feasible and
// complete, across R and P.
class TwoStepRandomized
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(TwoStepRandomized, SolutionsAreAlwaysFeasible) {
  auto [r, p] = GetParam();
  Rng rng(static_cast<uint64_t>(r * 1000) +
          static_cast<uint64_t>(p * 10000));
  for (int trial = 0; trial < 5; ++trial) {
    const size_t num_epochs = 500;
    std::vector<ActivityVector> activities;
    std::vector<TenantSpec> tenants;
    const int sizes[] = {2, 4, 8};
    for (TenantId id = 0; id < 40; ++id) {
      DynamicBitmap bits(num_epochs);
      int runs = static_cast<int>(rng.NextInt(1, 4));
      for (int run = 0; run < runs; ++run) {
        size_t begin = rng.NextBounded(num_epochs);
        bits.SetRange(begin, begin + 20 + rng.NextBounded(60));
      }
      activities.push_back(ActivityVector::FromBitmap(id, bits));
      TenantSpec spec;
      spec.id = id;
      spec.requested_nodes = sizes[rng.NextBounded(3)];
      tenants.push_back(spec);
    }
    auto problem = MakePackingProblem(tenants, activities, r, p);
    ASSERT_TRUE(problem.ok());
    auto solution = SolveTwoStep(*problem);
    ASSERT_TRUE(solution.ok());
    EXPECT_TRUE(VerifySolution(*problem, *solution).ok())
        << "R=" << r << " P=" << p << " trial=" << trial;
    // Cost can never exceed serving every tenant in its own group.
    int64_t worst = 0;
    for (const auto& t : tenants) worst += r * t.requested_nodes;
    EXPECT_LE(solution->NodesUsed(r), worst);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RAndP, TwoStepRandomized,
    ::testing::Values(std::pair<int, double>{1, 0.999},
                      std::pair<int, double>{2, 0.999},
                      std::pair<int, double>{3, 0.999},
                      std::pair<int, double>{4, 0.999},
                      std::pair<int, double>{3, 0.95},
                      std::pair<int, double>{3, 0.99},
                      std::pair<int, double>{3, 0.9999},
                      std::pair<int, double>{3, 1.0}));

// --- Warm start -----------------------------------------------------------

/// A small random instance shared by the warm-start tests.
std::pair<std::vector<TenantSpec>, std::vector<ActivityVector>>
WarmStartInstance(uint64_t seed) {
  Rng rng(seed);
  const size_t num_epochs = 400;
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants;
  const int sizes[] = {2, 4};
  for (TenantId id = 0; id < 30; ++id) {
    DynamicBitmap bits(num_epochs);
    int runs = static_cast<int>(rng.NextInt(1, 4));
    for (int run = 0; run < runs; ++run) {
      size_t begin = rng.NextBounded(num_epochs);
      bits.SetRange(begin, begin + 20 + rng.NextBounded(50));
    }
    activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = sizes[rng.NextBounded(2)];
    tenants.push_back(spec);
  }
  return {std::move(tenants), std::move(activities)};
}

TEST(TwoStepWarmStartTest, SeededSolveIsFeasibleAndKeepsFeasibleSeeds) {
  auto [tenants, activities] = WarmStartInstance(991);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  auto cold = SolveTwoStep(*problem);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(VerifySolution(*problem, *cold).ok());

  // Seeding a solve with its own cold solution: every seed group is
  // feasible by construction, so all are kept, none dissolved, and the
  // result (same groups, regrown with nothing left to add) stays valid.
  TwoStepOptions options;
  options.warm_start = &*cold;
  auto warm = SolveTwoStep(*problem, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(VerifySolution(*problem, *warm).ok());
  EXPECT_EQ(warm->warm_groups_kept, cold->groups.size());
  EXPECT_EQ(warm->warm_groups_dissolved, 0u);
  EXPECT_EQ(warm->groups.size(), cold->groups.size());
  EXPECT_EQ(warm->NodesUsed(3), cold->NodesUsed(3));
}

TEST(TwoStepWarmStartTest, InfeasibleSeedGroupIsDissolvedWithRepairOff) {
  auto [tenants, activities] = WarmStartInstance(1733);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());

  // One giant seed group per size class: cramming every tenant together
  // violates the SLA (the cold solve needs several groups). In the legacy
  // repair-disabled mode the seeds must dissolve whole back into
  // singletons and the result must still verify.
  GroupingSolution bad_seed;
  std::map<int, TenantGroupResult> by_size;
  for (const auto& t : tenants) {
    by_size[t.requested_nodes].tenant_ids.push_back(t.id);
  }
  for (auto& [nodes, group] : by_size) bad_seed.groups.push_back(group);
  auto cold = SolveTwoStep(*problem);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->groups.size(), bad_seed.groups.size());

  TwoStepOptions options;
  options.warm_start = &bad_seed;
  options.warm_repair = false;
  auto warm = SolveTwoStep(*problem, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(VerifySolution(*problem, *warm).ok());
  EXPECT_EQ(warm->warm_groups_kept, 0u);
  EXPECT_EQ(warm->warm_groups_dissolved, bad_seed.groups.size());
  EXPECT_EQ(warm->warm_groups_repaired, 0u);
  EXPECT_EQ(warm->warm_members_evicted, 0u);
  // Dissolving means no group of the giant seed shape survives.
  for (const auto& group : warm->groups) {
    EXPECT_LT(group.tenant_ids.size(), tenants.size() / 2);
  }
}

TEST(TwoStepWarmStartTest, InfeasibleSeedGroupIsRepairedByEviction) {
  auto [tenants, activities] = WarmStartInstance(1733);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());

  GroupingSolution bad_seed;
  std::map<int, TenantGroupResult> by_size;
  for (const auto& t : tenants) {
    by_size[t.requested_nodes].tenant_ids.push_back(t.id);
  }
  for (auto& [nodes, group] : by_size) bad_seed.groups.push_back(group);

  // Default mode: the infeasible seeds are repaired — members are evicted
  // until the fuzzy capacity holds, the group survives, and nothing is
  // dissolved whole.
  TwoStepOptions options;
  options.warm_start = &bad_seed;
  auto warm = SolveTwoStep(*problem, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(VerifySolution(*problem, *warm).ok());
  EXPECT_EQ(warm->warm_groups_dissolved, 0u);
  EXPECT_EQ(warm->warm_groups_repaired, bad_seed.groups.size());
  EXPECT_GT(warm->warm_members_evicted, 0u);
  // Every evictee re-enters the pool, so the solution still covers all
  // tenants (VerifySolution checks) with fewer groups than full dissolve
  // would leave only if regrouping merged them — either way each repaired
  // group's TTP meets P, which VerifySolution also asserts.
}

TEST(TwoStepWarmStartTest, SeedAcrossSlaTighteningStaysWithinOnePoint) {
  // The fig7_5 pattern: solve at a loose P, seed the tight-P solve with
  // it. Feasible-at-tight-P groups are kept, the rest dissolve, and the
  // warm effectiveness stays within one percentage point of cold.
  auto [tenants, activities] = WarmStartInstance(4211);
  auto loose_problem = MakePackingProblem(tenants, activities, 3, 0.95);
  auto tight_problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(loose_problem.ok());
  ASSERT_TRUE(tight_problem.ok());
  auto loose = SolveTwoStep(*loose_problem);
  ASSERT_TRUE(loose.ok());

  TwoStepOptions options;
  options.warm_start = &*loose;
  auto warm = SolveTwoStep(*tight_problem, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(VerifySolution(*tight_problem, *warm).ok());
  // Every seed group is either kept as-is or repaired; none dissolve in
  // the default repair mode.
  EXPECT_EQ(warm->warm_groups_kept + warm->warm_groups_repaired,
            loose->groups.size());
  EXPECT_EQ(warm->warm_groups_dissolved, 0u);

  auto cold = SolveTwoStep(*tight_problem);
  ASSERT_TRUE(cold.ok());
  int64_t requested = tight_problem->TotalRequestedNodes();
  double warm_eff = warm->ConsolidationEffectiveness(3, requested);
  double cold_eff = cold->ConsolidationEffectiveness(3, requested);
  EXPECT_NEAR(warm_eff, cold_eff, 0.01);
}

TEST(TwoStepWarmStartTest, StaleSeedIdsAndDuplicatesAreIgnored) {
  auto [tenants, activities] = WarmStartInstance(58);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());

  GroupingSolution seed;
  TenantGroupResult g1;
  g1.tenant_ids = {0, 1, 999};  // 999 does not exist at this sweep point
  TenantGroupResult g2;
  g2.tenant_ids = {1, 2};  // tenant 1 already seeded in g1
  seed.groups = {g1, g2};

  TwoStepOptions options;
  options.warm_start = &seed;
  auto warm = SolveTwoStep(*problem, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(VerifySolution(*problem, *warm).ok());
}

}  // namespace
}  // namespace thrifty
