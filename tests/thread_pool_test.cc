#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.Submit([] {});
  future.get();
}

TEST(ThreadPoolTest, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("trial failed"); });
  auto after = pool.Submit([] {});
  ok.get();
  EXPECT_THROW(bad.get(), std::runtime_error);
  after.get();  // the worker survived the throwing task
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor must finish all 50 before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksRunOffTheCallingThread) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id worker;
  pool.Submit([&worker] { worker = std::this_thread::get_id(); }).get();
  EXPECT_NE(worker, caller);
}

}  // namespace
}  // namespace thrifty
